// Figure 6 reproduction (Exp-5 and Exp-6): impact of the pruning rules.
// FASTOD vs FASTOD-NoPruning (minimality/level/key pruning all disabled)
// over a rows sweep and an attributes sweep of flight-like data, reporting
// both runtime and the number of ODs — minimal vs all-valid (the paper
// reports ~700 minimal vs ~50M non-minimal at 1K x 20).
#include <vector>

#include "bench_util.h"
#include "gen/generators.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

AlgoCell RunNoPruning(const EncodedRelation& rel, double timeout) {
  FastodOptions options;
  options.minimality_pruning = false;
  options.level_pruning = false;
  options.key_pruning = false;
  options.timeout_seconds = timeout;
  return RunFastod(rel, options);
}

void Row(const char* sweep, const char* label,
         const EncodedRelation& rel) {
  AlgoCell pruned = RunFastod(rel);
  AlgoCell unpruned = RunNoPruning(rel, 60.0);
  std::string params = std::string(sweep) + "=" + label;
  RecordJson(params + " algo=fastod", pruned.seconds);
  RecordJson(params + " algo=fastod-nopruning", unpruned.seconds);
  std::printf("%-10s | %-12s | %-22s | %-12s | %s\n", label,
              pruned.TimeString().c_str(), pruned.counts.c_str(),
              unpruned.TimeString().c_str(), unpruned.counts.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_fig6_pruning", argc, argv);
  PrintHeader("Exp-5/6 — impact of pruning (Figure 6)",
              "pruning buys orders of magnitude in time; minimal OD count "
              "is orders of magnitude below the all-valid count");

  std::printf("\n--- flight-like, 8 attributes, rows sweep ---\n");
  std::printf("%-10s | %-12s | %-22s | %-12s | %s\n", "rows", "FASTOD",
              "minimal #ODs", "NoPruning", "all-valid #ODs");
  for (int step = 1; step <= 5; ++step) {
    int64_t rows = 1000 * step * scale;
    Table table = GenFlightLike(rows, 8, 42);
    auto rel = EncodedRelation::FromTable(table);
    if (!rel.ok()) return 1;
    char label[32];
    std::snprintf(label, sizeof(label), "%lld",
                  static_cast<long long>(rows));
    Row("rows", label, *rel);
  }

  std::printf("\n--- flight-like, 500 rows, attributes sweep ---\n");
  std::printf("%-10s | %-12s | %-22s | %-12s | %s\n", "attrs", "FASTOD",
              "minimal #ODs", "NoPruning", "all-valid #ODs");
  for (int attrs : {4, 6, 8, 10, 12}) {
    Table table = GenFlightLike(500 * scale, attrs, 42);
    auto rel = EncodedRelation::FromTable(table);
    if (!rel.ok()) return 1;
    char label[32];
    std::snprintf(label, sizeof(label), "%d", attrs);
    Row("attrs", label, *rel);
  }
  return 0;
}
