// Guards the "thin adapter" claim of the unified Algorithm API: running an
// engine through AlgorithmRegistry::Create + SetOption + LoadData + Execute
// with a streaming CollectingOdSink must cost the same as calling the
// legacy entry point directly (the adapters add one options copy and a
// virtual dispatch per run; with emit-ods=false the sink replaces one
// vector append per OD — sinks tee by default, so the bench opts out of
// materialization to keep both modes at one append per OD).
#include <cstdio>
#include <memory>

#include "api/engines.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "bench_util.h"
#include "gen/generators.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

void Row(const char* label, const Table& table) {
  auto rel = EncodedRelation::FromTable(table);

  WallTimer direct_timer;
  FastodResult direct = Fastod().Discover(*rel);
  double direct_seconds = direct_timer.ElapsedSeconds();

  auto algo = AlgorithmRegistry::Default().Create("fastod");
  CollectingOdSink sink;
  (*algo)->SetSink(&sink);
  // Sinks tee since the server work landed; keep this a pure
  // stream-vs-materialize comparison (one append per OD on both sides).
  (void)(*algo)->SetOption("emit-ods", "false");
  (void)(*algo)->LoadData(*rel);
  WallTimer api_timer;
  (void)(*algo)->Execute();
  double api_seconds = api_timer.ElapsedSeconds();

  RecordJson(std::string("workload=") + label + " mode=direct",
             direct_seconds);
  RecordJson(std::string("workload=") + label + " mode=api",
             api_seconds);
  std::printf("%-14s | direct %8.3fs (%lld ODs) | api+sink %8.3fs "
              "(%lld ODs) | overhead %+.1f%%\n",
              label, direct_seconds,
              static_cast<long long>(direct.NumOds()), api_seconds,
              static_cast<long long>(sink.TotalOds()),
              direct_seconds > 0.0
                  ? (api_seconds / direct_seconds - 1.0) * 100.0
                  : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = ParseScale(argc, argv);
  BenchJson json("bench_api_overhead", argc, argv);
  PrintHeader("Unified-API adapter overhead (registry + option registry + "
              "streaming sink vs direct engine calls)",
              "api/ redesign; expectation: overhead within noise");
  Row("flight 1Kx10", GenFlightLike(1000 * scale, 10, 7));
  Row("ncvoter 2Kx8", GenNcvoterLike(2000 * scale, 8, 11));
  Row("dbtesma 1Kx12", GenDbtesmaLike(1000 * scale, 12, 23));
  return 0;
}
