// Guards the "thin adapter" claim of the unified Algorithm API: running an
// engine through AlgorithmRegistry::Create + SetOption + LoadData + Execute
// with a streaming CollectingOdSink must cost the same as calling the
// legacy entry point directly (the adapters add one options copy and a
// virtual dispatch per run; with emit-ods=false the sink replaces one
// vector append per OD — sinks tee by default, so the bench opts out of
// materialization to keep both modes at one append per OD).
//
// The repeated-session rows quantify the DatasetStore's
// load-once/discover-many amortization: N sessions over one relation,
// either each re-reading + re-encoding the CSV (mode=fresh-load, the
// pre-store server behavior) or all binding one LoadedDataset built once
// (mode=shared-dataset, CSV parse + encode + level-1 partitions skipped
// per session).
// With --overload the bench instead measures the admission-control
// rejection path: a service filled to its session cap refuses further
// submissions with kUnavailable, and the p50/p99 latency of those
// refusals is the number an operator cares about — rejections must stay
// cheap precisely when the service is busiest.
// With --metrics-overhead it measures the observability tax instead:
// identical service sessions with the metrics registry + trace spans
// enabled vs FASTOD_METRICS=off. The bar is <2% — the counters ride the
// engine's existing level stats, so publication cost is per-session,
// not per-tuple.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engines.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "bench_util.h"
#include "common/cancellation.h"
#include "data/csv.h"
#include "data/dataset_store.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "service/discovery_service.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

void Row(const char* label, const Table& table) {
  auto rel = EncodedRelation::FromTable(table);

  WallTimer direct_timer;
  FastodResult direct = Fastod().Discover(*rel);
  double direct_seconds = direct_timer.ElapsedSeconds();

  auto algo = AlgorithmRegistry::Default().Create("fastod");
  CollectingOdSink sink;
  (*algo)->SetSink(&sink);
  // Sinks tee since the server work landed; keep this a pure
  // stream-vs-materialize comparison (one append per OD on both sides).
  (void)(*algo)->SetOption("emit-ods", "false");
  (void)(*algo)->LoadData(*rel);
  WallTimer api_timer;
  (void)(*algo)->Execute();
  double api_seconds = api_timer.ElapsedSeconds();

  RecordJson(std::string("workload=") + label + " mode=direct",
             direct_seconds);
  RecordJson(std::string("workload=") + label + " mode=api",
             api_seconds);
  std::printf("%-14s | direct %8.3fs (%lld ODs) | api+sink %8.3fs "
              "(%lld ODs) | overhead %+.1f%%\n",
              label, direct_seconds,
              static_cast<long long>(direct.NumOds()), api_seconds,
              static_cast<long long>(sink.TotalOds()),
              direct_seconds > 0.0
                  ? (api_seconds / direct_seconds - 1.0) * 100.0
                  : 0.0);
}

// N discovery sessions over one relation, with and without the shared
// DatasetStore. Both modes run the identical engine configuration; the
// difference is purely per-session input preparation.
void RepeatedSessionsRow(const char* label, const Table& table,
                         int sessions) {
  std::string path = "/tmp/bench_api_overhead_" +
                     std::to_string(::getpid()) + ".csv";
  if (!WriteCsvFile(table, path).ok()) {
    std::printf("%-14s | cannot write %s, skipped\n", label, path.c_str());
    return;
  }

  auto run_one = [](Algorithm& algo) {
    (void)algo.SetOption("emit-ods", "false");
    CountingOdSink sink;
    algo.SetSink(&sink);
    (void)algo.Execute();
    return sink.Total();
  };

  // Mode 1: every session parses, types, and encodes the CSV itself.
  WallTimer fresh_timer;
  int64_t fresh_ods = 0;
  for (int i = 0; i < sessions; ++i) {
    auto algo = AlgorithmRegistry::Default().Create("fastod");
    auto loaded = ReadCsvFile(path);
    if (!loaded.ok()) {
      std::printf("%-14s | cannot read %s back, skipped\n", label,
                  path.c_str());
      std::remove(path.c_str());
      return;
    }
    (void)(*algo)->LoadData(*std::move(loaded));
    fresh_ods = run_one(**algo);
  }
  double fresh_seconds = fresh_timer.ElapsedSeconds();

  // Mode 2: one store load, then N sessions bind it by reference and
  // start from the prebuilt level-1 partitions.
  DatasetStore store;
  WallTimer shared_timer;
  auto dataset = store.PutCsvFile(label, path);
  if (!dataset.ok()) {
    std::printf("%-14s | store load failed (%s), skipped\n", label,
                dataset.status().ToString().c_str());
    std::remove(path.c_str());
    return;
  }
  double load_once_seconds = shared_timer.ElapsedSeconds();
  int64_t shared_ods = 0;
  for (int i = 0; i < sessions; ++i) {
    auto algo = AlgorithmRegistry::Default().Create("fastod");
    auto shared = store.Get(label);  // cannot fail: no budget, just Put
    (void)(*algo)->LoadData(shared.ok() ? *std::move(shared) : *dataset);
    shared_ods = run_one(**algo);
  }
  double shared_seconds = shared_timer.ElapsedSeconds();
  std::remove(path.c_str());

  std::string params_base = std::string("workload=") + label +
                            " sessions=" + std::to_string(sessions);
  RecordJson(params_base + " mode=fresh-load", fresh_seconds);
  RecordJson(params_base + " mode=shared-dataset", shared_seconds);
  std::printf("%-14s | %2d sessions | fresh-load %8.3fs | shared-dataset "
              "%8.3fs (load-once %.3fs) | speedup %.2fx%s\n",
              label, sessions, fresh_seconds, shared_seconds,
              load_once_seconds,
              shared_seconds > 0.0 ? fresh_seconds / shared_seconds : 0.0,
              fresh_ods == shared_ods ? "" : " | OD MISMATCH");
}

// Occupies every admission slot forever (until cancelled): the cheapest
// way to hold a service at capacity while rejections are timed.
class SleeperAlgorithm : public Algorithm {
 public:
  SleeperAlgorithm()
      : Algorithm("sleeper", "bench-only: blocks until cancelled") {}
  std::string ResultText() const override { return "sleeper\n"; }
  std::string ResultJson() const override {
    return "{\"algorithm\": \"sleeper\"}\n";
  }

 protected:
  Status ExecuteInternal() override {
    while (control() == nullptr || !control()->StopRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Ok();
  }
};

// Rejection latency at 4x the admission limit: fill `limit` slots with
// sleepers, then time Create+Submit of 4*limit more sessions, every one
// of which must be refused with kUnavailable.
void OverloadRow(int limit) {
  AlgorithmRegistry registry;
  registry.Register("sleeper", [] {
    return std::unique_ptr<Algorithm>(new SleeperAlgorithm());
  });
  DiscoveryService service(2, &registry);
  service.SetMaxActiveSessions(limit);
  Table table = EmployeeTaxTable();

  for (int i = 0; i < limit; ++i) {
    auto id = service.Create("sleeper");
    if (!id.ok() || !service.LoadTable(*id, table).ok() ||
        !service.Submit(*id).ok()) {
      std::printf("overload limit=%d | could not fill slots, skipped\n",
                  limit);
      return;
    }
  }

  const int attempts = 4 * limit;
  std::vector<double> latencies;
  latencies.reserve(attempts);
  int refused = 0;
  for (int i = 0; i < attempts; ++i) {
    auto id = service.Create("sleeper");
    if (!id.ok() || !service.LoadTable(*id, table).ok()) continue;
    WallTimer timer;
    Status status = service.Submit(*id);
    latencies.push_back(timer.ElapsedSeconds());
    if (status.code() == StatusCode::kUnavailable) ++refused;
    (void)service.Destroy(*id);
  }
  service.CancelAll();

  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    size_t index = static_cast<size_t>(p * (latencies.size() - 1));
    return latencies[index];
  };
  double p50 = percentile(0.50);
  double p99 = percentile(0.99);
  std::string params = "mode=overload limit=" + std::to_string(limit) +
                       " attempts=" + std::to_string(attempts);
  RecordJson(params + " stat=p50", p50);
  RecordJson(params + " stat=p99", p99);
  std::printf("overload limit=%3d | %3d/%3d refused | rejection p50 "
              "%8.1fus | p99 %8.1fus\n",
              limit, refused, attempts, p50 * 1e6, p99 * 1e6);
}

// The observability tax: N back-to-back service sessions on one
// relation, once with metrics + trace spans enabled and once disabled.
// The engine work is identical; the delta is span recording and
// terminal-transition counter publication.
void MetricsOverheadRow(const char* label, const Table& table,
                        int sessions) {
  const bool saved = obs::Enabled();
  auto run = [&](bool enabled) {
    obs::SetEnabled(enabled);
    DiscoveryService service(1);
    WallTimer timer;
    for (int i = 0; i < sessions; ++i) {
      auto id = service.Create("fastod");
      if (!id.ok() || !service.LoadTable(*id, table).ok() ||
          !service.Submit(*id).ok()) {
        return -1.0;
      }
      auto state = service.Wait(*id);
      if (!state.ok() || *state != SessionState::kDone) return -1.0;
      (void)service.Destroy(*id);
    }
    return timer.ElapsedSeconds();
  };
  // Disabled first, then enabled: a warm first pass would otherwise
  // flatter whichever mode runs second.
  double off_seconds = run(false);
  double on_seconds = run(true);
  obs::SetEnabled(saved);
  if (off_seconds < 0.0 || on_seconds < 0.0) {
    std::printf("%-14s | session setup failed, skipped\n", label);
    return;
  }
  std::string params_base = std::string("workload=") + label +
                            " sessions=" + std::to_string(sessions);
  RecordJson(params_base + " mode=metrics-off", off_seconds);
  RecordJson(params_base + " mode=metrics-on", on_seconds);
  std::printf("%-14s | %2d sessions | metrics-off %8.3fs | metrics-on "
              "%8.3fs | overhead %+.2f%%\n",
              label, sessions, off_seconds, on_seconds,
              off_seconds > 0.0
                  ? (on_seconds / off_seconds - 1.0) * 100.0
                  : 0.0);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = ParseScale(argc, argv);
  BenchJson json("bench_api_overhead", argc, argv);
  if (HasFlag(argc, argv, "--overload")) {
    PrintHeader("Admission-control rejection latency (service at "
                "capacity; submissions at 4x the limit)",
                "robustness hardening; expectation: refusals stay in "
                "microseconds under full load");
    OverloadRow(8 * scale);
    OverloadRow(64 * scale);
    return 0;
  }
  if (HasFlag(argc, argv, "--metrics-overhead")) {
    PrintHeader("Observability overhead (metrics + trace spans on vs "
                "FASTOD_METRICS=off, identical service sessions)",
                "observability subsystem; expectation: overhead under 2%");
    MetricsOverheadRow("flight 2Kx10", GenFlightLike(2000 * scale, 10, 7),
                       12);
    MetricsOverheadRow("ncvoter 4Kx8",
                       GenNcvoterLike(4000 * scale, 8, 11), 12);
    return 0;
  }
  PrintHeader("Unified-API adapter overhead (registry + option registry + "
              "streaming sink vs direct engine calls)",
              "api/ redesign; expectation: overhead within noise");
  Row("flight 1Kx10", GenFlightLike(1000 * scale, 10, 7));
  Row("ncvoter 2Kx8", GenNcvoterLike(2000 * scale, 8, 11));
  Row("dbtesma 1Kx12", GenDbtesmaLike(1000 * scale, 12, 23));

  std::printf("\nload-once/discover-many (shared DatasetStore vs "
              "per-session CSV load)\n");
  RepeatedSessionsRow("flight 2Kx10", GenFlightLike(2000 * scale, 10, 7),
                      8);
  RepeatedSessionsRow("ncvoter 4Kx8", GenNcvoterLike(4000 * scale, 8, 11),
                      8);
  return 0;
}
