// Incremental re-discovery vs. full re-run after a small append
// (ROADMAP: incremental OD discovery over versioned datasets).
//
// Workload: discover the complete minimal OD set on the first
// (100 - p)% of a generated relation, append the remaining p% (<= 1%),
// then produce the grown relation's OD set two ways:
//   full         a fresh FASTOD run over the grown relation;
//   incremental  IncrementalDiscovery seeded with the prefix result
//                (delta-limited re-validation + targeted escalation).
// Both paths start from the same pre-encoded relation, and the bench
// asserts they emit the same OD set before reporting the speedup — a
// fast wrong answer would be worthless.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/table.h"
#include "gen/generators.h"
#include "incremental/incremental.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

template <typename Od>
std::vector<Od> Sorted(std::vector<Od> ods) {
  std::sort(ods.begin(), ods.end());
  return ods;
}

Table Prefix(const Table& table, int64_t rows) {
  return table.Head(rows);
}

void Case(const char* name, const Table& table, int64_t delta_rows) {
  const int64_t base_rows = table.NumRows() - delta_rows;
  auto full_rel = EncodedRelation::FromTable(table);
  auto prefix_rel = EncodedRelation::FromTable(Prefix(table, base_rows));
  if (!full_rel.ok() || !prefix_rel.ok()) return;

  // The prior: a complete minimal run over the prefix (not timed — it
  // happened at the previous dataset version).
  Fastod prior_algo{FastodOptions()};
  FastodResult prior_result = prior_algo.Discover(*prefix_rel);
  PriorOds prior;
  prior.constancy = prior_result.constancy_ods;
  prior.compatibility = prior_result.compatibility_ods;

  WallTimer full_timer;
  Fastod full_algo{FastodOptions()};
  FastodResult full = full_algo.Discover(*full_rel);
  double full_seconds = full_timer.ElapsedSeconds();

  WallTimer inc_timer;
  IncrementalOptions options;
  options.base_rows = base_rows;
  IncrementalResult incremental =
      IncrementalDiscovery(&*full_rel, options).Run(prior);
  double inc_seconds = inc_timer.ElapsedSeconds();

  const bool equivalent =
      Sorted(incremental.constancy_ods) == Sorted(full.constancy_ods) &&
      Sorted(incremental.compatibility_ods) ==
          Sorted(full.compatibility_ods);

  char params[160];
  std::snprintf(params, sizeof(params),
                "dataset=%s rows=%lld cols=%d delta=%lld", name,
                static_cast<long long>(table.NumRows()),
                table.NumColumns(), static_cast<long long>(delta_rows));
  RecordJson(std::string(params) + " mode=full", full_seconds);
  RecordJson(std::string(params) + " mode=incremental", inc_seconds);

  std::printf(
      "  %-26s full %8.3fs  incr %8.3fs  speedup %6.1fx  "
      "(revoked %lld, new %lld, nodes %lld)%s\n",
      name, full_seconds, inc_seconds,
      inc_seconds > 0 ? full_seconds / inc_seconds : 0.0,
      static_cast<long long>(incremental.revoked_constancy.size() +
                             incremental.revoked_compatibility.size()),
      static_cast<long long>(incremental.new_constancy +
                             incremental.new_compatibility),
      static_cast<long long>(incremental.nodes_searched),
      equivalent ? "" : "  !! DIVERGED FROM FULL RUN");
}

}  // namespace

int main(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_incremental", argc, argv);
  PrintHeader("Incremental re-discovery after a <=1% append",
              "this implementation's versioned-dataset extension; "
              "equivalence to a full re-run is asserted per cell");

  struct Config {
    const char* name;
    int64_t rows;
    int cols;
    uint64_t seed;
  };
  const Config configs[] = {
      {"flight-like 20k x 8", 20000, 8, 11},
      {"flight-like 40k x 8", 40000, 8, 12},
      {"wide 10k x 12", 10000, 12, 13},
  };
  for (const Config& config : configs) {
    const int64_t rows = config.rows * scale;
    // <= 1% of the relation arrives as the append block.
    const int64_t delta = std::max<int64_t>(1, rows / 100);
    Case(config.name, GenFlightLike(rows, config.cols, config.seed),
         delta);
  }
  return 0;
}
