// Shared helpers for the figure-reproduction benchmark harness.
//
// Every bench binary prints the rows of one paper figure at a reduced
// default scale (absolute numbers are not comparable to the paper's Java/
// Xeon setup; the *shapes* are the reproduction target — see
// EXPERIMENTS.md). Pass --scale=N to multiply the workload sizes.
//
// Every bench also accepts --json <path> (or --json=<path>): each
// measured cell is then additionally recorded as a machine-readable
// {"bench": ..., "params": ..., "seconds": ...} object, and the file is
// written as one JSON array when the bench exits — the format the
// BENCH_*.json perf-trajectory files are built from.
#ifndef FASTOD_BENCH_BENCH_UTIL_H_
#define FASTOD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "common/timer.h"
#include "data/encode.h"
#include "report/report.h"

namespace fastod::bench {

inline int ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      int s = std::atoi(argv[i] + 8);
      if (s >= 1) return s;
    }
  }
  return 1;
}

/// Scoped --json recorder: construct one in main, call RecordJson(params,
/// seconds) at every measurement, and the destructor writes the array.
/// With no --json flag every call is a no-op.
class BenchJson {
 public:
  BenchJson(const char* bench_name, int argc, char** argv)
      : bench_(bench_name) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        path_ = argv[i + 1];
      }
    }
    Active() = this;
  }

  ~BenchJson() {
    if (Active() == this) Active() = nullptr;
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu records to %s\n", records_.size(),
                path_.c_str());
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// `extra_fields`, when non-empty, is spliced verbatim into the record
  /// object after "seconds" — pre-rendered `"key": value` pairs for
  /// measurements beyond wall clock (bytes/row, rows/sec, ...).
  void Record(const std::string& params, double seconds,
              const std::string& extra_fields = "") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", seconds);
    std::string record = "  {\"bench\": \"" + JsonEscape(bench_) +
                         "\", \"params\": \"" + JsonEscape(params) +
                         "\", \"seconds\": " + buf;
    if (!extra_fields.empty()) record += ", " + extra_fields;
    records_.push_back(record + "}");
  }

  /// The instance the free RecordJson() helper reports to (one per bench
  /// process; benches are single-threaded drivers).
  static BenchJson*& Active() {
    static BenchJson* active = nullptr;
    return active;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> records_;
};

/// Records into the active BenchJson, if any — lets deeply nested bench
/// helpers report without threading the recorder through.
inline void RecordJson(const std::string& params, double seconds,
                       const std::string& extra_fields = "") {
  if (BenchJson::Active() != nullptr) {
    BenchJson::Active()->Record(params, seconds, extra_fields);
  }
}

struct AlgoCell {
  double seconds = 0.0;
  bool timed_out = false;
  std::string counts;  // "total (fd + ocd)" or "-"

  std::string TimeString() const {
    char buf[48];
    if (timed_out) {
      std::snprintf(buf, sizeof(buf), "* %.2fs", seconds);
    } else {
      std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
    }
    return buf;
  }
};

inline AlgoCell RunFastod(const EncodedRelation& rel,
                          FastodOptions options = FastodOptions()) {
  options.collect_level_stats = false;
  options.emit_ods = false;
  Fastod algo(options);
  WallTimer timer;
  FastodResult result = algo.Discover(rel);
  AlgoCell cell;
  cell.seconds = timer.ElapsedSeconds();
  cell.timed_out = result.timed_out;
  cell.counts = result.CountsToString();
  return cell;
}

inline AlgoCell RunTane(const EncodedRelation& rel, double timeout_seconds) {
  TaneOptions options;
  options.timeout_seconds = timeout_seconds;
  Tane algo(options);
  WallTimer timer;
  TaneResult result = algo.Discover(rel);
  AlgoCell cell;
  cell.seconds = timer.ElapsedSeconds();
  cell.timed_out = result.timed_out;
  cell.counts = std::to_string(result.num_fds) + " FDs";
  return cell;
}

inline AlgoCell RunOrder(const EncodedRelation& rel, double timeout_seconds) {
  OrderOptions options;
  options.timeout_seconds = timeout_seconds;
  OrderBaseline algo(options);
  WallTimer timer;
  OrderResult result = algo.Discover(rel);
  AlgoCell cell;
  cell.seconds = timer.ElapsedSeconds();
  cell.timed_out = result.timed_out;
  MappedCounts mapped = MapToCanonicalCounts(result.ods);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%lld list -> %lld (%lld + %lld)",
                static_cast<long long>(result.ods.size()),
                static_cast<long long>(mapped.Total()),
                static_cast<long long>(mapped.num_constancy),
                static_cast<long long>(mapped.num_compatibility));
  cell.counts = buf;
  return cell;
}

inline void PrintHeader(const char* title, const char* paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper reference: %s\n", paper_reference);
  std::printf("(reduced scale; pass --scale=N to grow; '*' = timeout hit)\n");
  std::printf("==============================================================\n");
}

}  // namespace fastod::bench

#endif  // FASTOD_BENCH_BENCH_UTIL_H_
