// Ablation of this implementation's own design choices (DESIGN.md Abl-1):
//  * swap-check strategy: per-class sort vs τ-scan vs adaptive (§4.6);
//  * key pruning on/off (Lemmas 12-13);
//  * level pruning on/off (Lemma 11).
// Output counts are identical across all configurations (the property
// tests prove it); only runtime moves.
#include "bench_util.h"
#include "gen/generators.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

void Row(const char* dataset, const char* label,
         const EncodedRelation& rel, FastodOptions options) {
  options.timeout_seconds = 120.0;
  AlgoCell cell = RunFastod(rel, options);
  RecordJson(std::string("dataset=") + dataset + " config=" + label,
             cell.seconds);
  std::printf("  %-28s %-12s %s\n", label, cell.TimeString().c_str(),
              cell.counts.c_str());
}

void Dataset(const char* name, const Table& table) {
  auto rel = EncodedRelation::FromTable(table);
  if (!rel.ok()) return;
  std::printf("\n--- %s (%lld rows x %d attrs) ---\n", name,
              static_cast<long long>(table.NumRows()), table.NumColumns());

  FastodOptions base;
  base.swap_method = SwapCheckMethod::kSortBased;
  Row(name, "swap=sort (baseline)", *rel, base);
  FastodOptions tau = base;
  tau.swap_method = SwapCheckMethod::kTauBased;
  Row(name, "swap=tau", *rel, tau);
  FastodOptions adaptive = base;
  adaptive.swap_method = SwapCheckMethod::kAuto;
  Row(name, "swap=auto", *rel, adaptive);

  FastodOptions no_key = base;
  no_key.key_pruning = false;
  Row(name, "key pruning off", *rel, no_key);
  FastodOptions no_level = base;
  no_level.level_pruning = false;
  Row(name, "level pruning off", *rel, no_level);
  FastodOptions neither = base;
  neither.key_pruning = false;
  neither.level_pruning = false;
  Row(name, "key+level pruning off", *rel, neither);
}

}  // namespace

int main(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_ablation_validation", argc, argv);
  PrintHeader("Abl-1 — validation & pruning ablations (ours)",
              "configurations agree on output; swap strategy and the "
              "Lemma 11-13 rules trade only runtime");
  Dataset("flight-like", GenFlightLike(2000 * scale, 12, 42));
  Dataset("ncvoter-like", GenNcvoterLike(2000 * scale, 12, 42));
  Dataset("hepatitis-like", GenHepatitisLike(155, 14, 42));
  Dataset("dbtesma-like", GenDbtesmaLike(1000 * scale, 12, 42));
  return 0;
}
