// Micro-benchmarks (google-benchmark) for the Section 4.6 machinery that
// dominates FASTOD's runtime: dictionary encoding, single-attribute
// partition construction, the linear partition product, both swap-check
// strategies, and the O(1)-after-product FD error check.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "partition/sorted_partition.h"
#include "partition/stripped_partition.h"

namespace {

using namespace fastod;

const Table& FlightTable(int64_t rows) {
  static Table table = GenFlightLike(100000, 12, 42);
  static int64_t cached_rows = 100000;
  (void)cached_rows;
  if (rows > table.NumRows()) table = GenFlightLike(rows, 12, 42);
  return table;
}

void BM_Encode(benchmark::State& state) {
  Table table = FlightTable(state.range(0)).Head(state.range(0));
  for (auto _ : state) {
    auto rel = EncodedRelation::FromTable(table);
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PartitionForAttribute(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  for (auto _ : state) {
    StrippedPartition p = StrippedPartition::ForAttribute(
        rel->ranks(3), rel->NumDistinct(3));  // month column
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionForAttribute)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PartitionProduct(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  StrippedPartition month = StrippedPartition::ForAttribute(
      rel->ranks(3), rel->NumDistinct(3));
  StrippedPartition carrier = StrippedPartition::ForAttribute(
      rel->ranks(6), rel->NumDistinct(6));
  for (auto _ : state) {
    StrippedPartition p = month.Product(carrier);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SwapCheckSortBased(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  SortedPartitions sorted(*rel);
  SwapChecker checker(&*rel, &sorted, SwapCheckMethod::kSortBased);
  StrippedPartition ctx = StrippedPartition::ForAttribute(
      rel->ranks(6), rel->NumDistinct(6));  // carrier context
  for (auto _ : state) {
    bool ok = checker.IsOrderCompatible(ctx, 2, 3);  // date_sk ~ month
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwapCheckSortBased)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SwapCheckTauBased(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  SortedPartitions sorted(*rel);
  SwapChecker checker(&*rel, &sorted, SwapCheckMethod::kTauBased);
  StrippedPartition ctx = StrippedPartition::ForAttribute(
      rel->ranks(6), rel->NumDistinct(6));
  for (auto _ : state) {
    bool ok = checker.IsOrderCompatible(ctx, 2, 3);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwapCheckTauBased)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FdErrorCheck(benchmark::State& state) {
  // The O(1) constancy test: compare partition errors (after the product
  // has been paid for). Measures the full product+compare path.
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  StrippedPartition month = StrippedPartition::ForAttribute(
      rel->ranks(3), rel->NumDistinct(3));
  StrippedPartition quarter = StrippedPartition::ForAttribute(
      rel->ranks(4), rel->NumDistinct(4));
  for (auto _ : state) {
    StrippedPartition mq = month.Product(quarter);
    bool fd = month.Error() == mq.Error();  // month -> quarter
    benchmark::DoNotOptimize(fd);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FdErrorCheck)->Arg(1000)->Arg(10000)->Arg(100000);

// Tees every google-benchmark run into the shared --json recorder as a
// {bench, params, seconds} record (per-iteration real time), alongside
// the normal console table.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations > 0) {
        fastod::bench::RecordJson(
            run.benchmark_name(),
            run.real_accumulated_time / static_cast<double>(run.iterations));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

// BENCHMARK_MAIN() expanded so --json can ride along: google-benchmark
// rejects flags it doesn't know, so they are stripped before Initialize.
int main(int argc, char** argv) {
  fastod::bench::BenchJson json("bench_micro_partition", argc, argv);
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) continue;
    if (std::strcmp(argv[i], "--json") == 0) {
      ++i;  // skip the path operand too
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  kept.push_back(nullptr);
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
