// Micro-benchmarks (google-benchmark) for the Section 4.6 machinery that
// dominates FASTOD's runtime: dictionary encoding, single-attribute
// partition construction, the linear partition product, both swap-check
// strategies, and the O(1)-after-product FD error check.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "partition/sorted_partition.h"
#include "partition/stripped_partition.h"

namespace {

using namespace fastod;

const Table& FlightTable(int64_t rows) {
  static Table table = GenFlightLike(100000, 12, 42);
  static int64_t cached_rows = 100000;
  (void)cached_rows;
  if (rows > table.NumRows()) table = GenFlightLike(rows, 12, 42);
  return table;
}

void BM_Encode(benchmark::State& state) {
  Table table = FlightTable(state.range(0)).Head(state.range(0));
  for (auto _ : state) {
    auto rel = EncodedRelation::FromTable(table);
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PartitionForAttribute(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  for (auto _ : state) {
    StrippedPartition p =
        StrippedPartition::ForAttribute(rel->codes(3));  // month column
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionForAttribute)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PartitionProduct(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  StrippedPartition month = StrippedPartition::ForAttribute(rel->codes(3));
  StrippedPartition carrier =
      StrippedPartition::ForAttribute(rel->codes(6));
  for (auto _ : state) {
    StrippedPartition p = month.Product(carrier);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SwapCheckSortBased(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  SortedPartitions sorted(*rel);
  SwapChecker checker(&*rel, &sorted, SwapCheckMethod::kSortBased);
  StrippedPartition ctx =
      StrippedPartition::ForAttribute(rel->codes(6));  // carrier context
  for (auto _ : state) {
    bool ok = checker.IsOrderCompatible(ctx, 2, 3);  // date_sk ~ month
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwapCheckSortBased)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SwapCheckTauBased(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  SortedPartitions sorted(*rel);
  SwapChecker checker(&*rel, &sorted, SwapCheckMethod::kTauBased);
  StrippedPartition ctx = StrippedPartition::ForAttribute(rel->codes(6));
  for (auto _ : state) {
    bool ok = checker.IsOrderCompatible(ctx, 2, 3);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwapCheckTauBased)->Arg(1000)->Arg(10000)->Arg(100000);

// The pre-columnar FromRankColumns reference: hash-group tuples by their
// materialized rank vector, then sort the keys. Kept here (only) as the
// row-oriented baseline the LSD-radix FromCodeColumns is measured against.
StrippedPartition HashGroupPartition(
    const std::vector<const CodeColumn*>& columns, int64_t num_rows) {
  struct VecHash {
    size_t operator()(const std::vector<int32_t>& v) const {
      size_t h = 1469598103934665603ULL;
      for (int32_t x : v) {
        h ^= static_cast<size_t>(x) + 0x9e3779b9 + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<int32_t>, std::vector<int32_t>, VecHash>
      groups;
  std::vector<int32_t> key(columns.size());
  for (int64_t t = 0; t < num_rows; ++t) {
    for (size_t c = 0; c < columns.size(); ++c) key[c] = (*columns[c])[t];
    groups[key].push_back(static_cast<int32_t>(t));
  }
  std::vector<const std::vector<int32_t>*> keys;
  keys.reserve(groups.size());
  for (const auto& [k, v] : groups) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const std::vector<int32_t>* a, const std::vector<int32_t>* b) {
              return *a < *b;
            });
  PartitionBuilder builder(num_rows);
  for (const std::vector<int32_t>* k : keys) {
    builder.BeginClass();
    for (int32_t t : groups[*k]) builder.AddTuple(t);
    builder.EndClass();
  }
  return builder.Build();
}

std::vector<const CodeColumn*> ThreeColumns(const EncodedRelation& rel) {
  return {&rel.codes(3), &rel.codes(4), &rel.codes(6)};
}

void BM_PartitionFromCodeColumnsRadix(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  std::vector<const CodeColumn*> columns = ThreeColumns(*rel);
  for (auto _ : state) {
    StrippedPartition p =
        StrippedPartition::FromCodeColumns(columns, rel->NumRows());
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionFromCodeColumnsRadix)
    ->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PartitionHashGroupBaseline(benchmark::State& state) {
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  std::vector<const CodeColumn*> columns = ThreeColumns(*rel);
  for (auto _ : state) {
    StrippedPartition p = HashGroupPartition(columns, rel->NumRows());
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionHashGroupBaseline)
    ->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FdErrorCheck(benchmark::State& state) {
  // The O(1) constancy test: compare partition errors (after the product
  // has been paid for). Measures the full product+compare path.
  auto rel =
      EncodedRelation::FromTable(FlightTable(state.range(0)).Head(
          state.range(0)));
  StrippedPartition month = StrippedPartition::ForAttribute(rel->codes(3));
  StrippedPartition quarter =
      StrippedPartition::ForAttribute(rel->codes(4));
  for (auto _ : state) {
    StrippedPartition mq = month.Product(quarter);
    bool fd = month.Error() == mq.Error();  // month -> quarter
    benchmark::DoNotOptimize(fd);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FdErrorCheck)->Arg(1000)->Arg(10000)->Arg(100000);

// The PR's data-plane acceptance figures, reported once per run
// (independent of --benchmark_filter) so the recorded BENCH_*.json always
// carries them: bytes/row of the columnar dictionary+code encoding vs the
// row-oriented Table+ranks layout it replaced, and single-attribute
// partition build throughput over the contiguous code columns.
void ReportDataPlaneFootprint() {
  const int64_t rows = 100000;
  const Table& table = FlightTable(rows);
  auto rel = EncodedRelation::FromTable(table);
  // Row-oriented resident bytes: the Value cells plus their string heap,
  // plus the per-attribute int32 rank column the old encoding kept.
  int64_t row_bytes = 0;
  for (int c = 0; c < table.NumColumns(); ++c) {
    row_bytes += static_cast<int64_t>(table.NumRows()) *
                 static_cast<int64_t>(sizeof(Value) + sizeof(int32_t));
    for (const Value& v : table.column(c)) {
      if (v.type() == DataType::kString) {
        row_bytes += static_cast<int64_t>(v.AsString().capacity());
      }
    }
  }
  const int64_t col_bytes = rel->ByteSize();
  const double row_bpr = static_cast<double>(row_bytes) / rows;
  const double col_bpr = static_cast<double>(col_bytes) / rows;

  WallTimer timer;
  int64_t built_rows = 0;
  for (int a = 0; a < rel->NumAttributes(); ++a) {
    StrippedPartition p = StrippedPartition::ForAttribute(rel->codes(a));
    benchmark::DoNotOptimize(p);
    built_rows += rows;
  }
  const double seconds = timer.ElapsedSeconds();
  const double rows_per_sec =
      seconds > 0 ? static_cast<double>(built_rows) / seconds : 0.0;

  std::printf(
      "data plane (%lld rows x %d cols): %.1f bytes/row columnar vs %.1f "
      "row-oriented (%.0f%% lower); partition build %.2f Mrows/s\n",
      static_cast<long long>(rows), rel->NumAttributes(), col_bpr, row_bpr,
      100.0 * (1.0 - col_bpr / row_bpr), rows_per_sec / 1e6);
  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"bytes_per_row_columnar\": %.2f, "
                "\"bytes_per_row_row_oriented\": %.2f, "
                "\"partition_build_rows_per_sec\": %.0f",
                col_bpr, row_bpr, rows_per_sec);
  fastod::bench::RecordJson("data_plane_footprint/100000x12", seconds,
                            extra);
}

// Tees every google-benchmark run into the shared --json recorder as a
// {bench, params, seconds} record (per-iteration real time), alongside
// the normal console table.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations > 0) {
        fastod::bench::RecordJson(
            run.benchmark_name(),
            run.real_accumulated_time / static_cast<double>(run.iterations));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

// BENCHMARK_MAIN() expanded so --json can ride along: google-benchmark
// rejects flags it doesn't know, so they are stripped before Initialize.
int main(int argc, char** argv) {
  fastod::bench::BenchJson json("bench_micro_partition", argc, argv);
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) continue;
    if (std::strcmp(argv[i], "--json") == 0) {
      ++i;  // skip the path operand too
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  kept.push_back(nullptr);
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  ReportDataPlaneFootprint();
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
