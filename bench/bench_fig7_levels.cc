// Figure 7 reproduction (Exp-7): per-lattice-level behaviour on a wide
// flight-like table — runtime per level and the number of set-based ODs
// (#FDs + #OCDs) discovered per level.
//
// Expected shape (paper, 1K x 40): per-level time rises to a mid-lattice
// peak (the diamond shape of the set lattice) and falls as pruning thins
// the levels; most ODs are found in the first few levels' contexts.
#include "bench_util.h"
#include "gen/generators.h"

int main(int argc, char** argv) {
  using namespace fastod;
  using namespace fastod::bench;
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_fig7_levels", argc, argv);

  PrintHeader("Exp-7 — lattice level profile (Figure 7)",
              "per-level time peaks mid-lattice; most ODs found at small "
              "contexts; pruning empties the top of the diamond");

  const int64_t rows = 1000 * scale;
  const int attrs = 16;
  Table table = GenFlightLike(rows, attrs, 42);
  auto rel = EncodedRelation::FromTable(table);
  if (!rel.ok()) return 1;

  FastodOptions options;
  options.collect_level_stats = true;
  options.emit_ods = false;
  options.timeout_seconds = 300.0;
  Fastod algo(options);
  FastodResult result = algo.Discover(*rel);

  std::printf("\nflight-like %lld rows x %d attributes: total %s ODs in "
              "%.3fs over %d levels (%lld lattice nodes)\n\n",
              static_cast<long long>(rows), attrs,
              result.CountsToString().c_str(), result.seconds,
              result.levels_processed,
              static_cast<long long>(result.total_nodes));
  std::printf("%-6s | %-10s | %-8s | %-8s | %-22s | %-10s | %s\n", "level",
              "time", "nodes", "pruned", "#ODs (fd + ocd)", "fd-checks",
              "swap-checks");
  RecordJson("workload=flight-like-" + std::to_string(rows) + "x" +
                 std::to_string(attrs) + " total",
             result.seconds);
  for (const FastodLevelStats& s : result.level_stats) {
    RecordJson("level=" + std::to_string(s.level), s.seconds);
    char ods[64];
    std::snprintf(ods, sizeof(ods), "%lld (%lld + %lld)",
                  static_cast<long long>(s.constancy_found +
                                         s.compatibility_found),
                  static_cast<long long>(s.constancy_found),
                  static_cast<long long>(s.compatibility_found));
    std::printf("%-6d | %-10.4f | %-8lld | %-8lld | %-22s | %-10lld | %lld\n",
                s.level, s.seconds, static_cast<long long>(s.nodes),
                static_cast<long long>(s.nodes_pruned), ods,
                static_cast<long long>(s.constancy_checks),
                static_cast<long long>(s.swap_checks));
  }
  return 0;
}
