// Parallel scaling of FASTOD (our extension): speedup across thread counts
// on a wide relation where per-level node counts are large enough to keep
// workers busy. Output is identical across thread counts (tested in
// tests/parallel_test.cc); this bench measures the wall-clock effect of
// the three parallel sections (candidate derivation, node validation,
// partition products).
#include "bench_util.h"
#include "gen/generators.h"

int main(int argc, char** argv) {
  using namespace fastod;
  using namespace fastod::bench;
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_parallel_scaling", argc, argv);

  PrintHeader("parallel scaling (extension)",
              "identical output across thread counts; speedup bounded by "
              "the serial level structure (Amdahl) and by memory bandwidth");

  struct Workload {
    const char* name;
    Table table;
  };
  Workload workloads[] = {
      {"flight-like 5Kx14", GenFlightLike(5000 * scale, 14, 42)},
      {"hepatitis-like 155x16", GenHepatitisLike(155, 16, 42)},
      {"dbtesma-like 2Kx15", GenDbtesmaLike(2000 * scale, 15, 42)},
  };
  for (const Workload& w : workloads) {
    auto rel = EncodedRelation::FromTable(w.table);
    if (!rel.ok()) return 1;
    std::printf("\n--- %s ---\n", w.name);
    std::printf("%-10s | %-12s | %-10s | %s\n", "threads", "time",
                "speedup", "#ODs");
    double serial_seconds = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      FastodOptions options;
      options.num_threads = threads;
      options.timeout_seconds = 300.0;
      AlgoCell cell = RunFastod(*rel, options);
      if (threads == 1) serial_seconds = cell.seconds;
      RecordJson(std::string("workload=") + w.name +
                 " threads=" + std::to_string(threads), cell.seconds);
      std::printf("%-10d | %-12s | %-10.2f | %s\n", threads,
                  cell.TimeString().c_str(),
                  cell.seconds > 0 ? serial_seconds / cell.seconds : 0.0,
                  cell.counts.c_str());
    }
  }
  return 0;
}
