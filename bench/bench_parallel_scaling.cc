// Parallel scaling of FASTOD (our extension): speedup across thread counts
// on relations where per-level node counts are large enough to keep
// workers busy. Output is identical across thread counts (tested in
// tests/parallel_test.cc and tests/task_graph_test.cc); this bench
// measures the wall-clock effect of the work-stealing task graph that
// replaced the per-level merge barrier.
//
// The "wide" workload is the CI scaling gate's input: many attributes
// with the level depth capped, so the lattice is broad (thousands of
// independent node tasks per level) and the task graph's ready-front
// stays much wider than the worker count. Each record carries threads,
// speedup vs the 1-thread run of the same workload, and the machine's
// hardware_concurrency so the gate can scale its expectation to the
// runner it measured on (a 2-core runner cannot show 3x).
#include <thread>

#include "bench_util.h"
#include "gen/generators.h"
#include "gen/random_table.h"

int main(int argc, char** argv) {
  using namespace fastod;
  using namespace fastod::bench;
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_parallel_scaling", argc, argv);

  PrintHeader("parallel scaling (extension)",
              "identical output across thread counts; speedup bounded by "
              "the serial level structure (Amdahl) and by memory bandwidth");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", hw);

  struct Workload {
    const char* name;
    Table table;
    int max_level;  // 0 = unbounded
  };
  Workload workloads[] = {
      {"flight-like 5Kx14", GenFlightLike(5000 * scale, 14, 42), 0},
      {"hepatitis-like 155x16", GenHepatitisLike(155, 16, 42), 0},
      {"dbtesma-like 2Kx15", GenDbtesmaLike(2000 * scale, 15, 42), 0},
      // The scaling-gate workload: 18 attributes, depth capped at 4 —
      // ~4000 lattice nodes across broad levels, each node an
      // independent validate+product task.
      {"wide 2Kx18", GenRandomTable(2000 * scale, 18, 6, 42), 4},
  };
  for (const Workload& w : workloads) {
    auto rel = EncodedRelation::FromTable(w.table);
    if (!rel.ok()) return 1;
    std::printf("\n--- %s ---\n", w.name);
    std::printf("%-10s | %-12s | %-10s | %s\n", "threads", "time",
                "speedup", "#ODs");
    double serial_seconds = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      FastodOptions options;
      options.num_threads = threads;
      options.timeout_seconds = 300.0;
      options.max_level = w.max_level;
      AlgoCell cell = RunFastod(*rel, options);
      if (threads == 1) serial_seconds = cell.seconds;
      double speedup = cell.seconds > 0 ? serial_seconds / cell.seconds
                                        : 0.0;
      char extra[160];
      std::snprintf(extra, sizeof(extra),
                    "\"threads\": %d, \"speedup\": %.3f, "
                    "\"hardware_concurrency\": %u",
                    threads, speedup, hw);
      RecordJson(std::string("workload=") + w.name +
                     " threads=" + std::to_string(threads),
                 cell.seconds, extra);
      std::printf("%-10d | %-12s | %-10.2f | %s\n", threads,
                  cell.TimeString().c_str(), speedup,
                  cell.counts.c_str());
    }
  }
  return 0;
}
