// Figure 5 reproduction: scalability and effectiveness in the number of
// attributes |R| at a fixed (small) row count, on flight-, hepatitis-,
// ncvoter- and dbtesma-like data.
//
// Expected shapes (paper): runtime grows exponentially in |R| for TANE and
// FASTOD (log-scale Y in the paper); ORDER explodes factorially on data
// with surviving candidates (flight: did not terminate at >= 20 attributes
// — represented here by its timeout) yet terminates quickly on swap-heavy
// data where its pruning kills the lattice while *finding nothing*
// (ncvoter/hepatitis: 0 ODs vs FASTOD's hundreds+).
#include <vector>

#include "bench_util.h"
#include "gen/generators.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

using Generator = Table (*)(int64_t, int, uint64_t);

void RunDataset(const char* name, Generator gen, int64_t rows,
                const std::vector<int>& widths, double order_timeout) {
  std::printf("\n--- %s-like, %lld rows ---\n", name,
              static_cast<long long>(rows));
  std::printf("%-6s | %-12s | %-12s | %-26s | %-12s | %s\n", "attrs",
              "TANE", "FASTOD", "FASTOD #ODs (fd+ocd)", "ORDER",
              "ORDER #ODs");
  for (int attrs : widths) {
    Table table = gen(rows, attrs, 42);
    auto rel = EncodedRelation::FromTable(table);
    if (!rel.ok()) return;
    AlgoCell tane = RunTane(*rel, 60.0);
    FastodOptions fast_options;
    fast_options.timeout_seconds = 120.0;
    AlgoCell fast = RunFastod(*rel, fast_options);
    AlgoCell order = RunOrder(*rel, order_timeout);
    std::string params = std::string("dataset=") + name +
                         " rows=" + std::to_string(rows) +
                         " attrs=" + std::to_string(attrs);
    RecordJson(params + " algo=tane", tane.seconds);
    RecordJson(params + " algo=fastod", fast.seconds);
    RecordJson(params + " algo=order", order.seconds);
    std::printf("%-6d | %-12s | %-12s | %-26s | %-12s | %s\n", attrs,
                tane.TimeString().c_str(), fast.TimeString().c_str(),
                fast.counts.c_str(), order.TimeString().c_str(),
                order.counts.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_fig5_scale_cols", argc, argv);
  PrintHeader("Exp-2/3/4 — scalability in |R| (Figure 5)",
              "runtime exponential in |R|; ORDER times out on flight-like "
              "data but is fast-and-empty on swap-heavy data");
  std::vector<int> widths{4, 8, 12, 14};
  if (scale > 1) widths.push_back(14 + 2 * scale);
  RunDataset("flight", &GenFlightLike, 500 * scale, widths, 10.0);
  RunDataset("hepatitis", &GenHepatitisLike, 155, widths, 10.0);
  RunDataset("ncvoter", &GenNcvoterLike, 500 * scale, widths, 10.0);
  RunDataset("dbtesma", &GenDbtesmaLike, 500 * scale, widths, 10.0);
  return 0;
}
