// Figure 4 reproduction: scalability and effectiveness in the number of
// tuples |r|, at a fixed 10 attributes, on flight-, ncvoter- and
// dbtesma-like data. Three curves per dataset: TANE, FASTOD, ORDER, with
// the discovered-OD counts printed next to each FASTOD/ORDER datapoint as
// in the paper ("total (#FDs + #OCDs)").
//
// Expected shapes (paper): all three grow ~linearly in |r|; TANE < FASTOD
// (ODs cost more than FDs); ORDER slowest on flight (it does real work) but
// can be *fast* on swap-heavy data (ncvoter/hepatitis) precisely because its
// incomplete pruning discards almost everything.
#include <vector>

#include "bench_util.h"
#include "gen/generators.h"
#include "gen/random_table.h"

namespace {

using namespace fastod;
using namespace fastod::bench;

using Generator = Table (*)(int64_t, int, uint64_t);

void RunDataset(const char* name, Generator gen, int64_t base_rows,
                int scale) {
  std::printf("\n--- %s-like, 10 attributes ---\n", name);
  std::printf("%-8s | %-12s | %-12s | %-26s | %-12s | %s\n", "rows",
              "TANE", "FASTOD", "FASTOD #ODs (fd+ocd)", "ORDER",
              "ORDER #ODs");
  // Paper protocol (Exp-1): one dataset, random samples of 20..100%.
  Table full = gen(base_rows * 5 * scale, 10, 42);
  for (int step = 1; step <= 5; ++step) {
    int64_t rows = base_rows * step * scale;
    Table table = SampleRows(full, rows, 1234);
    auto rel = EncodedRelation::FromTable(table);
    if (!rel.ok()) return;
    AlgoCell tane = RunTane(*rel, 60.0);
    AlgoCell fast = RunFastod(*rel);
    AlgoCell order = RunOrder(*rel, 10.0);
    std::string params = std::string("dataset=") + name +
                         " rows=" + std::to_string(rows);
    RecordJson(params + " algo=tane", tane.seconds);
    RecordJson(params + " algo=fastod", fast.seconds);
    RecordJson(params + " algo=order", order.seconds);
    std::printf("%-8lld | %-12s | %-12s | %-26s | %-12s | %s\n",
                static_cast<long long>(rows), tane.TimeString().c_str(),
                fast.TimeString().c_str(), fast.counts.c_str(),
                order.TimeString().c_str(), order.counts.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  BenchJson json("bench_fig4_scale_rows", argc, argv);
  PrintHeader("Exp-1/3/4 — scalability in |r| (Figure 4)",
              "flight 100K-500K, ncvoter 200K-1M, dbtesma 50K-250K; "
              "TANE < FASTOD << ORDER on flight; linear growth in |r|");
  RunDataset("flight", &GenFlightLike, 2000, scale);
  RunDataset("ncvoter", &GenNcvoterLike, 4000, scale);
  RunDataset("dbtesma", &GenDbtesmaLike, 1000, scale);
  return 0;
}
