// Tests for the stable C ABI (capi/fastod_c.h), driven from C++ but
// calling only the extern "C" surface the way an FFI binding would:
// version/registry introspection, session lifecycle, option metadata and
// errors, sync + async execution, cancellation, and the JSON result.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "capi/fastod_c.h"
#include "common/json.h"
#include "data/csv.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace fastod {
namespace {


std::string WriteEmployeeCsv(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteCsvFile(EmployeeTaxTable(), path).ok());
  return path;
}

TEST(CApiTest, VersionMatchesMacros) {
  std::string expected = std::to_string(FASTOD_VERSION_MAJOR) + "." +
                         std::to_string(FASTOD_VERSION_MINOR) + "." +
                         std::to_string(FASTOD_VERSION_PATCH);
  EXPECT_STREQ(fastod_version_string(), expected.c_str());
}

TEST(CApiTest, RegistryIntrospection) {
  int count = fastod_algorithm_count();
  ASSERT_GE(count, 6);
  bool saw_fastod = false;
  for (int i = 0; i < count; ++i) {
    const char* name = fastod_algorithm_name(i);
    ASSERT_NE(name, nullptr);
    if (std::strcmp(name, "fastod") == 0) saw_fastod = true;
  }
  EXPECT_TRUE(saw_fastod);
  EXPECT_EQ(fastod_algorithm_name(-1), nullptr);
  EXPECT_EQ(fastod_algorithm_name(count), nullptr);
  const char* description = fastod_algorithm_description("fastod");
  ASSERT_NE(description, nullptr);
  EXPECT_NE(std::string(description).find("minimal"), std::string::npos);
  EXPECT_EQ(fastod_algorithm_description("magic"), nullptr);
}

TEST(CApiTest, CreateUnknownAlgorithmSetsThreadError) {
  EXPECT_EQ(fastod_create("magic"), nullptr);
  std::string error = fastod_last_error(nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos);
  EXPECT_NE(error.find("fastod"), std::string::npos);  // lists names
}

TEST(CApiTest, NullHandleIsAnErrorNotACrash) {
  EXPECT_EQ(fastod_set_option(nullptr, "threads", "2"),
            FASTOD_ERR_NULL_HANDLE);
  EXPECT_EQ(fastod_load_csv(nullptr, "x.csv"), FASTOD_ERR_NULL_HANDLE);
  EXPECT_EQ(fastod_execute(nullptr), FASTOD_ERR_NULL_HANDLE);
  EXPECT_EQ(fastod_poll(nullptr, nullptr), -FASTOD_ERR_NULL_HANDLE);
  EXPECT_EQ(fastod_wait(nullptr), -FASTOD_ERR_NULL_HANDLE);
  EXPECT_EQ(fastod_cancel(nullptr), FASTOD_ERR_NULL_HANDLE);
  EXPECT_EQ(fastod_result_json(nullptr), nullptr);
  EXPECT_EQ(fastod_option_count(nullptr), 0);
  fastod_destroy(nullptr);  // no-op
}

TEST(CApiTest, OptionIntrospectionThroughC) {
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  int count = fastod_option_count(session);
  EXPECT_EQ(count, 12);
  bool saw_threads = false;
  bool saw_swap = false;
  for (int i = 0; i < count; ++i) {
    const char* name = fastod_option_name(session, i);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(fastod_option_default(session, i), nullptr);
    ASSERT_NE(fastod_option_description(session, i), nullptr);
    int kind = fastod_option_kind(session, i);
    EXPECT_GE(kind, FASTOD_OPTION_BOOL);
    EXPECT_LE(kind, FASTOD_OPTION_ENUM);
    if (std::strcmp(name, "threads") == 0) {
      saw_threads = true;
      EXPECT_EQ(kind, FASTOD_OPTION_INT);
      EXPECT_STREQ(fastod_option_default(session, i), "1");
    }
    if (std::strcmp(name, "swap-method") == 0) {
      saw_swap = true;
      EXPECT_EQ(kind, FASTOD_OPTION_ENUM);
      EXPECT_STREQ(fastod_option_default(session, i), "auto");
    }
  }
  EXPECT_TRUE(saw_threads);
  EXPECT_TRUE(saw_swap);
  EXPECT_EQ(fastod_option_name(session, count), nullptr);
  EXPECT_EQ(fastod_option_kind(session, -1), -1);
  fastod_destroy(session);
}

TEST(CApiTest, OptionErrorsAreCodedAndNamed) {
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(fastod_set_option(session, "threads", "four"),
            FASTOD_ERR_INVALID_ARGUMENT);
  std::string error = fastod_last_error(session);
  EXPECT_NE(error.find("threads"), std::string::npos);
  EXPECT_NE(error.find("four"), std::string::npos);
  EXPECT_EQ(fastod_set_option(session, "warp-speed", "9"),
            FASTOD_ERR_NOT_FOUND);
  EXPECT_NE(std::string(fastod_last_error(session)).find("warp-speed"),
            std::string::npos);
  // Valid settings still apply afterwards.
  EXPECT_EQ(fastod_set_option(session, "threads", "2"), FASTOD_OK);
  fastod_destroy(session);
}

TEST(CApiTest, SynchronousLifecycle) {
  std::string path = WriteEmployeeCsv("capi_sync.csv");
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  // Executing without data is a coded precondition failure.
  EXPECT_EQ(fastod_execute(session), FASTOD_ERR_FAILED_PRECONDITION);
  EXPECT_EQ(fastod_load_csv(session, path.c_str()), FASTOD_OK);
  EXPECT_EQ(fastod_execute(session), FASTOD_OK);
  double progress = 0.0;
  EXPECT_EQ(fastod_poll(session, &progress), FASTOD_STATE_DONE);
  EXPECT_DOUBLE_EQ(progress, 1.0);
  const char* json = fastod_result_json(session);
  ASSERT_NE(json, nullptr);
  EXPECT_NE(std::string(json).find("\"algorithm\": \"fastod\""),
            std::string::npos);
  const char* text = fastod_result_text(session);
  ASSERT_NE(text, nullptr);
  EXPECT_NE(std::string(text).find("FASTOD"), std::string::npos);
  fastod_destroy(session);
  std::remove(path.c_str());
}

TEST(CApiTest, AsyncLifecycleAndStateCodes) {
  std::string path = WriteEmployeeCsv("capi_async.csv");
  fastod_session_t* session = fastod_create("tane");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(fastod_poll(session, nullptr), FASTOD_STATE_CREATED);
  ASSERT_EQ(fastod_load_csv(session, path.c_str()), FASTOD_OK);
  ASSERT_EQ(fastod_execute_async(session), FASTOD_OK);
  // Double submission is rejected with a coded error.
  EXPECT_EQ(fastod_execute_async(session), FASTOD_ERR_FAILED_PRECONDITION);
  int state = fastod_wait(session);
  EXPECT_EQ(state, FASTOD_STATE_DONE);
  const char* json = fastod_result_json(session);
  ASSERT_NE(json, nullptr);
  EXPECT_NE(std::string(json).find("\"algorithm\": \"tane\""),
            std::string::npos);
  fastod_destroy(session);
  std::remove(path.c_str());
}

TEST(CApiTest, LoadErrorsAreCoded) {
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(fastod_load_csv(session, "/no/such/file.csv"), FASTOD_ERR_IO);
  EXPECT_NE(std::string(fastod_last_error(session)).find("/no/such"),
            std::string::npos);
  fastod_destroy(session);
}

TEST(CApiTest, CsvOptionsRespected) {
  std::string path = ::testing::TempDir() + "/capi_semi.csv";
  {
    std::ofstream out(path);
    out << "a;b\n1;2\n2;4\n3;6\n4;8\n";
  }
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(fastod_load_csv_opts(session, path.c_str(), ';', 1, 2),
            FASTOD_OK);
  ASSERT_EQ(fastod_execute(session), FASTOD_OK);
  const char* json = fastod_result_json(session);
  ASSERT_NE(json, nullptr);
  // Two rows read (max_rows), named header columns.
  EXPECT_NE(std::string(json).find("\"rows\": 2"), std::string::npos);
  EXPECT_NE(std::string(json).find("\"a\""), std::string::npos);
  fastod_destroy(session);
  std::remove(path.c_str());
}

TEST(CApiTest, DatasetHandleReusedAcrossSessions) {
  std::string path = WriteEmployeeCsv("capi_dataset.csv");

  // Reference: a per-session CSV load.
  fastod_session_t* reference = fastod_create("fastod");
  ASSERT_NE(reference, nullptr);
  ASSERT_EQ(fastod_load_csv(reference, path.c_str()), FASTOD_OK);
  ASSERT_EQ(fastod_execute(reference), FASTOD_OK);
  const char* reference_json = fastod_result_json(reference);
  ASSERT_NE(reference_json, nullptr);
  std::string expected = MaskSeconds(reference_json);
  fastod_destroy(reference);

  fastod_dataset_t* dataset = fastod_dataset_load_csv(path.c_str());
  ASSERT_NE(dataset, nullptr);
  EXPECT_EQ(fastod_dataset_rows(dataset), 6);
  EXPECT_EQ(fastod_dataset_columns(dataset), 9);
  // The load happened once; the file is no longer needed.
  std::remove(path.c_str());

  // Two sessions bind the one load; the handle is destroyed before
  // either runs, which must not invalidate their references.
  fastod_session_t* sessions[2];
  for (fastod_session_t*& session : sessions) {
    session = fastod_create("fastod");
    ASSERT_NE(session, nullptr);
    ASSERT_EQ(fastod_use_dataset(session, dataset), FASTOD_OK);
  }
  fastod_dataset_destroy(dataset);
  for (int round = 0; round < 2; ++round) {
    ASSERT_EQ(fastod_execute(sessions[round]), FASTOD_OK);
    const char* json = fastod_result_json(sessions[round]);
    ASSERT_NE(json, nullptr);
    EXPECT_EQ(MaskSeconds(json), expected) << "round " << round;
    fastod_destroy(sessions[round]);
  }
}

TEST(CApiTest, AppendRowsMintsNewVersionAndIncrementalMatchesFull) {
  std::string path = WriteEmployeeCsv("capi_append.csv");
  fastod_dataset_t* v1 = fastod_dataset_load_csv(path.c_str());
  std::remove(path.c_str());
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(fastod_dataset_version(v1), 1);
  EXPECT_EQ(fastod_dataset_base_rows(v1), 6);

  // Prior full run over version 1.
  fastod_session_t* prior_session = fastod_create("fastod");
  ASSERT_NE(prior_session, nullptr);
  ASSERT_EQ(fastod_use_dataset(prior_session, v1), FASTOD_OK);
  ASSERT_EQ(fastod_execute(prior_session), FASTOD_OK);
  std::string prior = fastod_result_json(prior_session);
  fastod_destroy(prior_session);

  // A headerless delta row reusing an existing (ID, yr) key with
  // conflicting attributes, so some prior ODs must be revoked.
  fastod_dataset_t* v2 = fastod_dataset_append_rows(
      v1, "10,16,secr,2,9000,35,4000,B,II\n");
  ASSERT_NE(v2, nullptr) << fastod_last_error(nullptr);
  EXPECT_EQ(fastod_dataset_version(v2), 2);
  EXPECT_EQ(fastod_dataset_base_rows(v2), 6);
  EXPECT_EQ(fastod_dataset_rows(v2), 7);
  // The parent handle is untouched and independently destroyable.
  EXPECT_EQ(fastod_dataset_rows(v1), 6);
  fastod_dataset_destroy(v1);

  // Incremental over v2 seeded with the v1 report...
  fastod_session_t* incremental = fastod_create("incremental");
  ASSERT_NE(incremental, nullptr);
  ASSERT_EQ(fastod_set_option(incremental, "prior", prior.c_str()),
            FASTOD_OK);
  ASSERT_EQ(fastod_use_dataset(incremental, v2), FASTOD_OK);
  ASSERT_EQ(fastod_execute(incremental), FASTOD_OK);
  std::string incremental_json = fastod_result_json(incremental);
  fastod_destroy(incremental);
  EXPECT_NE(incremental_json.find("\"revoked_constancy_ods\""),
            std::string::npos);

  // ...must report the same OD sets a fresh full run finds (the arrays
  // may order ODs differently: survivors first vs. pure level order).
  fastod_session_t* fresh = fastod_create("fastod");
  ASSERT_NE(fresh, nullptr);
  ASSERT_EQ(fastod_use_dataset(fresh, v2), FASTOD_OK);
  fastod_dataset_destroy(v2);
  ASSERT_EQ(fastod_execute(fresh), FASTOD_OK);
  std::string fresh_json = fastod_result_json(fresh);
  fastod_destroy(fresh);
  auto od_set = [](const std::string& json, const char* key) {
    std::vector<std::string> dumps;
    auto parsed = ParseJson(json);
    EXPECT_TRUE(parsed.ok());
    if (!parsed.ok()) return dumps;
    const JsonValue* array = parsed->Find(key);
    EXPECT_NE(array, nullptr) << key;
    if (array == nullptr) return dumps;
    for (const JsonValue& od : array->array_items()) {
      dumps.push_back(od.Dump());
    }
    std::sort(dumps.begin(), dumps.end());
    return dumps;
  };
  EXPECT_EQ(od_set(incremental_json, "constancy_ods"),
            od_set(fresh_json, "constancy_ods"));
  EXPECT_EQ(od_set(incremental_json, "compatibility_ods"),
            od_set(fresh_json, "compatibility_ods"));
}

TEST(CApiTest, DatasetErrorsAreReported) {
  EXPECT_EQ(fastod_dataset_load_csv("/nonexistent/file.csv"), nullptr);
  std::string error = fastod_last_error(nullptr);
  EXPECT_NE(error.find("nonexistent"), std::string::npos);
  EXPECT_EQ(fastod_dataset_load_csv(nullptr), nullptr);
  EXPECT_EQ(fastod_dataset_rows(nullptr), -1);
  EXPECT_EQ(fastod_dataset_columns(nullptr), -1);
  EXPECT_EQ(fastod_dataset_version(nullptr), -1);
  EXPECT_EQ(fastod_dataset_base_rows(nullptr), -1);
  EXPECT_EQ(fastod_dataset_append_rows(nullptr, "1\n"), nullptr);
  fastod_dataset_destroy(nullptr);  // safe no-op

  // Appending a delta with the wrong arity fails and names the problem.
  std::string path = WriteEmployeeCsv("capi_append_err.csv");
  fastod_dataset_t* dataset = fastod_dataset_load_csv(path.c_str());
  std::remove(path.c_str());
  ASSERT_NE(dataset, nullptr);
  EXPECT_EQ(fastod_dataset_append_rows(dataset, nullptr), nullptr);
  EXPECT_EQ(fastod_dataset_append_rows(dataset, "1,2\n"), nullptr);
  std::string append_error = fastod_last_error(nullptr);
  EXPECT_NE(append_error.find("column"), std::string::npos)
      << append_error;
  fastod_dataset_destroy(dataset);

  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(fastod_use_dataset(session, nullptr),
            FASTOD_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(fastod_use_dataset(nullptr, nullptr),
            FASTOD_ERR_NULL_HANDLE);
  fastod_destroy(session);
}

TEST(CApiTest, ErrorCodeMacrosAreStable) {
  // ABI freeze: these values are load-bearing for every binding ever
  // compiled against the header.
  EXPECT_EQ(FASTOD_ERR_INTERNAL, 8);
  EXPECT_EQ(FASTOD_ERR_DEADLINE, 9);
  EXPECT_EQ(FASTOD_ERR_UNAVAILABLE, 10);
}

TEST(CApiTest, DeadlineExceededRoundTripsThroughTheAbi) {
  // A 50 ms budget on a table FASTOD cannot finish in 50 ms: the run
  // must end FAILED with the dedicated deadline code, not a generic
  // failure. (The kUnavailable refusal paths — admission caps, pool
  // shutdown — live in the service/server layers and are covered by
  // robustness_test.cc; here we pin their C codes above and prove the
  // deadline one end to end.)
  std::string path = ::testing::TempDir() + "/capi_deadline.csv";
  ASSERT_TRUE(WriteCsvFile(GenFlightLike(4000, 14), path).ok());
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(fastod_set_option(session, "timeout-ms", "50"), FASTOD_OK);
  ASSERT_EQ(fastod_load_csv(session, path.c_str()), FASTOD_OK);
  EXPECT_EQ(fastod_execute(session), FASTOD_ERR_DEADLINE);
  std::string error = fastod_last_error(session);
  EXPECT_NE(error.find("timeout-ms"), std::string::npos) << error;
  // Poll is repeat-stable on the terminal session.
  for (int i = 0; i < 3; ++i) {
    double progress = -1.0;
    EXPECT_EQ(fastod_poll(session, &progress), FASTOD_STATE_FAILED);
    EXPECT_GE(progress, 0.0);
  }
  // No result for a failed run, and the error message survives polls.
  EXPECT_EQ(fastod_result_json(session), nullptr);
  EXPECT_NE(std::string(fastod_last_error(session)).find("timeout-ms"),
            std::string::npos);
  fastod_destroy(session);

  // The async flavor reports the same failure through wait + poll.
  fastod_session_t* async_session = fastod_create("fastod");
  ASSERT_NE(async_session, nullptr);
  ASSERT_EQ(fastod_set_option(async_session, "timeout-ms", "50"),
            FASTOD_OK);
  ASSERT_EQ(fastod_load_csv(async_session, path.c_str()), FASTOD_OK);
  ASSERT_EQ(fastod_execute_async(async_session), FASTOD_OK);
  EXPECT_EQ(fastod_wait(async_session), FASTOD_STATE_FAILED);
  EXPECT_NE(std::string(fastod_last_error(async_session))
                .find("timeout-ms"),
            std::string::npos);
  fastod_destroy(async_session);
  std::remove(path.c_str());
}

TEST(CApiTest, CancelBeforeRunYieldsCancelledState) {
  std::string path = WriteEmployeeCsv("capi_cancel.csv");
  fastod_session_t* session = fastod_create("order");
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(fastod_load_csv(session, path.c_str()), FASTOD_OK);
  // Cancel before any execution was scheduled: the session turns
  // terminal without running.
  EXPECT_EQ(fastod_cancel(session), FASTOD_OK);
  EXPECT_EQ(fastod_poll(session, nullptr), FASTOD_STATE_CANCELLED);
  // Results of a never-run session are absent, not garbage.
  EXPECT_EQ(fastod_result_json(session), nullptr);
  fastod_destroy(session);
  std::remove(path.c_str());
}

TEST(CApiTest, TraceJsonSurfacesSpansAndEngineCounters) {
  const bool saved = obs::Enabled();
  obs::SetEnabled(true);
  std::string path = WriteEmployeeCsv("capi_trace.csv");
  fastod_session_t* session = fastod_create("fastod");
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(fastod_load_csv(session, path.c_str()), FASTOD_OK);
  ASSERT_EQ(fastod_execute(session), FASTOD_OK);
  const char* trace = fastod_session_trace_json(session);
  ASSERT_NE(trace, nullptr);
  std::string json(trace);
  EXPECT_NE(json.find("\"spans\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"execute\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"nodes_visited\""), std::string::npos) << json;
  // The trace buffer is independent of the result buffer: fetching one
  // after the other leaves both pointers valid.
  const char* result = fastod_result_json(session);
  ASSERT_NE(result, nullptr);
  EXPECT_NE(std::string(fastod_session_trace_json(session))
                .find("\"spans\""),
            std::string::npos);
  fastod_destroy(session);
  EXPECT_EQ(fastod_session_trace_json(nullptr), nullptr);
  std::remove(path.c_str());
  obs::SetEnabled(saved);
}

}  // namespace
}  // namespace fastod
