// End-to-end flows across the whole stack: generate -> CSV round-trip ->
// encode -> discover -> validate -> infer, as a downstream user would.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "axioms/inference.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"
#include "validate/violation_scanner.h"

namespace fastod {
namespace {

TEST(IntegrationTest, CsvRoundTripPreservesDiscovery) {
  Table original = GenFlightLike(300, 10, 123);
  std::string path = ::testing::TempDir() + "/fastod_integration.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  auto reread = ReadCsvFile(path);
  ASSERT_TRUE(reread.ok());
  std::remove(path.c_str());

  auto r1 = Fastod().Discover(original);
  auto r2 = Fastod().Discover(*reread);
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto sort_all = [](FastodResult* r) {
    std::sort(r->constancy_ods.begin(), r->constancy_ods.end());
    std::sort(r->compatibility_ods.begin(), r->compatibility_ods.end());
  };
  sort_all(&*r1);
  sort_all(&*r2);
  EXPECT_EQ(r1->constancy_ods, r2->constancy_ods);
  EXPECT_EQ(r1->compatibility_ods, r2->compatibility_ods);
}

TEST(IntegrationTest, DiscoveredOdsValidateOnTheirData) {
  Table t = GenNcvoterLike(400, 10, 5);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  auto result = Fastod().Discover(*rel);
  OdValidator v(&*rel);
  for (const ConstancyOd& od : result.constancy_ods) {
    EXPECT_TRUE(v.IsConstant(od.context, od.attribute)) << od.ToString();
  }
  for (const CompatibilityOd& od : result.compatibility_ods) {
    EXPECT_TRUE(v.IsOrderCompatible(od.context, od.a, od.b))
        << od.ToString();
  }
}

TEST(IntegrationTest, DiscoveryOutputIsContextMinimal) {
  // The paper's Section 4.1 minimality, audited directly on the output:
  // no emitted OD is subsumed by another via Augmentation-I/II or
  // Propagate. (Note: a minimal set in this sense can still contain ODs
  // derivable through Strengthen/Chain combinations — the guarantee is
  // context-minimality, exactly as with TANE's lhs-minimal FD covers.)
  Table t = GenFlightLike(150, 6, 31);
  auto result = Fastod().Discover(t);
  ASSERT_TRUE(result.ok());
  for (const ConstancyOd& od : result->constancy_ods) {
    for (const ConstancyOd& other : result->constancy_ods) {
      if (other.attribute == od.attribute && other.context != od.context) {
        EXPECT_FALSE(od.context.ContainsAll(other.context))
            << od.ToString() << " subsumed by " << other.ToString();
      }
    }
  }
  for (const CompatibilityOd& od : result->compatibility_ods) {
    for (const CompatibilityOd& other : result->compatibility_ods) {
      if (other.a == od.a && other.b == od.b && other.context != od.context) {
        EXPECT_FALSE(od.context.ContainsAll(other.context))
            << od.ToString() << " subsumed by " << other.ToString();
      }
    }
    // Propagate: no constancy on either endpoint within (a subset of) the
    // same context — otherwise the compatibility OD would be implied.
    for (const ConstancyOd& c : result->constancy_ods) {
      if (c.attribute == od.a || c.attribute == od.b) {
        EXPECT_FALSE(od.context.ContainsAll(c.context))
            << od.ToString() << " implied via Propagate by " << c.ToString();
      }
    }
  }
}

TEST(IntegrationTest, TaneAgreesWithFastodOnRealisticData) {
  Table t = GenDbtesmaLike(250, 9, 77);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  FastodResult od = Fastod().Discover(*rel);
  TaneResult fd = Tane().Discover(*rel);
  std::vector<ConstancyOd> a = od.constancy_ods;
  std::vector<ConstancyOd> b = fd.fds;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(IntegrationTest, OrderFindsSubsetOfFastodKnowledge) {
  Table t = GenDateDim(200, 1998);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  OrderResult order = OrderBaseline().Discover(*rel);
  // Everything ORDER asserts must be certified by the complete canonical
  // knowledge: each mapped piece holds on the data.
  for (const ListOd& od : order.ods) {
    EXPECT_TRUE(BruteHolds(*rel, od)) << od.ToString();
  }
  // And FASTOD additionally knows the constant (d_year over one year...
  // here multiple years, so check the surrogate-key FDs instead).
  FastodResult fast = Fastod().Discover(*rel);
  EXPECT_GT(fast.NumOds(), 0);
}

TEST(IntegrationTest, CleaningWorkflowFindsInjectedError) {
  // Discover ODs on clean data; corrupt one cell; the violated OD set
  // pinpoints the bad tuple.
  Table clean = GenDateDim(120, 1998);
  auto clean_rel = EncodedRelation::FromTable(clean);
  ASSERT_TRUE(clean_rel.ok());
  FastodResult profile = Fastod().Discover(*clean_rel);
  ASSERT_GT(profile.NumOds(), 0);

  // Corrupt d_year of row 60 via CSV surgery.
  std::string csv = WriteCsvString(clean);
  auto corrupted_table = ReadCsvString(csv);
  ASSERT_TRUE(corrupted_table.ok());
  // Rebuild with one modified value.
  TableBuilder b(corrupted_table->schema());
  int year_col = *corrupted_table->schema().IndexOf("d_year");
  for (int64_t r = 0; r < corrupted_table->NumRows(); ++r) {
    std::vector<Value> row;
    for (int c = 0; c < corrupted_table->NumColumns(); ++c) {
      row.push_back((r == 60 && c == year_col) ? Value::Int(1900)
                                               : corrupted_table->at(r, c));
    }
    ASSERT_TRUE(b.AddRow(std::move(row)).ok());
  }
  Table dirty = b.Build();
  auto dirty_rel = EncodedRelation::FromTable(dirty);
  ASSERT_TRUE(dirty_rel.ok());

  ViolationScanner scanner(&*dirty_rel);
  std::vector<int64_t> counts(dirty.NumRows(), 0);
  for (const ConstancyOd& od : profile.constancy_ods) {
    for (const Violation& v : scanner.Scan(CanonicalOd(od))) {
      ++counts[v.tuple_s];
      ++counts[v.tuple_t];
    }
  }
  for (const CompatibilityOd& od : profile.compatibility_ods) {
    for (const Violation& v : scanner.Scan(CanonicalOd(od))) {
      ++counts[v.tuple_s];
      ++counts[v.tuple_t];
    }
  }
  // The corrupted tuple must participate in violations and be among the
  // dirtiest (swap/split pairs implicate the clean witness too, so an
  // exact argmax would be witness-dependent).
  int64_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(counts[60], 0);
  EXPECT_EQ(counts[60], max_count);
}

TEST(IntegrationTest, WideRelationStaysWithinBudget) {
  // 20 attributes on a small sample completes quickly thanks to pruning
  // (the paper's flight 1K×20 case finishes in under a second).
  Table t = GenFlightLike(500, 20, 2);
  FastodOptions opt;
  opt.timeout_seconds = 60.0;
  auto result = Fastod(opt).Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->timed_out);
  EXPECT_GT(result->NumOds(), 0);
}

}  // namespace
}  // namespace fastod
