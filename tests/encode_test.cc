#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/encode.h"
#include "gen/random_table.h"

namespace fastod {
namespace {

// The columnar relation no longer exposes a rank vector; gather one for
// the value-order assertions below.
std::vector<int32_t> RanksOf(const EncodedRelation& rel, int c) {
  std::vector<int32_t> out(static_cast<size_t>(rel.NumRows()));
  for (int64_t r = 0; r < rel.NumRows(); ++r) {
    out[r] = rel.rank(r, c);
  }
  return out;
}

TEST(EncodeTest, RanksAreDenseAndOrderPreserving) {
  auto t = ReadCsvString("a\n30\n10\n20\n10\n");
  ASSERT_TRUE(t.ok());
  auto rel = EncodedRelation::FromTable(*t);
  ASSERT_TRUE(rel.ok());
  // values 30,10,20,10 -> ranks 2,0,1,0
  EXPECT_EQ(RanksOf(*rel, 0), (std::vector<int32_t>{2, 0, 1, 0}));
  EXPECT_EQ(rel->NumDistinct(0), 3);
}

TEST(EncodeTest, StringsRankLexicographically) {
  auto t = ReadCsvString("s\nbeta\nalpha\ngamma\n");
  ASSERT_TRUE(t.ok());
  auto rel = EncodedRelation::FromTable(*t);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(RanksOf(*rel, 0), (std::vector<int32_t>{1, 0, 2}));
}

TEST(EncodeTest, NullsRankFirst) {
  // (Two columns: a single-column CSV cannot carry a NULL row, since blank
  // lines are skipped by the reader.)
  auto t = ReadCsvString("a,b\n5,x\n,y\n1,z\n");
  ASSERT_TRUE(t.ok());
  auto rel = EncodedRelation::FromTable(*t);
  ASSERT_TRUE(rel.ok());
  // NULL < 1 < 5
  EXPECT_EQ(RanksOf(*rel, 0), (std::vector<int32_t>{2, 0, 1}));
}

TEST(EncodeTest, EmptyTable) {
  TableBuilder b(Schema({{"a", DataType::kInt}}));
  auto rel = EncodedRelation::FromTable(b.Build());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 0);
  EXPECT_EQ(rel->NumDistinct(0), 0);
}

TEST(EncodeTest, TooManyAttributesRejected) {
  std::vector<AttributeDef> defs(65, AttributeDef{"c", DataType::kInt});
  for (int i = 0; i < 65; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    defs[i].name = name;
  }
  TableBuilder b{Schema(defs)};
  auto rel = EncodedRelation::FromTable(b.Build());
  EXPECT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidArgument);
}

TEST(EncodeTest, SchemaCarriedThrough) {
  auto t = ReadCsvString("x,y\n1,2\n");
  ASSERT_TRUE(t.ok());
  auto rel = EncodedRelation::FromTable(*t);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema().name(1), "y");
  EXPECT_EQ(rel->NumAttributes(), 2);
}

// Property: for every pair of tuples and every column, the rank comparison
// agrees with the Value comparison. This is the entire contract that lets
// all downstream algorithms work on integers (Section 4.6).
class EncodePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodePropertyTest, RankOrderMatchesValueOrder) {
  Table t = GenRandomTable(40, 4, 6, GetParam());
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  for (int c = 0; c < t.NumColumns(); ++c) {
    for (int64_t i = 0; i < t.NumRows(); ++i) {
      for (int64_t j = 0; j < t.NumRows(); ++j) {
        int value_cmp = Value::Compare(t.at(i, c), t.at(j, c));
        int32_t ri = rel->rank(i, c);
        int32_t rj = rel->rank(j, c);
        int rank_cmp = ri < rj ? -1 : (ri > rj ? 1 : 0);
        EXPECT_EQ(value_cmp < 0, rank_cmp < 0);
        EXPECT_EQ(value_cmp == 0, rank_cmp == 0);
      }
    }
  }
}

TEST_P(EncodePropertyTest, RanksAreDense) {
  Table t = GenRandomTable(30, 3, 8, GetParam());
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  for (int c = 0; c < t.NumColumns(); ++c) {
    std::vector<bool> seen(rel->NumDistinct(c), false);
    for (int32_t r : RanksOf(*rel, c)) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, rel->NumDistinct(c));
      seen[r] = true;
    }
    for (bool s : seen) EXPECT_TRUE(s);  // no gaps
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace fastod
