#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "cli/cli.h"
#include "data/csv.h"

namespace fastod {
namespace {

// Writes a small CSV fixture and returns its path. The PID prefix keeps
// parallel ctest processes (which share TempDir) from clobbering and
// deleting each other's fixtures mid-test — this was a real -j flake.
std::string WriteFixture(const std::string& name, const std::string& body) {
  std::string path = ::testing::TempDir() + "/" +
                     std::to_string(::getpid()) + "_" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

class CliTest : public ::testing::Test {
 protected:
  CliTest() {
    // month determines quarter; salary anti-correlates with rank.
    path_ = WriteFixture("cli_test.csv",
                         "month,quarter,salary,rank\n"
                         "1,1,100,9\n"
                         "2,1,200,8\n"
                         "4,2,300,7\n"
                         "5,2,400,6\n");
  }
  ~CliTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CliTest, HelpOnNoArgs) {
  CliResult r = RunCli({});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  CliResult r = RunCli({"frobnicate"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, DiscoverTextOutput) {
  CliResult r = RunCli({"discover", path_});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("FASTOD:"), std::string::npos);
  EXPECT_NE(r.output.find("{month}: [] -> quarter"), std::string::npos);
}

TEST_F(CliTest, DiscoverJsonOutput) {
  CliResult r = RunCli({"discover", path_, "--output=json"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("\"algorithm\": \"fastod\""), std::string::npos);
}

TEST_F(CliTest, DiscoverTane) {
  CliResult r = RunCli({"discover", path_, "--algorithm=tane"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("TANE:"), std::string::npos);
}

TEST_F(CliTest, DiscoverOrder) {
  CliResult r = RunCli({"discover", path_, "--algorithm=order"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("ORDER:"), std::string::npos);
}

TEST_F(CliTest, DiscoverBidirectional) {
  CliResult r = RunCli({"discover", path_, "--bidirectional"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  // salary ~ rank desc is an opposite-polarity OCD on this fixture.
  EXPECT_NE(r.output.find("salary ~ rank desc"), std::string::npos);
}

TEST_F(CliTest, DiscoverRejectsBadAlgorithm) {
  CliResult r = RunCli({"discover", path_, "--algorithm=magic"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST_F(CliTest, DiscoverMissingFileIsIoError) {
  CliResult r = RunCli({"discover", "/no/such/file.csv"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("IoError"), std::string::npos);
}

TEST_F(CliTest, ValidateHoldingOd) {
  CliResult r =
      RunCli({"validate", path_, "--lhs=month", "--rhs=quarter"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("holds"), std::string::npos);
}

TEST_F(CliTest, ValidateViolatedOdExitsTwo) {
  CliResult r = RunCli({"validate", path_, "--lhs=salary", "--rhs=rank"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("violated"), std::string::npos);
}

TEST_F(CliTest, ValidateDescendingDirection) {
  CliResult r =
      RunCli({"validate", path_, "--lhs=salary", "--rhs=rank:desc"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("rank desc"), std::string::npos);
  EXPECT_NE(r.output.find("holds"), std::string::npos);
}

TEST_F(CliTest, ValidateUnknownColumn) {
  CliResult r = RunCli({"validate", path_, "--lhs=nope", "--rhs=rank"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("nope"), std::string::npos);
}

TEST_F(CliTest, ViolationsListsPairs) {
  CliResult r = RunCli(
      {"violations", path_, "--lhs=salary", "--rhs=rank", "--limit=2"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("violating pair"), std::string::npos);
  EXPECT_NE(r.output.find("swap("), std::string::npos);
}

TEST_F(CliTest, ViolationsCleanOdExitsZero) {
  CliResult r =
      RunCli({"violations", path_, "--lhs=month", "--rhs=quarter"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("0 violating pair(s)"), std::string::npos);
}

TEST_F(CliTest, DiscoverWithThreadsMatchesSerial) {
  CliResult serial = RunCli({"discover", path_});
  CliResult parallel = RunCli({"discover", path_, "--threads=4"});
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(parallel.exit_code, 0);
  // Identical OD listings (the timing line differs).
  auto strip_first_line = [](const std::string& s) {
    return s.substr(s.find('\n') + 1);
  };
  EXPECT_EQ(strip_first_line(serial.output),
            strip_first_line(parallel.output));
}

TEST_F(CliTest, ConditionalCommandFindsRegionalRule) {
  // region 0: x ~ y; region 1: anti-correlated.
  std::string path = WriteFixture("cli_conditional.csv",
                                  "region,x,y\n"
                                  "north,1,10\nnorth,2,20\nnorth,3,30\n"
                                  "south,1,33\nsouth,2,22\nsouth,3,11\n");
  CliResult r = RunCli({"conditional", path, "--min-support=0.4"});
  std::remove(path.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("region in {north}"), std::string::npos);
  EXPECT_NE(r.output.find("x ~ y"), std::string::npos);
}

TEST_F(CliTest, ConditionalRespectsLimit) {
  CliResult r = RunCli({"conditional", path_, "--limit=1",
                        "--min-support=0.0"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  // Header plus at most one result line.
  int lines = 0;
  for (char c : r.output) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 2);
}

TEST_F(CliTest, GenerateEmitsParseableCsv) {
  CliResult r =
      RunCli({"generate", "flight", "--rows=50", "--attrs=6", "--seed=1"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  auto table = ReadCsvString(r.output);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 50);
  EXPECT_EQ(table->NumColumns(), 6);
}

TEST_F(CliTest, GenerateDateDim) {
  CliResult r = RunCli({"generate", "date_dim", "--rows=10"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("d_date_sk"), std::string::npos);
}

TEST_F(CliTest, GenerateUnknownDataset) {
  CliResult r = RunCli({"generate", "nothing"});
  EXPECT_EQ(r.exit_code, 1);
}

TEST_F(CliTest, GenerateValidatesAttrRange) {
  CliResult r = RunCli({"generate", "flight", "--attrs=200"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("attrs"), std::string::npos);
}

TEST_F(CliTest, EndToEndGenerateThenDiscover) {
  CliResult gen = RunCli({"generate", "dbtesma", "--rows=100", "--attrs=6"});
  ASSERT_EQ(gen.exit_code, 0);
  std::string path = WriteFixture("cli_gen.csv", gen.output);
  CliResult disc = RunCli({"discover", path, "--algorithm=fastod"});
  std::remove(path.c_str());
  EXPECT_EQ(disc.exit_code, 0) << disc.error;
  EXPECT_NE(disc.output.find("FASTOD:"), std::string::npos);
}

TEST_F(CliTest, AlgorithmsListsEveryEngineWithOptions) {
  CliResult r = RunCli({"algorithms"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  for (const char* name : {"fastod —", "tane —", "order —", "brute-force —",
                           "approximate —", "conditional —"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
  // Option help comes straight from DescribeOptions().
  EXPECT_NE(r.output.find("--swap-method=<auto|sort|tau>"),
            std::string::npos);
  EXPECT_NE(r.output.find("--min-support=<double>"), std::string::npos);
}

TEST_F(CliTest, AlgorithmsFiltersByName) {
  CliResult r = RunCli({"algorithms", "tane"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("tane —"), std::string::npos);
  EXPECT_EQ(r.output.find("fastod —"), std::string::npos);
}

TEST_F(CliTest, AlgorithmsUnknownNameListsRegistered) {
  CliResult r = RunCli({"algorithms", "magic"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("magic"), std::string::npos);
  EXPECT_NE(r.error.find("fastod"), std::string::npos);
}

TEST_F(CliTest, BatchRunsManifestJobs) {
  std::string manifest = WriteFixture(
      "cli_batch_manifest.txt",
      "# comment and blank lines are skipped\n"
      "\n" +
          path_ + " fastod --max-level=2\n" + path_ + " tane\n");
  CliResult r = RunCli({"batch", manifest, "--threads=2"});
  std::remove(manifest.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.error << r.output;
  EXPECT_NE(r.output.find("[1] fastod"), std::string::npos);
  EXPECT_NE(r.output.find("[2] tane"), std::string::npos);
  EXPECT_NE(r.output.find("done"), std::string::npos);
  EXPECT_NE(r.output.find("FASTOD:"), std::string::npos);
  EXPECT_NE(r.output.find("TANE:"), std::string::npos);
}

TEST_F(CliTest, BatchJsonOutputEmbedsResults) {
  std::string manifest =
      WriteFixture("cli_batch_json.txt", path_ + " fastod\n");
  CliResult r = RunCli({"batch", manifest, "--output=json"});
  std::remove(manifest.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("\"jobs\": ["), std::string::npos);
  EXPECT_NE(r.output.find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(r.output.find("\"algorithm\": \"fastod\""), std::string::npos);
}

TEST_F(CliTest, BatchReportsPerJobFailuresAndContinues) {
  std::string manifest = WriteFixture(
      "cli_batch_fail.txt",
      "/no/such/file.csv fastod\n" + path_ + " fastod\n" + path_ +
          " fastod --threads=zero\n");
  CliResult r = RunCli({"batch", manifest});
  std::remove(manifest.c_str());
  EXPECT_EQ(r.exit_code, 1);
  // The healthy middle job still ran to completion.
  EXPECT_NE(r.output.find("[2] fastod"), std::string::npos);
  EXPECT_NE(r.output.find("done"), std::string::npos);
  EXPECT_NE(r.output.find("failed"), std::string::npos);
  EXPECT_NE(r.output.find("threads"), std::string::npos);
}

TEST_F(CliTest, BatchSharesNamedDatasetsAcrossJobs) {
  std::string manifest = WriteFixture(
      "cli_batch_dataset.txt",
      "# one load, three jobs (two via @reference, one direct)\n"
      "dataset months " + path_ + "\n"
      "@months fastod --max-level=2\n"
      "@months tane\n" +
      path_ + " fastod --max-level=2\n");
  CliResult r = RunCli({"batch", manifest, "--threads=2", "--output=json"});
  std::remove(manifest.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.error << r.output;
  EXPECT_NE(r.output.find("\"csv\": \"@months\""), std::string::npos);
  EXPECT_NE(r.output.find("\"state\": \"done\""), std::string::npos);
  // The @months fastod job and the direct-path fastod job found the
  // same dependencies (same data, same options).
  size_t first = r.output.find("\"constancy_ods\"");
  size_t last = r.output.rfind("\"constancy_ods\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(first, last);
}

TEST_F(CliTest, BatchAppendGrowsNamedDatasetBeforeJobsRun) {
  // Headerless delta: month 1 re-keyed into quarter 2, so jobs must see
  // the 5-row grown version, not the 4-row load.
  std::string delta = WriteFixture("cli_batch_delta.csv", "1,2,500,5\n");
  std::string manifest = WriteFixture(
      "cli_batch_append.txt",
      "dataset months " + path_ + "\n"
      "append months " + delta + "\n"
      "@months fastod --max-level=2\n");
  CliResult r = RunCli({"batch", manifest, "--output=json"});
  std::remove(manifest.c_str());
  std::remove(delta.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.error << r.output;
  EXPECT_NE(r.output.find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(r.output.find("\"rows\": 5"), std::string::npos) << r.output;
}

TEST_F(CliTest, BatchAppendDirectiveErrors) {
  // Appending to a dataset no directive defined is a manifest error.
  std::string undefined = WriteFixture(
      "cli_batch_appundef.txt",
      "append ghost /no/such/delta.csv\n" + path_ + " fastod\n");
  CliResult r = RunCli({"batch", undefined});
  std::remove(undefined.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("undefined dataset 'ghost'"), std::string::npos)
      << r.error;

  // Malformed directive (missing the delta path).
  std::string malformed =
      WriteFixture("cli_batch_appbad.txt", "dataset months " + path_ +
                                               "\nappend months\n");
  r = RunCli({"batch", malformed});
  std::remove(malformed.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("append <name> <delta.csv>"), std::string::npos)
      << r.error;

  // A delta file that cannot be read fails the whole batch up front.
  std::string missing = WriteFixture(
      "cli_batch_appmissing.txt",
      "dataset months " + path_ + "\nappend months /no/such/delta.csv\n"
      "@months fastod\n");
  r = RunCli({"batch", missing});
  std::remove(missing.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("append to 'months'"), std::string::npos)
      << r.error;
}

TEST_F(CliTest, BatchUnknownDatasetReferenceFailsThatJobOnly) {
  std::string manifest = WriteFixture(
      "cli_batch_badref.txt",
      "@ghost fastod\n" + path_ + " tane\n");
  CliResult r = RunCli({"batch", manifest});
  std::remove(manifest.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("ghost"), std::string::npos);
  // The healthy job still completed.
  EXPECT_NE(r.output.find("[2] tane"), std::string::npos);
  EXPECT_NE(r.output.find("done"), std::string::npos);
}

TEST_F(CliTest, BatchRejectsBadDatasetDirectives) {
  std::string missing_file = WriteFixture(
      "cli_batch_dsmissing.txt",
      "dataset months /no/such/file.csv\n@months fastod\n");
  CliResult r = RunCli({"batch", missing_file});
  std::remove(missing_file.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("months"), std::string::npos);

  std::string malformed = WriteFixture("cli_batch_dsbad.txt",
                                       "dataset only-a-name\n");
  r = RunCli({"batch", malformed});
  std::remove(malformed.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("dataset <name> <file.csv>"), std::string::npos);

  std::string duplicate = WriteFixture(
      "cli_batch_dsdup.txt",
      "dataset m " + path_ + "\ndataset m " + path_ + "\n@m fastod\n");
  r = RunCli({"batch", duplicate});
  std::remove(duplicate.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("defined twice"), std::string::npos);
}

TEST_F(CliTest, BatchRejectsMalformedManifest) {
  std::string manifest = WriteFixture("cli_batch_bad.txt", "just-one-token\n");
  CliResult r = RunCli({"batch", manifest});
  std::remove(manifest.c_str());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("manifest line 1"), std::string::npos);
}

TEST_F(CliTest, BatchMissingManifestFails) {
  CliResult r = RunCli({"batch", "/no/such/manifest.txt"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("manifest"), std::string::npos);
}

TEST_F(CliTest, UsageMentionsNewCommands) {
  CliResult r = RunCli({"help"});
  EXPECT_NE(r.output.find("fastod batch"), std::string::npos);
  EXPECT_NE(r.output.find("fastod algorithms"), std::string::npos);
  EXPECT_NE(r.output.find("fastod serve"), std::string::npos);
}

// `serve` blocks until signalled, so tests only cover its argument
// validation; the full server lifecycle is exercised in server_test.cc.
TEST_F(CliTest, ServeRejectsBadFlags) {
  CliResult bad_port = RunCli({"serve", "--port=70000"});
  EXPECT_EQ(bad_port.exit_code, 1);
  EXPECT_NE(bad_port.error.find("--port"), std::string::npos);

  CliResult bad_threads = RunCli({"serve", "--threads=-1"});
  EXPECT_EQ(bad_threads.exit_code, 1);
  EXPECT_NE(bad_threads.error.find("--threads"), std::string::npos);

  CliResult bad_http = RunCli({"serve", "--http-threads=0"});
  EXPECT_EQ(bad_http.exit_code, 1);
  EXPECT_NE(bad_http.error.find("--http-threads"), std::string::npos);

  CliResult bad_budget = RunCli({"serve", "--dataset-budget-mb=-1"});
  EXPECT_EQ(bad_budget.exit_code, 1);
  EXPECT_NE(bad_budget.error.find("--dataset-budget-mb"),
            std::string::npos);

  CliResult positional = RunCli({"serve", "extra"});
  EXPECT_EQ(positional.exit_code, 1);
  EXPECT_NE(positional.error.find("positional"), std::string::npos);

  CliResult bad_host = RunCli({"serve", "--host=not-an-ip", "--port=0"});
  EXPECT_EQ(bad_host.exit_code, 1);
  EXPECT_NE(bad_host.error.find("address"), std::string::npos);

  CliResult unknown = RunCli({"serve", "--nope=1"});
  EXPECT_EQ(unknown.exit_code, 1);
}

TEST_F(CliTest, DiscoverStatsAppendsSearchCounters) {
  CliResult r = RunCli({"discover", path_, "--stats"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  // The discovery report stays first; the stats block follows it.
  EXPECT_NE(r.output.find("FASTOD:"), std::string::npos);
  EXPECT_NE(r.output.find("search stats:"), std::string::npos);
  EXPECT_NE(r.output.find("nodes visited"), std::string::npos);
  EXPECT_NE(r.output.find("level 1:"), std::string::npos);

  // Without the flag, no stats block.
  CliResult plain = RunCli({"discover", path_});
  EXPECT_EQ(plain.output.find("search stats:"), std::string::npos);
}

TEST_F(CliTest, DiscoverStatsJsonEmbedsTrace) {
  CliResult r = RunCli({"discover", path_, "--stats", "--output=json"});
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_NE(r.output.find("\"trace\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"csv.parse\""), std::string::npos);
  EXPECT_NE(r.output.find("\"nodes_visited\""), std::string::npos);

  CliResult bad = RunCli({"discover", path_, "--stats=maybe"});
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.error.find("--stats"), std::string::npos);
}

}  // namespace
}  // namespace fastod
