#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace fastod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").ToString(), "Internal: boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(100, 'x'));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 100u);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"a", "bb", "", "c"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, TrimStripsAsciiWhitespace) {
  EXPECT_EQ(Trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-7"), -7);
  EXPECT_EQ(ParseInt(" 13 "), 13);  // trimmed
  EXPECT_FALSE(ParseInt("4.2").has_value());
  EXPECT_FALSE(ParseInt("x42").has_value());
  EXPECT_FALSE(ParseInt("42x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseDouble("3.5z").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next64() != b.Next64()) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    int64_t w = rng.UniformRange(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer t;
  double first = t.ElapsedSeconds();
  double second = t.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_GE(first, 0.0);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_FALSE(d.Exceeded());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::After(0.0);
  // Spin briefly so elapsed > 0.
  volatile int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(d.Exceeded());
}

}  // namespace
}  // namespace fastod
