#include <gtest/gtest.h>

#include <unordered_set>

#include "data/schema.h"
#include "od/attribute_set.h"

namespace fastod {
namespace {

TEST(AttributeSetTest, EmptyAndSingle) {
  AttributeSet e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Count(), 0);
  EXPECT_EQ(e.First(), -1);

  AttributeSet s = AttributeSet::Single(5);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.First(), 5);
  EXPECT_EQ(s.Next(5), -1);
}

TEST(AttributeSetTest, FullSetBoundaries) {
  EXPECT_EQ(AttributeSet::FullSet(0).Count(), 0);
  EXPECT_EQ(AttributeSet::FullSet(1).Count(), 1);
  EXPECT_EQ(AttributeSet::FullSet(64).Count(), 64);
  EXPECT_TRUE(AttributeSet::FullSet(64).Contains(63));
  EXPECT_FALSE(AttributeSet::FullSet(63).Contains(63));
}

TEST(AttributeSetTest, SetOperations) {
  AttributeSet x = AttributeSet::FromIndices({0, 2, 4});
  AttributeSet y = AttributeSet::FromIndices({2, 3});
  EXPECT_EQ(x.Union(y), AttributeSet::FromIndices({0, 2, 3, 4}));
  EXPECT_EQ(x.Intersect(y), AttributeSet::Single(2));
  EXPECT_EQ(x.Minus(y), AttributeSet::FromIndices({0, 4}));
  EXPECT_TRUE(x.ContainsAll(AttributeSet::FromIndices({0, 4})));
  EXPECT_FALSE(x.ContainsAll(y));
  EXPECT_TRUE(x.Intersects(y));
  EXPECT_FALSE(x.Intersects(AttributeSet::Single(1)));
}

TEST(AttributeSetTest, WithWithoutAreNonMutating) {
  AttributeSet x = AttributeSet::Single(1);
  AttributeSet y = x.With(3);
  EXPECT_EQ(x.Count(), 1);
  EXPECT_EQ(y.Count(), 2);
  EXPECT_EQ(y.Without(1), AttributeSet::Single(3));
}

TEST(AttributeSetTest, IterationAscending) {
  AttributeSet x = AttributeSet::FromIndices({7, 0, 63, 31});
  std::vector<int> got;
  for (int a = x.First(); a >= 0; a = x.Next(a)) got.push_back(a);
  EXPECT_EQ(got, (std::vector<int>{0, 7, 31, 63}));
  EXPECT_EQ(x.ToIndices(), got);
}

TEST(AttributeSetTest, RangeAdapter) {
  AttributeSet x = AttributeSet::FromIndices({1, 4});
  std::vector<int> got;
  for (int a : Members(x)) got.push_back(a);
  EXPECT_EQ(got, (std::vector<int>{1, 4}));
}

TEST(AttributeSetTest, NextPastEnd) {
  AttributeSet x = AttributeSet::Single(63);
  EXPECT_EQ(x.Next(63), -1);
  EXPECT_EQ(AttributeSet().Next(0), -1);
}

TEST(AttributeSetTest, ToStringPlaceholders) {
  EXPECT_EQ(AttributeSet().ToString(), "{}");
  EXPECT_EQ(AttributeSet::FromIndices({0, 2}).ToString(), "{A,C}");
  EXPECT_EQ(AttributeSet::Single(30).ToString(), "{#30}");
}

TEST(AttributeSetTest, ToStringWithSchema) {
  Schema s = Schema::FromNames({"year", "salary"});
  EXPECT_EQ(AttributeSet::FromIndices({0, 1}).ToString(s), "{year,salary}");
}

TEST(AttributeSetTest, HashDistributesDistinctSets) {
  std::unordered_set<size_t> hashes;
  AttributeSetHash h;
  for (int a = 0; a < 64; ++a) {
    hashes.insert(h(AttributeSet::Single(a)));
  }
  // All 64 singletons should hash distinctly with a decent mixer.
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(AttributeSetTest, OrderingIsTotal) {
  AttributeSet a = AttributeSet::Single(0);
  AttributeSet b = AttributeSet::Single(1);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace fastod
