#include <gtest/gtest.h>

#include "common/flags.h"

namespace fastod {
namespace {

TEST(FlagsTest, ParsesTypedValues) {
  std::string s = "default";
  int64_t i = 7;
  double d = 1.5;
  bool b = false;
  FlagSet flags;
  flags.AddString("name", &s, "a string");
  flags.AddInt("count", &i, "an int");
  flags.AddDouble("ratio", &d, "a double");
  flags.AddBool("verbose", &b, "a bool");
  ASSERT_TRUE(flags
                  .Parse({"--name=x", "--count=42", "--ratio=0.25",
                          "--verbose"})
                  .ok());
  EXPECT_EQ(s, "x");
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(b);
}

TEST(FlagsTest, DefaultsSurviveWhenAbsent) {
  int64_t i = 9;
  FlagSet flags;
  flags.AddInt("count", &i, "an int");
  ASSERT_TRUE(flags.Parse({}).ok());
  EXPECT_EQ(i, 9);
}

TEST(FlagsTest, PositionalsCollected) {
  bool b = false;
  FlagSet flags;
  flags.AddBool("x", &b, "flag");
  ASSERT_TRUE(flags.Parse({"a.csv", "--x", "b.csv"}).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"a.csv", "b.csv"}));
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  bool b = true;
  FlagSet flags;
  flags.AddBool("x", &b, "flag");
  ASSERT_TRUE(flags.Parse({"--x=false"}).ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(flags.Parse({"--x=1"}).ok());
  EXPECT_TRUE(b);
  EXPECT_FALSE(flags.Parse({"--x=maybe"}).ok());
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagSet flags;
  Status s = flags.Parse({"--nope=1"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(FlagsTest, NonBoolRequiresValue) {
  int64_t i = 0;
  FlagSet flags;
  flags.AddInt("count", &i, "an int");
  EXPECT_FALSE(flags.Parse({"--count"}).ok());
}

TEST(FlagsTest, BadNumbersRejected) {
  int64_t i = 0;
  double d = 0;
  FlagSet flags;
  flags.AddInt("count", &i, "an int");
  flags.AddDouble("ratio", &d, "a double");
  EXPECT_FALSE(flags.Parse({"--count=abc"}).ok());
  EXPECT_FALSE(flags.Parse({"--ratio=x.y"}).ok());
}

TEST(FlagsTest, HelpTextMentionsFlagsAndDefaults) {
  int64_t i = 5;
  FlagSet flags;
  flags.AddInt("count", &i, "how many");
  std::string help = flags.HelpText();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 5"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
}

TEST(FlagsTest, ReparseResetsPositionals) {
  FlagSet flags;
  ASSERT_TRUE(flags.Parse({"one"}).ok());
  ASSERT_TRUE(flags.Parse({"two"}).ok());
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"two"}));
}

}  // namespace
}  // namespace fastod
