// Tests for the bidirectional-OD extension (paper future-work item 1):
// directional specs, descending-polarity compatibility, the discovery
// integration, and agreement with brute-force semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/brute_force_discovery.h"
#include "algo/fastod.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(DirectedSpecTest, ToStringShowsDirections) {
  DirectedSpec spec{Asc(0), Desc(2)};
  EXPECT_EQ(DirectedSpecToString(spec), "[A asc,C desc]");
  BidirectionalListOd od{{Asc(0)}, {Desc(1)}};
  EXPECT_EQ(od.ToString(), "[A asc] orders [B desc]");
}

TEST(DirectedSpecTest, SchemaNames) {
  Schema s = Schema::FromNames({"age", "birth_year"});
  BidirectionalListOd od{{Asc(0)}, {Desc(1)}};
  EXPECT_EQ(od.ToString(s), "[age asc] orders [birth_year desc]");
}

TEST(BidiCompatibilityOdTest, PairNormalizationAndTrivia) {
  BidiCompatibilityOd od(AttributeSet::Empty(), 3, 1);
  EXPECT_EQ(od.a, 1);
  EXPECT_EQ(od.b, 3);
  EXPECT_TRUE(BidiCompatibilityOd(AttributeSet::Single(1), 1, 2).IsTrivial());
  EXPECT_FALSE(BidiCompatibilityOd(AttributeSet::Empty(), 1, 2).IsTrivial());
  EXPECT_EQ(od.ToString(), "{}: B ~ D desc");
}

TEST(BidiValidatorTest, AntiCorrelatedColumnsAreOppositeCompatible) {
  // b = 10 - a: ascending a sorts b descending.
  auto t = ReadCsvString("a,b\n1,9\n2,8\n3,7\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_FALSE(v.IsOrderCompatible(AttributeSet::Empty(), 0, 1));
  EXPECT_TRUE(v.IsBidiOrderCompatible(AttributeSet::Empty(), 0, 1));
  // And the corresponding bidirectional list OD holds.
  EXPECT_TRUE(v.Holds(BidirectionalListOd{{Asc(0)}, {Desc(1)}}));
  EXPECT_FALSE(v.Holds(BidirectionalListOd{{Asc(0)}, {Asc(1)}}));
}

TEST(BidiValidatorTest, TiesInAAreFreeInBothPolarities) {
  auto t = ReadCsvString("a,b\n1,1\n1,9\n2,0\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  // Descending: B of the a=2 group (0) must be <= min B of a=1 group? No:
  // descending requires later groups to have *smaller or equal* B. max of
  // group a=1 is 9, value 0 < everything — fine.
  EXPECT_TRUE(v.IsBidiOrderCompatible(AttributeSet::Empty(), 0, 1));
}

TEST(BidiValidatorTest, OppositeViolationDetected) {
  // a and b both increase somewhere: opposite polarity fails.
  auto t = ReadCsvString("a,b\n1,1\n2,2\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_FALSE(v.IsBidiOrderCompatible(AttributeSet::Empty(), 0, 1));
  EXPECT_TRUE(v.IsOrderCompatible(AttributeSet::Empty(), 0, 1));
}

TEST(BidiValidatorTest, ContextIsolatesClasses) {
  // Within ctx groups, b decreases with a; across groups it increases.
  auto t = ReadCsvString("ctx,a,b\n1,1,20\n1,2,10\n2,1,40\n2,2,30\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_FALSE(v.IsBidiOrderCompatible(AttributeSet::Empty(), 1, 2));
  EXPECT_TRUE(v.IsBidiOrderCompatible(AttributeSet::Single(0), 1, 2));
}

TEST(BidiValidatorTest, MixedDirectionListOd) {
  // Sorting by [a asc, b desc] orders [c asc]: c = a*10 - b.
  auto t = ReadCsvString("a,b,c\n1,2,8\n1,1,9\n2,2,18\n2,1,19\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_TRUE(v.Holds(BidirectionalListOd{{Asc(0), Desc(1)}, {Asc(2)}}));
  EXPECT_FALSE(v.Holds(BidirectionalListOd{{Asc(0), Asc(1)}, {Asc(2)}}));
}

TEST(BidiDiscoveryTest, FindsAntiCorrelatedPair) {
  // ncvoter's age/birth_year: invisible to ascending-only discovery,
  // found by the bidirectional extension.
  Table t = GenNcvoterLike(300, 8, 5);
  EncodedRelation rel = Encode(t);
  int age = *t.schema().IndexOf("age");
  int birth_year = *t.schema().IndexOf("birth_year");

  FastodResult plain = Fastod().Discover(rel);
  auto in_plain =
      std::find_if(plain.compatibility_ods.begin(),
                   plain.compatibility_ods.end(),
                   [&](const CompatibilityOd& od) {
                     return od.context.IsEmpty() &&
                            od == CompatibilityOd(od.context, age,
                                                  birth_year);
                   });
  EXPECT_EQ(in_plain, plain.compatibility_ods.end());

  FastodOptions opt;
  opt.discover_bidirectional = true;
  FastodResult bidi = Fastod(opt).Discover(rel);
  EXPECT_TRUE(std::find(bidi.bidirectional_ods.begin(),
                        bidi.bidirectional_ods.end(),
                        BidiCompatibilityOd(AttributeSet::Empty(), age,
                                            birth_year)) !=
              bidi.bidirectional_ods.end());
}

TEST(BidiDiscoveryTest, AscendingPreferredOverOpposite) {
  // A pair compatible in both polarities (e.g. constant b within classes)
  // must be reported ascending, not bidirectional.
  auto t = ReadCsvString("a,b\n1,5\n2,5\n3,5\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  FastodOptions opt;
  opt.discover_bidirectional = true;
  FastodResult r = Fastod(opt).Discover(rel);
  EXPECT_TRUE(r.bidirectional_ods.empty());
}

TEST(BidiDiscoveryTest, OffByDefault) {
  auto t = ReadCsvString("a,b\n1,9\n2,8\n3,7\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  FastodResult r = Fastod().Discover(rel);
  EXPECT_TRUE(r.bidirectional_ods.empty());
  EXPECT_EQ(r.num_bidirectional, 0);
}

TEST(BidiDiscoveryTest, ConstancySideUnchanged) {
  // The FD side never depends on the polarity extension. (The ascending
  // OCD side *can* shrink: a pair resolved descending at a small context
  // is not re-reported ascending higher up — pinned by the oracle test
  // below.)
  Table t = GenRandomTable(30, 4, 3, 314);
  EncodedRelation rel = Encode(t);
  FastodResult plain = Fastod().Discover(rel);
  FastodOptions opt;
  opt.discover_bidirectional = true;
  FastodResult bidi = Fastod(opt).Discover(rel);
  EXPECT_EQ(plain.num_constancy, bidi.num_constancy);
}

TEST(BidiDiscoveryTest, EmittedBidiOdsAreValidAndNonTrivial) {
  Table t = GenRandomTable(40, 5, 4, 2718);
  EncodedRelation rel = Encode(t);
  FastodOptions opt;
  opt.discover_bidirectional = true;
  FastodResult r = Fastod(opt).Discover(rel);
  for (const BidiCompatibilityOd& od : r.bidirectional_ods) {
    EXPECT_FALSE(od.IsTrivial()) << od.ToString();
    EXPECT_TRUE(BruteIsBidiOrderCompatible(rel, od.context, od.a, od.b))
        << od.ToString();
    // The ascending polarity must have failed at this context (otherwise
    // the pair would be ascending-reported).
    EXPECT_FALSE(BruteIsOrderCompatible(rel, od.context, od.a, od.b))
        << od.ToString();
  }
}

// Oracle test: bidirectional discovery must match the exhaustive oracle
// (either-polarity minimality, ascending preference) OD-for-OD.
class BidiOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BidiOracleTest, MatchesBruteForceOracle) {
  Table t = GenRandomTable(22, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  FastodOptions opt;
  opt.discover_bidirectional = true;
  FastodResult got = Fastod(opt).Discover(rel);
  BruteForceDiscoveryResult want = BruteForceDiscoverOds(
      rel, /*max_error=*/0.0, /*discover_bidirectional=*/true);

  auto sort_c = [](std::vector<ConstancyOd> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto sort_p = [](std::vector<CompatibilityOd> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto sort_b = [](std::vector<BidiCompatibilityOd> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sort_c(got.constancy_ods), sort_c(want.constancy_ods));
  EXPECT_EQ(sort_p(got.compatibility_ods),
            sort_p(want.compatibility_ods));
  EXPECT_EQ(sort_b(got.bidirectional_ods),
            sort_b(want.bidirectional_ods));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidiOracleTest,
                         ::testing::Values(601, 602, 603, 604, 605, 606,
                                           607, 608));

// Property: directed swap checks agree with brute force in both polarities
// and both strategies.
class BidiPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BidiPropertyTest, DirectedCheckerMatchesBruteForce) {
  Table t = GenRandomTable(25, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  SortedPartitions sorted(rel);
  for (SwapCheckMethod method :
       {SwapCheckMethod::kSortBased, SwapCheckMethod::kTauBased}) {
    SwapChecker checker(&rel, &sorted, method);
    for (uint64_t mask = 0; mask < 4; ++mask) {  // contexts over attrs 0-1
      AttributeSet context(mask);
      StrippedPartition partition;
      if (context.IsEmpty()) {
        partition = StrippedPartition::Universe(rel.NumRows());
      } else {
        std::vector<const CodeColumn*> columns;
        for (int a = context.First(); a >= 0; a = context.Next(a)) {
          columns.push_back(&rel.codes(a));
        }
        partition =
            StrippedPartition::FromCodeColumns(columns, rel.NumRows());
      }
      for (int a = 2; a < 4; ++a) {
        for (int b = 2; b < 4; ++b) {
          if (a == b) continue;
          EXPECT_EQ(
              checker.IsOrderCompatibleDirected(partition, a, b, true),
              BruteIsBidiOrderCompatible(rel, context, a, b))
              << "ctx=" << mask << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST_P(BidiPropertyTest, OppositeEqualsAscendingOnNegatedColumn) {
  // Negating a column turns descending compatibility into ascending.
  Table t = GenRandomTable(30, 3, 5, GetParam() + 31);
  TableBuilder b(t.schema());
  for (int64_t r = 0; r < t.NumRows(); ++r) {
    b.AddRowUnchecked({t.at(r, 0), t.at(r, 1),
                       Value::Int(-t.at(r, 2).AsInt())});
  }
  Table negated = b.Build();
  EncodedRelation rel = Encode(t);
  EncodedRelation neg = Encode(negated);
  for (uint64_t mask = 0; mask < 2; ++mask) {
    AttributeSet ctx(mask);
    EXPECT_EQ(BruteIsBidiOrderCompatible(rel, ctx, 1, 2),
              BruteIsOrderCompatible(neg, ctx, 1, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidiPropertyTest,
                         ::testing::Values(41, 43, 47, 53, 59, 61));

}  // namespace
}  // namespace fastod
