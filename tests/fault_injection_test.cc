// Walks every named fault point in the codebase and proves each
// degrades through its coded-error path: the session turns failed (or
// the call returns a Status), the process keeps serving, and shared
// state (DatasetStore budget accounting, sink counters) stays intact.
//
// Points covered: csv.read, dataset_store.insert, partition.build,
// sink.push, httpd.write — plus the schedule machinery itself
// (FASTOD_FAULTS parsing, env reload, hit counters).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <variant>

#include "api/engines.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "common/fault.h"
#include "common/status.h"
#include "data/csv.h"
#include "data/dataset_store.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "od/attribute_set.h"
#include "server/discovery_server.h"
#include "service/discovery_service.h"

namespace fastod {
namespace {

/// Every test leaves the process schedule-free even on assertion
/// failure, so fault state cannot leak across tests.
struct ScheduleGuard {
  ~ScheduleGuard() { fault::Clear(); }
};

std::string EmployeeCsv() { return WriteCsvString(EmployeeTaxTable()); }

/// Minimal raw GET: connects, sends the request, returns everything the
/// server wrote before closing ("" when the connection died first).
std::string RawGet(int port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// ----------------------------------------------- schedule machinery

TEST(FaultScheduleTest, MalformedSpecIsRejectedAndPreservesPrevious) {
  ScheduleGuard guard;
  ASSERT_TRUE(fault::SetSchedule("csv.read:fail:1"));
  EXPECT_FALSE(fault::SetSchedule("csv.read"));            // no action
  EXPECT_FALSE(fault::SetSchedule("csv.read:explode:1"));  // bad action
  EXPECT_FALSE(fault::SetSchedule("csv.read:fail:0"));     // N is 1-based
  EXPECT_FALSE(fault::SetSchedule("csv.read:fail:x"));     // bad count
  // The valid schedule installed first is still active.
  Status status = ReadCsvString(EmployeeCsv()).status();
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  // An empty spec clears.
  ASSERT_TRUE(fault::SetSchedule(""));
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());
}

TEST(FaultScheduleTest, EnvSchedulesLoadAndClear) {
  ScheduleGuard guard;
  ASSERT_EQ(setenv("FASTOD_FAULTS", "csv.read:fail:1", 1), 0);
  EXPECT_TRUE(fault::ReloadFromEnv());
  EXPECT_FALSE(ReadCsvString(EmployeeCsv()).ok());
  ASSERT_EQ(unsetenv("FASTOD_FAULTS"), 0);
  EXPECT_TRUE(fault::ReloadFromEnv());  // unset env clears the schedule
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());
  ASSERT_EQ(setenv("FASTOD_FAULTS", "not-a-schedule", 1), 0);
  EXPECT_FALSE(fault::ReloadFromEnv());
  ASSERT_EQ(unsetenv("FASTOD_FAULTS"), 0);
}

TEST(FaultScheduleTest, HitsCountEveryPassageWhileScheduled) {
  ScheduleGuard guard;
  ASSERT_TRUE(fault::SetSchedule("csv.read:fail:3"));
  EXPECT_EQ(fault::Hits("csv.read"), 0);
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());   // hit 1: no trip
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());   // hit 2: no trip
  EXPECT_FALSE(ReadCsvString(EmployeeCsv()).ok());  // hit 3: trips
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());   // trips exactly once
  EXPECT_EQ(fault::Hits("csv.read"), 4);
  fault::Clear();
  EXPECT_EQ(fault::Hits("csv.read"), 0);  // counters reset with schedule
}

TEST(FaultScheduleTest, TrippedFaultIncrementsObservedCounter) {
  ScheduleGuard guard;
  const bool saved = obs::Enabled();
  obs::SetEnabled(true);
  // The counter counts *trips*, not passages: one fail on the second
  // hit means exactly one increment across three reads.
  obs::Counter* observed = obs::Registry::Global().GetCounter(
      "fastod_fault_observed_total",
      "Scheduled faults that tripped at their fault point",
      {{"point", "csv.read"}});
  const int64_t before = observed->Value();
  ASSERT_TRUE(fault::SetSchedule("csv.read:fail:2"));
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());
  EXPECT_FALSE(ReadCsvString(EmployeeCsv()).ok());
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());
  EXPECT_EQ(observed->Value(), before + 1);
  obs::SetEnabled(saved);
}

// ----------------------------------------------------- point: csv.read

TEST(FaultPointTest, CsvReadFailReturnsIoError) {
  ScheduleGuard guard;
  ASSERT_TRUE(fault::SetSchedule("csv.read:fail:1"));
  Result<Table> table = ReadCsvString(EmployeeCsv());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
  EXPECT_NE(table.status().ToString().find("injected fault: csv.read"),
            std::string::npos)
      << table.status().ToString();
  EXPECT_TRUE(ReadCsvString(EmployeeCsv()).ok());
}

TEST(FaultPointTest, CsvReadThrowFailsDeferredSessionServiceSurvives) {
  ScheduleGuard guard;
  // The deferred read happens on the worker thread; the throw must be
  // contained there and become a failed session, not an unwound worker.
  const std::string path = "fault_injection_tmp.csv";
  {
    std::ofstream out(path);
    out << EmployeeCsv();
  }
  DiscoveryService service(2);
  ASSERT_TRUE(fault::SetSchedule("csv.read:throw:1"));
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.SubmitCsv(*id, path).ok());
  Result<SessionState> state = service.Wait(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kFailed);
  Result<DiscoveryService::PollInfo> info = service.Poll(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->error.find("injected fault at 'csv.read'"),
            std::string::npos)
      << info->error;
  fault::Clear();
  // The worker that swallowed the throw serves the next session.
  Result<SessionId> next = service.Create("fastod");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(service.SubmitCsv(*next, path).ok());
  Result<SessionState> next_state = service.Wait(*next);
  ASSERT_TRUE(next_state.ok());
  EXPECT_EQ(*next_state, SessionState::kDone);
  std::remove(path.c_str());
}

// ----------------------------------------- point: dataset_store.insert

TEST(FaultPointTest, DatasetStoreInsertFailLeavesStoreUntouched) {
  ScheduleGuard guard;
  DatasetStore store(64 << 20);
  ASSERT_TRUE(fault::SetSchedule("dataset_store.insert:fail:1"));
  auto put = store.PutTable("employee", EmployeeTaxTable());
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.status().code(), StatusCode::kResourceExhausted)
      << put.status().ToString();
  // The refusal happened before any mutation: no entry, no bytes, and
  // the id is free for the retry.
  EXPECT_EQ(store.size(), 0);
  EXPECT_EQ(store.TotalBytes(), 0);
  EXPECT_TRUE(store.List().empty());
  auto retry = store.PutTable("employee", EmployeeTaxTable());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(store.size(), 1);
  EXPECT_GT(store.TotalBytes(), 0);
}

TEST(FaultPointTest, DatasetStoreInsertThrowIsContainedByHttpHandler) {
  ScheduleGuard guard;
  DiscoveryServerOptions options;
  options.port = 0;
  options.http_threads = 2;
  options.worker_threads = 1;
  DiscoveryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(fault::SetSchedule("dataset_store.insert:throw:1"));
  // Exercised via the store directly (the HTTP handler containment is
  // covered by server_test's ThrowingAlgorithm): the throw must leave
  // the server's store consistent for the next upload.
  EXPECT_THROW(
      (void)server.service().store().PutTable("d1", EmployeeTaxTable()),
      fault::FaultInjected);
  fault::Clear();
  EXPECT_EQ(server.service().store().size(), 0);
  auto retry = server.service().store().PutTable("d1", EmployeeTaxTable());
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  server.Stop();
}

// ---------------------------------------------- point: partition.build

TEST(FaultPointTest, PartitionBuildThrowFailsSessionWorkerSurvives) {
  ScheduleGuard guard;
  DiscoveryService service(1);  // one worker: its survival is observable
  ASSERT_TRUE(fault::SetSchedule("partition.build:throw:1"));
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*id).ok());
  Result<SessionState> state = service.Wait(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kFailed);
  Result<DiscoveryService::PollInfo> info = service.Poll(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->error_code, StatusCode::kInternal);
  EXPECT_NE(info->error.find("injected fault at 'partition.build'"),
            std::string::npos)
      << info->error;
  fault::Clear();
  Result<SessionId> next = service.Create("fastod");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(service.LoadTable(*next, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*next).ok());
  Result<SessionState> next_state = service.Wait(*next);
  ASSERT_TRUE(next_state.ok());
  EXPECT_EQ(*next_state, SessionState::kDone);
}

// --------------------------------------------------- point: sink.push

TEST(FaultPointTest, SinkPushFailDropsExactlyTheScheduledEvent) {
  ScheduleGuard guard;
  ChannelOdSink sink(8);
  ASSERT_TRUE(fault::SetSchedule("sink.push:fail:2"));
  sink.OnConstancy(ConstancyOd{AttributeSet(), 0});  // delivered
  sink.OnConstancy(ConstancyOd{AttributeSet(), 1});  // tripped: dropped
  sink.OnConstancy(ConstancyOd{AttributeSet(), 2});  // delivered
  EXPECT_EQ(sink.pushed(), 2);
  EXPECT_EQ(sink.dropped(), 1);
  // The two delivered events drain in order; the dropped one is gone.
  OdEvent event;
  ASSERT_TRUE(sink.Pop(&event));
  EXPECT_EQ(std::get<ConstancyOd>(event).attribute, 0);
  ASSERT_TRUE(sink.Pop(&event));
  EXPECT_EQ(std::get<ConstancyOd>(event).attribute, 2);
  sink.Close();
  EXPECT_FALSE(sink.Pop(&event));
}

TEST(FaultPointTest, SinkPushFailDuringRunStillFinishesSession) {
  ScheduleGuard guard;
  ChannelOdSink sink(1024);
  DiscoveryService service(1);
  ASSERT_TRUE(fault::SetSchedule("sink.push:fail:1"));
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.SetSink(*id, &sink).ok());
  ASSERT_TRUE(service.Submit(*id).ok());
  Result<SessionState> state = service.Wait(*id);
  ASSERT_TRUE(state.ok());
  // Lost delivery is a delivery problem, not a discovery problem.
  EXPECT_EQ(*state, SessionState::kDone);
  EXPECT_EQ(sink.dropped(), 1);
  EXPECT_GT(sink.pushed(), 0);
}

// -------------------------------------------------- point: httpd.write

TEST(FaultPointTest, HttpdWriteFailClosesOneConnectionServerKeepsServing) {
  ScheduleGuard guard;
  DiscoveryServerOptions options;
  options.port = 0;
  options.http_threads = 2;
  options.worker_threads = 1;
  DiscoveryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(fault::SetSchedule("httpd.write:fail:1"));
  // First request: the server drops the response mid-write; the client
  // sees a closed connection with no status line, which is exactly the
  // degradation we want (no crash, no wedged handler thread).
  std::string first = RawGet(server.port(), "/v1/algorithms");
  EXPECT_EQ(first.find("200"), std::string::npos)
      << "write fault should kill the response, got: " << first;
  EXPECT_GE(fault::Hits("httpd.write"), 1);
  fault::Clear();
  // Second request on a fresh connection: full service.
  std::string second = RawGet(server.port(), "/v1/algorithms");
  EXPECT_EQ(second.rfind("HTTP/1.1 200", 0), 0) << second;
  server.Stop();
}

}  // namespace
}  // namespace fastod
