// Tests of the ORDER baseline, centered on Section 4.5 of the paper: ORDER
// is sound but *incomplete* — its candidate shape and aggressive pruning
// make it miss (a) constants, (b) ODs with repeated attributes across sides
// (embedded FDs), and (c) same-prefix ODs, all of which FASTOD finds.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/fastod.h"
#include "algo/order.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "od/mapping.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

bool HasOd(const OrderResult& r, const ListOd& od) {
  return std::find(r.ods.begin(), r.ods.end(), od) != r.ods.end();
}

TEST(OrderTest, FindsSimpleOd) {
  // b strictly increases with a: [A] ↦ [B] and [B] ↦ [A].
  auto t = ReadCsvString("a,b\n1,10\n2,20\n3,30\n");
  ASSERT_TRUE(t.ok());
  OrderResult r = OrderBaseline().Discover(Encode(*t));
  EXPECT_TRUE(HasOd(r, ListOd{{0}, {1}}));
  EXPECT_TRUE(HasOd(r, ListOd{{1}, {0}}));
}

TEST(OrderTest, RejectsSwappedPair) {
  auto t = ReadCsvString("a,b\n1,20\n2,10\n");
  ASSERT_TRUE(t.ok());
  OrderResult r = OrderBaseline().Discover(Encode(*t));
  EXPECT_TRUE(r.ods.empty());
}

TEST(OrderTest, AllReportedOdsAreValid) {
  Table t = GenRandomTable(30, 4, 3, 12345);
  EncodedRelation rel = Encode(t);
  OrderResult r = OrderBaseline().Discover(rel);
  for (const ListOd& od : r.ods) {
    EXPECT_TRUE(BruteHolds(rel, od)) << od.ToString();
  }
}

TEST(OrderTest, MissesConstantColumns) {
  // Column a is constant: FASTOD reports {}: []->a; ORDER's candidate
  // shape (non-empty lhs, disjoint sides) cannot express it.
  auto t = ReadCsvString("a,b,c\n7,1,10\n7,2,20\n7,3,15\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OrderResult order = OrderBaseline().Discover(rel);
  FastodResult fast = Fastod().Discover(rel);
  bool fastod_found_constant =
      std::find(fast.constancy_ods.begin(), fast.constancy_ods.end(),
                ConstancyOd{AttributeSet::Empty(), 0}) !=
      fast.constancy_ods.end();
  EXPECT_TRUE(fastod_found_constant);
  // Everything ORDER finds about column a keeps a on one side only, so the
  // constant-ness is representable only as b ↦ a etc. — derived facts that
  // FASTOD's canonical form renders redundant.
  for (const ListOd& od : order.ods) {
    EXPECT_FALSE(od.lhs.empty());
  }
}

TEST(OrderTest, MissesEmbeddedFdWhenCompatibilityFails) {
  // c determines d (FD), but c ~ d has swaps: the valid OD [C] ↦ [C,D]
  // (an embedded FD) exists while [C] ↦ [D] does not. ORDER generates
  // only disjoint-side candidates, so it cannot report it; FASTOD's
  // constancy side captures it as {c}: [] -> d.
  auto t = ReadCsvString("c,d\n1,20\n2,10\n3,30\n1,20\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  // Sanity: the embedded FD holds, the plain OD does not.
  EXPECT_TRUE(BruteHolds(rel, ListOd{{0}, {0, 1}}));
  EXPECT_FALSE(BruteHolds(rel, ListOd{{0}, {1}}));

  OrderResult order = OrderBaseline().Discover(rel);
  EXPECT_FALSE(HasOd(order, ListOd{{0}, {0, 1}}));

  FastodResult fast = Fastod().Discover(rel);
  EXPECT_TRUE(std::find(fast.constancy_ods.begin(),
                        fast.constancy_ods.end(),
                        ConstancyOd{AttributeSet::Single(0), 1}) !=
              fast.constancy_ods.end());
}

TEST(OrderTest, MissesOrderCompatibilityWhenFdFails) {
  // Example 2's shape: month ~ week holds but month does not determine
  // week. ORDER's split check kills [month] ↦ [week] and nothing in its
  // output captures the swap-freeness; FASTOD reports {}: month ~ week.
  auto t = ReadCsvString("m,w\n1,1\n1,2\n2,2\n2,3\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  EXPECT_TRUE(BruteIsOrderCompatible(rel, AttributeSet::Empty(), 0, 1));
  EXPECT_FALSE(BruteIsConstant(rel, AttributeSet::Single(0), 1));

  OrderResult order = OrderBaseline().Discover(rel);
  EXPECT_FALSE(HasOd(order, ListOd{{0}, {1}}));

  FastodResult fast = Fastod().Discover(rel);
  EXPECT_TRUE(std::find(fast.compatibility_ods.begin(),
                        fast.compatibility_ods.end(),
                        CompatibilityOd(AttributeSet::Empty(), 0, 1)) !=
              fast.compatibility_ods.end());
}

TEST(OrderTest, MinimalityDropsPrefixImpliedOds) {
  // If [A] ↦ [B] is valid then [A,C] ↦ [B] is implied and must not be
  // re-reported.
  auto t = ReadCsvString("a,b,c\n1,10,5\n2,20,4\n3,30,6\n");
  ASSERT_TRUE(t.ok());
  OrderResult r = OrderBaseline().Discover(Encode(*t));
  EXPECT_TRUE(HasOd(r, ListOd{{0}, {1}}));
  EXPECT_FALSE(HasOd(r, ListOd{{0, 2}, {1}}));
}

TEST(OrderTest, TimeoutFlagPropagates) {
  Table t = GenNcvoterLike(300, 14, 4);
  OrderOptions opt;
  opt.timeout_seconds = 1e-9;
  OrderResult r = OrderBaseline(opt).Discover(Encode(t));
  EXPECT_TRUE(r.timed_out);
}

TEST(OrderTest, MaxLevelBoundsListLength) {
  Table t = GenFlightLike(100, 6, 9);
  OrderOptions opt;
  opt.max_level = 3;
  OrderResult r = OrderBaseline(opt).Discover(Encode(t));
  for (const ListOd& od : r.ods) {
    EXPECT_LE(od.lhs.size() + od.rhs.size(), 3u);
  }
}

TEST(OrderTest, PruningReducesWorkOnSwappyData) {
  // On swap-heavy data, subtree pruning collapses the factorial frontier.
  // Compare at the same depth cap (4 levels of an 8-attribute list lattice
  // = 2080 nodes unpruned).
  Table t = GenHepatitisLike(60, 8, 17);
  EncodedRelation rel = Encode(t);
  OrderOptions pruned_opt;
  pruned_opt.max_level = 4;
  OrderResult pruned = OrderBaseline(pruned_opt).Discover(rel);
  OrderOptions full_opt;
  full_opt.enable_pruning = false;
  full_opt.max_level = 4;
  OrderResult full = OrderBaseline(full_opt).Discover(rel);
  EXPECT_LT(pruned.total_nodes, full.total_nodes);
  EXPECT_LT(pruned.candidates_checked, full.candidates_checked);
  // Pruning must not change soundness: both outputs identical here.
  EXPECT_EQ(pruned.ods.size(), full.ods.size());
}

TEST(OrderTest, MappedCountsDeduplicateCanonicalImages) {
  // [A] ↦ [B] and [A] ↦ [B,C] share canonical pieces; counts must merge.
  std::vector<ListOd> ods{{{0}, {1}}, {{0}, {1, 2}}};
  MappedCounts counts = MapToCanonicalCounts(ods);
  // Pieces: {A}:[]->B (shared), {A}:[]->C, {}:A~B (shared), {B}:A~C.
  EXPECT_EQ(counts.num_constancy, 2);
  EXPECT_EQ(counts.num_compatibility, 2);
  EXPECT_EQ(counts.Total(), 4);
}

TEST(OrderTest, FastodSubsumesOrderOnRandomData) {
  // Completeness comparison: every list OD ORDER reports must be implied
  // by FASTOD's output — its canonical image pieces must all be valid,
  // and FASTOD (being complete+minimal) must agree with brute force on
  // each piece. Spot-check via validity of mapped pieces.
  Table t = GenRandomTable(25, 4, 3, 777);
  EncodedRelation rel = Encode(t);
  OrderResult order = OrderBaseline().Discover(rel);
  for (const ListOd& od : order.ods) {
    for (const CanonicalOd& piece : MapListOdToCanonical(od)) {
      EXPECT_TRUE(BruteHolds(rel, piece))
          << od.ToString() << " piece " << CanonicalOdToString(piece);
    }
  }
}

}  // namespace
}  // namespace fastod
