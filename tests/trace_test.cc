// Tests for per-session trace spans (src/obs/trace.{h,cc}) and their
// wiring through DiscoverySession: the recorder's JSON shape, and —
// the acceptance bar — that the per-level counters a session's trace
// reports are bit-for-bit the counters a direct engine run produces on
// the same data.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>

#include "api/algorithm.h"
#include "api/registry.h"
#include "common/json.h"
#include "data/csv.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "service/discovery_service.h"

namespace fastod {
namespace {

class EnabledGuard {
 public:
  EnabledGuard() : saved_(obs::Enabled()) {}
  ~EnabledGuard() { obs::SetEnabled(saved_); }

 private:
  bool saved_;
};

TEST(TraceRecorder, RecordsSpansInOrder) {
  obs::TraceRecorder trace;
  trace.RecordSpan("first", 0.0, 0.5);
  trace.RecordSpan("second", 0.5, 0.25);
  Result<JsonValue> parsed = ParseJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  ASSERT_EQ(spans->array_items().size(), 2u);
  EXPECT_EQ(spans->array_items()[0].Find("name")->string_value(), "first");
  EXPECT_EQ(spans->array_items()[1].Find("name")->string_value(),
            "second");
  EXPECT_DOUBLE_EQ(
      spans->array_items()[0].Find("duration_ms")->number_value(), 500.0);
  // No engine stats installed yet.
  EXPECT_TRUE(parsed->Find("engine")->is_null());
}

TEST(TraceRecorder, RaiiSpanRecordsOnScopeExit) {
  obs::TraceRecorder trace;
  { auto span = trace.StartSpan("scoped"); }
  Result<JsonValue> parsed = ParseJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->Find("spans")->array_items().size(), 1u);
  EXPECT_EQ(parsed->Find("spans")->array_items()[0]
                .Find("name")->string_value(),
            "scoped");
}

TEST(TraceRecorder, EngineStatsRenderTotalsAndLevels) {
  obs::TraceRecorder trace;
  obs::EngineStats stats;
  stats.levels_processed = 2;
  stats.nodes_visited = 7;
  stats.ods_emitted = 3;
  stats.levels.push_back(obs::LevelStats{1, 4, 0, 4, 0, 0, 1, 0.0});
  stats.levels.push_back(obs::LevelStats{2, 3, 1, 2, 2, 1, 2, 0.0});
  trace.SetEngineStats(stats);
  EXPECT_TRUE(trace.has_engine_stats());
  Result<JsonValue> parsed = ParseJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* engine = parsed->Find("engine");
  ASSERT_TRUE(engine->is_object());
  EXPECT_EQ(engine->Find("nodes_visited")->int_value(), 7);
  EXPECT_EQ(engine->Find("ods_emitted")->int_value(), 3);
  ASSERT_EQ(engine->Find("levels")->array_items().size(), 2u);
  EXPECT_EQ(engine->Find("levels")->array_items()[1]
                .Find("nodes")->int_value(),
            3);
}

std::string WriteEmployeeCsvFile(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << WriteCsvString(EmployeeTaxTable());
  return path;
}

/// Session trace vs a direct engine run on the same CSV: the per-level
/// node/validation counters must agree bit-for-bit (the engine is
/// deterministic; the session adds observation, not behavior).
TEST(SessionTrace, LevelCountersMatchDirectRun) {
  EnabledGuard guard;
  obs::SetEnabled(true);
  std::string path = WriteEmployeeCsvFile("trace_match.csv");

  Result<std::unique_ptr<Algorithm>> direct =
      AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(direct.ok());
  Result<Table> table = ReadCsvFile(path, CsvOptions());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*direct)->LoadData(std::move(table).value()).ok());
  ASSERT_TRUE((*direct)->Execute().ok());
  const obs::EngineStats& expected = (*direct)->stats();
  ASSERT_GT(expected.levels.size(), 0u);

  DiscoveryService service(2);
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.SubmitCsv(*id, path, CsvOptions()).ok());
  ASSERT_EQ(*service.Wait(*id), SessionState::kDone);

  Result<std::string> trace_json = service.TraceJson(*id);
  ASSERT_TRUE(trace_json.ok());
  Result<JsonValue> parsed = ParseJson(*trace_json);
  ASSERT_TRUE(parsed.ok()) << *trace_json;
  const JsonValue* engine = parsed->Find("engine");
  ASSERT_TRUE(engine != nullptr && engine->is_object()) << *trace_json;
  EXPECT_EQ(engine->Find("nodes_visited")->int_value(),
            expected.nodes_visited);
  EXPECT_EQ(engine->Find("ods_emitted")->int_value(),
            expected.ods_emitted);
  const JsonValue* levels = engine->Find("levels");
  ASSERT_TRUE(levels != nullptr && levels->is_array());
  ASSERT_EQ(levels->array_items().size(), expected.levels.size());
  for (size_t i = 0; i < expected.levels.size(); ++i) {
    const JsonValue& level = levels->array_items()[i];
    EXPECT_EQ(level.Find("level")->int_value(), expected.levels[i].level);
    EXPECT_EQ(level.Find("nodes")->int_value(), expected.levels[i].nodes);
    EXPECT_EQ(level.Find("nodes_pruned")->int_value(),
              expected.levels[i].nodes_pruned);
    EXPECT_EQ(level.Find("constancy_checks")->int_value(),
              expected.levels[i].constancy_checks);
    EXPECT_EQ(level.Find("swap_checks")->int_value(),
              expected.levels[i].swap_checks);
    EXPECT_EQ(level.Find("ods_found")->int_value(),
              expected.levels[i].ods_found);
  }
}

TEST(SessionTrace, DeferredCsvSessionRecordsPhaseSpans) {
  EnabledGuard guard;
  obs::SetEnabled(true);
  std::string path = WriteEmployeeCsvFile("trace_spans.csv");
  DiscoveryService service(1);
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.SubmitCsv(*id, path, CsvOptions()).ok());
  ASSERT_EQ(*service.Wait(*id), SessionState::kDone);
  std::string trace = *service.TraceJson(*id);
  EXPECT_NE(trace.find("\"csv.parse\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"encode\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"execute\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"level[1]\""), std::string::npos) << trace;
}

TEST(SessionTrace, DisabledMetricsLeaveTraceEmpty) {
  EnabledGuard guard;
  obs::SetEnabled(false);
  DiscoveryService service(1);
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*id).ok());
  ASSERT_EQ(*service.Wait(*id), SessionState::kDone);
  std::string trace = *service.TraceJson(*id);
  EXPECT_EQ(trace, "{\"spans\": [], \"engine\": null}") << trace;
}

}  // namespace
}  // namespace fastod
