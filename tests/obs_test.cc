// Unit tests for the metrics registry (src/obs/metrics.{h,cc}): handle
// identity, label canonicalization, Prometheus text exposition (HELP
// escaping, label value escaping, cumulative histogram invariants), and
// exact counts under concurrent increments (the TSan bar for the
// lock-light hot path).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace fastod {
namespace obs {
namespace {

/// Restores the process-wide Enabled() switch on scope exit so tests
/// that toggle it cannot leak state into later suites.
class EnabledGuard {
 public:
  EnabledGuard() : saved_(Enabled()) {}
  ~EnabledGuard() { SetEnabled(saved_); }

 private:
  bool saved_;
};

TEST(ObsMetrics, CounterAndGaugeBasics) {
  Registry registry;
  Counter* c = registry.GetCounter("t_counter", "help");
  EXPECT_EQ(c->Value(), 0);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), 42);

  Gauge* g = registry.GetGauge("t_gauge", "help");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
}

TEST(ObsMetrics, SameNameAndLabelsReturnsSameHandle) {
  Registry registry;
  Counter* a = registry.GetCounter("t_total", "h", {{"k", "v"}});
  Counter* b = registry.GetCounter("t_total", "h", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("t_total", "h", {{"k", "w"}});
  EXPECT_NE(a, other);
}

TEST(ObsMetrics, LabelOrderIsCanonicalized) {
  Registry registry;
  Counter* ab = registry.GetCounter("t_total", "h",
                                    {{"a", "1"}, {"b", "2"}});
  Counter* ba = registry.GetCounter("t_total", "h",
                                    {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
}

TEST(ObsMetrics, WriteTextEmitsHelpTypeAndSeries) {
  Registry registry;
  registry.GetCounter("requests_total", "Requests served",
                      {{"route", "/x"}})->Inc(3);
  registry.GetGauge("depth", "Queue depth")->Set(5);
  std::string text = registry.WriteText();
  EXPECT_NE(text.find("# HELP requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("requests_total{route=\"/x\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 5\n"), std::string::npos);
}

TEST(ObsMetrics, LabelValuesAreEscaped) {
  Registry registry;
  registry.GetCounter("esc_total", "h",
                      {{"v", "a\\b\"c\nd"}})->Inc();
  std::string text = registry.WriteText();
  EXPECT_NE(text.find("esc_total{v=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(ObsMetrics, HelpTextIsEscaped) {
  Registry registry;
  registry.GetCounter("h_total", "line1\nline2 \\ tail")->Inc();
  std::string text = registry.WriteText();
  EXPECT_NE(text.find("# HELP h_total line1\\nline2 \\\\ tail\n"),
            std::string::npos);
}

TEST(ObsMetrics, HistogramBucketsAreLeInclusive) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat", "h", {0.1, 1.0, 10.0});
  h->Observe(0.1);   // exactly on a bound: le="0.1" bucket
  h->Observe(0.05);  // below the first bound
  h->Observe(5.0);   // (1, 10]
  h->Observe(100.0); // overflow (+Inf only)
  EXPECT_EQ(h->BucketCount(0), 2);
  EXPECT_EQ(h->BucketCount(1), 0);
  EXPECT_EQ(h->BucketCount(2), 1);
  EXPECT_EQ(h->BucketCount(3), 1);  // the +Inf bucket
  EXPECT_EQ(h->Count(), 4);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.1 + 0.05 + 5.0 + 100.0);
}

TEST(ObsMetrics, HistogramTextIsCumulativeAndEndsAtInf) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat_seconds", "h", {0.5, 2.0},
                                       {{"op", "x"}});
  // Binary-exact observations so the %.17g sum renders compactly.
  h->Observe(0.25);
  h->Observe(1.0);
  h->Observe(9.0);
  std::string text = registry.WriteText();
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"),
            std::string::npos);
  // Cumulative per-le counts: 1 at 0.5, 2 at 2.0, 3 at +Inf == _count.
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"x\",le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"x\",le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"x\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count{op=\"x\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum{op=\"x\"} 10.25\n"),
            std::string::npos);
}

TEST(ObsMetrics, DefaultBucketSetsAreStrictlyIncreasing) {
  for (const std::vector<double>& bounds :
       {LatencyBucketsSeconds(), SizeBucketsBytes()}) {
    ASSERT_GE(bounds.size(), 2u);
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(ObsMetrics, ConcurrentIncrementsAreExact) {
  Registry registry;
  Counter* counter = registry.GetCounter("racy_total", "h");
  Histogram* histogram =
      registry.GetHistogram("racy_seconds", "h", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        histogram->Observe(t % 2 == 0 ? 0.1 : 1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_EQ(histogram->BucketCount(0) + histogram->BucketCount(1),
            kThreads * kPerThread);
}

TEST(ObsMetrics, ConcurrentRegistrationReturnsOneSeries) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      handles[t] = registry.GetCounter("shared_total", "h",
                                       {{"k", "v"}});
      handles[t]->Inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->Value(), kThreads);
}

TEST(ObsMetrics, SetEnabledOverridesEnvironment) {
  EnabledGuard guard;
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

TEST(ObsMetrics, GlobalRegistryIsOneInstance) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

}  // namespace
}  // namespace obs
}  // namespace fastod
