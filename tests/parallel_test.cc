// Thread pool correctness and the parallel-discovery determinism
// guarantee: FASTOD output is bit-identical across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "algo/fastod.h"
#include "algo/tane.h"
#include "common/thread_pool.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "gen/random_table.h"

namespace fastod {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(1000, [&](int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(-5, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleIterationWorks) {
  ThreadPool pool(8);
  std::atomic<int64_t> seen{-1};
  pool.ParallelFor(1, [&](int64_t i) { seen.store(i); });
  EXPECT_EQ(seen.load(), 0);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(3);
  int64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i) { sum.fetch_add(i); });
    total += sum.load();
  }
  EXPECT_EQ(total, 50 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(257, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 257);
}

// Regression for the worker boundary: a Submit task that throws must be
// contained there — the worker survives and keeps draining the queue
// (before the fix the exception unwound WorkerMain and std::thread
// called std::terminate).
TEST(ThreadPoolTest, ThrowingSubmitTaskDoesNotKillWorker) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);  // one worker: it must survive to run the rest
    EXPECT_TRUE(pool.Submit([] { throw std::runtime_error("boom"); }));
    EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
    EXPECT_TRUE(pool.Submit([] { throw 42; }));  // non-std exceptions too
    EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  }  // ~ThreadPool drains the queue without terminate()
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, QueueDrainsAfterThrowingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(pool.Submit([] { throw std::runtime_error("boom"); }));
      EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
    }
  }  // destructor runs every queued task
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, UnevenWorkloadsFinish) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(64, [&](int64_t i) {
    // Skewed work: late iterations cost more.
    volatile int64_t x = 0;
    for (int64_t k = 0; k < i * 1000; ++k) x = x + 1;
    sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 64);
}

struct ParallelParam {
  int threads;
  uint64_t seed;
};

class ParallelFastodTest : public ::testing::TestWithParam<ParallelParam> {};

TEST_P(ParallelFastodTest, OutputIdenticalToSerial) {
  Table t = GenRandomTable(60, 6, 4, GetParam().seed);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());

  FastodResult serial = Fastod().Discover(*rel);
  FastodOptions opt;
  opt.num_threads = GetParam().threads;
  FastodResult parallel = Fastod(opt).Discover(*rel);

  // Bit-identical, including order (merge is in node order).
  EXPECT_EQ(serial.constancy_ods, parallel.constancy_ods);
  EXPECT_EQ(serial.compatibility_ods, parallel.compatibility_ods);
  EXPECT_EQ(serial.num_constancy, parallel.num_constancy);
  EXPECT_EQ(serial.num_compatibility, parallel.num_compatibility);
  EXPECT_EQ(serial.total_nodes, parallel.total_nodes);
  EXPECT_EQ(serial.levels_processed, parallel.levels_processed);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSeeds, ParallelFastodTest,
    ::testing::Values(ParallelParam{2, 1}, ParallelParam{4, 1},
                      ParallelParam{8, 1}, ParallelParam{2, 7},
                      ParallelParam{4, 7}, ParallelParam{3, 99},
                      ParallelParam{6, 12345}));

TEST(ParallelFastodTest, RealisticDatasetIdenticalAcrossThreads) {
  Table t = GenFlightLike(1500, 12, 42);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  FastodResult serial = Fastod().Discover(*rel);
  FastodOptions opt;
  opt.num_threads = 4;
  FastodResult parallel = Fastod(opt).Discover(*rel);
  EXPECT_EQ(serial.constancy_ods, parallel.constancy_ods);
  EXPECT_EQ(serial.compatibility_ods, parallel.compatibility_ods);
}

TEST(ParallelFastodTest, BidirectionalAndApproximateModesParallelize) {
  Table t = GenNcvoterLike(500, 10, 3);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  FastodOptions base;
  base.discover_bidirectional = true;
  base.max_error = 0.02;
  FastodResult serial = Fastod(base).Discover(*rel);
  FastodOptions par = base;
  par.num_threads = 4;
  FastodResult parallel = Fastod(par).Discover(*rel);
  EXPECT_EQ(serial.constancy_ods, parallel.constancy_ods);
  EXPECT_EQ(serial.compatibility_ods, parallel.compatibility_ods);
  EXPECT_EQ(serial.bidirectional_ods, parallel.bidirectional_ods);
}

TEST(ParallelTaneTest, OutputIdenticalToSerialAcrossThreadCounts) {
  Table t = GenFlightLike(800, 10, 11);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  TaneResult serial = Tane().Discover(*rel);
  for (int threads : {2, 4, 8}) {
    TaneOptions opt;
    opt.num_threads = threads;
    TaneResult parallel = Tane(opt).Discover(*rel);
    EXPECT_EQ(serial.fds, parallel.fds) << threads << " threads";
    EXPECT_EQ(serial.num_fds, parallel.num_fds);
    EXPECT_EQ(serial.total_nodes, parallel.total_nodes);
    EXPECT_EQ(serial.levels_processed, parallel.levels_processed);
    EXPECT_GT(parallel.tasks_spawned, 0);
  }
}

TEST(ParallelFastodTest, TaskCountersPopulatedInParallelRuns) {
  Table t = GenRandomTable(80, 6, 4, 3);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  FastodOptions opt;
  opt.num_threads = 4;
  FastodResult r = Fastod(opt).Discover(*rel);
  // Every lattice node became ready exactly once and ran as a task.
  EXPECT_EQ(r.tasks_ready, r.total_nodes);
  EXPECT_EQ(r.tasks_spawned, r.total_nodes);
  FastodResult serial = Fastod().Discover(*rel);
  EXPECT_EQ(serial.tasks_spawned, 0);
  EXPECT_EQ(serial.tasks_ready, 0);
}

TEST(ParallelFastodTest, LevelStatsConsistent) {
  Table t = GenDbtesmaLike(400, 9, 5);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  FastodOptions opt;
  opt.num_threads = 4;
  FastodResult r = Fastod(opt).Discover(*rel);
  int64_t found = 0;
  for (const FastodLevelStats& s : r.level_stats) {
    found += s.constancy_found + s.compatibility_found +
             s.bidirectional_found;
  }
  EXPECT_EQ(found, r.NumOds());
}

}  // namespace
}  // namespace fastod
