// The work-stealing task graph (common/task_graph.h) and the
// determinism guarantee of the engines built on it.
//
// Three layers of coverage:
//
//  * TaskGraph unit tests — drain semantics, spawn-from-task, reuse,
//    exception rethrow, and the degraded inline mode on a null or
//    stopped pool (no deadlock, same results);
//  * scheduler stress — 50 seeds of random tables run under the
//    "task_graph.task:sleep:1" latency fault, which perturbs task
//    completion order on every hit; output must stay bit-identical to
//    the serial baseline regardless of interleaving (the CI stress job
//    additionally runs this under TSan);
//  * fault points and shutdown — "fail" lands on the engine's
//    cancellation path, "throw" surfaces through the session as a
//    failed Status, and a service Submit() racing Shutdown() during a
//    live task-graph run fails the session kUnavailable instead of
//    deadlocking.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algo/fastod.h"
#include "algo/tane.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "service/discovery_service.h"

namespace fastod {
namespace {

struct ScheduleGuard {
  ~ScheduleGuard() { fault::Clear(); }
};

// ------------------------------------------------- TaskGraph basics

TEST(TaskGraphTest, DrainsEverySeededTask) {
  ThreadPool pool(3);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    graph.Spawn([&] { ran.fetch_add(1); });
  }
  graph.Run();
  EXPECT_EQ(ran.load(), 200);
  EXPECT_EQ(graph.spawned(), 200);
  EXPECT_EQ(graph.executed(), 200);
  EXPECT_GE(graph.stolen(), 0);
}

TEST(TaskGraphTest, TasksSpawnTasksUntilDependenciesResolve) {
  // A binary fan-out four levels deep, spawned from inside running
  // tasks — the lattice-search shape in miniature.
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  std::function<void(int)> expand = [&](int depth) {
    ran.fetch_add(1);
    if (depth == 0) return;
    graph.Spawn([&, depth] { expand(depth - 1); });
    graph.Spawn([&, depth] { expand(depth - 1); });
  };
  graph.Spawn([&] { expand(4); });
  graph.Run();
  EXPECT_EQ(ran.load(), 31);  // 1 + 2 + 4 + 8 + 16
  EXPECT_EQ(graph.executed(), 31);
}

TEST(TaskGraphTest, NullPoolRunsInline) {
  TaskGraph graph(nullptr);
  std::atomic<int> ran{0};
  graph.Spawn([&] {
    ran.fetch_add(1);
    graph.Spawn([&] { ran.fetch_add(1); });
  });
  graph.Run();
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskGraphTest, StoppedPoolRunsInlineWithoutDeadlock) {
  // A pool that refuses work must degrade the graph to inline
  // execution on the calling thread, never block waiting for workers
  // that will not come.
  ThreadPool pool(2);
  pool.Stop();
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    graph.Spawn([&] { ran.fetch_add(1); });
  }
  graph.Run();
  EXPECT_EQ(ran.load(), 50);
}

TEST(TaskGraphTest, ReusableAcrossSequentialRuns) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  int64_t total = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    for (int i = 0; i < 64; ++i) {
      graph.Spawn([&sum, i] { sum.fetch_add(i); });
    }
    graph.Run();
    total += sum.load();
  }
  EXPECT_EQ(total, 20 * (63 * 64 / 2));
  EXPECT_EQ(graph.spawned(), 20 * 64);
  EXPECT_EQ(graph.executed(), 20 * 64);
}

TEST(TaskGraphTest, FirstExceptionRethrownAfterDrain) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  graph.Spawn([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 100; ++i) {
    graph.Spawn([&] { ran.fetch_add(1); });
  }
  EXPECT_THROW(graph.Run(), std::runtime_error);
  // The graph drained (Run returned) and is reusable afterwards.
  graph.Spawn([&] { ran.fetch_add(1); });
  graph.Run();
  EXPECT_GE(ran.load(), 1);
}

TEST(TaskGraphTest, StealsHappenUnderSkewedLoad) {
  // External spawns distribute round-robin; a worker that finishes its
  // own deque must steal the long tasks parked on other deques. Steal
  // counts are scheduling-dependent, so assert only the invariant that
  // every task ran exactly once while steals were possible.
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    graph.Spawn([&ran, i] {
      volatile int64_t x = 0;
      for (int64_t k = 0; k < (i % 4) * 20000; ++k) x = x + 1;
      ran.fetch_add(1);
    });
  }
  graph.Run();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(graph.executed(), 32);
}

// ------------------------------------------- randomized stress (50x)

// Latency injection at the per-task fault point scrambles completion
// order; the canonical-order merge must make the scramble invisible.
// Runs under TSan in the CI stress job, which also makes this the
// scheduler's data-race certification.
TEST(TaskGraphStressTest, FiftySeedsDeterministicUnderRandomLatency) {
  ScheduleGuard guard;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Table t = GenRandomTable(30, 5, 3, seed);
    auto rel = EncodedRelation::FromTable(t);
    ASSERT_TRUE(rel.ok());
    fault::Clear();
    FastodResult serial = Fastod().Discover(*rel);

    // Sleep from the first hit onward: every task gets a
    // deterministic-per-hit but schedule-shuffling delay.
    ASSERT_TRUE(fault::SetSchedule("task_graph.task:sleep:1"));
    FastodOptions opt;
    opt.num_threads = 1 + static_cast<int>(seed % 4) + 1;  // 2..5
    FastodResult parallel = Fastod(opt).Discover(*rel);

    EXPECT_EQ(serial.constancy_ods, parallel.constancy_ods)
        << "seed " << seed;
    EXPECT_EQ(serial.compatibility_ods, parallel.compatibility_ods)
        << "seed " << seed;
    EXPECT_EQ(serial.total_nodes, parallel.total_nodes) << "seed " << seed;
    EXPECT_EQ(serial.levels_processed, parallel.levels_processed)
        << "seed " << seed;
    EXPECT_FALSE(parallel.cancelled);
  }
}

TEST(TaskGraphStressTest, TaneDeterministicUnderRandomLatency) {
  ScheduleGuard guard;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Table t = GenRandomTable(40, 6, 4, seed * 17);
    auto rel = EncodedRelation::FromTable(t);
    ASSERT_TRUE(rel.ok());
    fault::Clear();
    TaneResult serial = Tane().Discover(*rel);

    ASSERT_TRUE(fault::SetSchedule("task_graph.task:sleep:1"));
    TaneOptions opt;
    opt.num_threads = 4;
    TaneResult parallel = Tane(opt).Discover(*rel);

    EXPECT_EQ(serial.fds, parallel.fds) << "seed " << seed;
    EXPECT_EQ(serial.num_fds, parallel.num_fds) << "seed " << seed;
    EXPECT_EQ(serial.total_nodes, parallel.total_nodes) << "seed " << seed;
  }
}

// ------------------------------------------------- fault-point paths

TEST(TaskGraphFaultTest, FailActionCancelsTheRunCleanly) {
  ScheduleGuard guard;
  Table t = GenFlightLike(300, 8, 5);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(fault::SetSchedule("task_graph.task:fail:4"));
  FastodOptions opt;
  opt.num_threads = 4;
  FastodResult r = Fastod(opt).Discover(*rel);
  EXPECT_TRUE(r.cancelled);
  EXPECT_GE(fault::Hits("task_graph.task"), 4);
}

TEST(TaskGraphFaultTest, ThrowActionSurfacesAsFailedSession) {
  ScheduleGuard guard;
  DiscoveryService service(1);
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadTable(*id, GenFlightLike(300, 8, 5)).ok());
  ASSERT_TRUE(service.SetOption(*id, "threads", "4").ok());
  ASSERT_TRUE(fault::SetSchedule("task_graph.task:throw:4"));
  ASSERT_TRUE(service.Submit(*id).ok());
  Result<SessionState> state = service.Wait(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kFailed);
  Result<DiscoveryService::PollInfo> info = service.Poll(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->error_code, StatusCode::kInternal);
  EXPECT_NE(info->error.find("injected fault"), std::string::npos)
      << info->error;
  // The worker survived the throwing engine; the next run succeeds.
  fault::Clear();
  Result<SessionId> next = service.Create("fastod");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(service.LoadTable(*next, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*next).ok());
  Result<SessionState> next_state = service.Wait(*next);
  ASSERT_TRUE(next_state.ok());
  EXPECT_EQ(*next_state, SessionState::kDone);
}

// --------------------------------------- Submit racing pool shutdown

// Regression: a Submit() landing after Shutdown() began — while a
// multi-threaded task-graph session still runs on the only worker —
// must fail that session kUnavailable, not queue it forever (the
// pre-Shutdown service had no way to observe the stopped pool short of
// destruction).
TEST(TaskGraphShutdownTest, SubmitDuringShutdownFailsUnavailable) {
  DiscoveryService service(1);
  Result<SessionId> running = service.Create("fastod");
  ASSERT_TRUE(running.ok());
  // Big enough that the run comfortably spans the shutdown request.
  ASSERT_TRUE(service.LoadTable(*running, GenFlightLike(3000, 12, 9)).ok());
  ASSERT_TRUE(service.SetOption(*running, "threads", "4").ok());
  ASSERT_TRUE(service.Submit(*running).ok());

  std::thread stopper([&] { service.Shutdown(); });
  // Shutdown() marks the pool stopped immediately (then blocks on the
  // drain); poll until a probe submission observes the refusal.
  Status refused = Status::Ok();
  SessionId probe_id = -1;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Result<SessionId> probe = service.Create("fastod");
    ASSERT_TRUE(probe.ok());
    probe_id = *probe;
    ASSERT_TRUE(service.LoadTable(probe_id, EmployeeTaxTable()).ok());
    refused = service.Submit(probe_id);
    if (!refused.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable)
      << refused.ToString();
  // The refused session is terminal-failed with the same code — a
  // Wait() on it returns instead of hanging.
  Result<DiscoveryService::PollInfo> info = service.Poll(probe_id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, SessionState::kFailed);
  EXPECT_EQ(info->error_code, StatusCode::kUnavailable);

  stopper.join();  // returns once the running session finished
  Result<SessionState> state = service.Wait(*running);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kDone);
}

}  // namespace
}  // namespace fastod
