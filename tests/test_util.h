// Small helpers shared across test translation units. Header-only:
// CMake globs tests/*_test.cc, so anything here must be inline.
#ifndef FASTOD_TESTS_TEST_UTIL_H_
#define FASTOD_TESTS_TEST_UTIL_H_

#include <cctype>
#include <string>

namespace fastod {

/// Masks the wall-clock "seconds" values in a report JSON so two runs of
/// identical discovery output compare equal bit-for-bit.
inline std::string MaskSeconds(std::string json) {
  size_t pos = 0;
  const std::string key = "\"seconds\": ";
  while ((pos = json.find(key, pos)) != std::string::npos) {
    size_t start = pos + key.size();
    size_t end = start;
    while (end < json.size() &&
           (std::isdigit(static_cast<unsigned char>(json[end])) != 0 ||
            json[end] == '.' || json[end] == 'e' || json[end] == '-' ||
            json[end] == '+')) {
      ++end;
    }
    json.replace(start, end - start, "X");
    pos = start;
  }
  return json;
}

/// Removes the ,"trace": {...} object the server splices into /result
/// bodies while metrics are enabled. Traces carry wall-clock spans and
/// source-dependent cache counters (a dataset-bound session skips the
/// csv.parse span and seeds its partition cache), so bit-for-bit
/// comparisons of the discovery output strip the trace first.
inline std::string StripTrace(std::string json) {
  size_t pos = json.find(",\"trace\":");
  if (pos == std::string::npos) return json;
  // The splice sits immediately before the body's final brace.
  size_t end = json.rfind('}');
  if (end == std::string::npos || end <= pos) return json;
  json.erase(pos, end - pos);
  return json;
}

}  // namespace fastod

#endif  // FASTOD_TESTS_TEST_UTIL_H_
