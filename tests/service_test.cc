// Tests for the service layer (src/service/): session state machine,
// DiscoveryService scheduling on the shared thread pool, cancellation of
// queued and running sessions, shared sinks through MutexOdSink, and —
// the acceptance bar — that concurrent mixed-algorithm sessions produce
// bit-for-bit the results of sequential single-session runs even while
// another session is cancelled mid-flight.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "api/engines.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "gen/generators.h"
#include "service/discovery_service.h"
#include "test_util.h"

namespace fastod {
namespace {

Table WideFlight() { return GenFlightLike(400, 10, 7); }

// ------------------------------------------------------------- session

TEST(DiscoverySessionTest, LifecycleStates) {
  auto algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(algo.ok());
  DiscoverySession session(std::move(algo).value());
  EXPECT_EQ(session.state(), SessionState::kCreated);
  EXPECT_FALSE(IsTerminal(session.state()));

  ASSERT_TRUE(session.LoadTable(EmployeeTaxTable()).ok());
  ASSERT_TRUE(session.MarkQueued().ok());
  EXPECT_EQ(session.state(), SessionState::kQueued);

  session.Run();
  EXPECT_EQ(session.state(), SessionState::kDone);
  EXPECT_TRUE(IsTerminal(session.state()));
  EXPECT_NE(session.result_json().find("\"algorithm\": \"fastod\""),
            std::string::npos);
  EXPECT_NE(session.result_text().find("FASTOD"), std::string::npos);
  EXPECT_DOUBLE_EQ(session.progress(), 1.0);
}

TEST(DiscoverySessionTest, SubmitWithoutDataFails) {
  auto algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(algo.ok());
  DiscoverySession session(std::move(algo).value());
  Status s = session.MarkQueued();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("no data"), std::string::npos);
}

TEST(DiscoverySessionTest, ConfigurationFrozenAfterQueueing) {
  auto algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(algo.ok());
  DiscoverySession session(std::move(algo).value());
  ASSERT_TRUE(session.LoadTable(EmployeeTaxTable()).ok());
  ASSERT_TRUE(session.SetOption("threads", "2").ok());
  ASSERT_TRUE(session.MarkQueued().ok());
  EXPECT_EQ(session.SetOption("threads", "4").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.LoadTable(EmployeeTaxTable()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.MarkQueued().code(), StatusCode::kFailedPrecondition);
}

TEST(DiscoverySessionTest, CancelBeforeQueueIsTerminal) {
  auto algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(algo.ok());
  DiscoverySession session(std::move(algo).value());
  session.RequestCancel();
  EXPECT_EQ(session.state(), SessionState::kCancelled);
}

TEST(DiscoverySessionTest, StateNames) {
  EXPECT_STREQ(SessionStateName(SessionState::kCreated), "created");
  EXPECT_STREQ(SessionStateName(SessionState::kQueued), "queued");
  EXPECT_STREQ(SessionStateName(SessionState::kRunning), "running");
  EXPECT_STREQ(SessionStateName(SessionState::kDone), "done");
  EXPECT_STREQ(SessionStateName(SessionState::kFailed), "failed");
  EXPECT_STREQ(SessionStateName(SessionState::kCancelled), "cancelled");
}

// ------------------------------------------------------------- service

TEST(DiscoveryServiceTest, UnknownAlgorithmListsRegistered) {
  DiscoveryService service(2);
  auto id = service.Create("magic");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
  EXPECT_NE(id.status().message().find("fastod"), std::string::npos);
}

TEST(DiscoveryServiceTest, StaleHandleIsNotFound) {
  DiscoveryService service(2);
  EXPECT_EQ(service.SetOption(99, "threads", "1").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Submit(99).code(), StatusCode::kNotFound);
  EXPECT_FALSE(service.Poll(99).ok());
  EXPECT_EQ(service.Cancel(99).code(), StatusCode::kNotFound);
  EXPECT_FALSE(service.Wait(99).ok());
  EXPECT_EQ(service.Destroy(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Find(99), nullptr);
}

TEST(DiscoveryServiceTest, SubmitPollCollectRoundTrip) {
  DiscoveryService service(2);
  auto id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service.num_sessions(), 1);
  // Results before terminal are a precondition failure, not garbage.
  ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
  EXPECT_EQ(service.ResultJson(*id).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Submit(*id).ok());
  auto state = service.Wait(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kDone);
  auto poll = service.Poll(*id);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kDone);
  EXPECT_DOUBLE_EQ(poll->progress, 1.0);
  EXPECT_TRUE(poll->error.empty());
  auto json = service.ResultJson(*id);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"algorithm\": \"fastod\""), std::string::npos);
  ASSERT_TRUE(service.Destroy(*id).ok());
  EXPECT_EQ(service.num_sessions(), 0);
}

TEST(DiscoveryServiceTest, DoubleSubmitRejected) {
  DiscoveryService service(2);
  auto id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*id).ok());
  EXPECT_EQ(service.Submit(*id).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Wait(*id).ok());
}

TEST(DiscoveryServiceTest, DeferredCsvErrorSurfacesInPoll) {
  DiscoveryService service(2);
  auto id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.SubmitCsv(*id, "/no/such/file.csv").ok());
  auto state = service.Wait(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kFailed);
  auto poll = service.Poll(*id);
  ASSERT_TRUE(poll.ok());
  EXPECT_NE(poll->error.find("/no/such/file.csv"), std::string::npos);
  // kFailed is terminal, so results are reachable but empty.
  auto json = service.ResultJson(*id);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(json->empty());
}

TEST(DiscoveryServiceTest, DeferredCsvRunsAndMatchesEagerLoad) {
  std::string path = ::testing::TempDir() + "/service_test_deferred.csv";
  ASSERT_TRUE(WriteCsvFile(EmployeeTaxTable(), path).ok());
  DiscoveryService service(2);
  auto deferred = service.Create("fastod");
  auto eager = service.Create("fastod");
  ASSERT_TRUE(deferred.ok());
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(service.SubmitCsv(*deferred, path).ok());
  ASSERT_TRUE(service.LoadCsv(*eager, path).ok());
  ASSERT_TRUE(service.Submit(*eager).ok());
  service.WaitAll();
  auto a = service.ResultJson(*deferred);
  auto b = service.ResultJson(*eager);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->empty());
  // Identical input and configuration: byte-identical reports except the
  // wall-clock line.
  EXPECT_EQ(a->substr(a->find("\"constancy_ods\"")),
            b->substr(b->find("\"constancy_ods\"")));
  std::remove(path.c_str());
}

// A deterministic concurrency probe: each sleeper blocks until `expected`
// algorithms run simultaneously, so the test fails (by timeout fallback)
// if the pool cannot actually overlap that many sessions.
class SleeperAlgorithm : public Algorithm {
 public:
  struct Rendezvous {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    int peak = 0;
    bool released = false;

    void Release() {
      {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
      }
      cv.notify_all();
    }
  };

  SleeperAlgorithm(Rendezvous* rendezvous, int expected)
      : Algorithm("sleeper", "test-only rendezvous algorithm"),
        rendezvous_(rendezvous),
        expected_(expected) {}

  std::string ResultText() const override { return "sleeper\n"; }
  std::string ResultJson() const override {
    return "{\"algorithm\": \"sleeper\"}\n";
  }

 protected:
  Status ExecuteInternal() override {
    std::unique_lock<std::mutex> lock(rendezvous_->mutex);
    ++rendezvous_->arrived;
    rendezvous_->peak = std::max(rendezvous_->peak, rendezvous_->arrived);
    rendezvous_->cv.notify_all();
    // The 30s bound turns a pool that cannot overlap `expected` sessions
    // into a slow test failure rather than a hang.
    rendezvous_->cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return rendezvous_->peak >= expected_ || rendezvous_->released;
    });
    --rendezvous_->arrived;
    return Status::Ok();
  }

 private:
  Rendezvous* rendezvous_;
  int expected_;
};

TEST(DiscoveryServiceTest, PoolOverlapsFourSessions) {
  AlgorithmRegistry registry;
  SleeperAlgorithm::Rendezvous rendezvous;
  registry.Register("sleeper", [&rendezvous] {
    return std::unique_ptr<Algorithm>(
        new SleeperAlgorithm(&rendezvous, 4));
  });
  DiscoveryService service(4, &registry);
  std::vector<SessionId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = service.Create("sleeper");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
    ASSERT_TRUE(service.Submit(*id).ok());
    ids.push_back(*id);
  }
  service.WaitAll();
  EXPECT_EQ(rendezvous.peak, 4);
  for (SessionId id : ids) {
    EXPECT_EQ(service.Poll(id)->state, SessionState::kDone);
  }
}

TEST(DiscoveryServiceTest, QueuedSessionsWaitForFreeWorkers) {
  // One worker: the second session must stay queued until the first
  // finishes, then run — submission order is execution order.
  DiscoveryService service(1);
  auto first = service.Create("fastod");
  auto second = service.Create("tane");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(service.LoadTable(*first, WideFlight()).ok());
  ASSERT_TRUE(service.LoadTable(*second, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*first).ok());
  ASSERT_TRUE(service.Submit(*second).ok());
  service.WaitAll();
  EXPECT_EQ(service.Poll(*first)->state, SessionState::kDone);
  EXPECT_EQ(service.Poll(*second)->state, SessionState::kDone);
}

TEST(DiscoveryServiceTest, CancelQueuedSessionSkipsRun) {
  AlgorithmRegistry registry;
  RegisterBuiltinAlgorithms(&registry);
  SleeperAlgorithm::Rendezvous rendezvous;
  // expected=2 never arrives (one sleeper): the blocker holds the only
  // worker until the test releases it after cancelling the queued job.
  registry.Register("sleeper", [&rendezvous] {
    return std::unique_ptr<Algorithm>(
        new SleeperAlgorithm(&rendezvous, 2));
  });
  DiscoveryService service(1, &registry);
  auto blocker = service.Create("sleeper");
  auto queued = service.Create("fastod");
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(service.LoadTable(*blocker, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.LoadTable(*queued, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*blocker).ok());
  ASSERT_TRUE(service.Submit(*queued).ok());
  ASSERT_TRUE(service.Cancel(*queued).ok());
  rendezvous.Release();
  service.WaitAll();
  EXPECT_EQ(service.Poll(*blocker)->state, SessionState::kDone);
  auto poll = service.Poll(*queued);
  EXPECT_EQ(poll->state, SessionState::kCancelled);
  // The run never happened, so there is no result.
  EXPECT_TRUE(service.ResultJson(*queued)->empty());
}

TEST(DiscoveryServiceTest, SecondSubmitCsvCannotRedirectPendingRun) {
  std::string good = ::testing::TempDir() + "/service_test_good.csv";
  ASSERT_TRUE(WriteCsvFile(EmployeeTaxTable(), good).ok());
  AlgorithmRegistry registry;
  RegisterBuiltinAlgorithms(&registry);
  SleeperAlgorithm::Rendezvous rendezvous;
  registry.Register("sleeper", [&rendezvous] {
    return std::unique_ptr<Algorithm>(new SleeperAlgorithm(&rendezvous, 2));
  });
  DiscoveryService service(1, &registry);
  auto blocker = service.Create("sleeper");
  auto id = service.Create("fastod");
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadTable(*blocker, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*blocker).ok());
  ASSERT_TRUE(service.SubmitCsv(*id, good).ok());
  // While the first submission is still queued behind the blocker, a
  // second SubmitCsv must fail without swapping the deferred source.
  EXPECT_EQ(service.SubmitCsv(*id, "/wrong/data.csv").code(),
            StatusCode::kFailedPrecondition);
  rendezvous.Release();
  service.WaitAll();
  EXPECT_EQ(service.Poll(*id)->state, SessionState::kDone);
  EXPECT_NE(service.ResultJson(*id)->find("\"algorithm\": \"fastod\""),
            std::string::npos);
  std::remove(good.c_str());
}

TEST(DiscoveryServiceTest, SharedSinkSerializedAcrossSessions) {
  CountingOdSink shared;
  DiscoveryService service(4);
  service.SetSharedSink(&shared);
  std::vector<SessionId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = service.Create("fastod");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(service.LoadTable(*id, EmployeeTaxTable()).ok());
    ASSERT_TRUE(service.Submit(*id).ok());
    ids.push_back(*id);
  }
  service.WaitAll();
  // Sequential single-session baseline.
  CollectingOdSink baseline;
  FastodAlgorithm algo;
  algo.SetSink(&baseline);
  ASSERT_TRUE(algo.LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE(algo.Execute().ok());
  EXPECT_EQ(shared.Total(), 4 * baseline.TotalOds());
  EXPECT_GT(shared.Total(), 0);
}

// ------------------------------ acceptance: concurrent mixed batch

struct SequentialBaseline {
  CollectingOdSink sink;
  std::string algorithm;
  std::vector<std::pair<std::string, std::string>> options;
  Table table;
};

// The ISSUE acceptance bar: >= 4 concurrent sessions of mixed algorithms,
// one more cancelled mid-flight; every surviving session's streamed
// output is bit-for-bit the sequential single-session run's.
TEST(DiscoveryServiceTest, ConcurrentMixedBatchMatchesSequentialRuns) {
  Table employee = EmployeeTaxTable();
  Table flight = WideFlight();
  Table ncvoter = GenNcvoterLike(300, 8, 11);

  std::vector<SequentialBaseline> jobs;
  jobs.push_back({{}, "fastod", {{"bidirectional", "true"}}, employee});
  jobs.push_back({{}, "tane", {}, flight});
  // ORDER on the employee table (ncvoter-like data is swap-heavy and its
  // incomplete pruning would find nothing to compare).
  jobs.push_back({{}, "order", {{"max-level", "3"}}, employee});
  jobs.push_back({{}, "approximate", {{"max-error", "0.2"}}, employee});
  jobs.push_back({{}, "fastod", {{"threads", "2"}}, ncvoter});

  // Sequential single-session baselines first.
  for (SequentialBaseline& job : jobs) {
    auto algo = AlgorithmRegistry::Default().Create(job.algorithm);
    ASSERT_TRUE(algo.ok());
    for (const auto& [name, value] : job.options) {
      ASSERT_TRUE((*algo)->SetOption(name, value).ok());
    }
    (*algo)->SetSink(&job.sink);
    ASSERT_TRUE((*algo)->LoadData(job.table).ok());
    ASSERT_TRUE((*algo)->Execute().ok());
    ASSERT_GT(job.sink.TotalOds(), 0) << job.algorithm;
  }

  // Now the same five jobs concurrently, plus a sixth session on an
  // exhaustive-ORDER workload that cannot finish quickly; it is
  // cancelled as soon as it reports running.
  DiscoveryService service(6);
  std::vector<SessionId> ids;
  std::vector<std::unique_ptr<CollectingOdSink>> sinks;
  auto victim = service.Create("order");
  ASSERT_TRUE(victim.ok());
  // Exhaustive list lattice over 10 attributes: factorially far from
  // terminating, with fast early level boundaries for the cancel to hit;
  // the timeout is a test-failure backstop, not the expected exit.
  ASSERT_TRUE(service.SetOption(*victim, "timeout", "120").ok());
  ASSERT_TRUE(service.LoadTable(*victim, flight).ok());
  ASSERT_TRUE(service.Submit(*victim).ok());

  for (SequentialBaseline& job : jobs) {
    auto id = service.Create(job.algorithm);
    ASSERT_TRUE(id.ok());
    for (const auto& [name, value] : job.options) {
      ASSERT_TRUE(service.SetOption(*id, name, value).ok());
    }
    sinks.push_back(std::make_unique<CollectingOdSink>());
    ASSERT_TRUE(service.SetSink(*id, sinks.back().get()).ok());
    ASSERT_TRUE(service.LoadTable(*id, job.table).ok());
    ASSERT_TRUE(service.Submit(*id).ok());
    ids.push_back(*id);
  }

  // Cancel the victim as soon as it is actually executing (mid-flight,
  // not pre-queued): the engine honors it at its next level boundary.
  while (service.Poll(*victim)->state == SessionState::kQueued) {
    std::this_thread::yield();
  }
  EXPECT_EQ(service.Poll(*victim)->state, SessionState::kRunning);
  ASSERT_TRUE(service.Cancel(*victim).ok());
  service.WaitAll();

  auto victim_state = service.Poll(*victim)->state;
  EXPECT_EQ(victim_state, SessionState::kCancelled);

  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(service.Poll(ids[i])->state, SessionState::kDone)
        << jobs[i].algorithm;
    const CollectingOdSink& concurrent = *sinks[i];
    const CollectingOdSink& sequential = jobs[i].sink;
    EXPECT_EQ(concurrent.constancy_ods(), sequential.constancy_ods())
        << jobs[i].algorithm;
    EXPECT_EQ(concurrent.compatibility_ods(),
              sequential.compatibility_ods())
        << jobs[i].algorithm;
    EXPECT_EQ(concurrent.bidirectional_ods(),
              sequential.bidirectional_ods())
        << jobs[i].algorithm;
    EXPECT_EQ(concurrent.list_ods(), sequential.list_ods())
        << jobs[i].algorithm;
    EXPECT_EQ(concurrent.TotalOds(), sequential.TotalOds())
        << jobs[i].algorithm;
  }
}

// ---------------------------------- exception containment (regression)

class ThrowingAlgorithm : public Algorithm {
 public:
  ThrowingAlgorithm()
      : Algorithm("throwing", "test-only engine that throws") {}
  std::string ResultText() const override { return ""; }
  std::string ResultJson() const override { return ""; }

 protected:
  Status ExecuteInternal() override {
    throw std::runtime_error("kaboom at level 3");
  }
};

// A throwing engine must end the session kFailed with the exception's
// message in its Status — and must not take down the worker: the next
// session on the same (single-worker) pool completes normally.
TEST(DiscoveryServiceTest, ThrowingSessionFailsWithoutKillingPool) {
  AlgorithmRegistry registry;
  RegisterBuiltinAlgorithms(&registry);
  registry.Register("throwing", [] {
    return std::unique_ptr<Algorithm>(new ThrowingAlgorithm());
  });
  DiscoveryService service(1, &registry);

  auto bad = service.Create("throwing");
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(service.LoadTable(*bad, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*bad).ok());
  auto state = service.Wait(*bad);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kFailed);
  auto poll = service.Poll(*bad);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kFailed);
  EXPECT_NE(poll->error.find("kaboom at level 3"), std::string::npos);
  EXPECT_NE(poll->error.find("Internal"), std::string::npos);

  // The single worker survived the throw: a healthy session completes.
  auto good = service.Create("fastod");
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(service.LoadTable(*good, EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.Submit(*good).ok());
  auto good_state = service.Wait(*good);
  ASSERT_TRUE(good_state.ok());
  EXPECT_EQ(*good_state, SessionState::kDone);
  EXPECT_FALSE(service.ResultJson(*good)->empty());
}

TEST(DiscoveryServiceTest, DestroyRunningSessionIsSafe) {
  DiscoveryService service(2);
  auto id = service.Create("order");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.SetOption(*id, "timeout", "120").ok());
  ASSERT_TRUE(service.LoadTable(*id, WideFlight()).ok());
  ASSERT_TRUE(service.Submit(*id).ok());
  // Destroy while queued or running: the handle dies now, the worker
  // winds down on its own (service destruction below waits for it).
  ASSERT_TRUE(service.Destroy(*id).ok());
  EXPECT_EQ(service.Find(*id), nullptr);
  EXPECT_EQ(service.num_sessions(), 0);
}

TEST(DiscoveryServiceTest, DestructorCancelsLiveSessions) {
  auto service = std::make_unique<DiscoveryService>(2);
  auto id = service->Create("order");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service->SetOption(*id, "timeout", "120").ok());
  ASSERT_TRUE(service->LoadTable(*id, WideFlight()).ok());
  ASSERT_TRUE(service->Submit(*id).ok());
  // Must return promptly (cancel at the next level boundary), not after
  // the 120s timeout backstop.
  service.reset();
  SUCCEED();
}

// ------------------------------------------------- shared datasets


// Load-once/discover-many acceptance: two sessions bound to one stored
// dataset must produce bit-for-bit the results of two independent CSV
// sessions, while the CSV is parsed exactly once — proved by deleting
// the file after the upload, so any re-parse attempt would fail the
// session.
TEST(DiscoveryServiceTest, SharedDatasetMatchesCsvSessionsWithOneParse) {
  std::string path = ::testing::TempDir() + "/service_test_dataset_" +
                     std::to_string(::getpid()) + ".csv";
  ASSERT_TRUE(WriteCsvFile(WideFlight(), path).ok());

  // Reference runs: independent per-session CSV loads.
  std::string fastod_json;
  std::string tane_json;
  {
    DiscoveryService service(2);
    auto fastod_id = service.Create("fastod");
    auto tane_id = service.Create("tane");
    ASSERT_TRUE(fastod_id.ok() && tane_id.ok());
    ASSERT_TRUE(service.SubmitCsv(*fastod_id, path).ok());
    ASSERT_TRUE(service.SubmitCsv(*tane_id, path).ok());
    service.WaitAll();
    ASSERT_EQ(service.Poll(*fastod_id)->state, SessionState::kDone);
    ASSERT_EQ(service.Poll(*tane_id)->state, SessionState::kDone);
    fastod_json = *service.ResultJson(*fastod_id);
    tane_json = *service.ResultJson(*tane_id);
  }

  DatasetStore store;
  DiscoveryService service(2, nullptr, &store);
  ASSERT_TRUE(store.PutCsvFile("flight", path).ok());
  // The one parse happened above; nothing may touch the file again.
  ASSERT_EQ(std::remove(path.c_str()), 0);

  auto fastod_id = service.Create("fastod");
  auto tane_id = service.Create("tane");
  ASSERT_TRUE(fastod_id.ok() && tane_id.ok());
  ASSERT_TRUE(service.SubmitDataset(*fastod_id, "flight").ok());
  ASSERT_TRUE(service.SubmitDataset(*tane_id, "flight").ok());
  service.WaitAll();
  ASSERT_EQ(service.Poll(*fastod_id)->state, SessionState::kDone);
  ASSERT_EQ(service.Poll(*tane_id)->state, SessionState::kDone);
  EXPECT_EQ(MaskSeconds(*service.ResultJson(*fastod_id)),
            MaskSeconds(fastod_json));
  EXPECT_EQ(MaskSeconds(*service.ResultJson(*tane_id)),
            MaskSeconds(tane_json));

  std::vector<DatasetInfo> infos = store.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].hits, 2);  // one Get per session, zero re-parses
}

TEST(DiscoveryServiceTest, SubmitDatasetUnknownIdFailsSynchronously) {
  DatasetStore store;
  DiscoveryService service(1, nullptr, &store);
  auto id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  Status missing = service.SubmitDataset(*id, "nope");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  // The session never queued; it is still configurable and usable.
  EXPECT_EQ(service.Poll(*id)->state, SessionState::kCreated);
  ASSERT_TRUE(store.PutTable("yes", EmployeeTaxTable()).ok());
  ASSERT_TRUE(service.SubmitDataset(*id, "yes").ok());
  ASSERT_TRUE(service.Wait(*id).ok());
  EXPECT_EQ(service.Poll(*id)->state, SessionState::kDone);
}

// Many concurrent mixed-algorithm sessions over one shared dataset: the
// relation and level-1 partitions are read by every worker at once; the
// results must match fresh single-session runs. (The sanitizer CI jobs
// turn any unsynchronized sharing into a failure.)
TEST(DiscoveryServiceTest, ConcurrentMixedAlgorithmsShareOneDataset) {
  // ORDER's exhaustive list lattice needs a level cap to terminate on a
  // 10-attribute relation; the other engines run with defaults.
  struct MixedJob {
    const char* algorithm;
    std::vector<std::pair<std::string, std::string>> options;
  };
  const std::vector<MixedJob> jobs = {
      {"fastod", {}},
      {"tane", {}},
      {"order", {{"max-level", "2"}}},
      {"approximate", {{"max-error", "0.2"}}},
      {"fastod", {{"threads", "2"}}},
      {"tane", {}},
  };
  // References: one fresh run per job over the same table.
  std::vector<std::string> expected;
  for (const MixedJob& job : jobs) {
    auto algo = AlgorithmRegistry::Default().Create(job.algorithm);
    ASSERT_TRUE(algo.ok());
    for (const auto& [name, value] : job.options) {
      ASSERT_TRUE((*algo)->SetOption(name, value).ok());
    }
    ASSERT_TRUE((*algo)->LoadData(WideFlight()).ok());
    ASSERT_TRUE((*algo)->Execute().ok());
    expected.push_back((*algo)->ResultJson());
  }

  DatasetStore store;
  DiscoveryService service(6, nullptr, &store);
  ASSERT_TRUE(store.PutTable("shared", WideFlight()).ok());
  std::vector<SessionId> ids;
  for (const MixedJob& job : jobs) {
    auto id = service.Create(job.algorithm);
    ASSERT_TRUE(id.ok());
    for (const auto& [name, value] : job.options) {
      ASSERT_TRUE(service.SetOption(*id, name, value).ok());
    }
    ASSERT_TRUE(service.SubmitDataset(*id, "shared").ok());
    ids.push_back(*id);
  }
  service.WaitAll();
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(service.Poll(ids[i])->state, SessionState::kDone)
        << jobs[i].algorithm;
    EXPECT_EQ(MaskSeconds(*service.ResultJson(ids[i])),
              MaskSeconds(expected[i]))
        << jobs[i].algorithm;
  }
}

// Sessions pin their dataset: budget pressure may never evict it while
// they live, and destroying the sessions releases the pin.
TEST(DiscoveryServiceTest, LiveSessionPinsDatasetAgainstEviction) {
  DatasetStore store;
  DiscoveryService service(1, nullptr, &store);
  ASSERT_TRUE(store.PutTable("pinned", EmployeeTaxTable()).ok());
  auto id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.LoadDataset(*id, "pinned").ok());

  store.SetBudgetBytes(1);
  ASSERT_TRUE(store.Get("pinned").ok());  // still resident
  ASSERT_EQ(store.evictions(), 0);

  // The bound session still runs fine under the over-budget store.
  ASSERT_TRUE(service.Submit(*id).ok());
  ASSERT_TRUE(service.Wait(*id).ok());
  EXPECT_EQ(service.Poll(*id)->state, SessionState::kDone);

  // Destroying the only pinning session makes the entry evictable; the
  // next budget pass drops it. The worker that ran the session may hold
  // its reference for a moment after Wait() returns, so spin briefly.
  ASSERT_TRUE(service.Destroy(*id).ok());
  for (int i = 0; i < 1000 && store.Get("pinned").ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    store.SetBudgetBytes(1);
  }
  EXPECT_EQ(store.Get("pinned").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.evictions(), 1);
}

}  // namespace
}  // namespace fastod
