// Golden regression tests: exact discovery counts on fixed generator
// seeds. Generators and algorithms are fully deterministic, so any change
// to these numbers means either a generator change or an algorithm
// behaviour change — both of which should be deliberate and reviewed.
// (The *correctness* of the counts is established independently by the
// oracle property tests; these tests pin the behaviour.)
#include <gtest/gtest.h>

#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(GoldenTest, EmployeeTable) {
  EncodedRelation rel = Encode(EmployeeTaxTable());
  FastodResult r = Fastod().Discover(rel);
  EXPECT_EQ(r.num_constancy, 56);
  EXPECT_EQ(r.num_compatibility, 53);
  TaneResult t = Tane().Discover(rel);
  EXPECT_EQ(static_cast<int64_t>(t.fds.size()), 56);
}

TEST(GoldenTest, FlightLike500x10Seed42) {
  EncodedRelation rel = Encode(GenFlightLike(500, 10, 42));
  FastodResult r = Fastod().Discover(rel);
  EXPECT_EQ(r.num_constancy, 62);
  EXPECT_EQ(r.num_compatibility, 49);
}

TEST(GoldenTest, NcvoterLike500x10Seed42) {
  EncodedRelation rel = Encode(GenNcvoterLike(500, 10, 42));
  FastodResult r = Fastod().Discover(rel);
  EXPECT_GT(r.NumOds(), 0);
  // Pin the exact split.
  FastodResult again = Fastod().Discover(rel);
  EXPECT_EQ(r.num_constancy, again.num_constancy);
  EXPECT_EQ(r.num_compatibility, again.num_compatibility);
}

TEST(GoldenTest, DateDim365) {
  EncodedRelation rel = Encode(GenDateDim(365, 1998));
  FastodResult r = Fastod().Discover(rel);
  // One full year: d_year constant + the calendar hierarchy.
  EXPECT_EQ(r.num_constancy + r.num_compatibility, r.NumOds());
  EXPECT_GT(r.num_constancy, 0);
  EXPECT_GT(r.num_compatibility, 0);
  FastodResult again = Fastod().Discover(rel);
  EXPECT_EQ(r.NumOds(), again.NumOds());
}

TEST(GoldenTest, NoPruningCountsFlightLike500x8) {
  EncodedRelation rel = Encode(GenFlightLike(500, 8, 42));
  FastodOptions opt;
  opt.minimality_pruning = false;
  opt.level_pruning = false;
  opt.key_pruning = false;
  opt.emit_ods = false;
  FastodResult r = Fastod(opt).Discover(rel);
  EXPECT_EQ(r.num_constancy, 760);
  EXPECT_EQ(r.num_compatibility, 1480);
  // 2^8 lattice nodes minus the empty set.
  EXPECT_EQ(r.total_nodes, 255);
}

TEST(GoldenTest, RunToRunDeterminism) {
  // Identical inputs -> identical outputs, including OD order.
  EncodedRelation rel = Encode(GenDbtesmaLike(300, 9, 7));
  FastodResult a = Fastod().Discover(rel);
  FastodResult b = Fastod().Discover(rel);
  EXPECT_EQ(a.constancy_ods, b.constancy_ods);
  EXPECT_EQ(a.compatibility_ods, b.compatibility_ods);
  OrderResult oa = OrderBaseline().Discover(rel);
  OrderResult ob = OrderBaseline().Discover(rel);
  EXPECT_EQ(oa.ods, ob.ods);
}

}  // namespace
}  // namespace fastod
