#include <gtest/gtest.h>

#include <algorithm>

#include "algo/fastod.h"
#include "data/csv.h"
#include "gen/date_dim.h"
#include "gen/generators.h"

namespace fastod {
namespace {

bool HasConstancy(const FastodResult& r, AttributeSet ctx, int a) {
  return std::find(r.constancy_ods.begin(), r.constancy_ods.end(),
                   ConstancyOd{ctx, a}) != r.constancy_ods.end();
}

bool HasCompatibility(const FastodResult& r, AttributeSet ctx, int a, int b) {
  return std::find(r.compatibility_ods.begin(), r.compatibility_ods.end(),
                   CompatibilityOd(ctx, a, b)) != r.compatibility_ods.end();
}

class EmployeeFastodTest : public ::testing::Test {
 protected:
  EmployeeFastodTest() : table_(EmployeeTaxTable()) {
    auto result = Fastod().Discover(table_);
    EXPECT_TRUE(result.ok());
    result_ = std::move(result).value();
  }

  int Col(const std::string& name) {
    auto idx = table_.schema().IndexOf(name);
    EXPECT_TRUE(idx.ok());
    return *idx;
  }

  Table table_;
  FastodResult result_;
};

TEST_F(EmployeeFastodTest, FindsPositionDeterminesBin) {
  // Example 4: {position}: [] -> bin, and it is minimal (bin is not
  // constant outright).
  EXPECT_TRUE(
      HasConstancy(result_, AttributeSet::Single(Col("posit")), Col("bin")));
  EXPECT_FALSE(HasConstancy(result_, AttributeSet::Empty(), Col("bin")));
}

TEST_F(EmployeeFastodTest, FindsSalaryTaxStructure) {
  // salary -> tax as an FD and salary ~ tax as a top-level OCD, which
  // together give [salary] ↦ [tax] by Theorem 5.
  EXPECT_TRUE(
      HasConstancy(result_, AttributeSet::Single(Col("sal")), Col("tax")));
  EXPECT_TRUE(
      HasCompatibility(result_, AttributeSet::Empty(), Col("sal"),
                       Col("tax")));
}

TEST_F(EmployeeFastodTest, SalaryGroupCompatible) {
  EXPECT_TRUE(HasCompatibility(result_, AttributeSet::Empty(), Col("sal"),
                               Col("grp")));
}

TEST_F(EmployeeFastodTest, SalarySubgroupIncompatibleAtTopLevel) {
  // Example 3's swap: no {}: sal ~ subg.
  EXPECT_FALSE(HasCompatibility(result_, AttributeSet::Empty(), Col("sal"),
                                Col("subg")));
}

TEST_F(EmployeeFastodTest, NoConstantColumns) {
  for (int a = 0; a < table_.NumColumns(); ++a) {
    EXPECT_FALSE(HasConstancy(result_, AttributeSet::Empty(), a))
        << table_.schema().name(a);
  }
}

TEST_F(EmployeeFastodTest, EmittedOdsAreNonTrivial) {
  for (const ConstancyOd& od : result_.constancy_ods) {
    EXPECT_FALSE(od.IsTrivial()) << od.ToString(table_.schema());
  }
  for (const CompatibilityOd& od : result_.compatibility_ods) {
    EXPECT_FALSE(od.IsTrivial()) << od.ToString(table_.schema());
  }
}

TEST_F(EmployeeFastodTest, CountsMatchVectors) {
  EXPECT_EQ(result_.num_constancy,
            static_cast<int64_t>(result_.constancy_ods.size()));
  EXPECT_EQ(result_.num_compatibility,
            static_cast<int64_t>(result_.compatibility_ods.size()));
  EXPECT_GT(result_.NumOds(), 0);
}

TEST(FastodTest, ConstantColumnFoundAtLevelOne) {
  auto t = ReadCsvString("a,b\n7,1\n7,2\n7,3\n");
  ASSERT_TRUE(t.ok());
  auto result = Fastod().Discover(*t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(HasConstancy(*result, AttributeSet::Empty(), 0));
  // Nothing above {}: []->a should mention a as a target again.
  for (const ConstancyOd& od : result->constancy_ods) {
    if (od.attribute == 0) {
      EXPECT_TRUE(od.context.IsEmpty());
    }
  }
}

TEST(FastodTest, KeyColumnShortCircuits) {
  // b is a key: every X ⊇ {b} is a superkey; minimal FDs {b}: []->a etc.
  auto t = ReadCsvString("a,b\n1,10\n1,20\n2,30\n");
  ASSERT_TRUE(t.ok());
  auto result = Fastod().Discover(*t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(HasConstancy(*result, AttributeSet::Single(1), 0));
}

TEST(FastodTest, TpcDsDateDimOds) {
  // The Section 4.1 examples: {d_date_sk}: [] -> d_date, {}: d_date_sk ~
  // d_date, {d_date_sk}: [] -> d_year, {}: d_date_sk ~ d_year,
  // {d_month}: [] -> d_quarter and {}: d_month ~ d_quarter.
  Table t = GenDateDim(365, 1998);
  auto result = Fastod().Discover(t);
  ASSERT_TRUE(result.ok());
  const Schema& s = t.schema();
  int sk = *s.IndexOf("d_date_sk");
  int date = *s.IndexOf("d_date");
  int year = *s.IndexOf("d_year");
  int quarter = *s.IndexOf("d_quarter");
  int month = *s.IndexOf("d_month");
  EXPECT_TRUE(HasConstancy(*result, AttributeSet::Single(sk), date));
  EXPECT_TRUE(HasCompatibility(*result, AttributeSet::Empty(), sk, date));
  // With 365 days of one year, d_year is constant — found at the top.
  EXPECT_TRUE(HasConstancy(*result, AttributeSet::Empty(), year));
  EXPECT_TRUE(HasConstancy(*result, AttributeSet::Single(month), quarter));
  EXPECT_TRUE(HasCompatibility(*result, AttributeSet::Empty(), month,
                               quarter));
}

TEST(FastodTest, EmptyRelation) {
  TableBuilder b(Schema({{"a", DataType::kInt}, {"b", DataType::kInt}}));
  auto result = Fastod().Discover(b.Build());
  ASSERT_TRUE(result.ok());
  // Everything is constant on zero tuples; minimal set: {}: []->A per
  // attribute, nothing else.
  EXPECT_EQ(result->num_constancy, 2);
  EXPECT_EQ(result->num_compatibility, 0);
}

TEST(FastodTest, SingleTupleRelation) {
  auto t = ReadCsvString("a,b,c\n1,2,3\n");
  ASSERT_TRUE(t.ok());
  auto result = Fastod().Discover(*t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_constancy, 3);
  EXPECT_EQ(result->num_compatibility, 0);
}

TEST(FastodTest, SingleColumnRelation) {
  auto t = ReadCsvString("a\n1\n2\n1\n");
  ASSERT_TRUE(t.ok());
  auto result = Fastod().Discover(*t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumOds(), 0);  // nothing non-trivial to say
}

TEST(FastodTest, MaxLevelCapsSearch) {
  Table t = GenFlightLike(200, 8, 3);
  FastodOptions opt;
  opt.max_level = 2;
  auto result = Fastod(opt).Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->levels_processed, 2);
  for (const ConstancyOd& od : result->constancy_ods) {
    EXPECT_LE(od.context.Count(), 1);
  }
  for (const CompatibilityOd& od : result->compatibility_ods) {
    EXPECT_TRUE(od.context.IsEmpty());
  }
}

TEST(FastodTest, TimeoutProducesPartialResult) {
  Table t = GenHepatitisLike(150, 18, 5);
  FastodOptions opt;
  opt.timeout_seconds = 1e-9;  // expire immediately
  auto result = Fastod(opt).Discover(t);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
}

TEST(FastodTest, LevelStatsAreRecorded) {
  Table t = GenFlightLike(100, 6, 4);
  auto result = Fastod().Discover(t);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->level_stats.empty());
  EXPECT_EQ(result->level_stats[0].level, 1);
  EXPECT_EQ(result->level_stats[0].nodes, 6);
  int64_t found = 0;
  for (const FastodLevelStats& s : result->level_stats) {
    found += s.constancy_found + s.compatibility_found;
  }
  EXPECT_EQ(found, result->NumOds());
}

TEST(FastodTest, SixtyFourAttributeBoundary) {
  // The widest legal relation: exercises attribute index 63 in every
  // bitset operation (FullSet, Without, Next past the top bit). Depth is
  // capped — the point is the width edge, not a 2^64 lattice.
  Table t = GenHepatitisLike(40, 64, 9);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  FastodOptions opt;
  opt.max_level = 2;
  FastodResult r = Fastod(opt).Discover(*rel);
  EXPECT_LE(r.levels_processed, 2);
  EXPECT_EQ(r.level_stats[0].nodes, 64);
  EXPECT_EQ(r.level_stats[1].nodes, 64 * 63 / 2);
  for (const ConstancyOd& od : r.constancy_ods) {
    EXPECT_FALSE(od.IsTrivial());
  }
}

TEST(FastodTest, CountsToStringFormat) {
  FastodResult r;
  r.num_constancy = 16;
  r.num_compatibility = 1;
  EXPECT_EQ(r.CountsToString(), "17 (16 + 1)");
}

TEST(FastodTest, EmitOdsOffStillCounts) {
  Table t = GenFlightLike(100, 6, 4);
  FastodOptions opt;
  opt.emit_ods = false;
  auto counted = Fastod(opt).Discover(t);
  auto emitted = Fastod().Discover(t);
  ASSERT_TRUE(counted.ok() && emitted.ok());
  EXPECT_TRUE(counted->constancy_ods.empty());
  EXPECT_EQ(counted->num_constancy, emitted->num_constancy);
  EXPECT_EQ(counted->num_compatibility, emitted->num_compatibility);
}

}  // namespace
}  // namespace fastod
