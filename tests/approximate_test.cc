#include <gtest/gtest.h>

#include <algorithm>

#include "algo/approximate.h"
#include "algo/brute_force_discovery.h"
#include "algo/fastod.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

StrippedPartition ContextOf(const EncodedRelation& rel, AttributeSet ctx) {
  if (ctx.IsEmpty()) return StrippedPartition::Universe(rel.NumRows());
  std::vector<const CodeColumn*> columns;
  for (int a = ctx.First(); a >= 0; a = ctx.Next(a)) {
    columns.push_back(&rel.codes(a));
  }
  return StrippedPartition::FromCodeColumns(columns, rel.NumRows());
}

TEST(ApproximateTest, ConstancyRemovalsCountMinorityValues) {
  // b within the single class: 5x value 1, 2x value 2 -> remove 2.
  auto t = ReadCsvString("b\n1\n1\n2\n1\n1\n2\n1\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  StrippedPartition universe = StrippedPartition::Universe(rel.NumRows());
  EXPECT_EQ(ConstancyRemovals(rel, universe, 0), 2);
  EXPECT_DOUBLE_EQ(ConstancyError(rel, universe, 0), 2.0 / 7.0);
}

TEST(ApproximateTest, ConstancyRemovalsZeroWhenExact) {
  auto t = ReadCsvString("a,b\n1,9\n1,9\n2,4\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  EXPECT_EQ(ConstancyRemovals(rel, ContextOf(rel, AttributeSet::Single(0)),
                              1),
            0);
}

TEST(ApproximateTest, CompatibilityRemovalsSingleOutlier) {
  // a ascending, b = 10,20,90,40,50: dropping the 90 yields swap-free.
  auto t = ReadCsvString("a,b\n1,10\n2,20\n3,90\n4,40\n5,50\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  StrippedPartition universe = StrippedPartition::Universe(rel.NumRows());
  EXPECT_EQ(CompatibilityRemovals(rel, universe, 0, 1), 1);
  EXPECT_DOUBLE_EQ(CompatibilityError(rel, universe, 0, 1), 0.2);
}

TEST(ApproximateTest, CompatibilityRemovalsRespectTies) {
  // Equal a values never swap; reversed b inside a tie costs nothing.
  auto t = ReadCsvString("a,b\n1,5\n1,1\n2,6\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  StrippedPartition universe = StrippedPartition::Universe(rel.NumRows());
  EXPECT_EQ(CompatibilityRemovals(rel, universe, 0, 1), 0);
}

TEST(ApproximateTest, CompatibilityFullReversal) {
  // b strictly decreasing in a: keep only one tuple (LNDS length 1)...
  // actually keep the longest non-decreasing subsequence, length 1.
  auto t = ReadCsvString("a,b\n1,4\n2,3\n3,2\n4,1\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  StrippedPartition universe = StrippedPartition::Universe(rel.NumRows());
  EXPECT_EQ(CompatibilityRemovals(rel, universe, 0, 1), 3);
}

TEST(ApproximateTest, CanonicalOdErrorDispatch) {
  auto t = ReadCsvString("a,b\n1,2\n1,3\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  CanonicalOd fd = ConstancyOd{AttributeSet::Single(0), 1};
  EXPECT_DOUBLE_EQ(CanonicalOdError(rel, fd), 0.5);
  CanonicalOd ocd = CompatibilityOd(AttributeSet::Empty(), 0, 1);
  EXPECT_DOUBLE_EQ(CanonicalOdError(rel, ocd), 0.0);
}

TEST(ApproximateTest, EmptyRelationHasZeroError) {
  TableBuilder b(Schema({{"a", DataType::kInt}, {"b", DataType::kInt}}));
  EncodedRelation rel = Encode(b.Build());
  CanonicalOd od = CompatibilityOd(AttributeSet::Empty(), 0, 1);
  EXPECT_DOUBLE_EQ(CanonicalOdError(rel, od), 0.0);
}

// Property: the removal count certifies a valid repair — the error is 0
// iff the exact OD holds.
class ApproximatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproximatePropertyTest, ZeroErrorIffExact) {
  Table t = GenRandomTable(25, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  for (uint64_t mask = 0; mask < 8; ++mask) {
    AttributeSet ctx(mask);
    StrippedPartition partition = ContextOf(rel, ctx);
    for (int a = 0; a < 4; ++a) {
      if (ctx.Contains(a)) continue;
      EXPECT_EQ(ConstancyRemovals(rel, partition, a) == 0,
                BruteIsConstant(rel, ctx, a));
      for (int b = a + 1; b < 4; ++b) {
        if (ctx.Contains(b)) continue;
        EXPECT_EQ(CompatibilityRemovals(rel, partition, a, b) == 0,
                  BruteIsOrderCompatible(rel, ctx, a, b));
      }
    }
  }
}

TEST_P(ApproximatePropertyTest, ErrorIsMonotoneInContext) {
  Table t = GenRandomTable(30, 4, 4, GetParam() + 50);
  EncodedRelation rel = Encode(t);
  // Growing the context can only lower the error (refined classes).
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double base = CompatibilityError(
          rel, ContextOf(rel, AttributeSet::Empty()), a, b);
      for (int z = 0; z < 4; ++z) {
        if (z == a || z == b) continue;
        double refined = CompatibilityError(
            rel, ContextOf(rel, AttributeSet::Single(z)), a, b);
        EXPECT_LE(refined, base + 1e-12);
      }
    }
  }
}

TEST_P(ApproximatePropertyTest, CompatibilityRemovalsMatchExhaustive) {
  // Exhaustive check on tiny classes: the LNDS-based removal count equals
  // the true minimum subset removal (over all 2^n subsets).
  Table t = GenRandomTable(10, 2, 4, GetParam() + 99);
  EncodedRelation rel = Encode(t);
  StrippedPartition universe = StrippedPartition::Universe(rel.NumRows());
  int64_t got = CompatibilityRemovals(rel, universe, 0, 1);

  const int64_t n = rel.NumRows();
  int64_t best_kept = 0;
  for (uint64_t keep = 0; keep < (uint64_t{1} << n); ++keep) {
    bool swap_free = true;
    for (int64_t i = 0; i < n && swap_free; ++i) {
      if (!(keep & (uint64_t{1} << i))) continue;
      for (int64_t j = 0; j < n && swap_free; ++j) {
        if (!(keep & (uint64_t{1} << j))) continue;
        if (rel.rank(i, 0) < rel.rank(j, 0) &&
            rel.rank(j, 1) < rel.rank(i, 1)) {
          swap_free = false;
        }
      }
    }
    if (swap_free) {
      best_kept = std::max<int64_t>(best_kept, __builtin_popcountll(keep));
    }
  }
  EXPECT_EQ(got, n - best_kept);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximatePropertyTest,
                         ::testing::Values(3, 6, 9, 12, 15, 18));

// Oracle test: approximate FASTOD must equal the exhaustive approximate
// oracle OD-for-OD (completeness + minimality under threshold validity).
class ApproximateOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproximateOracleTest, MatchesBruteForceAtVariousThresholds) {
  Table t = GenRandomTable(25, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  for (double eps : {0.05, 0.15, 0.4}) {
    FastodOptions opt;
    opt.max_error = eps;
    FastodResult got = Fastod(opt).Discover(rel);
    BruteForceDiscoveryResult want = BruteForceDiscoverOds(rel, eps);
    std::vector<ConstancyOd> got_c = got.constancy_ods;
    std::vector<ConstancyOd> want_c = want.constancy_ods;
    std::sort(got_c.begin(), got_c.end());
    std::sort(want_c.begin(), want_c.end());
    EXPECT_EQ(got_c, want_c) << "eps=" << eps;
    std::vector<CompatibilityOd> got_p = got.compatibility_ods;
    std::vector<CompatibilityOd> want_p = want.compatibility_ods;
    std::sort(got_p.begin(), got_p.end());
    std::sort(want_p.begin(), want_p.end());
    EXPECT_EQ(got_p, want_p) << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximateOracleTest,
                         ::testing::Values(71, 72, 73, 74, 75));

TEST(ApproximateDiscoveryTest, ThresholdZeroEqualsExact) {
  Table t = GenRandomTable(30, 4, 3, 2024);
  EncodedRelation rel = Encode(t);
  FastodResult exact = Fastod().Discover(rel);
  FastodOptions opt;
  opt.max_error = 0.0;  // explicit zero = exact path
  FastodResult approx = Fastod(opt).Discover(rel);
  EXPECT_EQ(exact.num_constancy, approx.num_constancy);
  EXPECT_EQ(exact.num_compatibility, approx.num_compatibility);
}

TEST(ApproximateDiscoveryTest, SmallThresholdToleratesInjectedNoise) {
  // A clean FD a -> b with one corrupted row out of 50: exact discovery
  // loses the context-{a} FD, approximate with 5% threshold keeps it.
  TableBuilder b(Schema({{"a", DataType::kInt}, {"b", DataType::kInt}}));
  for (int i = 0; i < 50; ++i) {
    int corrupt = (i == 17) ? 999 : 0;
    ASSERT_TRUE(
        b.AddRow({Value::Int(i % 10), Value::Int(i % 10 + corrupt)}).ok());
  }
  Table t = b.Build();
  EncodedRelation rel = Encode(t);

  FastodResult exact = Fastod().Discover(rel);
  bool exact_has = std::find(exact.constancy_ods.begin(),
                             exact.constancy_ods.end(),
                             ConstancyOd{AttributeSet::Single(0), 1}) !=
                   exact.constancy_ods.end();
  EXPECT_FALSE(exact_has);

  FastodOptions opt;
  opt.max_error = 0.05;
  FastodResult approx = Fastod(opt).Discover(rel);
  bool approx_has = std::find(approx.constancy_ods.begin(),
                              approx.constancy_ods.end(),
                              ConstancyOd{AttributeSet::Single(0), 1}) !=
                    approx.constancy_ods.end();
  EXPECT_TRUE(approx_has);
}

TEST(ApproximateDiscoveryTest, ThresholdOneAcceptsEverythingAtLevelOne) {
  // With ε = 1 every OD "holds", so the minimal set collapses to
  // {}: [] -> A per attribute.
  Table t = GenRandomTable(20, 3, 4, 11);
  EncodedRelation rel = Encode(t);
  FastodOptions opt;
  opt.max_error = 1.0;
  FastodResult r = Fastod(opt).Discover(rel);
  EXPECT_EQ(r.num_constancy, 3);
  EXPECT_EQ(r.num_compatibility, 0);
}

TEST(ApproximateDiscoveryTest, EveryApproximateOdMeetsTheThreshold) {
  Table t = GenRandomTable(40, 4, 4, 7777);
  EncodedRelation rel = Encode(t);
  FastodOptions opt;
  opt.max_error = 0.1;
  FastodResult r = Fastod(opt).Discover(rel);
  for (const ConstancyOd& od : r.constancy_ods) {
    EXPECT_LE(CanonicalOdError(rel, od), 0.1 + 1e-12) << od.ToString();
  }
  for (const CompatibilityOd& od : r.compatibility_ods) {
    EXPECT_LE(CanonicalOdError(rel, od), 0.1 + 1e-12) << od.ToString();
  }
}

}  // namespace
}  // namespace fastod
