#include <gtest/gtest.h>

#include "data/schema.h"
#include "data/table.h"
#include "data/value.h"

namespace fastod {
namespace {

TEST(ValueTest, TypesReportCorrectly) {
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt);
  EXPECT_EQ(Value::Double(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), DataType::kString);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, NumericComparisonOrdersByMagnitude) {
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Int(2)), 0);
  EXPECT_GT(Value::Compare(Value::Int(5), Value::Int(-3)), 0);
  EXPECT_EQ(Value::Compare(Value::Int(4), Value::Int(4)), 0);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(2), Value::Double(2.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.1), Value::Int(3)), 0);
}

TEST(ValueTest, LargeIntsCompareExactly) {
  // Beyond 2^53, doubles cannot distinguish adjacent ints; the int-int
  // path must stay exact.
  int64_t big = (int64_t{1} << 60) + 1;
  EXPECT_LT(Value::Compare(Value::Int(big), Value::Int(big + 1)), 0);
}

TEST(ValueTest, NullsSortFirstStringsLast) {
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_LT(Value::Compare(Value::Null(), Value::Str("")), 0);
  EXPECT_LT(Value::Compare(Value::Int(999), Value::Str("0")), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, StringLexicographicOrder) {
  EXPECT_LT(Value::Compare(Value::Str("abc"), Value::Str("abd")), 0);
  EXPECT_LT(Value::Compare(Value::Str("ab"), Value::Str("abc")), 0);
  EXPECT_EQ(Value::Compare(Value::Str("x"), Value::Str("x")), 0);
}

TEST(ValueTest, ToStringRendersAllTypes) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(SchemaTest, IndexLookups) {
  Schema s({{"a", DataType::kInt}, {"b", DataType::kString}});
  EXPECT_EQ(s.NumAttributes(), 2);
  EXPECT_EQ(*s.IndexOf("b"), 1);
  EXPECT_FALSE(s.IndexOf("z").ok());
  auto multi = s.IndicesOf({"b", "a"});
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(*multi, (std::vector<int>{1, 0}));
  EXPECT_FALSE(s.IndicesOf({"a", "nope"}).ok());
}

TEST(SchemaTest, FromNamesDefaultsToString) {
  Schema s = Schema::FromNames({"x", "y"});
  EXPECT_EQ(s.type(0), DataType::kString);
  EXPECT_EQ(s.name(1), "y");
}

TEST(SchemaTest, EqualityComparesNamesAndTypes) {
  Schema a({{"x", DataType::kInt}});
  Schema b({{"x", DataType::kInt}});
  Schema c({{"x", DataType::kDouble}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

Table MakeSmallTable() {
  TableBuilder b(Schema({{"id", DataType::kInt}, {"name", DataType::kString}}));
  EXPECT_TRUE(b.AddRow({Value::Int(1), Value::Str("one")}).ok());
  EXPECT_TRUE(b.AddRow({Value::Int(2), Value::Str("two")}).ok());
  EXPECT_TRUE(b.AddRow({Value::Int(3), Value::Str("three")}).ok());
  return b.Build();
}

TEST(TableTest, BuilderRejectsWrongArity) {
  TableBuilder b(Schema({{"id", DataType::kInt}}));
  Status s = b.AddRow({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, BuilderRejectsWrongType) {
  TableBuilder b(Schema({{"id", DataType::kInt}}));
  EXPECT_FALSE(b.AddRow({Value::Str("oops")}).ok());
  // NULL is allowed in any column.
  EXPECT_TRUE(b.AddRow({Value::Null()}).ok());
}

TEST(TableTest, CellAccess) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.NumRows(), 3);
  EXPECT_EQ(t.NumColumns(), 2);
  EXPECT_EQ(t.at(1, 0).AsInt(), 2);
  EXPECT_EQ(t.at(2, 1).AsString(), "three");
}

TEST(TableTest, ProjectReordersColumns) {
  Table t = MakeSmallTable().Project({1, 0});
  EXPECT_EQ(t.schema().name(0), "name");
  EXPECT_EQ(t.at(0, 1).AsInt(), 1);
}

TEST(TableTest, HeadTruncates) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.Head(2).NumRows(), 2);
  EXPECT_EQ(t.Head(99).NumRows(), 3);
  EXPECT_EQ(t.Head(0).NumRows(), 0);
}

TEST(TableTest, SelectRowsAllowsDuplicates) {
  Table t = MakeSmallTable().SelectRows({2, 0, 2});
  EXPECT_EQ(t.NumRows(), 3);
  EXPECT_EQ(t.at(0, 0).AsInt(), 3);
  EXPECT_EQ(t.at(1, 0).AsInt(), 1);
  EXPECT_EQ(t.at(2, 0).AsInt(), 3);
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  std::string s = MakeSmallTable().ToString(2);
  EXPECT_NE(s.find("id | name"), std::string::npos);
  EXPECT_NE(s.find("1 | one"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(TableTest, EmptyTableIsWellFormed) {
  TableBuilder b(Schema({{"a", DataType::kInt}}));
  Table t = b.Build();
  EXPECT_EQ(t.NumRows(), 0);
  EXPECT_EQ(t.NumColumns(), 1);
}

}  // namespace
}  // namespace fastod
