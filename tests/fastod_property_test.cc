// The central correctness properties of the reproduction (Theorem 8):
// FASTOD's output is *complete* and *minimal*, verified against the
// exhaustive brute-force oracle over many random relations; the pruning
// rules change performance, never output; the no-pruning configuration
// counts exactly the set of all valid non-trivial ODs.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/brute_force_discovery.h"
#include "algo/fastod.h"
#include "algo/tane.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

struct TableParam {
  int64_t rows;
  int cols;
  int64_t max_domain;
  uint64_t seed;
};

void ExpectSameOds(const FastodResult& got,
                   const BruteForceDiscoveryResult& want) {
  std::vector<ConstancyOd> got_c = got.constancy_ods;
  std::vector<ConstancyOd> want_c = want.constancy_ods;
  std::sort(got_c.begin(), got_c.end());
  std::sort(want_c.begin(), want_c.end());
  EXPECT_EQ(got_c.size(), want_c.size());
  for (size_t i = 0; i < std::min(got_c.size(), want_c.size()); ++i) {
    EXPECT_EQ(got_c[i], want_c[i])
        << "constancy mismatch at " << i << ": got "
        << got_c[i].ToString() << " want " << want_c[i].ToString();
  }
  std::vector<CompatibilityOd> got_p = got.compatibility_ods;
  std::vector<CompatibilityOd> want_p = want.compatibility_ods;
  std::sort(got_p.begin(), got_p.end());
  std::sort(want_p.begin(), want_p.end());
  EXPECT_EQ(got_p.size(), want_p.size());
  for (size_t i = 0; i < std::min(got_p.size(), want_p.size()); ++i) {
    EXPECT_EQ(got_p[i], want_p[i])
        << "compatibility mismatch at " << i << ": got "
        << got_p[i].ToString() << " want " << want_p[i].ToString();
  }
}

class FastodOracleTest : public ::testing::TestWithParam<TableParam> {};

TEST_P(FastodOracleTest, OutputEqualsBruteForceMinimalSet) {
  const TableParam& p = GetParam();
  Table t = GenRandomTable(p.rows, p.cols, p.max_domain, p.seed);
  EncodedRelation rel = Encode(t);
  FastodResult got = Fastod().Discover(rel);
  BruteForceDiscoveryResult want = BruteForceDiscoverOds(rel);
  ExpectSameOds(got, want);
}

TEST_P(FastodOracleTest, NoPruningCountsAllValidOds) {
  const TableParam& p = GetParam();
  Table t = GenRandomTable(p.rows, p.cols, p.max_domain, p.seed);
  EncodedRelation rel = Encode(t);
  FastodOptions opt;
  opt.minimality_pruning = false;
  opt.level_pruning = false;
  opt.key_pruning = false;
  opt.emit_ods = false;
  FastodResult got = Fastod(opt).Discover(rel);
  BruteForceDiscoveryResult want = BruteForceDiscoverOds(rel);
  EXPECT_EQ(got.num_constancy, want.all_valid_constancy);
  EXPECT_EQ(got.num_compatibility, want.all_valid_compatibility);
}

TEST_P(FastodOracleTest, PruningTogglesDoNotChangeOutput) {
  const TableParam& p = GetParam();
  Table t = GenRandomTable(p.rows, p.cols, p.max_domain, p.seed);
  EncodedRelation rel = Encode(t);
  FastodResult reference = Fastod().Discover(rel);

  for (int variant = 0; variant < 3; ++variant) {
    FastodOptions opt;
    opt.level_pruning = variant != 0;
    opt.key_pruning = variant != 1;
    opt.swap_method = variant == 2 ? SwapCheckMethod::kTauBased
                                   : SwapCheckMethod::kSortBased;
    FastodResult got = Fastod(opt).Discover(rel);
    auto sort_all = [](FastodResult* r) {
      std::sort(r->constancy_ods.begin(), r->constancy_ods.end());
      std::sort(r->compatibility_ods.begin(), r->compatibility_ods.end());
    };
    sort_all(&got);
    FastodResult ref = reference;
    sort_all(&ref);
    EXPECT_EQ(got.constancy_ods, ref.constancy_ods) << "variant " << variant;
    EXPECT_EQ(got.compatibility_ods, ref.compatibility_ods)
        << "variant " << variant;
  }
}

TEST_P(FastodOracleTest, EveryEmittedOdIsValidOnTheData) {
  const TableParam& p = GetParam();
  Table t = GenRandomTable(p.rows, p.cols, p.max_domain, p.seed + 9999);
  EncodedRelation rel = Encode(t);
  FastodResult got = Fastod().Discover(rel);
  for (const ConstancyOd& od : got.constancy_ods) {
    EXPECT_TRUE(BruteIsConstant(rel, od.context, od.attribute))
        << od.ToString();
  }
  for (const CompatibilityOd& od : got.compatibility_ods) {
    EXPECT_TRUE(BruteIsOrderCompatible(rel, od.context, od.a, od.b))
        << od.ToString();
  }
}

TEST_P(FastodOracleTest, FdSideMatchesTane) {
  const TableParam& p = GetParam();
  Table t = GenRandomTable(p.rows, p.cols, p.max_domain, p.seed + 555);
  EncodedRelation rel = Encode(t);
  FastodResult od_result = Fastod().Discover(rel);
  TaneResult fd_result = Tane().Discover(rel);
  std::vector<ConstancyOd> od_fds = od_result.constancy_ods;
  std::vector<ConstancyOd> tane_fds = fd_result.fds;
  std::sort(od_fds.begin(), od_fds.end());
  std::sort(tane_fds.begin(), tane_fds.end());
  EXPECT_EQ(od_fds, tane_fds);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTables, FastodOracleTest,
    ::testing::Values(
        // Small and dense in duplicates: FDs and key pruning everywhere.
        TableParam{10, 3, 2, 1}, TableParam{10, 3, 2, 2},
        TableParam{15, 4, 2, 3}, TableParam{15, 4, 3, 4},
        TableParam{20, 4, 3, 5}, TableParam{20, 4, 4, 6},
        // Wider: exercises Cs+ intersection across many parents.
        TableParam{12, 5, 2, 7}, TableParam{12, 5, 3, 8},
        TableParam{18, 5, 3, 9}, TableParam{24, 5, 4, 10},
        // More rows: context partitions with real class structure.
        TableParam{40, 4, 3, 11}, TableParam{40, 5, 4, 12},
        TableParam{60, 4, 5, 13}, TableParam{60, 5, 3, 14},
        // Near-constant and near-key extremes.
        TableParam{30, 4, 1, 15}, TableParam{30, 4, 16, 16},
        TableParam{50, 5, 2, 17}, TableParam{50, 5, 24, 18},
        // A couple of 6-attribute lattices (64 contexts each).
        TableParam{16, 6, 3, 19}, TableParam{25, 6, 4, 20}));

// Derived-column-heavy tables: planted FDs + OCDs through monotone
// coarsening, a different distribution than the uniform tables above.
class FastodDerivedOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FastodDerivedOracleTest, OutputEqualsBruteForce) {
  RandomTableOptions opt;
  opt.num_rows = 30;
  opt.num_columns = 5;
  opt.max_domain = 6;
  opt.derived_fraction = 0.7;
  opt.seed = GetParam();
  Table t = GenRandomTable(opt);
  EncodedRelation rel = Encode(t);
  ExpectSameOds(Fastod().Discover(rel), BruteForceDiscoverOds(rel));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastodDerivedOracleTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace fastod
