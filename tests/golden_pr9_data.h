// Pre-refactor golden ResultJson fixtures: the six engines run on
// GenFlightLike(200, 8, 42) (order capped at max-level=3). Captured
// from the row-oriented data plane; the columnar pipeline must
// reproduce every non-timing field bit-for-bit.
#ifndef FASTOD_TESTS_GOLDEN_PR9_DATA_H_
#define FASTOD_TESTS_GOLDEN_PR9_DATA_H_

namespace fastod {

inline const char kGoldenFastod[] = R"gold9({
  "algorithm": "fastod",
  "relation": {"rows": 200, "attributes": ["year","flight_id","date_sk","month","quarter","day","carrier","origin"]},
  "stats": {"seconds": 0.000489, "timed_out": false},
  "constancy_ods": [
    {"context": [], "attribute": "year"},
    {"context": ["date_sk"], "attribute": "flight_id"},
    {"context": ["flight_id"], "attribute": "date_sk"},
    {"context": ["flight_id"], "attribute": "month"},
    {"context": ["flight_id"], "attribute": "quarter"},
    {"context": ["flight_id"], "attribute": "day"},
    {"context": ["flight_id"], "attribute": "carrier"},
    {"context": ["flight_id"], "attribute": "origin"},
    {"context": ["date_sk"], "attribute": "month"},
    {"context": ["date_sk"], "attribute": "quarter"},
    {"context": ["date_sk"], "attribute": "day"},
    {"context": ["date_sk"], "attribute": "carrier"},
    {"context": ["date_sk"], "attribute": "origin"},
    {"context": ["month"], "attribute": "quarter"},
    {"context": ["month","day"], "attribute": "flight_id"},
    {"context": ["month","day"], "attribute": "date_sk"},
    {"context": ["month","day"], "attribute": "carrier"},
    {"context": ["month","day"], "attribute": "origin"},
    {"context": ["quarter","day","origin"], "attribute": "flight_id"},
    {"context": ["quarter","day","origin"], "attribute": "date_sk"},
    {"context": ["quarter","day","origin"], "attribute": "month"},
    {"context": ["quarter","day","origin"], "attribute": "carrier"}
  ],
  "compatibility_ods": [
    {"context": [], "a": "flight_id", "b": "date_sk"},
    {"context": [], "a": "flight_id", "b": "month"},
    {"context": [], "a": "flight_id", "b": "quarter"},
    {"context": [], "a": "date_sk", "b": "month"},
    {"context": [], "a": "date_sk", "b": "quarter"},
    {"context": [], "a": "month", "b": "quarter"},
    {"context": ["month","carrier","origin"], "a": "flight_id", "b": "day"},
    {"context": ["month","carrier","origin"], "a": "date_sk", "b": "day"}
  ],
  "bidirectional_ods": [
  ]
}
)gold9";

inline const char kGoldenTane[] = R"gold9({
  "algorithm": "tane",
  "relation": {"rows": 200, "attributes": ["year","flight_id","date_sk","month","quarter","day","carrier","origin"]},
  "stats": {"seconds": 0.000185, "timed_out": false},
  "fds": [
    {"lhs": [], "rhs": "year"},
    {"lhs": ["flight_id"], "rhs": "date_sk"},
    {"lhs": ["flight_id"], "rhs": "month"},
    {"lhs": ["flight_id"], "rhs": "quarter"},
    {"lhs": ["flight_id"], "rhs": "day"},
    {"lhs": ["flight_id"], "rhs": "carrier"},
    {"lhs": ["flight_id"], "rhs": "origin"},
    {"lhs": ["date_sk"], "rhs": "flight_id"},
    {"lhs": ["date_sk"], "rhs": "month"},
    {"lhs": ["date_sk"], "rhs": "quarter"},
    {"lhs": ["date_sk"], "rhs": "day"},
    {"lhs": ["date_sk"], "rhs": "carrier"},
    {"lhs": ["date_sk"], "rhs": "origin"},
    {"lhs": ["month"], "rhs": "quarter"},
    {"lhs": ["month","day"], "rhs": "carrier"},
    {"lhs": ["month","day"], "rhs": "origin"},
    {"lhs": ["quarter","day","origin"], "rhs": "carrier"}
  ]
}
)gold9";

inline const char kGoldenOrder[] = R"gold9({
  "algorithm": "order",
  "relation": {"rows": 200, "attributes": ["year","flight_id","date_sk","month","quarter","day","carrier","origin"]},
  "stats": {"seconds": 0.003530, "timed_out": false},
  "ods": [
    {"lhs": ["flight_id"], "rhs": ["year"]},
    {"lhs": ["date_sk"], "rhs": ["year"]},
    {"lhs": ["month"], "rhs": ["year"]},
    {"lhs": ["quarter"], "rhs": ["year"]},
    {"lhs": ["day"], "rhs": ["year"]},
    {"lhs": ["carrier"], "rhs": ["year"]},
    {"lhs": ["origin"], "rhs": ["year"]},
    {"lhs": ["date_sk"], "rhs": ["flight_id"]},
    {"lhs": ["flight_id"], "rhs": ["date_sk"]},
    {"lhs": ["flight_id"], "rhs": ["month"]},
    {"lhs": ["date_sk"], "rhs": ["month"]},
    {"lhs": ["flight_id"], "rhs": ["quarter"]},
    {"lhs": ["date_sk"], "rhs": ["quarter"]},
    {"lhs": ["month"], "rhs": ["quarter"]},
    {"lhs": ["date_sk"], "rhs": ["year","flight_id"]},
    {"lhs": ["flight_id"], "rhs": ["year","date_sk"]},
    {"lhs": ["flight_id"], "rhs": ["year","month"]},
    {"lhs": ["date_sk"], "rhs": ["year","month"]},
    {"lhs": ["flight_id"], "rhs": ["year","quarter"]},
    {"lhs": ["date_sk"], "rhs": ["year","quarter"]},
    {"lhs": ["month"], "rhs": ["year","quarter"]},
    {"lhs": ["year","date_sk"], "rhs": ["flight_id"]},
    {"lhs": ["date_sk"], "rhs": ["flight_id","year"]},
    {"lhs": ["month","date_sk"], "rhs": ["flight_id"]},
    {"lhs": ["date_sk"], "rhs": ["flight_id","month"]},
    {"lhs": ["quarter","date_sk"], "rhs": ["flight_id"]},
    {"lhs": ["date_sk"], "rhs": ["flight_id","quarter"]},
    {"lhs": ["year","flight_id"], "rhs": ["date_sk"]},
    {"lhs": ["flight_id"], "rhs": ["date_sk","year"]},
    {"lhs": ["month","flight_id"], "rhs": ["date_sk"]},
    {"lhs": ["flight_id"], "rhs": ["date_sk","month"]},
    {"lhs": ["quarter","flight_id"], "rhs": ["date_sk"]},
    {"lhs": ["flight_id"], "rhs": ["date_sk","quarter"]},
    {"lhs": ["year","flight_id"], "rhs": ["month"]},
    {"lhs": ["flight_id"], "rhs": ["month","year"]},
    {"lhs": ["year","date_sk"], "rhs": ["month"]},
    {"lhs": ["date_sk"], "rhs": ["month","year"]},
    {"lhs": ["date_sk"], "rhs": ["month","flight_id"]},
    {"lhs": ["flight_id"], "rhs": ["month","date_sk"]},
    {"lhs": ["quarter","flight_id"], "rhs": ["month"]},
    {"lhs": ["flight_id"], "rhs": ["month","quarter"]},
    {"lhs": ["quarter","date_sk"], "rhs": ["month"]},
    {"lhs": ["date_sk"], "rhs": ["month","quarter"]},
    {"lhs": ["year","flight_id"], "rhs": ["quarter"]},
    {"lhs": ["flight_id"], "rhs": ["quarter","year"]},
    {"lhs": ["year","date_sk"], "rhs": ["quarter"]},
    {"lhs": ["date_sk"], "rhs": ["quarter","year"]},
    {"lhs": ["year","month"], "rhs": ["quarter"]},
    {"lhs": ["month"], "rhs": ["quarter","year"]},
    {"lhs": ["date_sk"], "rhs": ["quarter","flight_id"]},
    {"lhs": ["flight_id"], "rhs": ["quarter","date_sk"]},
    {"lhs": ["flight_id"], "rhs": ["quarter","month"]},
    {"lhs": ["date_sk"], "rhs": ["quarter","month"]}
  ]
}
)gold9";

inline const char kGoldenBruteForce[] = R"gold9({
  "algorithm": "brute-force",
  "relation": {"rows": 200, "attributes": ["year","flight_id","date_sk","month","quarter","day","carrier","origin"]},
  "stats": {"seconds": 1.021601, "timed_out": false},
  "constancy_ods": [
    {"context": [], "attribute": "year"},
    {"context": ["flight_id"], "attribute": "date_sk"},
    {"context": ["flight_id"], "attribute": "month"},
    {"context": ["flight_id"], "attribute": "quarter"},
    {"context": ["flight_id"], "attribute": "day"},
    {"context": ["flight_id"], "attribute": "carrier"},
    {"context": ["flight_id"], "attribute": "origin"},
    {"context": ["date_sk"], "attribute": "flight_id"},
    {"context": ["date_sk"], "attribute": "month"},
    {"context": ["date_sk"], "attribute": "quarter"},
    {"context": ["date_sk"], "attribute": "day"},
    {"context": ["date_sk"], "attribute": "carrier"},
    {"context": ["date_sk"], "attribute": "origin"},
    {"context": ["month"], "attribute": "quarter"},
    {"context": ["month","day"], "attribute": "flight_id"},
    {"context": ["month","day"], "attribute": "date_sk"},
    {"context": ["month","day"], "attribute": "carrier"},
    {"context": ["month","day"], "attribute": "origin"},
    {"context": ["quarter","day","origin"], "attribute": "flight_id"},
    {"context": ["quarter","day","origin"], "attribute": "date_sk"},
    {"context": ["quarter","day","origin"], "attribute": "month"},
    {"context": ["quarter","day","origin"], "attribute": "carrier"}
  ],
  "compatibility_ods": [
    {"context": [], "a": "flight_id", "b": "date_sk"},
    {"context": [], "a": "flight_id", "b": "month"},
    {"context": [], "a": "flight_id", "b": "quarter"},
    {"context": [], "a": "date_sk", "b": "month"},
    {"context": [], "a": "date_sk", "b": "quarter"},
    {"context": [], "a": "month", "b": "quarter"},
    {"context": ["month","carrier","origin"], "a": "flight_id", "b": "day"},
    {"context": ["month","carrier","origin"], "a": "date_sk", "b": "day"}
  ],
  "bidirectional_ods": [
  ]
}
)gold9";

inline const char kGoldenApproximate[] = R"gold9({
  "algorithm": "approximate",
  "relation": {"rows": 200, "attributes": ["year","flight_id","date_sk","month","quarter","day","carrier","origin"]},
  "stats": {"seconds": 0.002613, "timed_out": false},
  "constancy_ods": [
    {"context": [], "attribute": "year"},
    {"context": ["date_sk"], "attribute": "flight_id"},
    {"context": ["flight_id"], "attribute": "date_sk"},
    {"context": ["flight_id"], "attribute": "month"},
    {"context": ["flight_id"], "attribute": "quarter"},
    {"context": ["flight_id"], "attribute": "day"},
    {"context": ["flight_id"], "attribute": "carrier"},
    {"context": ["flight_id"], "attribute": "origin"},
    {"context": ["date_sk"], "attribute": "month"},
    {"context": ["date_sk"], "attribute": "quarter"},
    {"context": ["date_sk"], "attribute": "day"},
    {"context": ["date_sk"], "attribute": "carrier"},
    {"context": ["date_sk"], "attribute": "origin"},
    {"context": ["month"], "attribute": "quarter"},
    {"context": ["month","day"], "attribute": "flight_id"},
    {"context": ["month","day"], "attribute": "date_sk"},
    {"context": ["month","day"], "attribute": "carrier"},
    {"context": ["month","day"], "attribute": "origin"},
    {"context": ["quarter","day","origin"], "attribute": "flight_id"},
    {"context": ["quarter","day","origin"], "attribute": "date_sk"},
    {"context": ["quarter","day","origin"], "attribute": "month"},
    {"context": ["day","carrier","origin"], "attribute": "flight_id"},
    {"context": ["day","carrier","origin"], "attribute": "date_sk"},
    {"context": ["day","carrier","origin"], "attribute": "month"},
    {"context": ["day","carrier","origin"], "attribute": "quarter"},
    {"context": ["quarter","day","origin"], "attribute": "carrier"}
  ],
  "compatibility_ods": [
    {"context": [], "a": "flight_id", "b": "date_sk"},
    {"context": [], "a": "flight_id", "b": "month"},
    {"context": [], "a": "flight_id", "b": "quarter"},
    {"context": [], "a": "date_sk", "b": "month"},
    {"context": [], "a": "date_sk", "b": "quarter"},
    {"context": [], "a": "month", "b": "quarter"},
    {"context": ["day","origin"], "a": "flight_id", "b": "carrier"},
    {"context": ["day","origin"], "a": "date_sk", "b": "carrier"},
    {"context": ["day","origin"], "a": "month", "b": "carrier"},
    {"context": ["day","origin"], "a": "quarter", "b": "carrier"},
    {"context": ["month","carrier","origin"], "a": "flight_id", "b": "day"},
    {"context": ["month","carrier","origin"], "a": "date_sk", "b": "day"}
  ],
  "bidirectional_ods": [
  ]
}
)gold9";

inline const char kGoldenConditional[] = R"gold9({
  "algorithm": "conditional",
  "relation": {"rows": 200, "attributes": ["year","flight_id","date_sk","month","quarter","day","carrier","origin"]},
  "stats": {"seconds": 0.003565, "timed_out": false},
  "conditional_ods": [
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000007","AP000008","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000016","AP000017","AP000018","AP000019","AP000020","AP000021","AP000022","AP000023","AP000024","AP000025","AP000026","AP000027","AP000028","AP000029","AP000030","AP000031","AP000032","AP000033","AP000034","AP000035","AP000037","AP000038","AP000039","AP000041","AP000042","AP000045","AP000048","AP000049"], "od": "{day}: [] -> carrier", "support": 0.725000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000007","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000016","AP000017","AP000018","AP000019","AP000020","AP000021","AP000022","AP000023","AP000024","AP000025","AP000026","AP000027","AP000028","AP000029","AP000030","AP000031","AP000032","AP000033","AP000034","AP000035","AP000037","AP000038","AP000039","AP000041","AP000042","AP000045","AP000048","AP000049"], "od": "{day}: [] -> flight_id", "support": 0.695000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000007","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000016","AP000017","AP000018","AP000019","AP000020","AP000021","AP000022","AP000023","AP000024","AP000025","AP000026","AP000027","AP000028","AP000029","AP000030","AP000031","AP000032","AP000033","AP000034","AP000035","AP000037","AP000038","AP000039","AP000041","AP000042","AP000045","AP000048","AP000049"], "od": "{day}: [] -> date_sk", "support": 0.695000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000007","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000016","AP000017","AP000018","AP000019","AP000020","AP000021","AP000022","AP000023","AP000024","AP000025","AP000026","AP000027","AP000028","AP000029","AP000030","AP000031","AP000032","AP000033","AP000034","AP000035","AP000037","AP000038","AP000039","AP000041","AP000042","AP000045","AP000048","AP000049"], "od": "{day}: [] -> month", "support": 0.695000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000007","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000016","AP000017","AP000018","AP000019","AP000020","AP000021","AP000022","AP000023","AP000024","AP000025","AP000026","AP000027","AP000028","AP000029","AP000030","AP000031","AP000032","AP000033","AP000034","AP000035","AP000037","AP000038","AP000039","AP000041","AP000042","AP000045","AP000048","AP000049"], "od": "{day}: [] -> quarter", "support": 0.695000},
    {"condition": "day", "bindings": ["1","2","3","4","5","6","10","11","13","16","17","18","19","22","23","24","25","27","28","29"], "od": "{origin}: [] -> flight_id", "support": 0.665000},
    {"condition": "day", "bindings": ["1","2","3","4","5","6","10","11","13","16","17","18","19","22","23","24","25","27","28","29"], "od": "{origin}: [] -> date_sk", "support": 0.665000},
    {"condition": "day", "bindings": ["1","2","3","4","5","6","10","11","13","16","17","18","19","22","23","24","25","27","28","29"], "od": "{origin}: [] -> month", "support": 0.665000},
    {"condition": "day", "bindings": ["1","2","3","4","5","6","10","11","13","16","17","18","19","22","23","24","25","27","28","29"], "od": "{origin}: [] -> quarter", "support": 0.665000},
    {"condition": "day", "bindings": ["1","2","3","4","5","6","10","11","13","16","17","18","19","22","23","24","25","27","28","29"], "od": "{origin}: [] -> carrier", "support": 0.665000},
    {"condition": "month", "bindings": ["1","3","5","7","9","10","12"], "od": "{}: flight_id ~ day", "support": 0.580000},
    {"condition": "month", "bindings": ["1","3","5","7","9","10","12"], "od": "{}: date_sk ~ day", "support": 0.580000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000008","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000015","AP000016","AP000017","AP000018","AP000019","AP000020","AP000023","AP000024","AP000026","AP000027","AP000028","AP000029","AP000030","AP000031","AP000033","AP000035","AP000036","AP000038","AP000040","AP000042","AP000045","AP000048"], "od": "{month}: [] -> carrier", "support": 0.575000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000008","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000018","AP000019","AP000020","AP000023","AP000024","AP000026","AP000027","AP000028","AP000030","AP000031","AP000033","AP000035","AP000036","AP000038","AP000040","AP000042","AP000045","AP000048"], "od": "{month}: [] -> flight_id", "support": 0.530000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000008","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000018","AP000019","AP000020","AP000023","AP000024","AP000026","AP000027","AP000028","AP000030","AP000031","AP000033","AP000035","AP000036","AP000038","AP000040","AP000042","AP000045","AP000048"], "od": "{month}: [] -> date_sk", "support": 0.530000},
    {"condition": "origin", "bindings": ["AP000000","AP000001","AP000003","AP000004","AP000005","AP000006","AP000008","AP000009","AP000010","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000018","AP000019","AP000020","AP000023","AP000024","AP000026","AP000027","AP000028","AP000030","AP000031","AP000033","AP000035","AP000036","AP000038","AP000040","AP000042","AP000045","AP000048"], "od": "{month}: [] -> day", "support": 0.530000},
    {"condition": "origin", "bindings": ["AP000003","AP000004","AP000007","AP000009","AP000011","AP000012","AP000013","AP000014","AP000015","AP000016","AP000017","AP000020","AP000022","AP000024","AP000026","AP000027","AP000028","AP000029","AP000031","AP000033","AP000035","AP000037","AP000038","AP000041","AP000042","AP000044","AP000049"], "od": "{carrier}: [] -> quarter", "support": 0.395000},
    {"condition": "origin", "bindings": ["AP000003","AP000004","AP000009","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000020","AP000022","AP000024","AP000026","AP000027","AP000028","AP000029","AP000031","AP000033","AP000035","AP000037","AP000038","AP000041","AP000042","AP000044","AP000049"], "od": "{carrier}: [] -> month", "support": 0.340000},
    {"condition": "origin", "bindings": ["AP000003","AP000004","AP000009","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000020","AP000022","AP000024","AP000026","AP000027","AP000028","AP000031","AP000033","AP000035","AP000037","AP000038","AP000041","AP000042","AP000044","AP000049"], "od": "{carrier}: [] -> flight_id", "support": 0.325000},
    {"condition": "origin", "bindings": ["AP000003","AP000004","AP000009","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000020","AP000022","AP000024","AP000026","AP000027","AP000028","AP000031","AP000033","AP000035","AP000037","AP000038","AP000041","AP000042","AP000044","AP000049"], "od": "{carrier}: [] -> date_sk", "support": 0.325000},
    {"condition": "origin", "bindings": ["AP000003","AP000004","AP000009","AP000011","AP000012","AP000013","AP000014","AP000015","AP000017","AP000020","AP000022","AP000024","AP000026","AP000027","AP000028","AP000031","AP000033","AP000035","AP000037","AP000038","AP000041","AP000042","AP000044","AP000049"], "od": "{carrier}: [] -> day", "support": 0.325000},
    {"condition": "origin", "bindings": ["AP000001","AP000003","AP000004","AP000009","AP000012","AP000013","AP000014","AP000015","AP000017","AP000018","AP000020","AP000022","AP000024","AP000026","AP000027","AP000029","AP000035","AP000037","AP000039","AP000041","AP000044","AP000048"], "od": "{quarter}: [] -> month", "support": 0.265000}
  ]
}
)gold9";

}  // namespace fastod

#endif
