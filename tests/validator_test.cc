#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

class EmployeeValidatorTest : public ::testing::Test {
 protected:
  EmployeeValidatorTest()
      : table_(EmployeeTaxTable()), rel_(Encode(table_)), v_(&rel_) {}

  int Col(const std::string& name) {
    auto idx = table_.schema().IndexOf(name);
    EXPECT_TRUE(idx.ok());
    return *idx;
  }

  Table table_;
  EncodedRelation rel_;
  OdValidator v_;
};

TEST_F(EmployeeValidatorTest, PaperExample1SalaryOrdersTax) {
  // [salary] ↦ [tax], [salary] ↦ [percentage],
  // [salary] ↦ [group, subgroup], [year, salary] ↦ [year, bin].
  EXPECT_TRUE(v_.Holds(ListOd{{Col("sal")}, {Col("tax")}}));
  EXPECT_TRUE(v_.Holds(ListOd{{Col("sal")}, {Col("perc")}}));
  EXPECT_TRUE(v_.Holds(ListOd{{Col("sal")}, {Col("grp"), Col("subg")}}));
  EXPECT_TRUE(v_.Holds(
      ListOd{{Col("yr"), Col("sal")}, {Col("yr"), Col("bin")}}));
}

TEST_F(EmployeeValidatorTest, PaperExample3PositionSplits) {
  // position does not functionally determine salary -> [posit] ↦
  // [posit, sal] fails (splits), and so does the plain OD to salary.
  EXPECT_FALSE(v_.Holds(ListOd{{Col("posit")}, {Col("posit"), Col("sal")}}));
  EXPECT_FALSE(v_.IsConstant(AttributeSet::Single(Col("posit")), Col("sal")));
}

TEST_F(EmployeeValidatorTest, PaperExample3SalarySubgroupSwap) {
  // There is a swap w.r.t. [salary] ~ [subgroup] (tuples t1, t2).
  EXPECT_FALSE(v_.AreOrderCompatible({Col("sal")}, {Col("subg")}));
  EXPECT_FALSE(
      v_.IsOrderCompatible(AttributeSet::Empty(), Col("sal"), Col("subg")));
}

TEST_F(EmployeeValidatorTest, PaperExample4ConstancyAndCompatibility) {
  // {position}: [] -> bin holds; {year}: bin ~ salary holds;
  // {position}: [] -> salary does not.
  EXPECT_TRUE(v_.IsConstant(AttributeSet::Single(Col("posit")), Col("bin")));
  EXPECT_TRUE(v_.IsOrderCompatible(AttributeSet::Single(Col("yr")),
                                   Col("bin"), Col("sal")));
  EXPECT_FALSE(
      v_.IsConstant(AttributeSet::Single(Col("posit")), Col("sal")));
}

TEST_F(EmployeeValidatorTest, OrderEquivalenceViaSuffixRule) {
  // X ↦ Y implies X ↔ YX (Suffix axiom): check on salary/tax.
  EXPECT_TRUE(v_.AreOrderEquivalent({Col("sal")},
                                    {Col("tax"), Col("sal")}));
}

TEST(ValidatorDateDimTest, PaperExample2MonthWeekCompatibility) {
  // [d_month] ~ [d_week] is valid, but [d_month] ↦ [d_week] is not
  // (month does not functionally determine week).
  Table t = GenDateDim(730, 1998);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  int month = *t.schema().IndexOf("d_month");
  int week = *t.schema().IndexOf("d_week");
  EXPECT_TRUE(v.AreOrderCompatible({month}, {week}));
  EXPECT_FALSE(v.Holds(ListOd{{month}, {week}}));
}

TEST(ValidatorDateDimTest, SurrogateKeyOrdersDateAndYear) {
  Table t = GenDateDim(400, 1998);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  int sk = *t.schema().IndexOf("d_date_sk");
  EXPECT_TRUE(v.Holds(ListOd{{sk}, {*t.schema().IndexOf("d_date")}}));
  EXPECT_TRUE(v.Holds(ListOd{{sk}, {*t.schema().IndexOf("d_year")}}));
  EXPECT_TRUE(v.Holds(ListOd{{*t.schema().IndexOf("d_month")},
                             {*t.schema().IndexOf("d_quarter")}}));
}

TEST(ValidatorTest, EmptyLhsOrdersOnlyConstants) {
  auto t = ReadCsvString("a,b\n1,7\n2,7\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_TRUE(v.Holds(ListOd{{}, {1}}));   // b constant
  EXPECT_FALSE(v.Holds(ListOd{{}, {0}}));  // a is not
}

TEST(ValidatorTest, EmptyRhsAlwaysHolds) {
  auto t = ReadCsvString("a\n2\n1\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_TRUE(v.Holds(ListOd{{0}, {}}));
  EXPECT_TRUE(v.Holds(ListOd{{}, {}}));
}

TEST(ValidatorTest, ListOrderMatters) {
  // [A,B] ↦ [B,A] generally differs from reflexive ODs: construct data
  // where [A] ↦ [B] holds but [B] ↦ [A] fails.
  auto t = ReadCsvString("a,b\n1,1\n2,1\n3,2\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  EXPECT_TRUE(v.Holds(ListOd{{0}, {1}}));
  EXPECT_FALSE(v.Holds(ListOd{{1}, {0}}));  // split: b=1 has a∈{1,2}
}

TEST(ValidatorTest, ContextPartitionIsCached) {
  auto t = ReadCsvString("a,b,c\n1,1,1\n1,2,2\n2,1,3\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  OdValidator v(&rel);
  const StrippedPartition& p1 = v.ContextPartition(AttributeSet::Single(0));
  const StrippedPartition& p2 = v.ContextPartition(AttributeSet::Single(0));
  EXPECT_EQ(&p1, &p2);  // same object, not a rebuild
}

// Property: the partition-based validator agrees with brute force on all
// three judgement kinds over random relations.
class ValidatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValidatorPropertyTest, CanonicalJudgementsMatchBruteForce) {
  Table t = GenRandomTable(24, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  for (uint64_t mask = 0; mask < 16; ++mask) {
    AttributeSet context(mask);
    for (int a = 0; a < 4; ++a) {
      EXPECT_EQ(v.IsConstant(context, a),
                BruteIsConstant(rel, context, a))
          << "ctx=" << mask << " A=" << a;
      for (int b = a + 1; b < 4; ++b) {
        EXPECT_EQ(v.IsOrderCompatible(context, a, b),
                  BruteIsOrderCompatible(rel, context, a, b))
            << "ctx=" << mask << " A=" << a << " B=" << b;
      }
    }
  }
}

TEST_P(ValidatorPropertyTest, ListOdJudgementsMatchBruteForce) {
  Rng rng(GetParam() * 977 + 5);
  Table t = GenRandomTable(20, 4, 3, GetParam() + 1000);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  for (int trial = 0; trial < 50; ++trial) {
    auto random_spec = [&rng]() {
      OrderSpec spec;
      AttributeSet used;
      int len = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < len; ++i) {
        int a = static_cast<int>(rng.Uniform(4));
        if (!used.Contains(a)) {
          spec.push_back(a);
          used = used.With(a);
        }
      }
      return spec;
    };
    ListOd od{random_spec(), random_spec()};
    EXPECT_EQ(v.Holds(od), BruteHolds(rel, od)) << od.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorPropertyTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace fastod
