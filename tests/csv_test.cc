#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "data/csv.h"
#include "gen/random_table.h"

namespace fastod {
namespace {

TEST(CsvReadTest, BasicHeaderAndTypes) {
  auto t = ReadCsvString("id,name,score\n1,alice,3.5\n2,bob,4\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2);
  EXPECT_EQ(t->schema().name(0), "id");
  EXPECT_EQ(t->schema().type(0), DataType::kInt);
  EXPECT_EQ(t->schema().type(1), DataType::kString);
  EXPECT_EQ(t->schema().type(2), DataType::kDouble);
  EXPECT_EQ(t->at(0, 1).AsString(), "alice");
  EXPECT_DOUBLE_EQ(t->at(1, 2).AsDouble(), 4.0);
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  CsvOptions opt;
  opt.has_header = false;
  auto t = ReadCsvString("1,x\n2,y\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().name(0), "col0");
  EXPECT_EQ(t->schema().name(1), "col1");
  EXPECT_EQ(t->NumRows(), 2);
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto t = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 0).AsString(), "x,y");
  EXPECT_EQ(t->at(0, 1).AsString(), "he said \"hi\"");
}

TEST(CsvReadTest, EmptyFieldsBecomeNull) {
  auto t = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, 1).is_null());
  EXPECT_TRUE(t->at(1, 0).is_null());
  EXPECT_EQ(t->at(1, 1).AsInt(), 2);
  // Type inference ignores NULLs: both columns stay int.
  EXPECT_EQ(t->schema().type(0), DataType::kInt);
}

TEST(CsvReadTest, MixedColumnFallsBackToString) {
  auto t = ReadCsvString("a\n1\nx\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().type(0), DataType::kString);
  EXPECT_EQ(t->at(0, 0).AsString(), "1");
}

TEST(CsvReadTest, IntThenDecimalBecomesDouble) {
  auto t = ReadCsvString("a\n1\n2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().type(0), DataType::kDouble);
}

TEST(CsvReadTest, TypeInferenceCanBeDisabled) {
  CsvOptions opt;
  opt.infer_types = false;
  auto t = ReadCsvString("a\n1\n2\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().type(0), DataType::kString);
}

TEST(CsvReadTest, MaxRowsLimitsData) {
  CsvOptions opt;
  opt.max_rows = 1;
  auto t = ReadCsvString("a\n1\n2\n3\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 1);
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto t = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2);
  EXPECT_EQ(t->at(1, 1).AsInt(), 4);
}

TEST(CsvReadTest, MissingFinalNewlineStillParses) {
  auto t = ReadCsvString("a\n1\n2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2);
}

TEST(CsvReadTest, RaggedRowsRejected) {
  auto t = ReadCsvString("a,b\n1\n");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReadTest, UnterminatedQuoteRejected) {
  auto t = ReadCsvString("a\n\"oops\n");
  EXPECT_FALSE(t.ok());
}

TEST(CsvReadTest, EmptyInputRejected) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvOptions opt;
  opt.delimiter = ';';
  auto t = ReadCsvString("a;b\n1;2\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 1).AsInt(), 2);
}

TEST(CsvWriteTest, RoundTripPreservesContent) {
  auto original = ReadCsvString("id,name\n1,\"a,b\"\n2,plain\n");
  ASSERT_TRUE(original.ok());
  std::string written = WriteCsvString(*original);
  auto reread = ReadCsvString(written);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->NumRows(), original->NumRows());
  EXPECT_EQ(reread->at(0, 1).AsString(), "a,b");
  EXPECT_EQ(reread->at(1, 1).AsString(), "plain");
}

TEST(CsvWriteTest, NullsWriteAsEmptyFields) {
  auto t = ReadCsvString("a,b\n,1\n");
  ASSERT_TRUE(t.ok());
  std::string written = WriteCsvString(*t);
  EXPECT_NE(written.find("\n,1\n"), std::string::npos);
}

TEST(CsvFileTest, WriteAndReadBack) {
  auto t = ReadCsvString("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(t.ok());
  std::string path = ::testing::TempDir() + "/fastod_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 2);
  EXPECT_EQ(back->at(1, 0).AsInt(), 3);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto t = ReadCsvFile("/nonexistent/path/nope.csv");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
}

// Robustness sweep: the parser must never crash or hang on arbitrary
// byte soup — it returns either a table or a clean error Status.
class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, ArbitraryBytesNeverCrash) {
  Rng rng(GetParam());
  const char alphabet[] = "ab,\"\n\r\t;0123456789.\\x";
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    int64_t len = rng.Uniform(120);
    for (int64_t i = 0; i < len; ++i) {
      input += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    auto t = ReadCsvString(input);
    if (t.ok()) {
      // Anything parsed must be structurally sound and re-serializable.
      EXPECT_GE(t->NumColumns(), 1);
      std::string out = WriteCsvString(*t);
      auto back = ReadCsvString(out);
      ASSERT_TRUE(back.ok()) << "round-trip failed for: " << input;
      EXPECT_EQ(back->NumRows(), t->NumRows());
    } else {
      EXPECT_FALSE(t.status().message().empty());
    }
  }
}

TEST_P(CsvFuzzTest, RandomTablesRoundTripLosslessly) {
  Rng rng(GetParam() + 77);
  for (int trial = 0; trial < 20; ++trial) {
    Table t = GenRandomTable(1 + rng.Uniform(30),
                             1 + static_cast<int>(rng.Uniform(6)),
                             1 + rng.Uniform(8), rng.Next64());
    auto back = ReadCsvString(WriteCsvString(t));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->NumRows(), t.NumRows());
    ASSERT_EQ(back->NumColumns(), t.NumColumns());
    for (int64_t r = 0; r < t.NumRows(); ++r) {
      for (int c = 0; c < t.NumColumns(); ++c) {
        EXPECT_EQ(Value::Compare(back->at(r, c), t.at(r, c)), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Values(1001, 2002, 3003, 4004));

}  // namespace
}  // namespace fastod
