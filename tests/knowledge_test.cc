// OdKnowledge: implication queries over a complete minimal discovery must
// agree *exactly* with validation against the data — the operational
// meaning of Theorem 8's completeness, exercised across random relations
// and the paper's examples.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/fastod.h"
#include "common/rng.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "od/knowledge.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(OdKnowledgeTest, TrivialOdsAlwaysImplied) {
  FastodResult empty;
  OdKnowledge k(empty);
  EXPECT_TRUE(k.ImpliesConstancy(AttributeSet::FromIndices({0, 1}), 1));
  EXPECT_TRUE(k.ImpliesCompatibility(AttributeSet::Empty(), 2, 2));
  EXPECT_TRUE(k.ImpliesCompatibility(AttributeSet::Single(3), 3, 4));
  EXPECT_FALSE(k.ImpliesConstancy(AttributeSet::Empty(), 0));
}

TEST(OdKnowledgeTest, AugmentationLiftsContexts) {
  FastodResult r;
  r.constancy_ods.push_back(ConstancyOd{AttributeSet::Single(0), 2});
  r.compatibility_ods.push_back(
      CompatibilityOd(AttributeSet::Single(1), 3, 4));
  OdKnowledge k(r);
  // Supersets of the emitted contexts are implied...
  EXPECT_TRUE(k.ImpliesConstancy(AttributeSet::FromIndices({0, 1}), 2));
  EXPECT_TRUE(
      k.ImpliesCompatibility(AttributeSet::FromIndices({1, 5}), 3, 4));
  // ...subsets are not.
  EXPECT_FALSE(k.ImpliesConstancy(AttributeSet::Empty(), 2));
  EXPECT_FALSE(k.ImpliesCompatibility(AttributeSet::Empty(), 3, 4));
}

TEST(OdKnowledgeTest, PropagateFromConstancy) {
  FastodResult r;
  r.constancy_ods.push_back(ConstancyOd{AttributeSet::Single(0), 2});
  OdKnowledge k(r);
  // {0}: [] -> 2 implies {0}: 2 ~ anything.
  EXPECT_TRUE(k.ImpliesCompatibility(AttributeSet::Single(0), 2, 5));
  EXPECT_TRUE(k.ImpliesCompatibility(AttributeSet::FromIndices({0, 3}), 5,
                                     2));
  EXPECT_FALSE(k.ImpliesCompatibility(AttributeSet::Empty(), 2, 5));
}

TEST(OdKnowledgeTest, DateDimOptimizerQueries) {
  Table t = GenDateDim(730, 2012);
  EncodedRelation rel = Encode(t);
  OdKnowledge k(Fastod().Discover(rel));
  const Schema& s = t.schema();
  int sk = *s.IndexOf("d_date_sk");
  int date = *s.IndexOf("d_date");
  int year = *s.IndexOf("d_year");
  int month = *s.IndexOf("d_month");
  int quarter = *s.IndexOf("d_quarter");
  int week = *s.IndexOf("d_week");
  int dom = *s.IndexOf("d_dom");
  // The rewrites of Section 1.1, asked the way an optimizer would.
  EXPECT_TRUE(k.Implies(ListOd{{sk}, {date}}));
  EXPECT_TRUE(k.Implies(ListOd{{sk}, {year}}));
  EXPECT_TRUE(k.Implies(ListOd{{month}, {quarter}}));
  EXPECT_TRUE(k.Implies(ListOd{{year, month}, {year, quarter}}));
  // And the known non-ODs.
  EXPECT_FALSE(k.Implies(ListOd{{month}, {week}}));  // no FD month->week
  EXPECT_FALSE(k.Implies(ListOd{{dom}, {month}}));
}

TEST(OdKnowledgeTest, UnaryListOdsMatchDirectValidation) {
  Table t = GenFlightLike(400, 10, 11);
  EncodedRelation rel = Encode(t);
  OdKnowledge k(Fastod().Discover(rel));
  OdValidator v(&rel);
  std::vector<ListOd> derived = k.UnaryListOds(10);
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      if (a == b) continue;
      ListOd od{{a}, {b}};
      bool in_derived =
          std::find(derived.begin(), derived.end(), od) != derived.end();
      EXPECT_EQ(in_derived, v.Holds(od)) << od.ToString(t.schema());
    }
  }
}

TEST(OdKnowledgeTest, NumFactsCountsEmittedOds) {
  Table t = GenFlightLike(200, 8, 3);
  EncodedRelation rel = Encode(t);
  FastodResult r = Fastod().Discover(rel);
  OdKnowledge k(r);
  EXPECT_EQ(k.NumFacts(), r.num_constancy + r.num_compatibility);
}

// The decisive property: for a complete minimal discovery, implication
// from the emitted set agrees with ground truth on EVERY canonical OD and
// on random list ODs.
class KnowledgePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnowledgePropertyTest, CanonicalQueriesMatchGroundTruth) {
  Table t = GenRandomTable(24, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  OdKnowledge k(Fastod().Discover(rel));
  for (uint64_t mask = 0; mask < 16; ++mask) {
    AttributeSet ctx(mask);
    for (int a = 0; a < 4; ++a) {
      EXPECT_EQ(k.ImpliesConstancy(ctx, a),
                BruteIsConstant(rel, ctx, a))
          << "ctx=" << mask << " A=" << a;
      for (int b = a + 1; b < 4; ++b) {
        EXPECT_EQ(k.ImpliesCompatibility(ctx, a, b),
                  BruteIsOrderCompatible(rel, ctx, a, b))
            << "ctx=" << mask << " A=" << a << " B=" << b;
      }
    }
  }
}

TEST_P(KnowledgePropertyTest, ListOdQueriesMatchGroundTruth) {
  Rng rng(GetParam() * 131 + 7);
  Table t = GenRandomTable(20, 4, 3, GetParam() + 4000);
  EncodedRelation rel = Encode(t);
  OdKnowledge k(Fastod().Discover(rel));
  for (int trial = 0; trial < 60; ++trial) {
    auto random_spec = [&rng]() {
      OrderSpec spec;
      AttributeSet used;
      int len = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < len; ++i) {
        int a = static_cast<int>(rng.Uniform(4));
        if (!used.Contains(a)) {
          spec.push_back(a);
          used = used.With(a);
        }
      }
      return spec;
    };
    ListOd od{random_spec(), random_spec()};
    EXPECT_EQ(k.Implies(od), BruteHolds(rel, od)) << od.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnowledgePropertyTest,
                         ::testing::Values(501, 502, 503, 504, 505, 506));

}  // namespace
}  // namespace fastod
