#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/csv.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "validate/od_validator.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(GeneratorsTest, EmployeeTableMatchesPaper) {
  Table t = EmployeeTaxTable();
  EXPECT_EQ(t.NumRows(), 6);
  EXPECT_EQ(t.NumColumns(), 9);
  EXPECT_EQ(t.at(0, 0).AsInt(), 10);
  EXPECT_EQ(t.at(2, 2).AsString(), "direct");
  EXPECT_EQ(t.at(5, 6).AsInt(), 2000);  // t6 tax = 2K
}

TEST(GeneratorsTest, DeterministicAcrossCalls) {
  Table a = GenFlightLike(200, 12, 99);
  Table b = GenFlightLike(200, 12, 99);
  EXPECT_EQ(WriteCsvString(a), WriteCsvString(b));
  Table c = GenFlightLike(200, 12, 100);
  EXPECT_NE(WriteCsvString(a), WriteCsvString(c));
}

TEST(GeneratorsTest, FlightLikeShape) {
  Table t = GenFlightLike(300, 40, 7);
  EXPECT_EQ(t.NumRows(), 300);
  EXPECT_EQ(t.NumColumns(), 40);
  EXPECT_EQ(t.schema().name(0), "year");
  EXPECT_EQ(t.schema().name(14), "year_1");
}

TEST(GeneratorsTest, FlightLikePlantedStructure) {
  Table t = GenFlightLike(400, 12, 7);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  const Schema& s = t.schema();
  // year is constant (the OD ORDER misses).
  EXPECT_TRUE(v.IsConstant(AttributeSet::Empty(), *s.IndexOf("year")));
  // flight_id is a key.
  EXPECT_EQ(rel.NumDistinct(*s.IndexOf("flight_id")), 400);
  // month ↦ quarter (FD + compatibility).
  int month = *s.IndexOf("month");
  int quarter = *s.IndexOf("quarter");
  EXPECT_TRUE(v.Holds(ListOd{{month}, {quarter}}));
  // date_sk ~ month at the top level.
  EXPECT_TRUE(v.IsOrderCompatible(AttributeSet::Empty(),
                                  *s.IndexOf("date_sk"), month));
  // distance ~ duration and the FD {origin,dest} -> distance.
  EXPECT_TRUE(v.IsOrderCompatible(AttributeSet::Empty(),
                                  *s.IndexOf("distance"),
                                  *s.IndexOf("duration")));
  EXPECT_TRUE(v.IsConstant(
      AttributeSet::FromIndices({*s.IndexOf("origin"), *s.IndexOf("dest")}),
      *s.IndexOf("distance")));
}

TEST(GeneratorsTest, NcvoterLikePlantedStructure) {
  Table t = GenNcvoterLike(500, 12, 21);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  const Schema& s = t.schema();
  // city -> zip FD with order compatibility (zip increases with city id).
  int city = *s.IndexOf("city");
  int zip = *s.IndexOf("zip");
  EXPECT_TRUE(v.IsConstant(AttributeSet::Single(city), zip));
  EXPECT_TRUE(v.IsOrderCompatible(AttributeSet::Empty(), city, zip));
  // age/birth_year anti-correlate: swaps under ascending semantics.
  EXPECT_FALSE(v.IsOrderCompatible(AttributeSet::Empty(), *s.IndexOf("age"),
                                   *s.IndexOf("birth_year")));
  // But the FD age -> birth_year holds.
  EXPECT_TRUE(v.IsConstant(AttributeSet::Single(*s.IndexOf("age")),
                           *s.IndexOf("birth_year")));
}

TEST(GeneratorsTest, HepatitisLikeSmallDomains) {
  Table t = GenHepatitisLike(155, 20, 3);
  EXPECT_EQ(t.NumRows(), 155);
  EXPECT_EQ(t.NumColumns(), 20);
  EncodedRelation rel = Encode(t);
  // Column 2 is constant by construction.
  EXPECT_EQ(rel.NumDistinct(2), 1);
  // All domains are small.
  for (int c = 0; c < t.NumColumns(); ++c) {
    EXPECT_LE(rel.NumDistinct(c), 7);
  }
}

TEST(GeneratorsTest, DbtesmaLikeFdChains) {
  Table t = GenDbtesmaLike(300, 9, 13);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  // Within each group of three, base determines both derivations.
  for (int g = 0; g < 3; ++g) {
    EXPECT_TRUE(v.IsConstant(AttributeSet::Single(g * 3), g * 3 + 1));
    EXPECT_TRUE(v.IsConstant(AttributeSet::Single(g * 3), g * 3 + 2));
  }
}

TEST(GeneratorsTest, DateDimCalendarIsCorrect) {
  Table t = GenDateDim(800, 1999);
  const Schema& s = t.schema();
  int year_col = *s.IndexOf("d_year");
  int month_col = *s.IndexOf("d_month");
  int dom_col = *s.IndexOf("d_dom");
  // Row 0: 1999-01-01.
  EXPECT_EQ(t.at(0, *s.IndexOf("d_date")).AsString(), "1999-01-01");
  // 1999 is not a leap year: Feb has 28 days -> row 31+28 = index 59 is
  // March 1.
  EXPECT_EQ(t.at(59, month_col).AsInt(), 3);
  EXPECT_EQ(t.at(59, dom_col).AsInt(), 1);
  // 2000 IS a leap year (divisible by 400): Feb 29 exists.
  // Day index of 2000-02-29: 365 + 31 + 28 = 424.
  EXPECT_EQ(t.at(424, month_col).AsInt(), 2);
  EXPECT_EQ(t.at(424, dom_col).AsInt(), 29);
  EXPECT_EQ(t.at(424, year_col).AsInt(), 2000);
}

TEST(GeneratorsTest, DateDimSurrogateKeysAreSequential) {
  Table t = GenDateDim(10, 1998, 1000);
  int sk = *t.schema().IndexOf("d_date_sk");
  for (int64_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(t.at(r, sk).AsInt(), 1000 + r);
  }
}

TEST(GeneratorsTest, RandomTableRespectsOptions) {
  RandomTableOptions opt;
  opt.num_rows = 33;
  opt.num_columns = 7;
  opt.max_domain = 5;
  opt.derived_fraction = 0.0;
  opt.seed = 3;
  Table t = GenRandomTable(opt);
  EXPECT_EQ(t.NumRows(), 33);
  EXPECT_EQ(t.NumColumns(), 7);
  EncodedRelation rel = Encode(t);
  for (int c = 0; c < 7; ++c) {
    EXPECT_LE(rel.NumDistinct(c), 5);
  }
}

TEST(GeneratorsTest, SampleRowsBasics) {
  Table t = GenFlightLike(100, 5, 1);
  Table s = SampleRows(t, 30, 7);
  EXPECT_EQ(s.NumRows(), 30);
  EXPECT_EQ(s.NumColumns(), 5);
  // Oversampling and zero are clamped.
  EXPECT_EQ(SampleRows(t, 1000, 7).NumRows(), 100);
  EXPECT_EQ(SampleRows(t, 0, 7).NumRows(), 0);
}

TEST(GeneratorsTest, SampleRowsPreservesSourceOrder) {
  // flight_id equals the row index, so a sorted sample must be strictly
  // increasing in that column.
  Table t = GenFlightLike(200, 5, 1);
  int id = *t.schema().IndexOf("flight_id");
  Table s = SampleRows(t, 50, 99);
  for (int64_t r = 1; r < s.NumRows(); ++r) {
    EXPECT_LT(s.at(r - 1, id).AsInt(), s.at(r, id).AsInt());
  }
}

TEST(GeneratorsTest, SampleRowsIsDeterministicAndSeedSensitive) {
  Table t = GenFlightLike(100, 4, 1);
  EXPECT_EQ(WriteCsvString(SampleRows(t, 40, 5)),
            WriteCsvString(SampleRows(t, 40, 5)));
  EXPECT_NE(WriteCsvString(SampleRows(t, 40, 5)),
            WriteCsvString(SampleRows(t, 40, 6)));
}

TEST(GeneratorsTest, SampleRowsHasDistinctRows) {
  Table t = GenFlightLike(60, 5, 1);
  int id = *t.schema().IndexOf("flight_id");
  Table s = SampleRows(t, 59, 3);
  std::vector<int64_t> ids;
  for (int64_t r = 0; r < s.NumRows(); ++r) {
    ids.push_back(s.at(r, id).AsInt());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(GeneratorsTest, RandomTableDerivedColumnsCreateFds) {
  RandomTableOptions opt;
  opt.num_rows = 50;
  opt.num_columns = 6;
  opt.max_domain = 8;
  opt.derived_fraction = 1.0;  // every column after the first is derived
  opt.seed = 5;
  Table t = GenRandomTable(opt);
  EncodedRelation rel = Encode(t);
  OdValidator v(&rel);
  // Column 1 must be derived from column 0 (the only candidate).
  EXPECT_TRUE(v.IsConstant(AttributeSet::Single(0), 1));
  EXPECT_TRUE(v.IsOrderCompatible(AttributeSet::Empty(), 0, 1));
}

}  // namespace
}  // namespace fastod
