// The PR-9 acceptance oracle: the columnar dictionary-interned data
// plane must be observationally identical to the row-oriented plane it
// replaced. Three layers of evidence:
//
//   1. Golden fixtures (tests/golden_pr9_data.h) — the six engines'
//      ResultJson captured *before* the refactor, compared bit-for-bit
//      (minus wall-clock stats) against fresh runs.
//   2. Randomized properties — dictionary round-trips, code/value order
//      agreement, and LSD-radix FromCodeColumns vs the partition-product
//      fold, over seeded random tables.
//   3. The versioned-append path — merge-encoding a delta against the
//      parent's dictionaries must equal FromTable on the concatenation,
//      and discovery over the grown dataset must still match the golden.
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/algorithm.h"
#include "api/registry.h"
#include "common/json.h"
#include "data/dataset_store.h"
#include "data/encode.h"
#include "data/table.h"
#include "gen/generators.h"
#include "golden_pr9_data.h"
#include "partition/stripped_partition.h"

namespace fastod {
namespace {

const Table& Fixture() {
  static Table table = GenFlightLike(200, 8, 42);
  return table;
}

struct EngineSpec {
  const char* name;
  const char* golden;
  std::vector<std::pair<std::string, std::string>> options;
};

std::vector<EngineSpec> EngineSpecs() {
  return {
      {"fastod", kGoldenFastod, {}},
      {"tane", kGoldenTane, {}},
      {"order", kGoldenOrder, {{"max-level", "3"}}},
      {"brute-force", kGoldenBruteForce, {}},
      {"approximate", kGoldenApproximate, {}},
      {"conditional", kGoldenConditional, {}},
  };
}

std::unique_ptr<Algorithm> MakeEngine(const EngineSpec& spec) {
  auto algo = AlgorithmRegistry::Default().Create(spec.name);
  EXPECT_TRUE(algo.ok()) << spec.name;
  if (!algo.ok()) return nullptr;
  for (const auto& [key, value] : spec.options) {
    EXPECT_TRUE((*algo)->SetOption(key, value).ok())
        << spec.name << " --" << key << "=" << value;
  }
  return std::move(*algo);
}

JsonValue ParseOrDie(const std::string& text, const std::string& what) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << what << ": " << text.substr(0, 200);
  return parsed.ok() ? std::move(*parsed) : JsonValue();
}

// Every top-level key except "stats" (wall clock) must match exactly.
void ExpectSameModuloStats(const JsonValue& golden, const JsonValue& fresh,
                           const std::string& engine) {
  ASSERT_TRUE(golden.is_object()) << engine;
  ASSERT_TRUE(fresh.is_object()) << engine;
  ASSERT_EQ(golden.object_items().size(), fresh.object_items().size())
      << engine;
  for (const auto& [key, value] : golden.object_items()) {
    if (key == "stats") continue;
    const JsonValue* got = fresh.Find(key);
    ASSERT_NE(got, nullptr) << engine << " lost key " << key;
    EXPECT_EQ(value.Dump(), got->Dump()) << engine << " key " << key;
  }
}

TEST(ColumnarGoldenTest, SixEnginesMatchPreRefactorFixtures) {
  for (const EngineSpec& spec : EngineSpecs()) {
    SCOPED_TRACE(spec.name);
    std::unique_ptr<Algorithm> algo = MakeEngine(spec);
    ASSERT_NE(algo, nullptr);
    ASSERT_TRUE(algo->LoadData(Fixture()).ok());
    ASSERT_TRUE(algo->Execute().ok());
    JsonValue golden = ParseOrDie(spec.golden, "golden");
    JsonValue fresh = ParseOrDie(algo->ResultJson(), "fresh");
    ExpectSameModuloStats(golden, fresh, spec.name);
  }
}

// BindDataset (prebuilt encoding + singleton partitions) must be
// indistinguishable from handing every engine the raw table.
TEST(ColumnarGoldenTest, BindDatasetMatchesLoadData) {
  auto dataset = LoadedDataset::Build("pr9-fixture", Fixture());
  ASSERT_TRUE(dataset.ok());
  for (const EngineSpec& spec : EngineSpecs()) {
    SCOPED_TRACE(spec.name);
    std::unique_ptr<Algorithm> via_table = MakeEngine(spec);
    std::unique_ptr<Algorithm> via_dataset = MakeEngine(spec);
    ASSERT_NE(via_table, nullptr);
    ASSERT_NE(via_dataset, nullptr);
    ASSERT_TRUE(via_table->LoadData(Fixture()).ok());
    ASSERT_TRUE(via_dataset->BindDataset(*dataset).ok());
    ASSERT_TRUE(via_table->Execute().ok());
    ASSERT_TRUE(via_dataset->Execute().ok());
    ExpectSameModuloStats(ParseOrDie(via_table->ResultJson(), "table"),
                          ParseOrDie(via_dataset->ResultJson(), "dataset"),
                          spec.name);
  }
}

// A typed random table: int, double, and string columns (single-typed
// with interspersed NULLs, so equal-comparing values render identically
// and the dictionary representative is unambiguous).
Table RandomTable(std::mt19937& rng, int64_t rows) {
  std::uniform_int_distribution<int> small(0, 9);
  std::uniform_int_distribution<int64_t> wide(-1000, 1000);
  std::uniform_real_distribution<double> real(-5.0, 5.0);
  TableBuilder builder(
      Schema::FromNames({"i_small", "i_wide", "d", "s", "mixed_null"}));
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int(small(rng)));
    row.push_back(Value::Int(wide(rng)));
    row.push_back(Value::Double(real(rng) * 0.5));
    row.push_back(Value::Str("k" + std::to_string(small(rng)) +
                             std::string(small(rng), 'x')));
    row.push_back(small(rng) == 0 ? Value::Null() : Value::Int(small(rng)));
    builder.AddRowUnchecked(std::move(row));
  }
  return builder.Build();
}

TEST(ColumnarPropertyTest, DictionaryRoundTripsEveryCell) {
  std::mt19937 rng(9001);
  for (int trial = 0; trial < 8; ++trial) {
    Table table = RandomTable(rng, 64 + trial * 37);
    auto rel = EncodedRelation::FromTable(table);
    ASSERT_TRUE(rel.ok());
    for (int c = 0; c < table.NumColumns(); ++c) {
      const ValueDictionary& dict = rel->dictionary(c);
      const CodeColumn& codes = rel->codes(c);
      ASSERT_EQ(dict.size(), codes.num_distinct());
      // Codes are dense, order-preserving, and decode to the cell value.
      for (int64_t r = 0; r < table.NumRows(); ++r) {
        int32_t code = codes[r];
        ASSERT_GE(code, 0);
        ASSERT_LT(code, dict.size());
        EXPECT_EQ(dict.Compare(code, table.at(r, c)), 0)
            << "trial " << trial << " cell (" << r << "," << c << ")";
        EXPECT_EQ(dict.ToString(code), table.at(r, c).ToString());
      }
      // The interned values are strictly ascending: code order IS value
      // order, which is what lets partitions sort by codes alone.
      for (int32_t code = 1; code < dict.size(); ++code) {
        EXPECT_LT(Value::Compare(dict.At(code - 1), dict.At(code)), 0);
      }
    }
  }
}

TEST(ColumnarPropertyTest, RadixBuildMatchesPartitionProductFold) {
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    Table table = RandomTable(rng, 96 + trial * 53);
    auto rel = EncodedRelation::FromTable(table);
    ASSERT_TRUE(rel.ok());
    // Every 2- and 3-column prefix set, both construction routes.
    for (int a = 0; a < rel->NumAttributes(); ++a) {
      for (int b = a + 1; b < rel->NumAttributes(); ++b) {
        std::vector<const CodeColumn*> columns = {&rel->codes(a),
                                                  &rel->codes(b)};
        StrippedPartition radix =
            StrippedPartition::FromCodeColumns(columns, rel->NumRows());
        StrippedPartition folded =
            StrippedPartition::ForAttribute(rel->codes(a))
                .Product(StrippedPartition::ForAttribute(rel->codes(b)));
        EXPECT_TRUE(radix == folded)
            << "trial " << trial << " attrs {" << a << "," << b << "}";
        if (b + 1 < rel->NumAttributes()) {
          columns.push_back(&rel->codes(b + 1));
          StrippedPartition radix3 =
              StrippedPartition::FromCodeColumns(columns, rel->NumRows());
          StrippedPartition folded3 = folded.Product(
              StrippedPartition::ForAttribute(rel->codes(b + 1)));
          EXPECT_TRUE(radix3 == folded3)
              << "trial " << trial << " attrs {" << a << "," << b << ","
              << b + 1 << "}";
        }
      }
    }
  }
}

// Merge-encoding appended rows against the parent's dictionaries must be
// bit-for-bit what a from-scratch encode of the concatenation produces —
// codes, dictionaries (observed through decode), and partitions alike.
TEST(ColumnarAppendTest, MergeEncodedAppendEqualsFromTable) {
  const Table& full = Fixture();
  std::vector<int64_t> tail;
  for (int64_t r = 150; r < full.NumRows(); ++r) tail.push_back(r);

  DatasetStore store;
  auto base = store.PutTable("flight", full.Head(150));
  ASSERT_TRUE(base.ok());
  auto grown = store.AppendRows("flight", full.SelectRows(tail));
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ((*grown)->version(), 2);
  EXPECT_EQ((*grown)->base_rows(), 150);
  EXPECT_EQ((*grown)->NumRows(), full.NumRows());

  auto expected = EncodedRelation::FromTable(full);
  ASSERT_TRUE(expected.ok());
  const EncodedRelation& relation = (*grown)->relation();
  ASSERT_EQ(relation.NumAttributes(), expected->NumAttributes());
  for (int a = 0; a < relation.NumAttributes(); ++a) {
    EXPECT_TRUE(relation.codes(a) == expected->codes(a)) << "attr " << a;
    for (int32_t code = 0; code < relation.codes(a).num_distinct(); ++code) {
      EXPECT_EQ(relation.dictionary(a).ToString(code),
                expected->dictionary(a).ToString(code))
          << "attr " << a << " code " << code;
    }
    EXPECT_TRUE((*grown)->singleton_partitions()[a] ==
                StrippedPartition::ForAttribute(expected->codes(a)))
        << "attr " << a;
  }

  // Discovery over the grown dataset equals the pre-refactor golden on
  // the full 200-row fixture.
  EngineSpec fastod_spec{"fastod", kGoldenFastod, {}};
  std::unique_ptr<Algorithm> algo = MakeEngine(fastod_spec);
  ASSERT_NE(algo, nullptr);
  ASSERT_TRUE(algo->BindDataset(*grown).ok());
  ASSERT_TRUE(algo->Execute().ok());
  ExpectSameModuloStats(ParseOrDie(kGoldenFastod, "golden"),
                        ParseOrDie(algo->ResultJson(), "grown"), "fastod");
}

}  // namespace
}  // namespace fastod
