#include <gtest/gtest.h>

#include <unordered_set>

#include "data/schema.h"
#include "od/canonical_od.h"
#include "od/list_od.h"

namespace fastod {
namespace {

TEST(ConstancyOdTest, TrivialityFollowsReflexivity) {
  // X: [] -> A is trivial iff A ∈ X.
  EXPECT_TRUE((ConstancyOd{AttributeSet::FromIndices({0, 1}), 1}).IsTrivial());
  EXPECT_FALSE(
      (ConstancyOd{AttributeSet::FromIndices({0, 1}), 2}).IsTrivial());
  EXPECT_FALSE((ConstancyOd{AttributeSet::Empty(), 0}).IsTrivial());
}

TEST(CompatibilityOdTest, ConstructorNormalizesPairOrder) {
  CompatibilityOd od(AttributeSet::Empty(), 5, 2);
  EXPECT_EQ(od.a, 2);
  EXPECT_EQ(od.b, 5);
  EXPECT_EQ(od, CompatibilityOd(AttributeSet::Empty(), 2, 5));
}

TEST(CompatibilityOdTest, TrivialityRules) {
  AttributeSet ctx = AttributeSet::FromIndices({0, 1});
  // A = B (Identity).
  EXPECT_TRUE(CompatibilityOd(AttributeSet::Empty(), 3, 3).IsTrivial());
  // A ∈ X (Normalization, Lemma 4).
  EXPECT_TRUE(CompatibilityOd(ctx, 1, 3).IsTrivial());
  EXPECT_TRUE(CompatibilityOd(ctx, 3, 0).IsTrivial());
  EXPECT_FALSE(CompatibilityOd(ctx, 2, 3).IsTrivial());
}

TEST(CanonicalOdTest, ToStringPlaceholderNames) {
  ConstancyOd c{AttributeSet::FromIndices({0, 2}), 1};
  EXPECT_EQ(c.ToString(), "{A,C}: [] -> B");
  CompatibilityOd p(AttributeSet::Single(3), 0, 1);
  EXPECT_EQ(p.ToString(), "{D}: A ~ B");
}

TEST(CanonicalOdTest, ToStringSchemaNames) {
  Schema s = Schema::FromNames({"year", "salary", "bin"});
  ConstancyOd c{AttributeSet::Single(0), 2};
  EXPECT_EQ(c.ToString(s), "{year}: [] -> bin");
  CompatibilityOd p(AttributeSet::Single(0), 2, 1);
  EXPECT_EQ(p.ToString(s), "{year}: salary ~ bin");
}

TEST(CanonicalOdTest, VariantToString) {
  CanonicalOd od = ConstancyOd{AttributeSet::Empty(), 0};
  EXPECT_EQ(CanonicalOdToString(od), "{}: [] -> A");
  od = CompatibilityOd(AttributeSet::Empty(), 0, 1);
  EXPECT_EQ(CanonicalOdToString(od), "{}: A ~ B");
}

TEST(CanonicalOdTest, OrderingIsDeterministic) {
  ConstancyOd a{AttributeSet::Single(0), 1};
  ConstancyOd b{AttributeSet::Single(0), 2};
  ConstancyOd c{AttributeSet::Single(1), 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);  // context ordering dominates
}

TEST(CanonicalOdTest, HashingSupportsSets) {
  std::unordered_set<ConstancyOd, ConstancyOdHash> consts;
  consts.insert(ConstancyOd{AttributeSet::Single(0), 1});
  consts.insert(ConstancyOd{AttributeSet::Single(0), 1});  // dup
  consts.insert(ConstancyOd{AttributeSet::Single(0), 2});
  EXPECT_EQ(consts.size(), 2u);

  std::unordered_set<CompatibilityOd, CompatibilityOdHash> pairs;
  pairs.insert(CompatibilityOd(AttributeSet::Empty(), 1, 0));
  pairs.insert(CompatibilityOd(AttributeSet::Empty(), 0, 1));  // same OD
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(OrderSpecTest, ToStringAndSet) {
  OrderSpec spec{2, 0, 1};
  EXPECT_EQ(OrderSpecToString(spec), "[C,A,B]");
  EXPECT_EQ(OrderSpecSet(spec), AttributeSet::FromIndices({0, 1, 2}));
  EXPECT_EQ(OrderSpecToString(OrderSpec{}), "[]");
}

TEST(OrderSpecTest, PrefixPredicate) {
  OrderSpec abc{0, 1, 2};
  EXPECT_TRUE(IsPrefixOf({}, abc));
  EXPECT_TRUE(IsPrefixOf({0}, abc));
  EXPECT_TRUE(IsPrefixOf({0, 1, 2}, abc));
  EXPECT_FALSE(IsPrefixOf({1}, abc));
  EXPECT_FALSE(IsPrefixOf({0, 1, 2, 3}, abc));
}

TEST(ListOdTest, ToStringAndEquality) {
  ListOd od{{0}, {1, 2}};
  EXPECT_EQ(od.ToString(), "[A] orders [B,C]");
  EXPECT_EQ(od, (ListOd{{0}, {1, 2}}));
  EXPECT_FALSE(od == (ListOd{{0}, {2, 1}}));  // lists, not sets!
}

TEST(ListOdTest, HashDiffersAcrossSideSplits) {
  // [A,B] ↦ [C] vs [A] ↦ [B,C] must not collide via naive concatenation.
  ListOdHash h;
  EXPECT_NE(h(ListOd{{0, 1}, {2}}), h(ListOd{{0}, {1, 2}}));
}

}  // namespace
}  // namespace fastod
