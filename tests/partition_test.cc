#include <gtest/gtest.h>

#include "data/encode.h"
#include "gen/random_table.h"
#include "partition/partition_cache.h"
#include "partition/stripped_partition.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(StrippedPartitionTest, UniverseIsOneClass) {
  StrippedPartition p = StrippedPartition::Universe(4);
  EXPECT_EQ(p.NumClasses(), 1);
  EXPECT_EQ(p.NumElements(), 4);
  EXPECT_EQ(p.Error(), 3);
  EXPECT_FALSE(p.IsSuperkey());
}

TEST(StrippedPartitionTest, UniverseOfTinyRelationsIsEmpty) {
  EXPECT_TRUE(StrippedPartition::Universe(0).IsSuperkey());
  EXPECT_TRUE(StrippedPartition::Universe(1).IsSuperkey());
}

TEST(StrippedPartitionTest, ForAttributeStripsSingletons) {
  // ranks: 0,1,0,2,1 -> classes {0,2},{1,4}, singleton {3} stripped.
  std::vector<int32_t> ranks{0, 1, 0, 2, 1};
  StrippedPartition p = StrippedPartition::ForAttribute(ranks, 3);
  EXPECT_EQ(p.NumClasses(), 2);
  EXPECT_EQ(p.NumElements(), 4);
  EXPECT_EQ(p.Error(), 2);
  // Classes come in ascending rank order.
  EXPECT_EQ(std::vector<int32_t>(p.Class(0).begin(), p.Class(0).end()),
            (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(std::vector<int32_t>(p.Class(1).begin(), p.Class(1).end()),
            (std::vector<int32_t>{1, 4}));
}

TEST(StrippedPartitionTest, KeyAttributeYieldsSuperkeyPartition) {
  std::vector<int32_t> ranks{3, 0, 2, 1};
  StrippedPartition p = StrippedPartition::ForAttribute(ranks, 4);
  EXPECT_TRUE(p.IsSuperkey());
  EXPECT_EQ(p.Error(), 0);
}

TEST(StrippedPartitionTest, ProductRefines) {
  // A: {0,1,2,3} in one class split by B: 0,0,1,1.
  StrippedPartition a = StrippedPartition::Universe(4);
  StrippedPartition b =
      StrippedPartition::ForAttribute({0, 0, 1, 1}, 2);
  StrippedPartition ab = a.Product(b);
  EXPECT_EQ(ab, b);
}

TEST(StrippedPartitionTest, ProductDropsCrossSingletons) {
  // A classes: {0,1},{2,3}; B classes: {1,2},{0,3} -> all intersections
  // singletons -> product is a superkey partition.
  StrippedPartition a = StrippedPartition::ForAttribute({0, 0, 1, 1}, 2);
  StrippedPartition b = StrippedPartition::ForAttribute({0, 1, 1, 0}, 2);
  StrippedPartition ab = a.Product(b);
  EXPECT_TRUE(ab.IsSuperkey());
}

TEST(StrippedPartitionTest, ProductIsCommutative) {
  StrippedPartition a =
      StrippedPartition::ForAttribute({0, 0, 1, 1, 2, 2}, 3);
  StrippedPartition b =
      StrippedPartition::ForAttribute({0, 1, 0, 1, 0, 0}, 2);
  EXPECT_EQ(a.Product(b), b.Product(a));
}

TEST(StrippedPartitionTest, FillClassIndexMarksSingletonsMinusOne) {
  std::vector<int32_t> ranks{0, 1, 0, 2};
  StrippedPartition p = StrippedPartition::ForAttribute(ranks, 3);
  std::vector<int32_t> class_of;
  p.FillClassIndex(&class_of);
  ASSERT_EQ(class_of.size(), 4u);
  EXPECT_EQ(class_of[0], class_of[2]);
  EXPECT_GE(class_of[0], 0);
  EXPECT_EQ(class_of[1], -1);
  EXPECT_EQ(class_of[3], -1);
}

TEST(StrippedPartitionTest, BuilderDropsSubPairClasses) {
  PartitionBuilder b(5);
  b.BeginClass();
  b.AddTuple(0);
  b.EndClass();  // singleton -> dropped
  b.BeginClass();
  b.EndClass();  // empty -> dropped
  b.BeginClass();
  b.AddTuple(1);
  b.AddTuple(2);
  b.EndClass();
  StrippedPartition p = b.Build();
  EXPECT_EQ(p.NumClasses(), 1);
  EXPECT_EQ(p.NumElements(), 2);
}

TEST(StrippedPartitionTest, ToStringRendersClasses) {
  StrippedPartition p = StrippedPartition::ForAttribute({0, 0, 1}, 2);
  EXPECT_EQ(p.ToString(), "{{0,1}}");
}

// Property: folding single-attribute partitions with Product() equals the
// direct hash-based construction, for random attribute subsets.
class PartitionProductPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionProductPropertyTest, ProductMatchesDirectConstruction) {
  Table t = GenRandomTable(50, 5, 4, GetParam());
  EncodedRelation rel = Encode(t);
  // All 2^5 - 1 nonempty subsets.
  for (uint64_t mask = 1; mask < 32; ++mask) {
    StrippedPartition via_product;
    bool first = true;
    std::vector<const CodeColumn*> columns;
    for (int a = 0; a < 5; ++a) {
      if (!(mask & (uint64_t{1} << a))) continue;
      StrippedPartition single =
          StrippedPartition::ForAttribute(rel.codes(a));
      via_product = first ? single : via_product.Product(single);
      first = false;
      columns.push_back(&rel.codes(a));
    }
    StrippedPartition direct =
        StrippedPartition::FromCodeColumns(columns, rel.NumRows());
    EXPECT_EQ(via_product, direct) << "mask=" << mask;
  }
}

TEST_P(PartitionProductPropertyTest, ErrorIsMonotoneUnderRefinement) {
  Table t = GenRandomTable(60, 4, 5, GetParam());
  EncodedRelation rel = Encode(t);
  StrippedPartition a = StrippedPartition::ForAttribute(rel.codes(0));
  StrippedPartition prev = a;
  for (int c = 1; c < 4; ++c) {
    StrippedPartition next =
        prev.Product(StrippedPartition::ForAttribute(rel.codes(c)));
    EXPECT_LE(next.Error(), prev.Error());
    prev = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProductPropertyTest,
                         ::testing::Values(3, 7, 13, 29, 41, 59));

TEST(PartitionCacheTest, PutGetEvict) {
  PartitionCache cache;
  cache.Put(0, AttributeSet::Empty(), StrippedPartition::Universe(3));
  cache.Put(1, AttributeSet::Single(0),
            StrippedPartition::ForAttribute({0, 0, 1}, 2));
  EXPECT_EQ(cache.NumCached(), 2);
  EXPECT_TRUE(cache.Contains(AttributeSet::Empty()));
  EXPECT_EQ(cache.Get(AttributeSet::Single(0)).NumClasses(), 1);
  cache.EvictBelow(1);
  EXPECT_FALSE(cache.Contains(AttributeSet::Empty()));
  EXPECT_TRUE(cache.Contains(AttributeSet::Single(0)));
  EXPECT_EQ(cache.NumCached(), 1);
}

TEST(PartitionCacheTest, TotalElementsSums) {
  PartitionCache cache;
  cache.Put(0, AttributeSet::Empty(), StrippedPartition::Universe(5));
  cache.Put(1, AttributeSet::Single(0),
            StrippedPartition::ForAttribute({0, 0, 1, 1, 2}, 3));
  EXPECT_EQ(cache.TotalElements(), 5 + 4);
}

TEST(PartitionCacheTest, EvictBelowOnEmptyCacheIsANoOp) {
  PartitionCache cache;
  cache.EvictBelow(0);
  cache.EvictBelow(5);
  EXPECT_EQ(cache.NumCached(), 0);
  EXPECT_EQ(cache.TotalElements(), 0);
  EXPECT_FALSE(cache.Contains(AttributeSet::Empty()));
}

TEST(PartitionCacheTest, TotalElementsTracksEvictionAndStripping) {
  PartitionCache cache;
  // Universe(1): a single row is a singleton class, stripped away — the
  // partition contributes zero elements.
  cache.Put(0, AttributeSet::Empty(), StrippedPartition::Universe(1));
  EXPECT_EQ(cache.TotalElements(), 0);
  EXPECT_EQ(cache.NumCached(), 1);
  // {0,0,1}: one two-element class ({rows 0,1}), one stripped singleton.
  cache.Put(1, AttributeSet::Single(0),
            StrippedPartition::ForAttribute({0, 0, 1}, 2));
  // All-distinct ranks: everything stripped.
  cache.Put(1, AttributeSet::Single(1),
            StrippedPartition::ForAttribute({0, 1, 2}, 3));
  EXPECT_EQ(cache.TotalElements(), 2);

  cache.EvictBelow(1);
  EXPECT_EQ(cache.NumCached(), 2);
  EXPECT_EQ(cache.TotalElements(), 2);
  cache.EvictBelow(2);
  EXPECT_EQ(cache.NumCached(), 0);
  EXPECT_EQ(cache.TotalElements(), 0);
  // Re-populating after a full eviction starts clean.
  cache.Put(2, AttributeSet::Single(0).With(1),
            StrippedPartition::ForAttribute({0, 0, 0, 1}, 2));
  EXPECT_EQ(cache.NumCached(), 1);
  EXPECT_EQ(cache.TotalElements(), 3);
}

}  // namespace
}  // namespace fastod
