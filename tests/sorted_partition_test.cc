#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "partition/sorted_partition.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(SortedPartitionsTest, TupleOrderSortsByRankThenId) {
  auto t = ReadCsvString("a\n3\n1\n2\n1\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SortedPartitions sorted(rel);
  // values 3,1,2,1 -> ascending: rows 1,3 (value 1), 2, 0.
  EXPECT_EQ(sorted.TupleOrder(0), (std::vector<int32_t>{1, 3, 2, 0}));
}

TEST(SwapCheckerTest, DetectsSimpleSwap) {
  // A: 1,2  B: 2,1 within one class -> swap.
  auto t = ReadCsvString("a,b\n1,2\n2,1\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SortedPartitions sorted(rel);
  SwapChecker checker(&rel, &sorted, SwapCheckMethod::kSortBased);
  StrippedPartition universe = StrippedPartition::Universe(2);
  EXPECT_FALSE(checker.IsOrderCompatible(universe, 0, 1));
}

TEST(SwapCheckerTest, TiesOnADoNotConstrain) {
  // Equal A values with opposite B order: no swap (needs strict A order).
  auto t = ReadCsvString("a,b\n1,2\n1,1\n2,3\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SortedPartitions sorted(rel);
  SwapChecker checker(&rel, &sorted, SwapCheckMethod::kSortBased);
  StrippedPartition universe = StrippedPartition::Universe(3);
  EXPECT_TRUE(checker.IsOrderCompatible(universe, 0, 1));
}

TEST(SwapCheckerTest, SwapHiddenAcrossGroups) {
  // A groups: {1,1},{2}; B max of group 1 is 5, group 2 has 4 -> swap.
  auto t = ReadCsvString("a,b\n1,5\n1,1\n2,4\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SortedPartitions sorted(rel);
  SwapChecker checker(&rel, &sorted, SwapCheckMethod::kTauBased);
  StrippedPartition universe = StrippedPartition::Universe(3);
  EXPECT_FALSE(checker.IsOrderCompatible(universe, 0, 1));
}

TEST(SwapCheckerTest, ContextSeparatesClasses) {
  // Within ctx classes {rows 0,1} and {rows 2,3} orders agree; across
  // classes they would swap, but context isolation makes it compatible.
  auto t = ReadCsvString("ctx,a,b\n1,1,10\n1,2,20\n2,1,2\n2,2,3\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SortedPartitions sorted(rel);
  SwapChecker checker(&rel, &sorted, SwapCheckMethod::kSortBased);
  StrippedPartition ctx = StrippedPartition::ForAttribute(rel.codes(0));
  EXPECT_TRUE(checker.IsOrderCompatible(ctx, 1, 2));
}

TEST(SwapCheckerTest, MethodCountersTrackUsage) {
  auto t = ReadCsvString("a,b\n1,1\n2,2\n3,3\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SortedPartitions sorted(rel);
  SwapChecker tau(&rel, &sorted, SwapCheckMethod::kTauBased);
  SwapChecker srt(&rel, &sorted, SwapCheckMethod::kSortBased);
  StrippedPartition universe = StrippedPartition::Universe(3);
  tau.IsOrderCompatible(universe, 0, 1);
  srt.IsOrderCompatible(universe, 0, 1);
  EXPECT_EQ(tau.num_tau_checks(), 1);
  EXPECT_EQ(tau.num_sort_checks(), 0);
  EXPECT_EQ(srt.num_sort_checks(), 1);
  EXPECT_EQ(srt.num_tau_checks(), 0);
}

TEST(SwapCheckerTest, WithoutTauOrdersFallsBackToSort) {
  auto t = ReadCsvString("a,b\n1,1\n2,2\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  SwapChecker checker(&rel, nullptr, SwapCheckMethod::kAuto);
  StrippedPartition universe = StrippedPartition::Universe(2);
  EXPECT_TRUE(checker.IsOrderCompatible(universe, 0, 1));
  EXPECT_EQ(checker.num_sort_checks(), 1);
}

// Property: both swap-check strategies agree with the brute-force
// definitional check on random tables, over random contexts.
struct SwapParam {
  uint64_t seed;
  SwapCheckMethod method;
};

class SwapCheckerPropertyTest : public ::testing::TestWithParam<SwapParam> {};

TEST_P(SwapCheckerPropertyTest, AgreesWithBruteForce) {
  Table t = GenRandomTable(30, 5, 4, GetParam().seed);
  EncodedRelation rel = Encode(t);
  SortedPartitions sorted(rel);
  SwapChecker checker(&rel, &sorted, GetParam().method);
  for (uint64_t mask = 0; mask < 8; ++mask) {  // contexts over attrs 0-2
    AttributeSet context(mask);
    StrippedPartition partition;
    if (context.IsEmpty()) {
      partition = StrippedPartition::Universe(rel.NumRows());
    } else {
      std::vector<const CodeColumn*> columns;
      for (int a = context.First(); a >= 0; a = context.Next(a)) {
        columns.push_back(&rel.codes(a));
      }
      partition =
          StrippedPartition::FromCodeColumns(columns, rel.NumRows());
    }
    for (int a = 3; a < 5; ++a) {
      for (int b = 3; b < 5; ++b) {
        if (a == b) continue;
        EXPECT_EQ(checker.IsOrderCompatible(partition, a, b),
                  BruteIsOrderCompatible(rel, context, a, b))
            << "mask=" << mask << " a=" << a << " b=" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMethods, SwapCheckerPropertyTest,
    ::testing::Values(SwapParam{101, SwapCheckMethod::kSortBased},
                      SwapParam{101, SwapCheckMethod::kTauBased},
                      SwapParam{202, SwapCheckMethod::kSortBased},
                      SwapParam{202, SwapCheckMethod::kTauBased},
                      SwapParam{303, SwapCheckMethod::kAuto},
                      SwapParam{404, SwapCheckMethod::kAuto}));

}  // namespace
}  // namespace fastod
