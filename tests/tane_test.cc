#include <gtest/gtest.h>

#include <algorithm>

#include "algo/brute_force_discovery.h"
#include "algo/tane.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

bool HasFd(const TaneResult& r, AttributeSet lhs, int rhs) {
  return std::find(r.fds.begin(), r.fds.end(), ConstancyOd{lhs, rhs}) !=
         r.fds.end();
}

TEST(TaneTest, TextbookFd) {
  // b = a/2: FD a -> b, no FD b -> a.
  auto t = ReadCsvString("a,b\n0,0\n1,0\n2,1\n3,1\n");
  ASSERT_TRUE(t.ok());
  TaneResult r = Tane().Discover(Encode(*t));
  EXPECT_TRUE(HasFd(r, AttributeSet::Single(0), 1));
  EXPECT_FALSE(HasFd(r, AttributeSet::Single(1), 0));
}

TEST(TaneTest, CompositeKeyFd) {
  // Neither a nor b alone determines c, but together they do.
  auto t = ReadCsvString("a,b,c\n1,1,1\n1,2,2\n2,1,2\n2,2,1\n");
  ASSERT_TRUE(t.ok());
  TaneResult r = Tane().Discover(Encode(*t));
  EXPECT_TRUE(HasFd(r, AttributeSet::FromIndices({0, 1}), 2));
  EXPECT_FALSE(HasFd(r, AttributeSet::Single(0), 2));
  EXPECT_FALSE(HasFd(r, AttributeSet::Single(1), 2));
}

TEST(TaneTest, ConstantColumn) {
  auto t = ReadCsvString("a,b\n5,1\n5,2\n5,3\n");
  ASSERT_TRUE(t.ok());
  TaneResult r = Tane().Discover(Encode(*t));
  EXPECT_TRUE(HasFd(r, AttributeSet::Empty(), 0));
  // {}: -> a subsumes {b}: -> a; the latter must not appear.
  EXPECT_FALSE(HasFd(r, AttributeSet::Single(1), 0));
}

TEST(TaneTest, KeyColumnDeterminesEverything) {
  auto t = ReadCsvString("k,x,y\n1,5,5\n2,5,6\n3,6,6\n");
  ASSERT_TRUE(t.ok());
  TaneResult r = Tane().Discover(Encode(*t));
  EXPECT_TRUE(HasFd(r, AttributeSet::Single(0), 1));
  EXPECT_TRUE(HasFd(r, AttributeSet::Single(0), 2));
}

TEST(TaneTest, EmployeeTableFds) {
  Table t = EmployeeTaxTable();
  TaneResult r = Tane().Discover(Encode(t));
  const Schema& s = t.schema();
  int posit = *s.IndexOf("posit");
  int bin = *s.IndexOf("bin");
  int sal = *s.IndexOf("sal");
  int tax = *s.IndexOf("tax");
  EXPECT_TRUE(HasFd(r, AttributeSet::Single(posit), bin));
  EXPECT_TRUE(HasFd(r, AttributeSet::Single(sal), tax));
  // position does not determine salary.
  EXPECT_FALSE(HasFd(r, AttributeSet::Single(posit), sal));
}

TEST(TaneTest, TimeoutFlagPropagates) {
  Table t = GenDbtesmaLike(500, 20, 3);
  TaneOptions opt;
  opt.timeout_seconds = 1e-9;
  TaneResult r = Tane(opt).Discover(Encode(t));
  EXPECT_TRUE(r.timed_out);
}

TEST(TaneTest, MaxLevelLimitsContexts) {
  Table t = GenDbtesmaLike(200, 9, 3);
  TaneOptions opt;
  opt.max_level = 2;
  TaneResult r = Tane(opt).Discover(Encode(t));
  for (const ConstancyOd& fd : r.fds) {
    EXPECT_LE(fd.context.Count(), 2);
  }
}

// Property: TANE == the FD side of the brute-force oracle.
class TaneOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaneOracleTest, MatchesBruteForceMinimalFds) {
  Table t = GenRandomTable(25, 5, 3, GetParam());
  EncodedRelation rel = Encode(t);
  TaneResult got = Tane().Discover(rel);
  BruteForceDiscoveryResult want = BruteForceDiscoverOds(rel);
  std::vector<ConstancyOd> got_fds = got.fds;
  std::vector<ConstancyOd> want_fds = want.constancy_ods;
  std::sort(got_fds.begin(), got_fds.end());
  std::sort(want_fds.begin(), want_fds.end());
  EXPECT_EQ(got_fds, want_fds);
}

TEST_P(TaneOracleTest, AllReportedFdsHold) {
  Table t = GenRandomTable(35, 5, 4, GetParam() + 77);
  EncodedRelation rel = Encode(t);
  TaneResult got = Tane().Discover(rel);
  for (const ConstancyOd& fd : got.fds) {
    EXPECT_TRUE(BruteIsConstant(rel, fd.context, fd.attribute))
        << fd.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaneOracleTest,
                         ::testing::Values(31, 62, 93, 124, 155, 186, 217,
                                           248));

}  // namespace
}  // namespace fastod
