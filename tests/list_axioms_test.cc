// Empirical verification of the paper's *list-based* axiomatization
// (Figure 1) and the Section 2 theorems. Each axiom is a theorem about
// all relation instances, so on every random table the implication must
// hold — this exercises the validator's lexicographic semantics from a
// completely independent angle.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "od/mapping.h"
#include "validate/od_validator.h"

namespace fastod {
namespace {

constexpr int kAttrs = 4;

// All duplicate-free specs over up to kAttrs attributes with length <= 2,
// plus a few length-3 ones — enough to exercise every axiom shape without
// blowing up the test.
std::vector<OrderSpec> SpecUniverse() {
  std::vector<OrderSpec> specs;
  specs.push_back({});
  for (int a = 0; a < kAttrs; ++a) {
    specs.push_back({a});
    for (int b = 0; b < kAttrs; ++b) {
      if (b != a) specs.push_back({a, b});
    }
  }
  specs.push_back({0, 1, 2});
  specs.push_back({2, 1, 0});
  specs.push_back({1, 3, 0});
  return specs;
}

OrderSpec Concat(const OrderSpec& x, const OrderSpec& y) {
  OrderSpec out = x;
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

class ListAxiomsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ListAxiomsTest()
      : table_(GenRandomTable(22, kAttrs, 3, GetParam())),
        rel_(std::move(EncodedRelation::FromTable(table_)).value()),
        v_(&rel_) {}

  Table table_;
  EncodedRelation rel_;
  OdValidator v_;
};

TEST_P(ListAxiomsTest, Reflexivity) {
  // XY ↦ X for every pair of specs.
  for (const OrderSpec& x : SpecUniverse()) {
    for (const OrderSpec& y : SpecUniverse()) {
      EXPECT_TRUE(v_.Holds(ListOd{Concat(x, y), x}))
          << OrderSpecToString(x) << " " << OrderSpecToString(y);
    }
  }
}

TEST_P(ListAxiomsTest, Prefix) {
  // X ↦ Y implies ZX ↦ ZY.
  for (const OrderSpec& x : SpecUniverse()) {
    for (const OrderSpec& y : SpecUniverse()) {
      if (!v_.Holds(ListOd{x, y})) continue;
      for (const OrderSpec& z : SpecUniverse()) {
        if (z.size() > 1) continue;  // keep the cube small
        EXPECT_TRUE(v_.Holds(ListOd{Concat(z, x), Concat(z, y)}))
            << OrderSpecToString(z) << " prefixed onto "
            << ListOd{x, y}.ToString();
      }
    }
  }
}

TEST_P(ListAxiomsTest, Transitivity) {
  // X ↦ Y and Y ↦ Z imply X ↦ Z.
  std::vector<OrderSpec> specs = SpecUniverse();
  for (const OrderSpec& x : specs) {
    for (const OrderSpec& y : specs) {
      if (!v_.Holds(ListOd{x, y})) continue;
      for (const OrderSpec& z : specs) {
        if (v_.Holds(ListOd{y, z})) {
          EXPECT_TRUE(v_.Holds(ListOd{x, z}))
              << OrderSpecToString(x) << "->" << OrderSpecToString(y)
              << "->" << OrderSpecToString(z);
        }
      }
    }
  }
}

TEST_P(ListAxiomsTest, NormalizationAxiom) {
  // WXYXV ↔ WXYV: a repeated attribute after its first occurrence is
  // redundant. Take W=[w], X=[x], Y=[y], V=[v].
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    int w = static_cast<int>(rng.Uniform(kAttrs));
    int x = static_cast<int>(rng.Uniform(kAttrs));
    int y = static_cast<int>(rng.Uniform(kAttrs));
    int vv = static_cast<int>(rng.Uniform(kAttrs));
    OrderSpec with_repeat{w, x, y, x, vv};
    OrderSpec without{w, x, y, vv};
    EXPECT_TRUE(v_.AreOrderEquivalent(with_repeat, without))
        << OrderSpecToString(with_repeat);
  }
}

TEST_P(ListAxiomsTest, Suffix) {
  // X ↦ Y implies X ↔ YX.
  for (const OrderSpec& x : SpecUniverse()) {
    for (const OrderSpec& y : SpecUniverse()) {
      if (!v_.Holds(ListOd{x, y})) continue;
      EXPECT_TRUE(v_.AreOrderEquivalent(x, Concat(y, x)))
          << ListOd{x, y}.ToString();
    }
  }
}

TEST_P(ListAxiomsTest, Theorem1Decomposition) {
  // X ↦ Y iff X ↦ XY and X ~ Y.
  for (const OrderSpec& x : SpecUniverse()) {
    if (x.empty()) continue;
    for (const OrderSpec& y : SpecUniverse()) {
      if (y.empty()) continue;
      bool direct = v_.Holds(ListOd{x, y});
      bool split_free = v_.Holds(ListOd{x, Concat(x, y)});
      bool swap_free = v_.AreOrderCompatible(x, y);
      EXPECT_EQ(direct, split_free && swap_free)
          << ListOd{x, y}.ToString();
    }
  }
}

TEST_P(ListAxiomsTest, Theorem2FdCorrespondence) {
  // The FD X -> Y holds iff X' ↦ X'Y' for (any) permutations; check with
  // the canonical constancy judgement as the FD oracle.
  for (const OrderSpec& x : SpecUniverse()) {
    if (x.empty() || x.size() > 2) continue;
    for (int y = 0; y < kAttrs; ++y) {
      bool fd = v_.IsConstant(OrderSpecSet(x), y);
      bool od = v_.Holds(ListOd{x, Concat(x, {y})});
      EXPECT_EQ(fd, od) << OrderSpecToString(x) << " -> " << y;
    }
  }
}

TEST_P(ListAxiomsTest, Lemma1OdImpliesFd) {
  // X ↦ Y implies the FD X -> Y.
  for (const OrderSpec& x : SpecUniverse()) {
    if (x.empty()) continue;
    for (const OrderSpec& y : SpecUniverse()) {
      if (y.empty() || !v_.Holds(ListOd{x, y})) continue;
      for (int attr : y) {
        EXPECT_TRUE(v_.IsConstant(OrderSpecSet(x), attr))
            << ListOd{x, y}.ToString();
      }
    }
  }
}

TEST_P(ListAxiomsTest, OrderCompatibilityIsSymmetric) {
  // X ~ Y iff Y ~ X (definitionally XY ↔ YX).
  for (const OrderSpec& x : SpecUniverse()) {
    for (const OrderSpec& y : SpecUniverse()) {
      EXPECT_EQ(v_.AreOrderCompatible(x, y), v_.AreOrderCompatible(y, x));
    }
  }
}

TEST_P(ListAxiomsTest, EmptySpecIsCompatibleWithEverything) {
  // Definition 3: [] is order compatible with any order specification.
  for (const OrderSpec& y : SpecUniverse()) {
    EXPECT_TRUE(v_.AreOrderCompatible({}, y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListAxiomsTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace fastod
