// Tests for the shared JSON utility (common/json.h): writer shape,
// parser round-trips, and the defensive limits the HTTP server relies
// on (duplicate keys, depth, trailing garbage).
#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace fastod {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.BeginObject()
      .Key("id")
      .Int(7)
      .Key("name")
      .String("flight \"a\"\n")
      .Key("ok")
      .Bool(true)
      .Key("none")
      .Null()
      .Key("ratio")
      .Double(0.25)
      .Key("tags")
      .BeginArray()
      .String("x")
      .Int(-3)
      .EndArray()
      .Key("nested")
      .BeginObject()
      .EndObject()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"id\": 7, \"name\": \"flight \\\"a\\\"\\n\", "
            "\"ok\": true, \"none\": null, \"ratio\": 0.25, "
            "\"tags\": [\"x\", -3], \"nested\": {}}");
}

TEST(JsonWriterTest, DoubleKeepsSmallAndLargeMagnitudes) {
  JsonWriter w;
  w.BeginArray().Double(1e-7).Double(1e30).Double(0.0).EndArray();
  EXPECT_EQ(w.str(), "[1e-07, 1e+30, 0]");
}

TEST(JsonWriterTest, RawSplicesPrerenderedJson) {
  JsonWriter w;
  w.BeginObject().Key("result").Raw("{\"a\": 1}").EndObject();
  EXPECT_EQ(w.str(), "{\"result\": {\"a\": 1}}");
}

TEST(JsonParseTest, RoundTripsScalarsAndContainers) {
  auto value = ParseJson(
      " {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": null, \"d\": false}, "
      "\"e\": \"tab\\there\"} ");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  ASSERT_TRUE(value->is_object());
  const JsonValue* a = value->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_EQ(a->array_items()[0].int_value(), 1);
  EXPECT_DOUBLE_EQ(a->array_items()[1].number_value(), 2.5);
  EXPECT_DOUBLE_EQ(a->array_items()[2].number_value(), -300.0);
  EXPECT_TRUE(value->Find("b")->Find("c")->is_null());
  EXPECT_FALSE(value->Find("b")->Find("d")->bool_value());
  EXPECT_EQ(value->Find("e")->string_value(), "tab\there");
  EXPECT_EQ(value->Find("missing"), nullptr);
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8) {
  auto value = ParseJson("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->string_value(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParseTest, DumpRoundTrips) {
  const std::string text =
      "{\"a\": [1, true, null, \"x\"], \"b\": {\"c\": -2}}";
  auto value = ParseJson(text);
  ASSERT_TRUE(value.ok());
  auto again = ParseJson(value->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(value->Dump(), again->Dump());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("treu").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"bad\\q\"").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST(JsonParseTest, RejectsDuplicateKeys) {
  auto value = ParseJson("{\"a\": 1, \"a\": 2}");
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("duplicate"), std::string::npos);
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 80; ++i) deep += ']';
  auto value = ParseJson(deep);
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("deep"), std::string::npos);
}

TEST(JsonParseTest, EscapeHelperCoversControls) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n\t\x01"), "a\\\"b\\\\c\\n\\t\\u0001");
}

}  // namespace
}  // namespace fastod
