// Tests for incremental OD discovery over versioned datasets
// (src/incremental/): the acceptance bar is the equivalence oracle — the
// incremental result (survivors + newly discovered ODs) must equal a
// fresh full FASTOD run on the grown relation bit-for-bit, across random
// tables, split points, and multi-step append chains. Around that core:
// merge-encoding must reproduce FromTable's ranks exactly, revocations
// must flow through OdSink, the registered `incremental` algorithm must
// resolve base rows from a bound dataset version, and appending while
// sessions discover on the prior version must be race-free (the
// sanitizer CI jobs turn the last one into a data-race detector).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "algo/fastod.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "data/dataset_store.h"
#include "data/encode.h"
#include "data/table.h"
#include "gen/random_table.h"
#include "incremental/incremental.h"
#include "incremental/incremental_engine.h"
#include "partition/stripped_partition.h"
#include "report/report.h"

namespace fastod {
namespace {

Table Tail(const Table& table, int64_t from) {
  std::vector<int64_t> rows(table.NumRows() - from);
  std::iota(rows.begin(), rows.end(), from);
  return table.SelectRows(rows);
}

PriorOds PriorOf(const FastodResult& result) {
  PriorOds prior;
  prior.constancy = result.constancy_ods;
  prior.compatibility = result.compatibility_ods;
  return prior;
}

template <typename Od>
std::vector<Od> Sorted(std::vector<Od> ods) {
  std::sort(ods.begin(), ods.end());
  return ods;
}

/// The oracle: incremental discovery from the prefix's prior must land on
/// exactly the OD set a fresh full run finds on the whole relation, and
/// the revoked set must be exactly the prior ODs that no longer hold.
void ExpectEquivalence(const Table& table, int64_t base_rows) {
  Result<EncodedRelation> prefix =
      EncodedRelation::FromTable(table.Head(base_rows));
  ASSERT_TRUE(prefix.ok());
  Result<EncodedRelation> full = EncodedRelation::FromTable(table);
  ASSERT_TRUE(full.ok());

  FastodResult prior_run = Fastod().Discover(*prefix);
  FastodResult fresh = Fastod().Discover(*full);

  IncrementalOptions options;
  options.base_rows = base_rows;
  IncrementalResult got =
      IncrementalDiscovery(&*full, options).Run(PriorOf(prior_run));

  EXPECT_FALSE(got.cancelled);
  EXPECT_EQ(got.revalidated, prior_run.NumOds());
  EXPECT_EQ(Sorted(got.constancy_ods), Sorted(fresh.constancy_ods))
      << "base_rows=" << base_rows << " rows=" << table.NumRows();
  EXPECT_EQ(Sorted(got.compatibility_ods), Sorted(fresh.compatibility_ods))
      << "base_rows=" << base_rows << " rows=" << table.NumRows();

  // Revoked ∪ survivors partitions the prior.
  std::vector<ConstancyOd> prior_constancy = Sorted(prior_run.constancy_ods);
  std::vector<ConstancyOd> accounted = got.revoked_constancy;
  for (const ConstancyOd& od : got.constancy_ods) {
    if (std::find(prior_run.constancy_ods.begin(),
                  prior_run.constancy_ods.end(),
                  od) != prior_run.constancy_ods.end()) {
      accounted.push_back(od);
    }
  }
  EXPECT_EQ(Sorted(accounted), prior_constancy);
}

TEST(IncrementalMergeEncodeTest, AppendMatchesFromTableBitForBit) {
  for (uint32_t seed : {1u, 7u, 23u, 91u}) {
    Table table = GenRandomTable(240, 5, 6, seed);
    const int64_t base_rows = 200;

    auto base =
        LoadedDataset::Build("t", table.Head(base_rows), "unit-test");
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    auto grown = LoadedDataset::Append(*base, Tail(table, base_rows));
    ASSERT_TRUE(grown.ok()) << grown.status().ToString();

    Result<EncodedRelation> expected = EncodedRelation::FromTable(table);
    ASSERT_TRUE(expected.ok());

    EXPECT_EQ((*grown)->version(), 2);
    EXPECT_EQ((*grown)->base_rows(), base_rows);
    EXPECT_EQ((*grown)->delta_rows(), table.NumRows() - base_rows);
    const EncodedRelation& relation = (*grown)->relation();
    ASSERT_EQ(relation.NumRows(), expected->NumRows());
    ASSERT_EQ(relation.NumAttributes(), expected->NumAttributes());
    for (int a = 0; a < relation.NumAttributes(); ++a) {
      EXPECT_TRUE(relation.codes(a) == expected->codes(a))
          << "seed " << seed << " attribute " << a;
      EXPECT_EQ(relation.NumDistinct(a), expected->NumDistinct(a))
          << "seed " << seed << " attribute " << a;
      EXPECT_EQ((*grown)->singleton_partitions()[a],
                StrippedPartition::ForAttribute(expected->codes(a)))
          << "seed " << seed << " attribute " << a;
    }
    // The base version is untouched by the append.
    EXPECT_EQ((*base)->NumRows(), base_rows);
    EXPECT_EQ((*base)->version(), 1);
  }
}

TEST(IncrementalMergeEncodeTest, AppendRejectsColumnMismatch) {
  Table table = GenRandomTable(50, 4, 5, 3);
  auto base = LoadedDataset::Build("t", table, "unit-test");
  ASSERT_TRUE(base.ok());
  Table narrow = GenRandomTable(10, 3, 5, 4);
  auto grown = LoadedDataset::Append(*base, narrow);
  EXPECT_FALSE(grown.ok());
  EXPECT_EQ(grown.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalEquivalenceTest, RandomTablesAndSplitPoints) {
  struct Case {
    int64_t rows;
    int cols;
    int64_t domain;
    uint32_t seed;
    int64_t base_rows;
  };
  const Case cases[] = {
      {60, 4, 3, 11, 50},   {120, 5, 4, 12, 100}, {120, 5, 8, 13, 110},
      {200, 6, 5, 14, 180}, {200, 6, 2, 15, 150}, {90, 5, 3, 16, 89},
      {150, 4, 10, 17, 100},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE("seed " + std::to_string(c.seed));
    ExpectEquivalence(GenRandomTable(c.rows, c.cols, c.domain, c.seed),
                      c.base_rows);
  }
}

TEST(IncrementalEquivalenceTest, EmptyDeltaKeepsEverything) {
  Table table = GenRandomTable(80, 5, 4, 21);
  Result<EncodedRelation> full = EncodedRelation::FromTable(table);
  ASSERT_TRUE(full.ok());
  FastodResult prior = Fastod().Discover(*full);

  IncrementalOptions options;
  options.base_rows = table.NumRows();  // no appended rows
  IncrementalResult got =
      IncrementalDiscovery(&*full, options).Run(PriorOf(prior));
  EXPECT_TRUE(got.revoked_constancy.empty());
  EXPECT_TRUE(got.revoked_compatibility.empty());
  EXPECT_EQ(got.escalations, 0);
  EXPECT_EQ(got.nodes_searched, 0);
  EXPECT_EQ(Sorted(got.constancy_ods), Sorted(prior.constancy_ods));
  EXPECT_EQ(Sorted(got.compatibility_ods),
            Sorted(prior.compatibility_ods));
}

TEST(IncrementalEquivalenceTest, SingleRowAppend) {
  for (uint32_t seed : {31u, 32u, 33u}) {
    Table table = GenRandomTable(101, 5, 4, seed);
    ExpectEquivalence(table, 100);
  }
}

TEST(IncrementalEquivalenceTest, MultiStepAppendChain) {
  // Three appends, re-running incrementally at each step with the prior
  // of the previous step; the final result must still match a fresh run.
  Table table = GenRandomTable(160, 5, 4, 41);
  const int64_t steps[] = {100, 120, 140, 160};

  Result<EncodedRelation> first =
      EncodedRelation::FromTable(table.Head(steps[0]));
  ASSERT_TRUE(first.ok());
  FastodResult seed_run = Fastod().Discover(*first);
  PriorOds prior = PriorOf(seed_run);

  for (size_t i = 1; i < 4; ++i) {
    Result<EncodedRelation> grown =
        EncodedRelation::FromTable(table.Head(steps[i]));
    ASSERT_TRUE(grown.ok());
    IncrementalOptions options;
    options.base_rows = steps[i - 1];
    IncrementalResult got =
        IncrementalDiscovery(&*grown, options).Run(prior);
    FastodResult fresh = Fastod().Discover(*grown);
    ASSERT_EQ(Sorted(got.constancy_ods), Sorted(fresh.constancy_ods))
        << "step " << i;
    ASSERT_EQ(Sorted(got.compatibility_ods),
              Sorted(fresh.compatibility_ods))
        << "step " << i;
    prior.constancy = got.constancy_ods;
    prior.compatibility = got.compatibility_ods;
  }
}

TEST(IncrementalSinkTest, RevocationsAndDiscoveriesStream) {
  // A constant column broken by the append: its constancy ODs revoke,
  // and the revocations reach the sink before any new discovery.
  TableBuilder builder(
      Schema({{"a", DataType::kInt}, {"b", DataType::kInt}}));
  for (int i = 0; i < 6; ++i) {
    builder.AddRowUnchecked({Value::Int(i), Value::Int(7)});
  }
  builder.AddRowUnchecked({Value::Int(6), Value::Int(9)});  // breaks []->b
  Table table = builder.Build();

  Result<EncodedRelation> prefix = EncodedRelation::FromTable(table.Head(6));
  ASSERT_TRUE(prefix.ok());
  Result<EncodedRelation> full = EncodedRelation::FromTable(table);
  ASSERT_TRUE(full.ok());
  FastodResult prior = Fastod().Discover(*prefix);

  CollectingOdSink sink;
  IncrementalOptions options;
  options.base_rows = 6;
  options.sink = &sink;
  IncrementalResult got =
      IncrementalDiscovery(&*full, options).Run(PriorOf(prior));

  EXPECT_FALSE(got.revoked_constancy.empty());
  ASSERT_EQ(sink.revoked_ods().size(),
            got.revoked_constancy.size() + got.revoked_compatibility.size());
  // Survivors are not re-emitted: the sink's discoveries are exactly the
  // new ODs.
  EXPECT_EQ(static_cast<int64_t>(sink.constancy_ods().size()),
            got.new_constancy);
  EXPECT_EQ(static_cast<int64_t>(sink.compatibility_ods().size()),
            got.new_compatibility);
  FastodResult fresh = Fastod().Discover(*full);
  EXPECT_EQ(Sorted(got.constancy_ods), Sorted(fresh.constancy_ods));
  EXPECT_EQ(Sorted(got.compatibility_ods), Sorted(fresh.compatibility_ods));
}

TEST(IncrementalSinkTest, CancellationStopsCleanly) {
  Table table = GenRandomTable(200, 6, 4, 51);
  Result<EncodedRelation> prefix = EncodedRelation::FromTable(table.Head(150));
  ASSERT_TRUE(prefix.ok());
  Result<EncodedRelation> full = EncodedRelation::FromTable(table);
  ASSERT_TRUE(full.ok());
  FastodResult prior = Fastod().Discover(*prefix);

  ExecutionControl control;
  control.RequestCancel();
  IncrementalOptions options;
  options.base_rows = 150;
  options.control = &control;
  IncrementalResult got =
      IncrementalDiscovery(&*full, options).Run(PriorOf(prior));
  EXPECT_TRUE(got.cancelled);
}

TEST(IncrementalEngineTest, RegisteredAndEquivalentThroughAdapter) {
  Table table = GenRandomTable(140, 5, 4, 61);
  const int64_t base_rows = 120;

  DatasetStore store;
  auto v1 = store.PutTable("t", table.Head(base_rows));
  ASSERT_TRUE(v1.ok());
  auto v2 = store.AppendRows("t", Tail(table, base_rows));
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ((*v2)->version(), 2);

  // Prior via the registered fastod adapter on version 1.
  auto fastod_algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(fastod_algo.ok());
  ASSERT_TRUE((*fastod_algo)->LoadData(*v1).ok());
  ASSERT_TRUE((*fastod_algo)->Execute().ok());
  std::string prior_json = (*fastod_algo)->ResultJson();

  // Incremental on version 2, base rows resolved from the bound dataset.
  auto algo = AlgorithmRegistry::Default().Create("incremental");
  ASSERT_TRUE(algo.ok()) << algo.status().ToString();
  ASSERT_TRUE((*algo)->SetOption("prior", prior_json).ok());
  ASSERT_TRUE((*algo)->LoadData(*v2).ok());
  Status executed = (*algo)->Execute();
  ASSERT_TRUE(executed.ok()) << executed.ToString();

  auto* incremental = static_cast<IncrementalAlgorithm*>(algo->get());
  EXPECT_EQ(incremental->base_rows(), base_rows);

  Result<EncodedRelation> full = EncodedRelation::FromTable(table);
  ASSERT_TRUE(full.ok());
  FastodResult fresh = Fastod().Discover(*full);
  EXPECT_EQ(Sorted(incremental->result().constancy_ods),
            Sorted(fresh.constancy_ods));
  EXPECT_EQ(Sorted(incremental->result().compatibility_ods),
            Sorted(fresh.compatibility_ods));

  // The report round-trips through the prior parser: feeding the
  // incremental report back as a prior is legal (fastod shape superset).
  Result<PriorOds> reparsed =
      ParsePriorReport(incremental->ResultJson(), table.schema());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(Sorted(reparsed->constancy),
            Sorted(incremental->result().constancy_ods));
}

TEST(IncrementalEngineTest, RequiresPriorAndValidBaseRows) {
  Table table = GenRandomTable(40, 4, 4, 71);
  auto algo = AlgorithmRegistry::Default().Create("incremental");
  ASSERT_TRUE(algo.ok());
  ASSERT_TRUE((*algo)->LoadData(table).ok());
  Status no_prior = (*algo)->Execute();
  EXPECT_EQ(no_prior.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE((*algo)->SetOption("prior",
                                 "{\"constancy_ods\":[],"
                                 "\"compatibility_ods\":[]}")
                  .ok());
  // No bound dataset version and no explicit base-rows: refused.
  Status no_base = (*algo)->Execute();
  EXPECT_EQ(no_base.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE((*algo)->SetOption("base-rows", "1000000").ok());
  Status too_big = (*algo)->Execute();
  EXPECT_EQ(too_big.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE((*algo)->SetOption("base-rows", "0").ok());
  Status ok = (*algo)->Execute();
  EXPECT_TRUE(ok.ok()) << ok.ToString();  // empty prior, full re-search
  // base-rows=0 means everything is delta: the whole lattice re-search
  // seeds from nothing broken, so nothing is found... unless the prior
  // was complete. An empty prior on a non-empty relation is only a valid
  // prior if the 0-row prefix has no ODs — it has none, trivially, so
  // the contract is vacuous here and the run simply returns empty.
}

TEST(IncrementalEngineTest, ParsePriorRejectsMalformedReports) {
  Schema schema({{"x", DataType::kInt}, {"y", DataType::kInt}});
  EXPECT_FALSE(ParsePriorReport("not json", schema).ok());
  EXPECT_FALSE(ParsePriorReport("[]", schema).ok());
  EXPECT_FALSE(ParsePriorReport("{}", schema).ok());
  // Unknown attribute name.
  EXPECT_FALSE(
      ParsePriorReport("{\"constancy_ods\":[{\"context\":[],"
                       "\"attribute\":\"zzz\"}],\"compatibility_ods\":[]}",
                       schema)
          .ok());
  // Bidirectional ODs are out of scope.
  EXPECT_FALSE(
      ParsePriorReport("{\"constancy_ods\":[],\"compatibility_ods\":[],"
                       "\"bidirectional_ods\":[{\"context\":[],\"a\":\"x\","
                       "\"b\":\"y\"}]}",
                       schema)
          .ok());
  Result<PriorOds> ok = ParsePriorReport(
      "{\"constancy_ods\":[{\"context\":[\"x\"],\"attribute\":\"y\"}],"
      "\"compatibility_ods\":[{\"context\":[],\"a\":\"x\",\"b\":\"y\"}]}",
      schema);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->constancy.size(), 1u);
  EXPECT_EQ(ok->constancy[0].attribute, 1);
  ASSERT_EQ(ok->compatibility.size(), 1u);
}

TEST(IncrementalConcurrencyTest, AppendWhileDiscovering) {
  // Discovery sessions pin version 1 while another thread appends three
  // more versions; the pinned version must stay bit-for-bit stable and
  // every version's incremental result must match a fresh run. TSan
  // turns this into a data-race detector over the store's version chain.
  Table table = GenRandomTable(140, 5, 4, 81);
  const int64_t base_rows = 80;

  DatasetStore store;
  auto v1 = store.PutTable("t", table.Head(base_rows));
  ASSERT_TRUE(v1.ok());
  FastodResult prior_run = Fastod().Discover((*v1)->relation());

  std::atomic<bool> go{false};
  std::vector<FastodResult> pinned_results(4);
  std::vector<std::thread> discoverers;
  for (int i = 0; i < 4; ++i) {
    discoverers.emplace_back([&, i] {
      while (!go.load()) std::this_thread::yield();
      // Pin and discover on version 1 while appends mint new versions.
      pinned_results[i] = Fastod().Discover((*v1)->relation());
    });
  }

  std::thread appender([&] {
    go.store(true);
    for (int64_t step = base_rows + 20; step <= 140; step += 20) {
      auto grown = store.AppendRows("t", Tail(table.Head(step), step - 20));
      ASSERT_TRUE(grown.ok()) << grown.status().ToString();
    }
  });
  appender.join();
  for (std::thread& t : discoverers) t.join();

  for (const FastodResult& result : pinned_results) {
    EXPECT_EQ(Sorted(result.constancy_ods),
              Sorted(prior_run.constancy_ods));
    EXPECT_EQ(Sorted(result.compatibility_ods),
              Sorted(prior_run.compatibility_ods));
  }

  // The final version equals a fresh build of the full table.
  auto current = store.Get("t");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)->version(), 4);
  EXPECT_EQ((*current)->NumRows(), 140);
  Result<EncodedRelation> expected = EncodedRelation::FromTable(table);
  ASSERT_TRUE(expected.ok());
  for (int a = 0; a < expected->NumAttributes(); ++a) {
    EXPECT_TRUE((*current)->relation().codes(a) == expected->codes(a));
  }
}

}  // namespace
}  // namespace fastod
