#include <gtest/gtest.h>

#include <algorithm>

#include "data/csv.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "validate/violation_scanner.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

class EmployeeViolationTest : public ::testing::Test {
 protected:
  EmployeeViolationTest()
      : table_(EmployeeTaxTable()), rel_(Encode(table_)), scanner_(&rel_) {}

  int Col(const std::string& name) {
    auto idx = table_.schema().IndexOf(name);
    EXPECT_TRUE(idx.ok());
    return *idx;
  }

  Table table_;
  EncodedRelation rel_;
  ViolationScanner scanner_;
};

TEST_F(EmployeeViolationTest, PaperExample3ThreePositionSplits) {
  // Example 3: three splits w.r.t. [position] ↦ [position, salary]
  // (pairs t1/t4, t2/t5, t3/t6 — 0-based: 0/3, 1/4, 2/5).
  auto violations = scanner_.ScanConstancy(
      AttributeSet::Single(Col("posit")), Col("sal"));
  ASSERT_EQ(violations.size(), 3u);
  for (const Violation& v : violations) {
    EXPECT_EQ(v.kind, ViolationKind::kSplit);
    EXPECT_EQ(v.tuple_t - v.tuple_s, 3);  // paired across the two years
  }
}

TEST_F(EmployeeViolationTest, PaperExample3SalarySubgroupSwap) {
  auto violations = scanner_.ScanCompatibility(AttributeSet::Empty(),
                                               Col("sal"), Col("subg"));
  EXPECT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kSwap);
}

TEST_F(EmployeeViolationTest, CleanOdHasNoViolations) {
  EXPECT_TRUE(scanner_
                  .ScanCompatibility(AttributeSet::Empty(), Col("sal"),
                                     Col("tax"))
                  .empty());
  EXPECT_TRUE(scanner_
                  .ScanConstancy(AttributeSet::Single(Col("posit")),
                                 Col("bin"))
                  .empty());
}

TEST_F(EmployeeViolationTest, ListOdScanDeduplicatesPairs) {
  // [position] ↦ [salary] violates via splits; the canonical image has
  // several pieces but pairs are reported once.
  auto violations =
      scanner_.Scan(ListOd{{Col("posit")}, {Col("sal")}});
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (const Violation& v : violations) {
    auto mm = std::minmax(v.tuple_s, v.tuple_t);
    pairs.push_back({mm.first, mm.second});
  }
  std::sort(pairs.begin(), pairs.end());
  EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end());
}

TEST(ViolationScannerTest, MaxViolationsCapsOutput) {
  // A column pair swapping everywhere produces ~n^2 candidate pairs; the
  // scanner must respect the cap.
  auto t = ReadCsvString("a,b\n1,9\n2,8\n3,7\n4,6\n5,5\n6,4\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  ScanOptions opt;
  opt.max_violations = 2;
  auto v = scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1, opt);
  EXPECT_EQ(v.size(), 2u);
}

TEST(ViolationScannerTest, TupleCountsAccumulate) {
  auto t = ReadCsvString("a,b\n1,2\n1,3\n1,4\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  // a constant -> b must be constant for {}: []->b ... it is not: splits
  // against tuple 0.
  auto v = scanner.ScanConstancy(AttributeSet::Single(0), 1);
  ASSERT_EQ(v.size(), 2u);
  auto counts = scanner.TupleViolationCounts(v);
  EXPECT_EQ(counts[0], 2);  // participates in both pairs
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
}

TEST(ViolationScannerTest, ViolationToString) {
  Violation v{ViolationKind::kSwap, 3, 7};
  EXPECT_EQ(v.ToString(), "swap(t3, t7)");
  Violation s{ViolationKind::kSplit, 0, 1};
  EXPECT_EQ(s.ToString(), "split(t0, t1)");
}

// ---- Delta-limited scans (ScanOptions::delta_start) -----------------
// The incremental engine's phase 1: only equivalence classes touching a
// tuple at or past delta_start are scanned, which is exact when the
// prefix satisfied the dependency.

TEST(ViolationScannerDeltaTest, EmptyDeltaScansNothing) {
  // delta_start == NumRows: every class lives in the prefix, so even a
  // dependency the relation violates reports no violations — the caller
  // vouched for the prefix and there is no delta to blame.
  auto t = ReadCsvString("a,b\n1,10\n2,90\n3,40\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  ASSERT_FALSE(
      scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1).empty());
  ScanOptions options;
  options.delta_start = rel.NumRows();
  EXPECT_TRUE(
      scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1, options)
          .empty());
  EXPECT_TRUE(scanner.ScanConstancy(AttributeSet::Single(0), 1, options)
                  .empty());
}

TEST(ViolationScannerDeltaTest, SingleRowAppendFindsItsViolation) {
  // Prefix rows 0..3 satisfy a ~ b; appended row 4 swaps against row 3.
  auto t = ReadCsvString("a,b\n1,10\n2,20\n3,30\n4,40\n5,35\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  ScanOptions options;
  options.delta_start = 4;
  auto violations =
      scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1, options);
  ASSERT_FALSE(violations.empty());
  // Every reported pair implicates the appended tuple's class.
  for (const Violation& v : violations) {
    EXPECT_TRUE(v.tuple_s == 4 || v.tuple_t == 4) << v.ToString();
  }
}

TEST(ViolationScannerDeltaTest, AppendDuplicatingExistingKeyRow) {
  // Row 4 duplicates row 1's key (a=2) with a conflicting b: its class
  // gains a delta tuple, so the delta-limited constancy scan must fire
  // even though the conflicting partner row is in the prefix.
  auto t = ReadCsvString("a,b\n1,10\n2,20\n3,30\n4,40\n2,25\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  ScanOptions options;
  options.delta_start = 4;
  auto violations =
      scanner.ScanConstancy(AttributeSet::Single(0), 1, options);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kSplit);
  // An exact duplicate of an existing row, by contrast, breaks nothing.
  auto dup = ReadCsvString("a,b\n1,10\n2,20\n3,30\n4,40\n2,20\n");
  ASSERT_TRUE(dup.ok());
  EncodedRelation dup_rel = Encode(*dup);
  ViolationScanner dup_scanner(&dup_rel);
  EXPECT_TRUE(dup_scanner.ScanConstancy(AttributeSet::Single(0), 1, options)
                  .empty());
  EXPECT_TRUE(
      dup_scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1, options)
          .empty());
}

TEST(ViolationScannerDeltaTest, AllEqualColumnAppendStaysConstant) {
  // Appending rows that repeat a constant column's single value keeps
  // [] -> b violation-free; appending a second value breaks it and the
  // delta-limited scan sees it (the single class contains delta rows).
  auto same = ReadCsvString("a,b\n1,7\n2,7\n3,7\n4,7\n");
  ASSERT_TRUE(same.ok());
  EncodedRelation same_rel = Encode(*same);
  ViolationScanner same_scanner(&same_rel);
  ScanOptions options;
  options.delta_start = 3;
  EXPECT_TRUE(same_scanner.ScanConstancy(AttributeSet::Empty(), 1, options)
                  .empty());

  auto broken = ReadCsvString("a,b\n1,7\n2,7\n3,7\n4,9\n");
  ASSERT_TRUE(broken.ok());
  EncodedRelation broken_rel = Encode(*broken);
  ViolationScanner broken_scanner(&broken_rel);
  EXPECT_FALSE(
      broken_scanner.ScanConstancy(AttributeSet::Empty(), 1, options)
          .empty());
}

TEST(ViolationScannerDeltaTest, DefaultDisablesTheFilter) {
  auto t = ReadCsvString("a,b\n1,10\n2,90\n3,40\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  ScanOptions options;  // delta_start = -1
  EXPECT_FALSE(
      scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1, options)
          .empty());
}

TEST(ViolationScannerTest, InjectedErrorIsLocated) {
  // Clean monotone data plus one corrupted row: the scanner should
  // implicate the corrupted tuple most often.
  auto t = ReadCsvString("a,b\n1,10\n2,20\n3,90\n4,40\n5,50\n");
  ASSERT_TRUE(t.ok());  // row 2 (b=90) breaks a ~ b against rows 3 and 4
  EncodedRelation rel = Encode(*t);
  ViolationScanner scanner(&rel);
  auto v = scanner.ScanCompatibility(AttributeSet::Empty(), 0, 1);
  ASSERT_FALSE(v.empty());
  auto counts = scanner.TupleViolationCounts(v);
  int64_t dirtiest =
      std::max_element(counts.begin(), counts.end()) - counts.begin();
  EXPECT_EQ(dirtiest, 2);
}

}  // namespace
}  // namespace fastod
