#include <gtest/gtest.h>

#include "algo/brute_force_discovery.h"
#include "axioms/inference.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

AttributeSet S(std::initializer_list<int> attrs) {
  AttributeSet s;
  for (int a : attrs) s = s.With(a);
  return s;
}

TEST(OdTheoryTest, ReflexivityIsAlwaysImplied) {
  OdTheory theory(3);
  theory.Close();
  EXPECT_TRUE(theory.Implies(ConstancyOd{S({0, 1}), 0}));  // A ∈ X
  EXPECT_FALSE(theory.Implies(ConstancyOd{S({0, 1}), 2}));
}

TEST(OdTheoryTest, IdentityAndNormalizationAreTrivial) {
  OdTheory theory(3);
  theory.Close();
  EXPECT_TRUE(theory.Implies(CompatibilityOd(S({}), 1, 1)));   // Identity
  EXPECT_TRUE(theory.Implies(CompatibilityOd(S({0}), 0, 2)));  // A ∈ X
}

TEST(OdTheoryTest, PropagateExample6) {
  // Example 6: {salary}: [] -> tax implies {salary}: tax ~ year.
  // Attributes: 0=salary, 1=tax, 2=year.
  OdTheory theory(3);
  theory.Add(ConstancyOd{S({0}), 1});
  theory.Close();
  EXPECT_TRUE(theory.Implies(CompatibilityOd(S({0}), 1, 2)));
}

TEST(OdTheoryTest, AugmentationI) {
  OdTheory theory(3);
  theory.Add(ConstancyOd{S({0}), 1});
  theory.Close();
  EXPECT_TRUE(theory.Implies(ConstancyOd{S({0, 2}), 1}));
  // Not downward: {}: [] -> B must not follow.
  EXPECT_FALSE(theory.Implies(ConstancyOd{S({}), 1}));
}

TEST(OdTheoryTest, AugmentationII) {
  OdTheory theory(4);
  theory.Add(CompatibilityOd(S({0}), 1, 2));
  theory.Close();
  EXPECT_TRUE(theory.Implies(CompatibilityOd(S({0, 3}), 1, 2)));
  EXPECT_FALSE(theory.Implies(CompatibilityOd(S({}), 1, 2)));
}

TEST(OdTheoryTest, Strengthen) {
  // X: []->A and XA: []->B imply X: []->B. X={0}, A=1, B=2.
  OdTheory theory(3);
  theory.Add(ConstancyOd{S({0}), 1});
  theory.Add(ConstancyOd{S({0, 1}), 2});
  theory.Close();
  EXPECT_TRUE(theory.Implies(ConstancyOd{S({0}), 2}));
}

TEST(OdTheoryTest, StrengthenChainsTransitively) {
  // {}: []->A, {A}: []->B, {A,B}: []->C  ⟹  {}: []->C (Lemma 2 shape).
  OdTheory theory(3);
  theory.Add(ConstancyOd{S({}), 0});
  theory.Add(ConstancyOd{S({0}), 1});
  theory.Add(ConstancyOd{S({0, 1}), 2});
  theory.Close();
  EXPECT_TRUE(theory.Implies(ConstancyOd{S({}), 2}));
  EXPECT_TRUE(theory.Implies(ConstancyOd{S({}), 1}));
}

TEST(OdTheoryTest, ChainSingleIntermediate) {
  // X: A~B, X: B~C, XB: A~C ⟹ X: A~C with X={}, A=0, B=1, C=2.
  OdTheory theory(3);
  theory.Add(CompatibilityOd(S({}), 0, 1));
  theory.Add(CompatibilityOd(S({}), 1, 2));
  theory.Add(CompatibilityOd(S({1}), 0, 2));
  theory.Close();
  EXPECT_TRUE(theory.Implies(CompatibilityOd(S({}), 0, 2)));
}

TEST(OdTheoryTest, ChainNeedsTheLiftedPremise) {
  // Without XB: A~C the conclusion must NOT follow (order compatibility
  // is not transitive on its own).
  OdTheory theory(3);
  theory.Add(CompatibilityOd(S({}), 0, 1));
  theory.Add(CompatibilityOd(S({}), 1, 2));
  theory.Close();
  EXPECT_FALSE(theory.Implies(CompatibilityOd(S({}), 0, 2)));
}

TEST(OdTheoryTest, FactsListsExcludeTrivia) {
  OdTheory theory(2);
  theory.Add(ConstancyOd{S({}), 0});
  theory.Close();
  for (const ConstancyOd& od : theory.ConstancyFacts()) {
    EXPECT_FALSE(od.IsTrivial());
  }
  for (const CompatibilityOd& od : theory.CompatibilityFacts()) {
    EXPECT_FALSE(od.IsTrivial());
  }
  // {}: []->A present; propagated {}: A~B present.
  EXPECT_FALSE(theory.ConstancyFacts().empty());
  EXPECT_FALSE(theory.CompatibilityFacts().empty());
}

// Soundness: every fact derived from ODs valid on a table is itself valid
// on that table. This exercises all axiom implementations at once against
// ground truth.
class AxiomSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AxiomSoundnessTest, ClosureOfValidFactsStaysValid) {
  Table t = GenRandomTable(18, 4, 3, GetParam());
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  // Seed the theory with the complete minimal OD set of the table.
  BruteForceDiscoveryResult truth = BruteForceDiscoverOds(*rel);
  OdTheory theory(4);
  for (const ConstancyOd& od : truth.constancy_ods) theory.Add(od);
  for (const CompatibilityOd& od : truth.compatibility_ods) theory.Add(od);
  theory.Close();
  for (const ConstancyOd& od : theory.ConstancyFacts()) {
    EXPECT_TRUE(BruteIsConstant(*rel, od.context, od.attribute))
        << od.ToString();
  }
  for (const CompatibilityOd& od : theory.CompatibilityFacts()) {
    EXPECT_TRUE(BruteIsOrderCompatible(*rel, od.context, od.a, od.b))
        << od.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomSoundnessTest,
                         ::testing::Values(7, 21, 42, 84, 168));

TEST(MinimalCoverTest, DropsAugmentedFacts) {
  CanonicalOdSet ods;
  ods.constancy.push_back(ConstancyOd{S({0}), 2});
  ods.constancy.push_back(ConstancyOd{S({0, 1}), 2});  // implied by Aug-I
  CanonicalOdSet cover = MinimalCover(ods, 3);
  ASSERT_EQ(cover.constancy.size(), 1u);
  EXPECT_EQ(cover.constancy[0], (ConstancyOd{S({0}), 2}));
}

TEST(MinimalCoverTest, DropsPropagatedCompatibility) {
  CanonicalOdSet ods;
  ods.constancy.push_back(ConstancyOd{S({0}), 1});
  ods.compatibility.push_back(CompatibilityOd(S({0}), 1, 2));  // Propagate
  CanonicalOdSet cover = MinimalCover(ods, 3);
  EXPECT_EQ(cover.constancy.size(), 1u);
  EXPECT_TRUE(cover.compatibility.empty());
}

TEST(MinimalCoverTest, KeepsIndependentFacts) {
  CanonicalOdSet ods;
  ods.constancy.push_back(ConstancyOd{S({0}), 1});
  ods.compatibility.push_back(CompatibilityOd(S({}), 2, 3));
  CanonicalOdSet cover = MinimalCover(ods, 4);
  EXPECT_EQ(cover.constancy.size(), 1u);
  EXPECT_EQ(cover.compatibility.size(), 1u);
}

}  // namespace
}  // namespace fastod
