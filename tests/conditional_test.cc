// Tests for conditional OD discovery (paper future-work item 3).
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/conditional.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

EncodedRelation Encode(const Table& t) {
  auto rel = EncodedRelation::FromTable(t);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

// region 0: a ~ b increasing together; region 1: anti-correlated.
const char kRegional[] =
    "region,a,b\n"
    "0,1,10\n0,2,20\n0,3,30\n"
    "1,1,30\n1,2,20\n1,3,10\n";

TEST(ConditionalTest, RefineFindsTheGoodBinding) {
  auto t = ReadCsvString(kRegional);
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  CanonicalOd od = CompatibilityOd(AttributeSet::Empty(), 1, 2);  // a ~ b
  EXPECT_FALSE(BruteHolds(rel, od));  // fails globally

  auto refined = finder.Refine(od, /*condition=*/0);
  ASSERT_TRUE(refined.has_value());
  // Only region 0 (rank 0) passes; half the tuples.
  EXPECT_EQ(refined->binding_ranks, (std::vector<int32_t>{0}));
  EXPECT_DOUBLE_EQ(refined->support, 0.5);
  EXPECT_EQ(refined->condition_attribute, 0);
}

TEST(ConditionalTest, RefineConstancyShape) {
  // d is constant per c-class only when region=0.
  auto t = ReadCsvString(
      "region,c,d\n0,1,5\n0,1,5\n0,2,6\n1,1,7\n1,1,8\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  CanonicalOd od = ConstancyOd{AttributeSet::Single(1), 2};  // {c}: []->d
  ConditionalOdOptions options;
  options.min_support = 0.0;
  auto refined = finder.Refine(od, 0, options);
  ASSERT_TRUE(refined.has_value());
  EXPECT_EQ(refined->binding_ranks, (std::vector<int32_t>{0}));
  EXPECT_DOUBLE_EQ(refined->support, 3.0 / 5.0);
}

TEST(ConditionalTest, ConditionInsideOdRejected) {
  auto t = ReadCsvString(kRegional);
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  CanonicalOd od = CompatibilityOd(AttributeSet::Empty(), 0, 1);
  EXPECT_FALSE(finder.Refine(od, 0).has_value());  // C is an endpoint
  CanonicalOd od2 = ConstancyOd{AttributeSet::Single(0), 2};
  EXPECT_FALSE(finder.Refine(od2, 0).has_value());  // C in context
}

TEST(ConditionalTest, SupportThresholdFilters) {
  auto t = ReadCsvString(kRegional);
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  CanonicalOd od = CompatibilityOd(AttributeSet::Empty(), 1, 2);
  ConditionalOdOptions strict;
  strict.min_support = 0.6;  // the good binding covers only 0.5
  EXPECT_FALSE(finder.Refine(od, 0, strict).has_value());
}

TEST(ConditionalTest, DiscoverFindsPlantedConditional) {
  auto t = ReadCsvString(kRegional);
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  ConditionalOdOptions options;
  options.min_support = 0.4;
  auto results = finder.DiscoverConditional(options);
  bool found = false;
  for (const ConditionalOd& c : results) {
    if (c.condition_attribute == 0 &&
        std::holds_alternative<CompatibilityOd>(c.od)) {
      const CompatibilityOd& p = std::get<CompatibilityOd>(c.od);
      if (p.a == 1 && p.b == 2) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ConditionalTest, UnconditionalOdsNotReported) {
  // a ~ b holds globally: no conditional version should appear.
  auto t = ReadCsvString("region,a,b\n0,1,10\n0,2,20\n1,3,30\n1,4,40\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  for (const ConditionalOd& c : finder.DiscoverConditional()) {
    if (std::holds_alternative<CompatibilityOd>(c.od)) {
      const CompatibilityOd& p = std::get<CompatibilityOd>(c.od);
      EXPECT_FALSE(p.a == 1 && p.b == 2) << c.od.index();
    }
  }
}

TEST(ConditionalTest, AllBindingsPassingIsNotConditional) {
  // a ~ b fails globally but holds within every region: that is the
  // ordinary OD {region}: a ~ b, so DiscoverConditional must skip it.
  auto t = ReadCsvString(
      "region,a,b\n0,1,20\n0,2,30\n1,1,5\n1,2,10\n");
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  // Sanity: fails globally, holds per region.
  EXPECT_TRUE(BruteIsOrderCompatible(rel, AttributeSet::Single(0), 1, 2));
  ConditionalOdFinder finder(&rel);
  for (const ConditionalOd& c : finder.DiscoverConditional()) {
    if (std::holds_alternative<CompatibilityOd>(c.od) &&
        c.condition_attribute == 0) {
      const CompatibilityOd& p = std::get<CompatibilityOd>(c.od);
      EXPECT_FALSE(p.a == 1 && p.b == 2);
    }
  }
}

TEST(ConditionalTest, ToStringRendersBindingsAndSupport) {
  auto t = ReadCsvString(kRegional);
  ASSERT_TRUE(t.ok());
  EncodedRelation rel = Encode(*t);
  ConditionalOdFinder finder(&rel);
  auto refined =
      finder.Refine(CompatibilityOd(AttributeSet::Empty(), 1, 2), 0);
  ASSERT_TRUE(refined.has_value());
  std::string s = refined->ToString(t->schema());
  EXPECT_NE(s.find("region in {"), std::string::npos);
  EXPECT_NE(s.find("support 50%"), std::string::npos);
}

// Property: every binding the finder accepts truly satisfies the OD on
// the selected sub-relation, and every rejected binding truly violates it.
class ConditionalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionalPropertyTest, BindingsAreExact) {
  Table t = GenRandomTable(30, 4, 3, GetParam());
  EncodedRelation rel = Encode(t);
  ConditionalOdFinder finder(&rel);
  ConditionalOdOptions options;
  options.min_support = 0.0;  // keep everything; we check exactness
  for (int cond = 0; cond < 2; ++cond) {
    CanonicalOd od = CompatibilityOd(AttributeSet::Empty(), 2, 3);
    auto refined = finder.Refine(od, cond, options);
    ASSERT_TRUE(refined.has_value());
    for (int32_t v = 0; v < rel.NumDistinct(cond); ++v) {
      // Sub-relation for binding v.
      std::vector<int64_t> rows;
      for (int64_t r = 0; r < rel.NumRows(); ++r) {
        if (rel.rank(r, cond) == v) rows.push_back(r);
      }
      EncodedRelation sub = Encode(t.SelectRows(rows));
      bool holds = BruteHolds(sub, od);
      bool accepted = std::binary_search(refined->binding_ranks.begin(),
                                         refined->binding_ranks.end(), v);
      EXPECT_EQ(holds, accepted) << "cond=" << cond << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionalPropertyTest,
                         ::testing::Values(91, 92, 93, 94, 95, 96));

}  // namespace
}  // namespace fastod
