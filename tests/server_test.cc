// End-to-end tests for the HTTP frontend (src/server/): a real
// DiscoveryServer on an ephemeral port, driven through raw sockets —
// the same wire bytes curl would produce. The acceptance bars:
//
//  * a streaming session delivers OD lines over chunked transfer *while
//    the session is still running* (proved with an engine that blocks
//    between emissions), and the streamed per-type sequences are
//    bit-for-bit the sequential CollectingOdSink run's;
//  * DELETE mid-stream cancels: the stream drains and closes with an
//    {"type":"end","state":"cancelled"} line;
//  * /result of a completed streamed session names exactly the streamed
//    ODs.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engines.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "common/json.h"
#include "data/csv.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "server/discovery_server.h"
#include "test_util.h"

namespace fastod {
namespace {

// ------------------------------------------------- tiny HTTP client

/// Connects to 127.0.0.1:port. Returns -1 on failure.
int Connect(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;                            // chunked-decoded
};

/// Incremental reader for one response on an open socket; understands
/// Content-Length and chunked transfer coding. NextChunk() returns one
/// decoded chunk at a time, which is how the streaming tests observe
/// per-OD delivery before the response completes.
class ResponseReader {
 public:
  explicit ResponseReader(int fd) : fd_(fd) {}
  ~ResponseReader() { close(fd_); }

  bool ReadHeader(ClientResponse* out) {
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    std::string head = buffer_.substr(0, header_end);
    buffer_ = buffer_.substr(header_end + 4);
    size_t line_end = head.find("\r\n");
    std::string status_line = head.substr(0, line_end);
    if (status_line.size() < 12) return false;
    out->status = std::atoi(status_line.substr(9, 3).c_str());
    size_t pos = line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      size_t value = line.find_first_not_of(" \t", colon + 1);
      out->headers[name] =
          value == std::string::npos ? "" : line.substr(value);
    }
    chunked_ = out->headers.count("transfer-encoding") != 0 &&
               out->headers["transfer-encoding"] == "chunked";
    return true;
  }

  /// One decoded chunk (chunked responses only); empty on end-of-stream.
  std::string NextChunk() {
    size_t line_end;
    while ((line_end = buffer_.find("\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    size_t size = std::strtoul(buffer_.substr(0, line_end).c_str(),
                               nullptr, 16);
    buffer_ = buffer_.substr(line_end + 2);
    if (size == 0) return "";
    while (buffer_.size() < size + 2) {
      if (!Fill()) return "";
    }
    std::string chunk = buffer_.substr(0, size);
    buffer_ = buffer_.substr(size + 2);  // past the trailing CRLF
    return chunk;
  }

  /// The rest of the body (both codings), for non-streaming requests.
  std::string ReadBody(const ClientResponse& response) {
    if (chunked_) {
      std::string body;
      for (std::string chunk = NextChunk(); !chunk.empty();
           chunk = NextChunk()) {
        body += chunk;
      }
      return body;
    }
    auto it = response.headers.find("content-length");
    if (it != response.headers.end()) {
      size_t length = std::strtoul(it->second.c_str(), nullptr, 10);
      while (buffer_.size() < length && Fill()) {
      }
      return buffer_.substr(0, length);
    }
    while (Fill()) {
    }
    return buffer_;
  }

 private:
  bool Fill() {
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_;
  std::string buffer_;
  bool chunked_ = false;
};

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RequestText(const std::string& method, const std::string& path,
                        const std::string& body) {
  std::string out = method + " " + path + " HTTP/1.1\r\n"
                    "Host: 127.0.0.1\r\n";
  if (!body.empty()) {
    out += "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n";
  }
  return out + "\r\n" + body;
}

/// One complete request/response exchange.
ClientResponse Fetch(int port, const std::string& method,
                     const std::string& path,
                     const std::string& body = "") {
  ClientResponse response;
  int fd = Connect(port);
  if (fd < 0) return response;
  ResponseReader reader(fd);
  if (!SendAll(fd, RequestText(method, path, body))) return response;
  if (!reader.ReadHeader(&response)) return response;
  response.body = reader.ReadBody(response);
  return response;
}

// ------------------------------------------------- test algorithms

/// Emits one constancy OD per step, blocking between steps until the
/// test releases it (or cancel arrives) — deterministic mid-run
/// streaming without sleeps.
class TrickleAlgorithm : public Algorithm {
 public:
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    int released = 0;  // steps allowed beyond the first

    void Release() {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++released;
      }
      cv.notify_all();
    }
  };

  TrickleAlgorithm(Gate* gate, int steps)
      : Algorithm("trickle", "test-only step-gated emitter"),
        gate_(gate),
        steps_(steps) {}

  std::string ResultText() const override { return "trickle\n"; }
  std::string ResultJson() const override {
    return "{\"algorithm\": \"trickle\"}\n";
  }

 protected:
  Status ExecuteInternal() override {
    for (int step = 0; step < steps_; ++step) {
      if (sink() != nullptr) {
        sink()->OnConstancy(ConstancyOd{AttributeSet(), step % 2});
      }
      if (step + 1 == steps_) break;
      std::unique_lock<std::mutex> lock(gate_->mutex);
      bool ok = gate_->cv.wait_for(
          lock, std::chrono::seconds(30), [&] {
            return gate_->released > step ||
                   (control() != nullptr && control()->CancelRequested());
          });
      if (!ok || (control() != nullptr && control()->CancelRequested())) {
        break;
      }
    }
    return Status::Ok();
  }

 private:
  Gate* gate_;
  int steps_;
};

class ThrowingAlgorithm : public Algorithm {
 public:
  ThrowingAlgorithm()
      : Algorithm("throwing", "test-only engine that throws") {}
  std::string ResultText() const override { return ""; }
  std::string ResultJson() const override { return ""; }

 protected:
  Status ExecuteInternal() override {
    throw std::runtime_error("deliberate test explosion");
  }
};

std::string EmployeeCsv() { return WriteCsvString(EmployeeTaxTable()); }

/// Starts a server on an ephemeral port with the builtin engines plus
/// the test-only ones above.
class ServerFixture {
 public:
  explicit ServerFixture(int steps = 2) {
    RegisterBuiltinAlgorithms(&registry_);
    registry_.Register("trickle", [this, steps] {
      return std::unique_ptr<Algorithm>(new TrickleAlgorithm(&gate_,
                                                             steps));
    });
    registry_.Register("throwing", [] {
      return std::unique_ptr<Algorithm>(new ThrowingAlgorithm());
    });
    DiscoveryServerOptions options;
    options.port = 0;
    options.http_threads = 4;
    options.worker_threads = 2;
    server_ = std::make_unique<DiscoveryServer>(options, &registry_);
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  int port() const { return server_->port(); }
  TrickleAlgorithm::Gate& gate() { return gate_; }
  DiscoveryServer& server() { return *server_; }

 private:
  AlgorithmRegistry registry_;
  TrickleAlgorithm::Gate gate_;
  std::unique_ptr<DiscoveryServer> server_;
};

int64_t SessionIdOf(const std::string& body) {
  auto parsed = ParseJson(body);
  EXPECT_TRUE(parsed.ok()) << body;
  const JsonValue* id = parsed->Find("id");
  EXPECT_NE(id, nullptr) << body;
  return id == nullptr ? -1 : id->int_value();
}

std::string StateOf(int port, int64_t id) {
  ClientResponse response =
      Fetch(port, "GET", "/v1/sessions/" + std::to_string(id));
  auto parsed = ParseJson(response.body);
  if (!parsed.ok()) return "unparseable";
  const JsonValue* state = parsed->Find("state");
  return state == nullptr ? "missing" : state->string_value();
}

void WaitTerminal(int port, int64_t id) {
  for (int i = 0; i < 3000; ++i) {
    std::string state = StateOf(port, id);
    if (state == "done" || state == "failed" || state == "cancelled") {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "session " << id << " never reached a terminal state";
}

// ------------------------------------------------------------- tests

TEST(DiscoveryServerTest, AlgorithmsEndpointIsRegistryDriven) {
  ServerFixture fixture;
  ClientResponse response = Fetch(fixture.port(), "GET", "/v1/algorithms");
  EXPECT_EQ(response.status, 200);
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* algorithms = parsed->Find("algorithms");
  ASSERT_NE(algorithms, nullptr);
  bool found_fastod_threads = false;
  for (const JsonValue& algo : algorithms->array_items()) {
    const JsonValue* name = algo.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->string_value() != "fastod") continue;
    for (const JsonValue& option : algo.Find("options")->array_items()) {
      if (option.Find("name")->string_value() == "threads") {
        found_fastod_threads = true;
        EXPECT_EQ(option.Find("type")->string_value(), "int");
      }
    }
  }
  EXPECT_TRUE(found_fastod_threads) << response.body;
}

TEST(DiscoveryServerTest, InlineCsvSessionRoundTrip) {
  ServerFixture fixture;
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("csv")
      .String(EmployeeCsv())
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  WaitTerminal(fixture.port(), id);
  EXPECT_EQ(StateOf(fixture.port(), id), "done");

  ClientResponse result = Fetch(
      fixture.port(), "GET", "/v1/sessions/" + std::to_string(id) +
                                 "/result");
  EXPECT_EQ(result.status, 200);

  // Byte-for-byte the direct library run, wall-clock stats aside.
  auto algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(algo.ok());
  ASSERT_TRUE((*algo)->LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE((*algo)->Execute().ok());
  std::string expected = (*algo)->ResultJson();
  std::string body = StripTrace(result.body);
  ASSERT_NE(body.find("\"constancy_ods\""), std::string::npos);
  EXPECT_EQ(body.substr(body.find("\"constancy_ods\"")),
            expected.substr(expected.find("\"constancy_ods\"")));
}

TEST(DiscoveryServerTest, OptionsForwardToEngineAndRejectUnknown) {
  ServerFixture fixture;
  JsonWriter good;
  good.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("options")
      .BeginObject()
      .Key("threads")
      .Int(2)
      .Key("bidirectional")
      .Bool(true)
      .EndObject()
      .Key("csv")
      .String(EmployeeCsv())
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", good.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  WaitTerminal(fixture.port(), id);
  ClientResponse result = Fetch(
      fixture.port(), "GET", "/v1/sessions/" + std::to_string(id) +
                                 "/result");
  EXPECT_NE(result.body.find("\"bidirectional_ods\""), std::string::npos);

  JsonWriter bad;
  bad.BeginObject()
      .Key("algorithm")
      .String("tane")
      .Key("options")
      .BeginObject()
      .Key("swap-method")  // not a TANE option
      .String("sort")
      .EndObject()
      .Key("csv")
      .String(EmployeeCsv())
      .EndObject();
  ClientResponse rejected =
      Fetch(fixture.port(), "POST", "/v1/sessions", bad.str());
  // Unknown option names are NotFound in the option registry → 404.
  EXPECT_EQ(rejected.status, 404) << rejected.body;
  EXPECT_NE(rejected.body.find("swap-method"), std::string::npos);
}

TEST(DiscoveryServerTest, ErrorRoutesAndCodes) {
  ServerFixture fixture;
  EXPECT_EQ(Fetch(fixture.port(), "GET", "/nope").status, 404);
  EXPECT_EQ(Fetch(fixture.port(), "GET", "/v1/sessions/424242").status,
            404);
  EXPECT_EQ(Fetch(fixture.port(), "POST", "/v1/sessions", "{oops").status,
            400);
  // Wrong method on an existing route is 405, not 404.
  EXPECT_EQ(Fetch(fixture.port(), "GET", "/v1/sessions").status, 405);
  EXPECT_EQ(Fetch(fixture.port(), "POST", "/v1/algorithms", "{}").status,
            405);
  EXPECT_EQ(Fetch(fixture.port(), "POST", "/v1/sessions/1/result", "{}")
                .status,
            405);

  // Hostile numbers must be rejected, not undefined-behavior cast.
  ClientResponse huge = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      R"({"algorithm": "fastod", "csv": "a\n1\n",
          "csv_options": {"max_rows": 1e30}})");
  EXPECT_EQ(huge.status, 400);
  EXPECT_NE(huge.body.find("max_rows"), std::string::npos);

  // Unknown algorithm: NotFound listing registered names.
  ClientResponse unknown = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      R"({"algorithm": "magic", "csv": "a\n1\n"})");
  EXPECT_EQ(unknown.status, 404);
  EXPECT_NE(unknown.body.find("fastod"), std::string::npos);

  // csv XOR csv_path.
  ClientResponse both = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      R"({"algorithm": "fastod", "csv": "a\n1\n", "csv_path": "/x.csv"})");
  EXPECT_EQ(both.status, 400);

  // Unknown top-level field (typo protection).
  ClientResponse typo = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      R"({"algorithm": "fastod", "csv": "a\n1\n", "streaming": true})");
  EXPECT_EQ(typo.status, 400);
  EXPECT_NE(typo.body.find("streaming"), std::string::npos);
}

TEST(DiscoveryServerTest, CsvPathReadsOnWorker) {
  ServerFixture fixture;
  std::string path = ::testing::TempDir() + "/server_test_data.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string csv = EmployeeCsv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);

  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("csv_path")
      .String(path)
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  WaitTerminal(fixture.port(), id);
  EXPECT_EQ(StateOf(fixture.port(), id), "done");
  std::remove(path.c_str());

  // A missing file fails on the worker and surfaces through polling.
  JsonWriter missing;
  missing.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("csv_path")
      .String("/no/such/file.csv")
      .EndObject();
  ClientResponse bad =
      Fetch(fixture.port(), "POST", "/v1/sessions", missing.str());
  ASSERT_EQ(bad.status, 201) << bad.body;  // submission itself succeeds
  int64_t bad_id = SessionIdOf(bad.body);
  WaitTerminal(fixture.port(), bad_id);
  EXPECT_EQ(StateOf(fixture.port(), bad_id), "failed");
  ClientResponse result = Fetch(
      fixture.port(), "GET",
      "/v1/sessions/" + std::to_string(bad_id) + "/result");
  EXPECT_EQ(result.status, 500);
  EXPECT_NE(result.body.find("/no/such/file.csv"), std::string::npos);
}

TEST(DiscoveryServerTest, ResultBeforeTerminalIsConflict) {
  ServerFixture fixture;
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("trickle")
      .Key("csv")
      .String("a,b\n1,2\n")
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  // The trickle engine is now blocked mid-run on its gate.
  ClientResponse early = Fetch(
      fixture.port(), "GET", "/v1/sessions/" + std::to_string(id) +
                                 "/result");
  EXPECT_EQ(early.status, 409) << early.body;
  fixture.gate().Release();
  WaitTerminal(fixture.port(), id);
  EXPECT_EQ(StateOf(fixture.port(), id), "done");
}

// The headline acceptance test: an OD line is delivered while the
// session is provably still running, the full streamed sequence equals
// the sequential CollectingOdSink run bit-for-bit, and /result
// afterwards names exactly the streamed set.
TEST(DiscoveryServerTest, StreamsOdsMidRunMatchingSequentialSink) {
  ServerFixture fixture;
  Table table = GenFlightLike(300, 8, 7);

  // Sequential baseline.
  CollectingOdSink baseline;
  auto algo = AlgorithmRegistry::Default().Create("fastod");
  ASSERT_TRUE(algo.ok());
  (*algo)->SetSink(&baseline);
  ASSERT_TRUE((*algo)->LoadData(table).ok());
  ASSERT_TRUE((*algo)->Execute().ok());
  ASSERT_GT(baseline.TotalOds(), 0);

  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("csv")
      .String(WriteCsvString(table))
      .Key("stream")
      .Bool(true)
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);

  int fd = Connect(fixture.port());
  ASSERT_GE(fd, 0);
  ResponseReader reader(fd);
  ASSERT_TRUE(SendAll(
      fd, RequestText("GET",
                      "/v1/sessions/" + std::to_string(id) + "/stream",
                      "")));
  ClientResponse header;
  ASSERT_TRUE(reader.ReadHeader(&header));
  EXPECT_EQ(header.status, 200);
  EXPECT_EQ(header.headers["transfer-encoding"], "chunked");

  std::vector<JsonValue> lines;
  bool saw_end = false;
  std::string buffered;
  for (std::string chunk = reader.NextChunk(); !chunk.empty();
       chunk = reader.NextChunk()) {
    buffered += chunk;
    size_t newline;
    while ((newline = buffered.find('\n')) != std::string::npos) {
      auto parsed = ParseJson(buffered.substr(0, newline));
      buffered = buffered.substr(newline + 1);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      if (parsed->Find("type")->string_value() == "end") {
        EXPECT_EQ(parsed->Find("state")->string_value(), "done");
        EXPECT_EQ(parsed->Find("streamed")->int_value(),
                  static_cast<int64_t>(lines.size()));
        saw_end = true;
      } else {
        lines.push_back(std::move(*parsed));
      }
    }
  }
  ASSERT_TRUE(saw_end);
  ASSERT_EQ(static_cast<int64_t>(lines.size()), baseline.TotalOds());

  // Per-type sequences match the sequential sink in emission order.
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  ASSERT_TRUE(encoded.ok());
  const Schema& schema = encoded->schema();
  auto context_names = [&](AttributeSet context) {
    std::vector<std::string> names;
    for (int a = context.First(); a >= 0; a = context.Next(a)) {
      names.push_back(schema.name(a));
    }
    return names;
  };
  auto json_names = [](const JsonValue& array) {
    std::vector<std::string> names;
    for (const JsonValue& item : array.array_items()) {
      names.push_back(item.string_value());
    }
    return names;
  };
  size_t constancy_seen = 0;
  size_t compatibility_seen = 0;
  for (const JsonValue& line : lines) {
    const std::string& type = line.Find("type")->string_value();
    if (type == "constancy") {
      ASSERT_LT(constancy_seen, baseline.constancy_ods().size());
      const ConstancyOd& expected =
          baseline.constancy_ods()[constancy_seen++];
      EXPECT_EQ(json_names(*line.Find("context")),
                context_names(expected.context));
      EXPECT_EQ(line.Find("attribute")->string_value(),
                schema.name(expected.attribute));
    } else if (type == "compatibility") {
      ASSERT_LT(compatibility_seen, baseline.compatibility_ods().size());
      const CompatibilityOd& expected =
          baseline.compatibility_ods()[compatibility_seen++];
      EXPECT_EQ(json_names(*line.Find("context")),
                context_names(expected.context));
      EXPECT_EQ(line.Find("a")->string_value(), schema.name(expected.a));
      EXPECT_EQ(line.Find("b")->string_value(), schema.name(expected.b));
    } else {
      FAIL() << "unexpected line type " << type;
    }
  }
  EXPECT_EQ(constancy_seen, baseline.constancy_ods().size());
  EXPECT_EQ(compatibility_seen, baseline.compatibility_ods().size());

  // And the post-hoc /result names the same set.
  ClientResponse result = Fetch(
      fixture.port(), "GET", "/v1/sessions/" + std::to_string(id) +
                                 "/result");
  EXPECT_EQ(result.status, 200);
  auto report = ParseJson(result.body);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->Find("constancy_ods")->array_items().size(),
            baseline.constancy_ods().size());
  EXPECT_EQ(report->Find("compatibility_ods")->array_items().size(),
            baseline.compatibility_ods().size());
}

TEST(DiscoveryServerTest, StreamDeliversBeforeSessionCompletes) {
  ServerFixture fixture(/*steps=*/2);
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("trickle")
      .Key("csv")
      .String("a,b\n1,2\n")
      .Key("stream")
      .Bool(true)
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);

  int fd = Connect(fixture.port());
  ASSERT_GE(fd, 0);
  ResponseReader reader(fd);
  ASSERT_TRUE(SendAll(
      fd, RequestText("GET",
                      "/v1/sessions/" + std::to_string(id) + "/stream",
                      "")));
  ClientResponse header;
  ASSERT_TRUE(reader.ReadHeader(&header));
  ASSERT_EQ(header.status, 200);

  // First OD line arrives while the engine is parked on its gate — the
  // session is mid-run by construction, which *is* the incremental
  // delivery claim.
  std::string first = reader.NextChunk();
  ASSERT_NE(first.find("\"constancy\""), std::string::npos) << first;
  EXPECT_EQ(StateOf(fixture.port(), id), "running");

  fixture.gate().Release();
  std::string rest;
  for (std::string chunk = reader.NextChunk(); !chunk.empty();
       chunk = reader.NextChunk()) {
    rest += chunk;
  }
  EXPECT_NE(rest.find("\"end\""), std::string::npos) << rest;
  EXPECT_NE(rest.find("\"done\""), std::string::npos) << rest;
  WaitTerminal(fixture.port(), id);
}

TEST(DiscoveryServerTest, CancelMidStreamEndsStreamAsCancelled) {
  ServerFixture fixture(/*steps=*/1000);  // gate never releases enough
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("trickle")
      .Key("csv")
      .String("a,b\n1,2\n")
      .Key("stream")
      .Bool(true)
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);

  int fd = Connect(fixture.port());
  ASSERT_GE(fd, 0);
  ResponseReader reader(fd);
  ASSERT_TRUE(SendAll(
      fd, RequestText("GET",
                      "/v1/sessions/" + std::to_string(id) + "/stream",
                      "")));
  ClientResponse header;
  ASSERT_TRUE(reader.ReadHeader(&header));
  ASSERT_EQ(header.status, 200);
  std::string first = reader.NextChunk();
  ASSERT_NE(first.find("constancy"), std::string::npos);

  // Cancel while the engine sits mid-run; the stream must drain and
  // close with state=cancelled (TrickleAlgorithm honors the cancel at
  // its gate — cooperative cancellation, same as the real engines).
  ClientResponse cancelled =
      Fetch(fixture.port(), "DELETE", "/v1/sessions/" + std::to_string(id));
  EXPECT_EQ(cancelled.status, 200) << cancelled.body;
  fixture.gate().Release();  // wake the gate so it can observe the flag

  std::string rest;
  for (std::string chunk = reader.NextChunk(); !chunk.empty();
       chunk = reader.NextChunk()) {
    rest += chunk;
  }
  EXPECT_NE(rest.find("\"end\""), std::string::npos) << rest;
  EXPECT_NE(rest.find("\"cancelled\""), std::string::npos) << rest;
  WaitTerminal(fixture.port(), id);
  EXPECT_EQ(StateOf(fixture.port(), id), "cancelled");
}

TEST(DiscoveryServerTest, StreamRequiresOptInAndSingleReader) {
  ServerFixture fixture;
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("csv")
      .String(EmployeeCsv())
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201);
  int64_t id = SessionIdOf(created.body);
  ClientResponse stream = Fetch(
      fixture.port(), "GET", "/v1/sessions/" + std::to_string(id) +
                                 "/stream");
  EXPECT_EQ(stream.status, 409);
  EXPECT_NE(stream.body.find("stream"), std::string::npos);
  WaitTerminal(fixture.port(), id);
}

TEST(DiscoveryServerTest, PurgeFreesTerminalSessionsAndRejectsLive) {
  ServerFixture fixture;
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("trickle")  // parks on its gate → reliably non-terminal
      .Key("csv")
      .String("a,b\n1,2\n")
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  std::string base = "/v1/sessions/" + std::to_string(id);

  // Purge of a live session is refused; the handle stays valid.
  ClientResponse live = Fetch(fixture.port(), "DELETE", base + "?purge=1");
  EXPECT_EQ(live.status, 409) << live.body;
  EXPECT_EQ(Fetch(fixture.port(), "GET", base).status, 200);

  fixture.gate().Release();
  WaitTerminal(fixture.port(), id);
  ClientResponse purged =
      Fetch(fixture.port(), "DELETE", base + "?purge=1");
  EXPECT_EQ(purged.status, 200) << purged.body;
  EXPECT_NE(purged.body.find("\"purged\": true"), std::string::npos);
  // The handle is gone from every route.
  EXPECT_EQ(Fetch(fixture.port(), "GET", base).status, 404);
  EXPECT_EQ(Fetch(fixture.port(), "GET", base + "/result").status, 404);
  EXPECT_EQ(Fetch(fixture.port(), "DELETE", base + "?purge=1").status,
            404);
}

TEST(DiscoveryServerTest, ThrowingEngineFailsSessionNotServer) {
  ServerFixture fixture;
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("throwing")
      .Key("csv")
      .String("a,b\n1,2\n")
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  WaitTerminal(fixture.port(), id);
  EXPECT_EQ(StateOf(fixture.port(), id), "failed");
  ClientResponse info =
      Fetch(fixture.port(), "GET", "/v1/sessions/" + std::to_string(id));
  EXPECT_NE(info.body.find("deliberate test explosion"), std::string::npos)
      << info.body;

  // The worker survived: a healthy session right after still completes.
  JsonWriter next;
  next.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("csv")
      .String(EmployeeCsv())
      .EndObject();
  ClientResponse ok =
      Fetch(fixture.port(), "POST", "/v1/sessions", next.str());
  ASSERT_EQ(ok.status, 201);
  int64_t ok_id = SessionIdOf(ok.body);
  WaitTerminal(fixture.port(), ok_id);
  EXPECT_EQ(StateOf(fixture.port(), ok_id), "done");
}

// ------------------------------------------------- shared datasets

std::string FlightCsv() { return WriteCsvString(GenFlightLike(300, 8, 7)); }


/// POSTs one session bound to `source_key`/`source_value` and returns
/// its /result body after completion.
std::string RunSessionToResult(int port, const std::string& algorithm,
                               const std::string& source_key,
                               const std::string& source_value,
                               bool stream = false) {
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String(algorithm)
      .Key(source_key)
      .String(source_value);
  if (stream) post.Key("stream").Bool(true);
  post.EndObject();
  ClientResponse created = Fetch(port, "POST", "/v1/sessions", post.str());
  EXPECT_EQ(created.status, 201) << created.body;
  if (created.status != 201) return "";
  int64_t id = SessionIdOf(created.body);
  if (stream) {
    // Consume the stream to completion first (backpressure: an unread
    // stream would park the worker).
    ClientResponse response =
        Fetch(port, "GET", "/v1/sessions/" + std::to_string(id) +
                               "/stream");
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"type\": \"end\""), std::string::npos)
        << response.body;
  }
  WaitTerminal(port, id);
  EXPECT_EQ(StateOf(port, id), "done");
  ClientResponse result =
      Fetch(port, "GET", "/v1/sessions/" + std::to_string(id) + "/result");
  EXPECT_EQ(result.status, 200);
  // These helpers feed bit-for-bit discovery-output comparisons across
  // source modes; the embedded trace legitimately differs (see
  // StripTrace) and has its own endpoint tests.
  return StripTrace(result.body);
}

// The acceptance bar: upload one CSV, run two sessions (one streamed)
// against its dataset_id, and require bit-for-bit the bodies of two
// independent inline-csv sessions; then delete the dataset and assert
// 404 for lookups and new submissions.
TEST(DiscoveryServerTest, DatasetLifecycleLoadOnceDiscoverMany) {
  ServerFixture fixture;
  int port = fixture.port();
  std::string csv = FlightCsv();

  // References: two sessions each carrying the CSV inline.
  std::string expected_plain =
      RunSessionToResult(port, "fastod", "csv", csv);
  std::string expected_streamed =
      RunSessionToResult(port, "tane", "csv", csv, /*stream=*/true);
  ASSERT_FALSE(expected_plain.empty());
  ASSERT_FALSE(expected_streamed.empty());

  JsonWriter upload;
  upload.BeginObject()
      .Key("id")
      .String("flight")
      .Key("csv")
      .String(csv)
      .EndObject();
  ClientResponse created =
      Fetch(port, "POST", "/v1/datasets", upload.str());
  ASSERT_EQ(created.status, 201) << created.body;
  auto created_info = ParseJson(created.body);
  ASSERT_TRUE(created_info.ok());
  EXPECT_EQ(created_info->Find("id")->string_value(), "flight");
  EXPECT_EQ(created_info->Find("rows")->int_value(), 300);
  EXPECT_EQ(created_info->Find("columns")->int_value(), 8);

  EXPECT_EQ(MaskSeconds(
                RunSessionToResult(port, "fastod", "dataset_id", "flight")),
            MaskSeconds(expected_plain));
  EXPECT_EQ(MaskSeconds(RunSessionToResult(port, "tane", "dataset_id",
                                           "flight", /*stream=*/true)),
            MaskSeconds(expected_streamed));

  // The info row counts both sessions and shows the live pins.
  ClientResponse info = Fetch(port, "GET", "/v1/datasets/flight");
  ASSERT_EQ(info.status, 200);
  auto parsed = ParseJson(info.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("hits")->int_value(), 2);
  EXPECT_TRUE(parsed->Find("pinned")->bool_value());

  ClientResponse list = Fetch(port, "GET", "/v1/datasets");
  ASSERT_EQ(list.status, 200);
  auto listed = ParseJson(list.body);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->Find("datasets")->array_items().size(), 1u);
  EXPECT_GT(listed->Find("total_bytes")->int_value(), 0);

  ClientResponse deleted =
      Fetch(port, "DELETE", "/v1/datasets/flight");
  EXPECT_EQ(deleted.status, 200) << deleted.body;
  EXPECT_EQ(Fetch(port, "GET", "/v1/datasets/flight").status, 404);
  EXPECT_EQ(Fetch(port, "DELETE", "/v1/datasets/flight").status, 404);
  JsonWriter stale;
  stale.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("dataset_id")
      .String("flight")
      .EndObject();
  EXPECT_EQ(Fetch(port, "POST", "/v1/sessions", stale.str()).status, 404);
}

// Concurrent mixed-algorithm sessions sharing one uploaded relation —
// the multi-tenant shape the store exists for. Every result must match
// the corresponding inline-csv reference.
TEST(DiscoveryServerTest, ConcurrentMixedSessionsShareOneDataset) {
  ServerFixture fixture;
  int port = fixture.port();
  std::string csv = FlightCsv();
  std::map<std::string, std::string> expected;
  for (const char* algorithm : {"fastod", "tane", "approximate"}) {
    expected[algorithm] = RunSessionToResult(port, algorithm, "csv", csv);
    ASSERT_FALSE(expected[algorithm].empty());
  }

  JsonWriter upload;
  upload.BeginObject().Key("csv").String(csv).EndObject();
  ClientResponse created =
      Fetch(port, "POST", "/v1/datasets", upload.str());
  ASSERT_EQ(created.status, 201) << created.body;
  auto created_info = ParseJson(created.body);
  ASSERT_TRUE(created_info.ok());
  std::string dataset_id = created_info->Find("id")->string_value();
  EXPECT_EQ(dataset_id.rfind("ds-", 0), 0u) << dataset_id;  // autogenerated

  const std::vector<std::string> algorithms = {
      "fastod", "tane", "approximate", "fastod", "tane", "approximate"};
  std::vector<std::thread> threads;
  std::vector<std::string> results(algorithms.size());
  for (size_t i = 0; i < algorithms.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] = RunSessionToResult(port, algorithms[i], "dataset_id",
                                      dataset_id);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < algorithms.size(); ++i) {
    EXPECT_EQ(MaskSeconds(results[i]), MaskSeconds(expected[algorithms[i]]))
        << algorithms[i];
  }
}

TEST(DiscoveryServerTest, DatasetValidationAndErrorCodes) {
  ServerFixture fixture;
  int port = fixture.port();

  // Malformed uploads.
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets", "{}").status, 400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets",
                  "{\"csv\": \"a\\n1\\n\", \"csv_path\": \"x\"}")
                .status,
            400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets",
                  "{\"id\": \"bad/id\", \"csv\": \"a\\n1\\n\"}")
                .status,
            400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets",
                  "{\"csv\": \"a\\n1\\n\", \"nope\": 1}")
                .status,
            400);
  // Wrong method.
  EXPECT_EQ(Fetch(port, "PUT", "/v1/datasets").status, 405);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets/x").status, 405);

  // Duplicate id → 409 (FailedPrecondition).
  JsonWriter upload;
  upload.BeginObject()
      .Key("id")
      .String("dup")
      .Key("csv")
      .String("a,b\n1,2\n2,3\n")
      .EndObject();
  ASSERT_EQ(Fetch(port, "POST", "/v1/datasets", upload.str()).status, 201);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets", upload.str()).status, 409);

  // A session naming both a csv and a dataset_id is rejected.
  EXPECT_EQ(Fetch(port, "POST", "/v1/sessions",
                  "{\"algorithm\": \"fastod\", \"csv\": \"a\\n1\\n\", "
                  "\"dataset_id\": \"dup\"}")
                .status,
            400);
  // csv_options were fixed at upload; pretending they apply per-session
  // would be silent misconfiguration.
  ClientResponse opts = Fetch(
      port, "POST", "/v1/sessions",
      "{\"algorithm\": \"fastod\", \"dataset_id\": \"dup\", "
      "\"csv_options\": {\"delimiter\": \";\"}}");
  EXPECT_EQ(opts.status, 400);
  EXPECT_NE(opts.body.find("csv_options"), std::string::npos);
}

// ------------------------------------ versioned datasets / incremental

std::vector<std::string> SortedOdDump(const JsonValue& report,
                                      const char* key) {
  std::vector<std::string> dumps;
  const JsonValue* array = report.Find(key);
  if (array == nullptr) return dumps;
  for (const JsonValue& od : array->array_items()) {
    dumps.push_back(od.Dump());
  }
  std::sort(dumps.begin(), dumps.end());
  return dumps;
}

// The PR-8 acceptance bar over HTTP: upload → discover → append →
// incremental session streaming a revocation → result equivalent to a
// fresh full run on the grown version.
TEST(DiscoveryServerTest, AppendLifecycleStreamsRevocations) {
  ServerFixture fixture;
  int port = fixture.port();
  // b is constant in the base, so [] -> b holds and the appended row
  // (b=9) must revoke it.
  std::string csv = "a,b,c\n1,7,10\n2,7,20\n3,7,30\n4,7,40\n5,7,50\n";

  JsonWriter upload;
  upload.BeginObject()
      .Key("id")
      .String("grow")
      .Key("csv")
      .String(csv)
      .EndObject();
  ASSERT_EQ(Fetch(port, "POST", "/v1/datasets", upload.str()).status, 201);

  std::string prior =
      RunSessionToResult(port, "fastod", "dataset_id", "grow");
  ASSERT_FALSE(prior.empty());

  // Append one headerless delta row → version 2.
  ClientResponse appended = Fetch(port, "POST", "/v1/datasets/grow/rows",
                                  "{\"csv\": \"6,9,15\\n\"}");
  ASSERT_EQ(appended.status, 200) << appended.body;
  auto append_info = ParseJson(appended.body);
  ASSERT_TRUE(append_info.ok());
  EXPECT_EQ(append_info->Find("id")->string_value(), "grow");
  EXPECT_EQ(append_info->Find("version")->int_value(), 2);
  EXPECT_EQ(append_info->Find("appended_rows")->int_value(), 1);
  EXPECT_EQ(append_info->Find("rows")->int_value(), 6);

  // The info row reports the new version and the per-version accounting
  // (version 1 is still retained: the prior session pins it).
  ClientResponse info = Fetch(port, "GET", "/v1/datasets/grow");
  ASSERT_EQ(info.status, 200);
  auto parsed_info = ParseJson(info.body);
  ASSERT_TRUE(parsed_info.ok());
  EXPECT_EQ(parsed_info->Find("version")->int_value(), 2);
  EXPECT_GT(parsed_info->Find("retained_bytes")->int_value(), 0);
  const JsonValue* versions = parsed_info->Find("versions");
  ASSERT_NE(versions, nullptr) << info.body;
  ASSERT_EQ(versions->array_items().size(), 2u);
  EXPECT_EQ(versions->array_items()[0].Find("version")->int_value(), 2);
  EXPECT_TRUE(versions->array_items()[0].Find("current")->bool_value());
  EXPECT_EQ(versions->array_items()[1].Find("version")->int_value(), 1);
  EXPECT_FALSE(versions->array_items()[1].Find("current")->bool_value());

  // Incremental session over the grown dataset, streamed: the broken
  // constancy arrives as a {"type": "revoked"} NDJSON line.
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm")
      .String("incremental")
      .Key("dataset_id")
      .String("grow")
      .Key("options")
      .BeginObject()
      .Key("prior")
      .String(prior)
      .EndObject()
      .Key("stream")
      .Bool(true)
      .EndObject();
  ClientResponse created =
      Fetch(port, "POST", "/v1/sessions", post.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  ClientResponse stream = Fetch(
      port, "GET", "/v1/sessions/" + std::to_string(id) + "/stream");
  EXPECT_EQ(stream.status, 200);
  EXPECT_NE(stream.body.find("\"type\": \"revoked\""), std::string::npos)
      << stream.body;
  EXPECT_NE(stream.body.find("\"od_type\": \"constancy\""),
            std::string::npos)
      << stream.body;
  EXPECT_NE(stream.body.find("\"type\": \"end\""), std::string::npos);
  WaitTerminal(port, id);
  EXPECT_EQ(StateOf(port, id), "done");

  ClientResponse result = Fetch(
      port, "GET", "/v1/sessions/" + std::to_string(id) + "/result");
  ASSERT_EQ(result.status, 200);
  auto inc_report = ParseJson(StripTrace(result.body));
  ASSERT_TRUE(inc_report.ok()) << result.body;
  const JsonValue* revoked = inc_report->Find("revoked_constancy_ods");
  ASSERT_NE(revoked, nullptr) << result.body;
  EXPECT_GE(revoked->array_items().size(), 1u);
  ASSERT_NE(inc_report->Find("incremental"), nullptr) << result.body;

  // Equivalence oracle through the wire: surviving + new must equal a
  // fresh full fastod run on version 2, as sets.
  std::string fresh =
      RunSessionToResult(port, "fastod", "dataset_id", "grow");
  auto fresh_report = ParseJson(fresh);
  ASSERT_TRUE(fresh_report.ok());
  EXPECT_EQ(SortedOdDump(*inc_report, "constancy_ods"),
            SortedOdDump(*fresh_report, "constancy_ods"));
  EXPECT_EQ(SortedOdDump(*inc_report, "compatibility_ods"),
            SortedOdDump(*fresh_report, "compatibility_ods"));
}

TEST(DiscoveryServerTest, DatasetVersionPinningAndAppendErrors) {
  ServerFixture fixture;
  int port = fixture.port();
  JsonWriter upload;
  upload.BeginObject()
      .Key("id")
      .String("pin")
      .Key("csv")
      .String("a,b\n1,7\n2,7\n3,7\n")
      .EndObject();
  ASSERT_EQ(Fetch(port, "POST", "/v1/datasets", upload.str()).status, 201);

  // The finished session keeps version 1 alive after the append.
  std::string v1_result =
      RunSessionToResult(port, "fastod", "dataset_id", "pin");
  ASSERT_EQ(
      Fetch(port, "POST", "/v1/datasets/pin/rows", "{\"csv\": \"4,9\\n\"}")
          .status,
      200);

  // dataset_version pins the superseded version: bit-for-bit the run
  // that executed before the append.
  JsonWriter pinned;
  pinned.BeginObject()
      .Key("algorithm")
      .String("fastod")
      .Key("dataset_id")
      .String("pin")
      .Key("dataset_version")
      .Int(1)
      .EndObject();
  ClientResponse created =
      Fetch(port, "POST", "/v1/sessions", pinned.str());
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  WaitTerminal(port, id);
  EXPECT_EQ(StateOf(port, id), "done");
  ClientResponse result = Fetch(
      port, "GET", "/v1/sessions/" + std::to_string(id) + "/result");
  ASSERT_EQ(result.status, 200);
  EXPECT_EQ(MaskSeconds(StripTrace(result.body)), MaskSeconds(v1_result));

  // A version that never existed (or is gone) → 404.
  EXPECT_EQ(Fetch(port, "POST", "/v1/sessions",
                  "{\"algorithm\": \"fastod\", \"dataset_id\": \"pin\", "
                  "\"dataset_version\": 9}")
                .status,
            404);
  // dataset_version without dataset_id is meaningless → 400.
  EXPECT_EQ(Fetch(port, "POST", "/v1/sessions",
                  "{\"algorithm\": \"fastod\", \"csv\": \"a\\n1\\n\", "
                  "\"dataset_version\": 1}")
                .status,
            400);
  // Fractional or non-positive versions are rejected up front.
  EXPECT_EQ(Fetch(port, "POST", "/v1/sessions",
                  "{\"algorithm\": \"fastod\", \"dataset_id\": \"pin\", "
                  "\"dataset_version\": 0}")
                .status,
            400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/sessions",
                  "{\"algorithm\": \"fastod\", \"dataset_id\": \"pin\", "
                  "\"dataset_version\": 1.5}")
                .status,
            400);

  // Append error routes.
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets/ghost/rows",
                  "{\"csv\": \"1,2\\n\"}")
                .status,
            404);
  EXPECT_EQ(Fetch(port, "GET", "/v1/datasets/pin/rows").status, 405);
  EXPECT_EQ(
      Fetch(port, "POST", "/v1/datasets/pin/rows", "{}").status, 400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets/pin/rows",
                  "{\"csv\": \"1,2,3\\n\"}")
                .status,
            400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/datasets/pin/rows",
                  "{\"csv\": \"5,9\\n\", \"nope\": 1}")
                .status,
            400);
}

// --------------------------------------------------- observability

/// Restores the process-wide metrics switch on scope exit: the whole
/// binary shares one obs state, so tests must not leak theirs.
class MetricsGuard {
 public:
  MetricsGuard() : saved_(obs::Enabled()) {}
  ~MetricsGuard() { obs::SetEnabled(saved_); }

 private:
  bool saved_;
};

int64_t RunDoneSession(ServerFixture& fixture) {
  JsonWriter post;
  post.BeginObject()
      .Key("algorithm").String("fastod")
      .Key("csv").String(EmployeeCsv())
      .EndObject();
  ClientResponse created =
      Fetch(fixture.port(), "POST", "/v1/sessions", post.str());
  EXPECT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  WaitTerminal(fixture.port(), id);
  EXPECT_EQ(StateOf(fixture.port(), id), "done");
  return id;
}

TEST(DiscoveryServerTest, MetricsEndpointExposesPrometheusFamilies) {
  MetricsGuard guard;
  obs::SetEnabled(true);
  ServerFixture fixture;
  RunDoneSession(fixture);

  ClientResponse scrape = Fetch(fixture.port(), "GET", "/metrics");
  ASSERT_EQ(scrape.status, 200);
  EXPECT_EQ(scrape.headers["content-type"],
            "text/plain; version=0.0.4; charset=utf-8");
  const std::string& body = scrape.body;
  EXPECT_NE(body.find("# TYPE fastod_sessions_total counter"),
            std::string::npos) << body;
  EXPECT_NE(body.find("fastod_sessions_total{algorithm=\"fastod\","
                      "state=\"done\"}"),
            std::string::npos) << body;
  EXPECT_NE(body.find("# TYPE fastod_session_execute_seconds histogram"),
            std::string::npos) << body;
  EXPECT_NE(body.find("# TYPE fastod_lattice_nodes_total counter"),
            std::string::npos) << body;
  EXPECT_NE(body.find("# TYPE fastod_dataset_store_resident_bytes gauge"),
            std::string::npos) << body;
  EXPECT_NE(body.find("fastod_service_active_sessions"),
            std::string::npos) << body;

  // The first scrape itself was counted: a second scrape reports the
  // /metrics route in the HTTP request family.
  ClientResponse again = Fetch(fixture.port(), "GET", "/metrics");
  EXPECT_NE(again.body.find("fastod_http_requests_total{method=\"GET\","
                            "route=\"/metrics\"}"),
            std::string::npos) << again.body;
  // Polling hit the session-info route; the id collapsed to a template
  // so label cardinality stays bounded.
  EXPECT_NE(again.body.find("route=\"/v1/sessions/{id}\""),
            std::string::npos) << again.body;
  EXPECT_EQ(again.body.find("route=\"/v1/sessions/" ),
            again.body.find("route=\"/v1/sessions/{id}"))
      << again.body;
}

TEST(DiscoveryServerTest, TraceEndpointReturnsSpansAndEngine) {
  MetricsGuard guard;
  obs::SetEnabled(true);
  ServerFixture fixture;
  int64_t id = RunDoneSession(fixture);

  ClientResponse trace = Fetch(
      fixture.port(), "GET",
      "/v1/sessions/" + std::to_string(id) + "/trace");
  ASSERT_EQ(trace.status, 200) << trace.body;
  auto parsed = ParseJson(trace.body);
  ASSERT_TRUE(parsed.ok()) << trace.body;
  const JsonValue* engine = parsed->Find("engine");
  ASSERT_TRUE(engine != nullptr && engine->is_object()) << trace.body;
  EXPECT_GT(engine->Find("nodes_visited")->int_value(), 0);
  EXPECT_NE(trace.body.find("\"execute\""), std::string::npos);

  ClientResponse missing =
      Fetch(fixture.port(), "GET", "/v1/sessions/999999/trace");
  EXPECT_EQ(missing.status, 404);

  // The result report of the same session embeds the trace.
  ClientResponse result = Fetch(
      fixture.port(), "GET",
      "/v1/sessions/" + std::to_string(id) + "/result");
  ASSERT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"trace\":"), std::string::npos)
      << result.body;
}

TEST(DiscoveryServerTest, DatasetListingCarriesStoreTelemetry) {
  MetricsGuard guard;
  obs::SetEnabled(true);
  ServerFixture fixture;
  ClientResponse upload = Fetch(
      fixture.port(), "POST", "/v1/datasets",
      "{\"id\": \"emp\", \"csv\": \"" + JsonEscape(EmployeeCsv()) +
          "\"}");
  ASSERT_EQ(upload.status, 201) << upload.body;
  ClientResponse created = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"fastod\", \"dataset_id\": \"emp\"}");
  ASSERT_EQ(created.status, 201) << created.body;
  WaitTerminal(fixture.port(), SessionIdOf(created.body));

  ClientResponse list = Fetch(fixture.port(), "GET", "/v1/datasets");
  ASSERT_EQ(list.status, 200);
  auto parsed = ParseJson(list.body);
  ASSERT_TRUE(parsed.ok()) << list.body;
  EXPECT_GE(parsed->Find("hits_total")->int_value(), 1);
  EXPECT_NE(parsed->Find("pinned_count"), nullptr);
  EXPECT_NE(parsed->Find("evictions"), nullptr);

  // /metrics mirrors the store state through the scrape-time gauges.
  ClientResponse scrape = Fetch(fixture.port(), "GET", "/metrics");
  EXPECT_NE(scrape.body.find("fastod_dataset_store_hits"),
            std::string::npos) << scrape.body;
  EXPECT_NE(scrape.body.find("fastod_dataset_store_entries 1"),
            std::string::npos) << scrape.body;
}

TEST(DiscoveryServerTest, MetricsDisabledKeepsEndpointsServable) {
  MetricsGuard guard;
  obs::SetEnabled(false);
  ServerFixture fixture;
  int64_t id = RunDoneSession(fixture);

  // /metrics stays routable (empty-ish exposition), /trace reports the
  // empty trace, and /result carries no trace key.
  ClientResponse scrape = Fetch(fixture.port(), "GET", "/metrics");
  EXPECT_EQ(scrape.status, 200);
  ClientResponse trace = Fetch(
      fixture.port(), "GET",
      "/v1/sessions/" + std::to_string(id) + "/trace");
  ASSERT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"engine\": null"), std::string::npos)
      << trace.body;
  ClientResponse result = Fetch(
      fixture.port(), "GET",
      "/v1/sessions/" + std::to_string(id) + "/result");
  ASSERT_EQ(result.status, 200);
  EXPECT_EQ(result.body.find("\"trace\":"), std::string::npos)
      << result.body;
}

}  // namespace
}  // namespace fastod
