// Tests for the shared DatasetStore (src/data/dataset_store.h): the
// load-once preprocessing captured by LoadedDataset (encoding + level-1
// partitions bit-for-bit what the engines would build), registry
// semantics (duplicate ids, erase, hit accounting), and — the acceptance
// bar — that the memory budget evicts only unpinned entries, in LRU
// order, while pinned datasets survive and outside references stay valid
// past eviction. A final stress test races Get/Put/eviction across
// threads, which the sanitizer CI jobs turn into a data-race detector.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/csv.h"
#include "data/dataset_store.h"
#include "data/encode.h"
#include "gen/generators.h"
#include "partition/stripped_partition.h"

namespace fastod {
namespace {

Table SmallTable() { return EmployeeTaxTable(); }

TEST(LoadedDatasetTest, BuildCapturesEncodingAndSingletons) {
  Table table = SmallTable();
  Result<EncodedRelation> expected = EncodedRelation::FromTable(table);
  ASSERT_TRUE(expected.ok());

  auto dataset = LoadedDataset::Build("emp", SmallTable(), "unit-test");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ((*dataset)->id(), "emp");
  EXPECT_EQ((*dataset)->source(), "unit-test");
  EXPECT_EQ((*dataset)->NumRows(), table.NumRows());
  EXPECT_EQ((*dataset)->NumAttributes(), table.NumColumns());
  EXPECT_GT((*dataset)->ApproxBytes(), 0);

  // The footprint is exact, not estimated: the relation's contiguous
  // code-column + dictionary allocations plus the flattened level-1
  // partitions (elements + offsets + 1 sentinel, in int32s each).
  int64_t exact = (*dataset)->relation().ByteSize();
  for (const StrippedPartition& p : (*dataset)->singleton_partitions()) {
    exact += static_cast<int64_t>(
        (p.NumElements() + p.NumClasses() + 1) * sizeof(int32_t));
  }
  EXPECT_EQ((*dataset)->ApproxBytes(), exact);

  const EncodedRelation& relation = (*dataset)->relation();
  ASSERT_EQ(relation.NumAttributes(), expected->NumAttributes());
  const std::vector<StrippedPartition>& singletons =
      (*dataset)->singleton_partitions();
  ASSERT_EQ(static_cast<int>(singletons.size()), relation.NumAttributes());
  for (int a = 0; a < relation.NumAttributes(); ++a) {
    EXPECT_TRUE(relation.codes(a) == expected->codes(a))
        << "attribute " << a;
    EXPECT_EQ(singletons[a],
              StrippedPartition::ForAttribute(expected->codes(a)))
        << "attribute " << a;
  }
}

TEST(DatasetStoreTest, PutGetEraseLifecycle) {
  DatasetStore store;
  auto put = store.PutTable("emp", SmallTable());
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.TotalBytes(), (*put)->ApproxBytes());

  auto got = store.Get("emp");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), put->get());  // same instance, not a copy

  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Erase("nope").code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.Erase("emp").ok());
  EXPECT_EQ(store.size(), 0);
  EXPECT_EQ(store.TotalBytes(), 0);
  EXPECT_EQ(store.Get("emp").status().code(), StatusCode::kNotFound);
  // The outstanding reference outlives the erase.
  EXPECT_EQ((*got)->NumRows(), SmallTable().NumRows());
}

TEST(DatasetStoreTest, ContainsAndInfoDoNotCountAsHits) {
  DatasetStore store;
  ASSERT_TRUE(store.PutTable("emp", SmallTable()).ok());
  EXPECT_TRUE(store.Contains("emp"));
  EXPECT_FALSE(store.Contains("nope"));
  EXPECT_EQ(store.Info("nope").status().code(), StatusCode::kNotFound);

  auto info = store.Info("emp");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->rows, SmallTable().NumRows());
  EXPECT_EQ(info->hits, 0);  // neither Contains nor Info counted
  (void)store.Get("emp");
  EXPECT_EQ(store.Info("emp")->hits, 1);
}

TEST(DatasetStoreTest, DuplicateIdsAreRefused) {
  DatasetStore store;
  ASSERT_TRUE(store.PutTable("emp", SmallTable()).ok());
  Status duplicate = store.PutTable("emp", SmallTable()).status();
  EXPECT_EQ(duplicate.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(duplicate.message().find("already exists"), std::string::npos);
  EXPECT_EQ(store.size(), 1);
}

TEST(DatasetStoreTest, CsvRoundTripsAndCountsHits) {
  std::string path = ::testing::TempDir() + "/dataset_store_test_" +
                     std::to_string(::getpid()) + ".csv";
  ASSERT_TRUE(WriteCsvFile(SmallTable(), path).ok());
  DatasetStore store;
  auto put = store.PutCsvFile("emp", path);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ((*put)->source(), "csv:" + path);
  std::remove(path.c_str());

  // Hits count Get()s (sessions bound), not the initial Put.
  (void)store.Get("emp");
  (void)store.Get("emp");
  std::vector<DatasetInfo> infos = store.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].id, "emp");
  EXPECT_EQ(infos[0].hits, 2);
  EXPECT_EQ(infos[0].rows, SmallTable().NumRows());
  EXPECT_EQ(infos[0].columns, SmallTable().NumColumns());
  // `put` still holds a reference.
  EXPECT_TRUE(infos[0].pinned);
}

TEST(DatasetStoreTest, BudgetEvictsLeastRecentlyUsedUnpinned) {
  DatasetStore probe;
  int64_t bytes = (*probe.PutTable("probe", SmallTable()))->ApproxBytes();

  DatasetStore store(3 * bytes);
  ASSERT_TRUE(store.PutTable("a", SmallTable()).ok());
  ASSERT_TRUE(store.PutTable("b", SmallTable()).ok());
  ASSERT_TRUE(store.PutTable("c", SmallTable()).ok());
  EXPECT_EQ(store.size(), 3);

  // Touch a and c so b is the LRU entry; nothing is pinned (the Put
  // return values were dropped).
  ASSERT_TRUE(store.Get("a").ok());
  ASSERT_TRUE(store.Get("c").ok());
  ASSERT_TRUE(store.PutTable("d", SmallTable()).ok());

  EXPECT_EQ(store.size(), 3);
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(store.Get("b").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_TRUE(store.Get("c").ok());
  EXPECT_TRUE(store.Get("d").ok());
}

TEST(DatasetStoreTest, PinnedDatasetsAreNeverEvicted) {
  DatasetStore probe;
  int64_t bytes = (*probe.PutTable("probe", SmallTable()))->ApproxBytes();

  DatasetStore store(2 * bytes);
  auto pin_a = store.PutTable("a", SmallTable());
  auto pin_b = store.PutTable("b", SmallTable());
  ASSERT_TRUE(pin_a.ok() && pin_b.ok());

  // Both resident datasets are pinned: the insert must be refused, not
  // satisfied by destroying data under a live user.
  Status refused = store.PutTable("c", SmallTable()).status();
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_TRUE(store.Get("b").ok());
  EXPECT_EQ(store.evictions(), 0);

  // Unpinning a (and dropping the Get refs above is implicit — they were
  // discarded) makes it evictable; c then fits by evicting exactly a.
  pin_a->reset();
  ASSERT_TRUE(store.PutTable("c", SmallTable()).ok());
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.Get("b").ok());

  // The evicted-survivor guarantee: b's pin is still valid data.
  EXPECT_EQ((*pin_b)->NumRows(), SmallTable().NumRows());
}

TEST(DatasetStoreTest, OversizedInsertIsRefusedWithoutFlushingIdle) {
  DatasetStore probe;
  int64_t bytes = (*probe.PutTable("probe", SmallTable()))->ApproxBytes();

  DatasetStore store(2 * bytes);
  ASSERT_TRUE(store.PutTable("a", SmallTable()).ok());
  ASSERT_TRUE(store.PutTable("b", SmallTable()).ok());  // both idle

  // This dataset alone exceeds the whole budget: it can never fit, so
  // the refusal must not evict the healthy idle residents first.
  Status refused =
      store.PutTable("huge", GenFlightLike(500, 8, 7)).status();
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_TRUE(store.Get("b").ok());
  EXPECT_EQ(store.evictions(), 0);
}

TEST(DatasetStoreTest, ShrinkingBudgetEvictsOnlyUnpinned) {
  DatasetStore store;
  auto pinned = store.PutTable("pinned", SmallTable());
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(store.PutTable("idle", SmallTable()).ok());
  EXPECT_EQ(store.size(), 2);

  store.SetBudgetBytes(1);  // far below one dataset
  EXPECT_EQ(store.size(), 1);
  EXPECT_TRUE(store.Get("pinned").ok());
  EXPECT_EQ(store.Get("idle").status().code(), StatusCode::kNotFound);
  // Pinned entries may keep the store above budget by design.
  EXPECT_GT(store.TotalBytes(), store.budget_bytes());
}

TEST(DatasetStoreTest, ZeroBudgetMeansUnlimited) {
  DatasetStore store(0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        store.PutTable("ds" + std::to_string(i), SmallTable()).ok());
  }
  EXPECT_EQ(store.size(), 8);
  EXPECT_EQ(store.evictions(), 0);
}

TEST(DatasetStoreTest, BuildRejectsOverwideRelations) {
  std::vector<AttributeDef> attributes;
  std::vector<Value> row;
  for (int i = 0; i < 65; ++i) {
    attributes.push_back({"c" + std::to_string(i), DataType::kInt});
    row.push_back(Value::Int(i));
  }
  TableBuilder builder{Schema(std::move(attributes))};
  builder.AddRowUnchecked(std::move(row));
  Status status = LoadedDataset::Build("wide", builder.Build()).status();
  EXPECT_FALSE(status.ok());
}

// Eviction-vs-pin race: writers churn datasets through a tiny budget
// while readers pin whatever they can Get and use the data. Any
// eviction of a pinned entry, or unlocked state, shows up as a crash or
// a sanitizer report (this test is in the ASan/UBSan and TSan CI jobs).
TEST(DatasetStoreTest, ConcurrentGetPutEvictIsSafe) {
  DatasetStore probe;
  int64_t bytes = (*probe.PutTable("probe", SmallTable()))->ApproxBytes();
  DatasetStore store(3 * bytes);

  constexpr int kIds = 6;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&store, w, &stop] {
      for (int round = 0; !stop.load(); ++round) {
        std::string id = "ds" + std::to_string((round + w) % kIds);
        // Either already resident (duplicate refused) or inserted,
        // possibly evicting an unpinned sibling; both are fine.
        (void)store.PutTable(id, SmallTable());
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&store, r, &stop, &reads] {
      int64_t expected_rows = SmallTable().NumRows();
      for (int round = 0; !stop.load(); ++round) {
        std::string id = "ds" + std::to_string((round + r) % kIds);
        auto dataset = store.Get(id);
        if (!dataset.ok()) continue;
        // The pin must keep the data fully alive even if the entry is
        // evicted concurrently.
        EXPECT_EQ((*dataset)->NumRows(), expected_rows);
        EXPECT_EQ(static_cast<int>((*dataset)->singleton_partitions()
                                       .size()),
                  (*dataset)->NumAttributes());
        reads.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(reads.load(), 0);
  // Budget bookkeeping survived the churn.
  std::vector<DatasetInfo> infos = store.List();
  int64_t total = 0;
  for (const DatasetInfo& info : infos) total += info.bytes;
  EXPECT_EQ(total, store.TotalBytes());
}

// ---- Versioned datasets (AppendRows and the version chain) ----------

Table DeltaRows() {
  return EmployeeTaxTable().SelectRows({0, 1});
}

TEST(DatasetStoreVersionTest, AppendMintsVersionsAndTracksHistory) {
  DatasetStore store;
  auto v1 = store.PutTable("emp", SmallTable());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->version(), 1);
  // No append block yet: the whole relation is base, the delta empty.
  EXPECT_EQ((*v1)->base_rows(), (*v1)->NumRows());
  EXPECT_EQ((*v1)->delta_rows(), 0);

  auto v2 = store.AppendRows("emp", DeltaRows());
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ((*v2)->version(), 2);
  EXPECT_EQ((*v2)->base_rows(), (*v1)->NumRows());
  EXPECT_EQ((*v2)->delta_rows(), 2);
  EXPECT_EQ((*v2)->NumRows(), (*v1)->NumRows() + 2);

  // Get() returns the current version; Get(id, 1) still resolves while
  // this test pins v1 with its own strong reference.
  auto current = store.Get("emp");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)->version(), 2);
  auto old_version = store.Get("emp", 1);
  ASSERT_TRUE(old_version.ok()) << old_version.status().ToString();
  EXPECT_EQ(old_version->get(), v1->get());
  EXPECT_EQ(store.Get("emp", 2)->get(), v2->get());
  EXPECT_EQ(store.Get("emp", 3).status().code(), StatusCode::kNotFound);

  // Info reports the chain: current first, then retained versions.
  auto info = store.Info("emp");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2);
  ASSERT_EQ(info->versions.size(), 2u);
  EXPECT_TRUE(info->versions[0].current);
  EXPECT_EQ(info->versions[0].version, 2);
  EXPECT_EQ(info->versions[1].version, 1);
  EXPECT_TRUE(info->versions[1].pinned);
  EXPECT_GT(info->retained_bytes, 0);
  EXPECT_EQ(store.RetainedBytes(), (*v1)->ApproxBytes());
}

TEST(DatasetStoreVersionTest, SupersededVersionsDieWithTheirPins) {
  DatasetStore store;
  ASSERT_TRUE(store.PutTable("emp", SmallTable()).ok());
  {
    auto v1 = store.Get("emp");
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(store.AppendRows("emp", DeltaRows()).ok());
    ASSERT_TRUE(store.Get("emp", 1).ok());  // alive while v1 pins it
  }
  // The pin is gone: version 1 is no longer resident.
  auto gone = store.Get("emp", 1);
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.RetainedBytes(), 0);
  auto info = store.Info("emp");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->versions.size(), 1u);  // only the current version

  // Only current-version bytes count against the store's accounting.
  auto current = store.Get("emp");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(store.TotalBytes(), (*current)->ApproxBytes());
}

TEST(DatasetStoreVersionTest, AppendToUnknownIdIsNotFound) {
  DatasetStore store;
  auto grown = store.AppendRows("nope", DeltaRows());
  EXPECT_EQ(grown.status().code(), StatusCode::kNotFound);
}

TEST(DatasetStoreVersionTest, AppendCsvStringGrowsTheDataset) {
  DatasetStore store;
  ASSERT_TRUE(store.PutCsvString("t", "a,b\n1,x\n2,y\n").ok());
  CsvOptions delta_options;
  delta_options.has_header = false;
  auto grown = store.AppendCsvString("t", "3,z\n", delta_options);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  EXPECT_EQ((*grown)->version(), 2);
  EXPECT_EQ((*grown)->NumRows(), 3);
  EXPECT_EQ((*grown)->delta_rows(), 1);
}

}  // namespace
}  // namespace fastod
