#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "data/encode.h"
#include "gen/random_table.h"
#include "od/mapping.h"
#include "validate/brute_force.h"

namespace fastod {
namespace {

TEST(MappingTest, PaperExample5Exactly) {
  // [AB] ↦ [CD] maps to: {A,B}: []->C, {A,B}: []->D, {}: A~C, {A}: B~C,
  // {C}: A~D, {A,C}: B~D.
  ListOd od{{0, 1}, {2, 3}};
  auto constancy = MapPrefixOdToCanonical(od.lhs, od.rhs);
  ASSERT_EQ(constancy.size(), 2u);
  EXPECT_EQ(constancy[0], (ConstancyOd{AttributeSet::FromIndices({0, 1}), 2}));
  EXPECT_EQ(constancy[1], (ConstancyOd{AttributeSet::FromIndices({0, 1}), 3}));

  auto compat = MapOrderCompatibilityToCanonical(od.lhs, od.rhs);
  ASSERT_EQ(compat.size(), 4u);
  EXPECT_EQ(compat[0], CompatibilityOd(AttributeSet::Empty(), 0, 2));
  EXPECT_EQ(compat[1], CompatibilityOd(AttributeSet::Single(2), 0, 3));
  EXPECT_EQ(compat[2], CompatibilityOd(AttributeSet::Single(0), 1, 2));
  EXPECT_EQ(compat[3], CompatibilityOd(AttributeSet::FromIndices({0, 2}), 1, 3));
}

TEST(MappingTest, SizeIsQuadratic) {
  // |X|*|Y| compatibility pieces + |Y| constancy pieces (Theorem 5).
  ListOd od{{0, 1, 2}, {3, 4}};
  EXPECT_EQ(MapPrefixOdToCanonical(od.lhs, od.rhs).size(), 2u);
  EXPECT_EQ(MapOrderCompatibilityToCanonical(od.lhs, od.rhs).size(), 6u);
  EXPECT_EQ(MapListOdToCanonical(od).size(), 8u);
}

TEST(MappingTest, EmptySidesProduceNothing) {
  EXPECT_TRUE(MapListOdToCanonical(ListOd{{}, {}}).empty());
  EXPECT_TRUE(MapListOdToCanonical(ListOd{{0}, {}}).empty());
  // [] ↦ [A]: A must be constant.
  auto pieces = MapListOdToCanonical(ListOd{{}, {0}});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(std::get<ConstancyOd>(pieces[0]),
            (ConstancyOd{AttributeSet::Empty(), 0}));
}

TEST(MappingTest, RepeatedAttributeLeavesOnlyTheEmbeddedFd) {
  // [A] ↦ [A,B] (the FD-shaped OD of Theorem 2): its image is
  // {A}: []->A (trivial), {A}: []->B, {}: A~A (trivial), {A}: A~B
  // (trivial by Normalization) — exactly one non-trivial piece, the FD.
  auto pieces = MapListOdToCanonical(ListOd{{0}, {0, 1}});
  std::vector<CanonicalOd> nontrivial;
  for (const CanonicalOd& p : pieces) {
    bool trivial = std::holds_alternative<ConstancyOd>(p)
                       ? std::get<ConstancyOd>(p).IsTrivial()
                       : std::get<CompatibilityOd>(p).IsTrivial();
    if (!trivial) nontrivial.push_back(p);
  }
  ASSERT_EQ(nontrivial.size(), 1u);
  EXPECT_EQ(std::get<ConstancyOd>(nontrivial[0]),
            (ConstancyOd{AttributeSet::Single(0), 1}));
}

// The heart of Theorem 5: a list OD holds on a relation iff every canonical
// OD in its image holds. Checked against brute-force semantics on random
// tables and random order specifications.
class MappingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MappingPropertyTest, ListOdHoldsIffCanonicalImageHolds) {
  Rng rng(GetParam());
  Table t = GenRandomTable(25, 5, 3, GetParam() * 31 + 1);
  auto rel = EncodedRelation::FromTable(t);
  ASSERT_TRUE(rel.ok());
  for (int trial = 0; trial < 40; ++trial) {
    // Random lhs/rhs lists (possibly overlapping attributes, random order).
    auto random_spec = [&rng](int max_len) {
      OrderSpec spec;
      int len = 1 + static_cast<int>(rng.Uniform(max_len));
      AttributeSet used;
      for (int i = 0; i < len; ++i) {
        int a = static_cast<int>(rng.Uniform(5));
        if (used.Contains(a)) continue;  // keep specs duplicate-free
        used = used.With(a);
        spec.push_back(a);
      }
      return spec;
    };
    ListOd od{random_spec(3), random_spec(3)};
    bool direct = BruteHolds(*rel, od);
    bool via_mapping = true;
    for (const CanonicalOd& piece : MapListOdToCanonical(od)) {
      if (!BruteHolds(*rel, piece)) {
        via_mapping = false;
        break;
      }
    }
    EXPECT_EQ(direct, via_mapping) << od.ToString() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingPropertyTest,
                         ::testing::Values(5, 19, 37, 71, 113, 131, 151));

}  // namespace
}  // namespace fastod
