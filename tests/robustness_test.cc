// Production-hardening coverage: hard deadlines (timeout-ms), admission
// control at the service and server layers, per-client quotas, bounded
// request bodies, graceful drain, and the ThreadPool submit-after-stop
// race. The acceptance bars:
//
//  * a timeout-ms=50 session on a non-trivial table ends failed with
//    kDeadlineExceeded and the worker is reusable immediately after;
//  * with the admission cap saturated the next POST /v1/sessions is a
//    429 carrying Retry-After, while the in-flight stream keeps
//    delivering and closes with a clean end line;
//  * BeginDrain() turns session creation into 503 + Retry-After but
//    leaves polls and running sessions alone, and Drain() returns once
//    they finish.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engines.h"
#include "api/registry.h"
#include "common/cancellation.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/csv.h"
#include "gen/generators.h"
#include "server/discovery_server.h"
#include "service/discovery_service.h"

namespace fastod {
namespace {

// ------------------------------------------------- tiny HTTP client
// (kept local per test TU; see server_test.cc for the annotated copy)

int Connect(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

class ResponseReader {
 public:
  explicit ResponseReader(int fd) : fd_(fd) {}
  ~ResponseReader() { close(fd_); }

  bool ReadHeader(ClientResponse* out) {
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    std::string head = buffer_.substr(0, header_end);
    buffer_ = buffer_.substr(header_end + 4);
    size_t line_end = head.find("\r\n");
    std::string status_line = head.substr(0, line_end);
    if (status_line.size() < 12) return false;
    out->status = std::atoi(status_line.substr(9, 3).c_str());
    size_t pos = line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      size_t value = line.find_first_not_of(" \t", colon + 1);
      out->headers[name] =
          value == std::string::npos ? "" : line.substr(value);
    }
    chunked_ = out->headers.count("transfer-encoding") != 0 &&
               out->headers["transfer-encoding"] == "chunked";
    return true;
  }

  std::string NextChunk() {
    size_t line_end;
    while ((line_end = buffer_.find("\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    size_t size = std::strtoul(buffer_.substr(0, line_end).c_str(),
                               nullptr, 16);
    buffer_ = buffer_.substr(line_end + 2);
    if (size == 0) return "";
    while (buffer_.size() < size + 2) {
      if (!Fill()) return "";
    }
    std::string chunk = buffer_.substr(0, size);
    buffer_ = buffer_.substr(size + 2);
    return chunk;
  }

  std::string ReadBody(const ClientResponse& response) {
    if (chunked_) {
      std::string body;
      for (std::string chunk = NextChunk(); !chunk.empty();
           chunk = NextChunk()) {
        body += chunk;
      }
      return body;
    }
    auto it = response.headers.find("content-length");
    if (it != response.headers.end()) {
      size_t length = std::strtoul(it->second.c_str(), nullptr, 10);
      while (buffer_.size() < length && Fill()) {
      }
      return buffer_.substr(0, length);
    }
    while (Fill()) {
    }
    return buffer_;
  }

 private:
  bool Fill() {
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_;
  std::string buffer_;
  bool chunked_ = false;
};

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RequestText(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  std::string out = method + " " + path + " HTTP/1.1\r\n"
                    "Host: 127.0.0.1\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  if (!body.empty()) {
    out += "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n";
  }
  return out + "\r\n" + body;
}

ClientResponse Fetch(
    int port, const std::string& method, const std::string& path,
    const std::string& body = "",
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  ClientResponse response;
  int fd = Connect(port);
  if (fd < 0) return response;
  ResponseReader reader(fd);
  if (!SendAll(fd, RequestText(method, path, body, headers))) {
    return response;
  }
  if (!reader.ReadHeader(&response)) return response;
  response.body = reader.ReadBody(response);
  return response;
}

// ------------------------------------------------- test algorithms

/// Emits one constancy OD per step, blocking between steps until the
/// test releases it, cancel arrives, or the deadline passes.
class StepAlgorithm : public Algorithm {
 public:
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    int released = 0;

    void Release() {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++released;
      }
      cv.notify_all();
    }
  };

  StepAlgorithm(Gate* gate, int steps)
      : Algorithm("step", "test-only step-gated emitter"),
        gate_(gate),
        steps_(steps) {}

  std::string ResultText() const override { return "step\n"; }
  std::string ResultJson() const override {
    return "{\"algorithm\": \"step\"}\n";
  }

 protected:
  Status ExecuteInternal() override {
    for (int step = 0; step < steps_; ++step) {
      if (sink() != nullptr) {
        sink()->OnConstancy(ConstancyOd{AttributeSet(), step % 2});
      }
      if (step + 1 == steps_) break;
      // Cancellation is an atomic flag with no one to notify the gate,
      // so wake periodically to observe it.
      std::unique_lock<std::mutex> lock(gate_->mutex);
      while (gate_->released <= step &&
             !(control() != nullptr && control()->StopRequested())) {
        gate_->cv.wait_for(lock, std::chrono::milliseconds(5));
      }
      if (control() != nullptr && control()->StopRequested()) break;
    }
    return Status::Ok();
  }

 private:
  Gate* gate_;
  int steps_;
};

/// Spins (1 ms naps) until StopRequested or `max_ms` — a run long
/// enough that any sane hard deadline fires first, stopping at the
/// same safepoints real engines use.
class SpinAlgorithm : public Algorithm {
 public:
  explicit SpinAlgorithm(int max_ms)
      : Algorithm("spin", "test-only busy run"), max_ms_(max_ms) {}

  std::string ResultText() const override { return "spin\n"; }
  std::string ResultJson() const override {
    return "{\"algorithm\": \"spin\"}\n";
  }

 protected:
  Status ExecuteInternal() override {
    WallTimer timer;
    while (timer.ElapsedSeconds() * 1000.0 < max_ms_) {
      if (control() != nullptr && control()->StopRequested()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Ok();
  }

 private:
  int max_ms_;
};

std::string EmployeeCsv() { return WriteCsvString(EmployeeTaxTable()); }

Table TinyTable() { return EmployeeTaxTable(); }

class ServerFixture {
 public:
  explicit ServerFixture(DiscoveryServerOptions options = {},
                         int steps = 2) {
    RegisterBuiltinAlgorithms(&registry_);
    registry_.Register("step", [this, steps] {
      return std::unique_ptr<Algorithm>(new StepAlgorithm(&gate_, steps));
    });
    registry_.Register("spin", [] {
      return std::unique_ptr<Algorithm>(new SpinAlgorithm(10000));
    });
    options.port = 0;
    options.http_threads = 4;
    options.worker_threads = 2;
    server_ = std::make_unique<DiscoveryServer>(options, &registry_);
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  int port() const { return server_->port(); }
  StepAlgorithm::Gate& gate() { return gate_; }
  DiscoveryServer& server() { return *server_; }

 private:
  AlgorithmRegistry registry_;
  StepAlgorithm::Gate gate_;
  std::unique_ptr<DiscoveryServer> server_;
};

int64_t SessionIdOf(const std::string& body) {
  auto parsed = ParseJson(body);
  EXPECT_TRUE(parsed.ok()) << body;
  const JsonValue* id = parsed->Find("id");
  EXPECT_NE(id, nullptr) << body;
  return id == nullptr ? -1 : id->int_value();
}

std::string StateOf(int port, int64_t id) {
  ClientResponse response =
      Fetch(port, "GET", "/v1/sessions/" + std::to_string(id));
  auto parsed = ParseJson(response.body);
  if (!parsed.ok()) return "unparseable";
  const JsonValue* state = parsed->Find("state");
  return state == nullptr ? "missing" : state->string_value();
}

std::string WaitTerminalState(int port, int64_t id) {
  for (int i = 0; i < 3000; ++i) {
    std::string state = StateOf(port, id);
    if (state == "done" || state == "failed" || state == "cancelled" ||
        state == "deadline_exceeded") {
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return "never-terminal";
}

// --------------------------------------------------- deadline: common

TEST(DeadlineTest, ExecutionControlDeadlineTripsAndClears) {
  ExecutionControl control;
  EXPECT_FALSE(control.HasDeadline());
  EXPECT_FALSE(control.StopRequested());
  control.SetDeadlineAfterMillis(1);
  EXPECT_TRUE(control.HasDeadline());
  WallTimer timer;
  while (!control.DeadlineExceeded() && timer.ElapsedSeconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(control.DeadlineExceeded());
  EXPECT_TRUE(control.StopRequested());    // deadline alone stops a run
  EXPECT_FALSE(control.CancelRequested());  // ...without being a cancel
  control.SetDeadlineAfterMillis(0);  // disarm
  EXPECT_FALSE(control.HasDeadline());
  EXPECT_FALSE(control.StopRequested());
  control.SetDeadlineAfterMillis(1);
  control.Reset();  // Reset clears the deadline with everything else
  EXPECT_FALSE(control.HasDeadline());
}

TEST(DeadlineTest, EveryRegisteredEngineHasTimeoutMs) {
  AlgorithmRegistry registry;
  RegisterBuiltinAlgorithms(&registry);
  for (const std::string& name : registry.Names()) {
    Result<std::unique_ptr<Algorithm>> algo = registry.Create(name);
    ASSERT_TRUE(algo.ok()) << name;
    EXPECT_NE((*algo)->FindOption("timeout-ms"), nullptr)
        << name << " is missing the base timeout-ms option";
  }
}

TEST(DeadlineTest, TimeoutMsFailsExecuteWithDeadlineExceeded) {
  SpinAlgorithm algo(10000);  // would run 10 s without the deadline
  ExecutionControl control;
  algo.SetControl(&control);
  ASSERT_TRUE(algo.LoadData(TinyTable()).ok());
  ASSERT_TRUE(algo.SetOption("timeout-ms", "50").ok());
  WallTimer timer;
  Status status = algo.Execute();
  double elapsed = timer.ElapsedSeconds();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_FALSE(algo.executed());
  // The engine polls every ~1 ms; 2 s is a very generous CI bound for
  // a 50 ms deadline.
  EXPECT_LT(elapsed, 2.0);
}

TEST(DeadlineTest, ZeroTimeoutMsDisarmsOnReusedAlgorithm) {
  SpinAlgorithm algo(20);  // finishes on its own in ~20 ms
  ExecutionControl control;
  algo.SetControl(&control);
  ASSERT_TRUE(algo.LoadData(TinyTable()).ok());
  ASSERT_TRUE(algo.SetOption("timeout-ms", "10000").ok());
  EXPECT_TRUE(algo.Execute().ok());
  // Re-running with 0 must disarm the previous run's deadline.
  ASSERT_TRUE(algo.SetOption("timeout-ms", "0").ok());
  EXPECT_TRUE(algo.Execute().ok());
  EXPECT_FALSE(control.HasDeadline());
}

TEST(DeadlineTest, FastodSessionDeadlineFailsAndWorkerIsReusable) {
  DiscoveryService service(1);  // one worker: reuse is observable
  Result<SessionId> id = service.Create("fastod");
  ASSERT_TRUE(id.ok());
  // Large enough that a 50 ms budget cannot finish the lattice walk.
  ASSERT_TRUE(
      service.LoadTable(*id, GenFlightLike(4000, 14)).ok());
  ASSERT_TRUE(service.SetOption(*id, "timeout-ms", "50").ok());
  WallTimer timer;
  ASSERT_TRUE(service.Submit(*id).ok());
  Result<SessionState> state = service.Wait(*id);
  double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(*state, SessionState::kFailed);
  Result<DiscoveryService::PollInfo> info = service.Poll(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->error_code, StatusCode::kDeadlineExceeded)
      << info->error;
  // Engines stop at per-level and every-256-node safepoints; allow CI
  // slack far beyond the ~2x-deadline typical case.
  EXPECT_LT(elapsed, 5.0);
  // The worker that hit the deadline must take the next run at once.
  Result<SessionId> next = service.Create("fastod");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(service.LoadTable(*next, TinyTable()).ok());
  ASSERT_TRUE(service.Submit(*next).ok());
  Result<SessionState> next_state = service.Wait(*next);
  ASSERT_TRUE(next_state.ok());
  EXPECT_EQ(*next_state, SessionState::kDone);
}

// ------------------------------------------------ admission: service

TEST(AdmissionTest, ServiceCapRefusesWithUnavailableThenRecovers) {
  AlgorithmRegistry registry;
  StepAlgorithm::Gate gate;
  registry.Register("step", [&gate] {
    return std::unique_ptr<Algorithm>(new StepAlgorithm(&gate, 2));
  });
  DiscoveryService service(2, &registry);
  service.SetMaxActiveSessions(1);
  EXPECT_EQ(service.max_active_sessions(), 1);

  Result<SessionId> first = service.Create("step");
  Result<SessionId> second = service.Create("step");
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(service.LoadTable(*first, TinyTable()).ok());
  ASSERT_TRUE(service.LoadTable(*second, TinyTable()).ok());

  ASSERT_TRUE(service.Submit(*first).ok());
  EXPECT_EQ(service.num_active(), 1);
  Status refused = service.Submit(*second);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable)
      << refused.ToString();
  // The refused session never left kCreated — it can be resubmitted.
  Result<DiscoveryService::PollInfo> info = service.Poll(*second);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, SessionState::kCreated);

  gate.Release();
  ASSERT_TRUE(service.Wait(*first).ok());
  EXPECT_EQ(service.num_active(), 0);
  ASSERT_TRUE(service.Submit(*second).ok()) << "slot must free on finish";
  gate.Release();
  Result<SessionState> state = service.Wait(*second);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, SessionState::kDone);
}

TEST(AdmissionTest, ThreadPoolSubmitAfterStopReturnsFalse) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  pool.Stop();
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1); }));
  pool.Stop();  // idempotent
  EXPECT_EQ(ran.load(), 1);
}

TEST(AdmissionTest, SubmitRacingPoolStopNeverLosesAcceptedWork) {
  // Submit from another thread while Stop() lands at varying points:
  // every call must return true or false (never crash or hang), and a
  // true return is a guarantee — the task runs before Stop() returns.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::thread submitter([&] {
      for (int i = 0; i < 64; ++i) {
        if (pool.Submit([&] { ran.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    pool.Stop();
    submitter.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

// ------------------------------------------------- admission: server

TEST(OverloadTest, PostPastCapIs429WithRetryAfterAndStreamsSurvive) {
  DiscoveryServerOptions options;
  options.max_sessions = 1;
  options.retry_after_seconds = 7;
  ServerFixture fixture(options, /*steps=*/3);

  // Occupy the only admission slot with a streaming session and read
  // its first OD line so the run is provably mid-flight.
  ClientResponse created = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"step\", \"csv\": \"" + JsonEscape(EmployeeCsv()) +
          "\", \"stream\": true}");
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  int stream_fd = Connect(fixture.port());
  ASSERT_GE(stream_fd, 0);
  ResponseReader stream(stream_fd);
  ASSERT_TRUE(SendAll(
      stream_fd,
      RequestText("GET", "/v1/sessions/" + std::to_string(id) + "/stream",
                  "")));
  ClientResponse stream_head;
  ASSERT_TRUE(stream.ReadHeader(&stream_head));
  ASSERT_EQ(stream_head.status, 200);
  std::string first = stream.NextChunk();
  ASSERT_NE(first.find("\"constancy\""), std::string::npos) << first;

  // The N+1th POST: 429, Retry-After, Unavailable code.
  ClientResponse rejected = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"step\", \"csv\": \"" + JsonEscape(EmployeeCsv()) +
          "\"}");
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  EXPECT_EQ(rejected.headers["retry-after"], "7");
  EXPECT_NE(rejected.body.find("Unavailable"), std::string::npos)
      << rejected.body;

  // The in-flight stream is unaffected: release the remaining steps and
  // read through the clean end line.
  fixture.gate().Release();
  fixture.gate().Release();
  int ods = 1;
  std::string end_line;
  for (std::string chunk = stream.NextChunk(); !chunk.empty();
       chunk = stream.NextChunk()) {
    size_t pos = 0;
    while (pos < chunk.size()) {
      size_t eol = chunk.find('\n', pos);
      if (eol == std::string::npos) eol = chunk.size();
      std::string line = chunk.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.find("\"end\"") != std::string::npos) {
        end_line = line;
      } else if (!line.empty()) {
        ++ods;
      }
    }
  }
  EXPECT_EQ(ods, 3);
  ASSERT_FALSE(end_line.empty());
  auto parsed = ParseJson(end_line);
  ASSERT_TRUE(parsed.ok()) << end_line;
  EXPECT_EQ(parsed->Find("state")->string_value(), "done");
  EXPECT_EQ(parsed->Find("streamed")->int_value(), 3);

  // The slot freed on completion: the retry succeeds.
  ClientResponse retried = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"fastod\", \"csv\": \"" +
          JsonEscape(EmployeeCsv()) + "\"}");
  EXPECT_EQ(retried.status, 201) << retried.body;
  EXPECT_EQ(WaitTerminalState(fixture.port(), SessionIdOf(retried.body)),
            "done");
}

TEST(OverloadTest, PerClientQuotaKeysOnClientIdHeader) {
  DiscoveryServerOptions options;
  options.max_sessions_per_client = 1;
  ServerFixture fixture(options, /*steps=*/2);
  std::string body = "{\"algorithm\": \"step\", \"csv\": \"" +
                     JsonEscape(EmployeeCsv()) + "\"}";

  ClientResponse alice1 = Fetch(fixture.port(), "POST", "/v1/sessions",
                                body, {{"X-Client-Id", "alice"}});
  ASSERT_EQ(alice1.status, 201) << alice1.body;
  ClientResponse alice2 = Fetch(fixture.port(), "POST", "/v1/sessions",
                                body, {{"X-Client-Id", "alice"}});
  EXPECT_EQ(alice2.status, 429) << alice2.body;
  EXPECT_FALSE(alice2.headers["retry-after"].empty());
  // A different identity is not throttled by alice's quota.
  ClientResponse bob = Fetch(fixture.port(), "POST", "/v1/sessions", body,
                             {{"X-Client-Id", "bob"}});
  EXPECT_EQ(bob.status, 201) << bob.body;

  fixture.gate().Release();
  fixture.gate().Release();
  EXPECT_EQ(WaitTerminalState(fixture.port(), SessionIdOf(alice1.body)),
            "done");
  EXPECT_EQ(WaitTerminalState(fixture.port(), SessionIdOf(bob.body)),
            "done");
  // Terminal sessions free quota without a purge.
  ClientResponse alice3 = Fetch(fixture.port(), "POST", "/v1/sessions",
                                body, {{"X-Client-Id", "alice"}});
  EXPECT_EQ(alice3.status, 201) << alice3.body;
  fixture.gate().Release();
  WaitTerminalState(fixture.port(), SessionIdOf(alice3.body));
}

TEST(OverloadTest, OversizedBodyIs413BeforeParsing) {
  DiscoveryServerOptions options;
  options.max_body_bytes = 1024;
  ServerFixture fixture(options);
  std::string big(4096, 'x');
  ClientResponse response = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"fastod\", \"csv\": \"" + big + "\"}");
  EXPECT_EQ(response.status, 413) << response.body;
  // Within the cap everything still works.
  ClientResponse ok = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"fastod\", \"csv\": \"" +
          JsonEscape(EmployeeCsv()) + "\"}");
  EXPECT_EQ(ok.status, 201) << ok.body;
  WaitTerminalState(fixture.port(), SessionIdOf(ok.body));
}

// ------------------------------------------------------------ drain

TEST(DrainTest, BeginDrainRejectsNewSessionsButServesLiveOnes) {
  ServerFixture fixture({}, /*steps=*/2);
  ClientResponse created = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"step\", \"csv\": \"" + JsonEscape(EmployeeCsv()) +
          "\"}");
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);

  fixture.server().BeginDrain();
  EXPECT_TRUE(fixture.server().draining());
  ClientResponse refused = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"fastod\", \"csv\": \"" +
          JsonEscape(EmployeeCsv()) + "\"}");
  EXPECT_EQ(refused.status, 503) << refused.body;
  EXPECT_FALSE(refused.headers["retry-after"].empty());
  // Observation of in-flight work is NOT drained: the one-request-per-
  // connection protocol needs fresh connections to poll results.
  ClientResponse poll =
      Fetch(fixture.port(), "GET", "/v1/sessions/" + std::to_string(id));
  EXPECT_EQ(poll.status, 200) << poll.body;

  fixture.gate().Release();
  EXPECT_TRUE(fixture.server().Drain(10.0)) << "session finished in time";
  EXPECT_EQ(StateOf(fixture.port(), id), "done");
}

TEST(DrainTest, DrainTimeoutCancelsStragglers) {
  ServerFixture fixture({}, /*steps=*/2);  // never released: must cancel
  ClientResponse created = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"step\", \"csv\": \"" + JsonEscape(EmployeeCsv()) +
          "\"}");
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  fixture.server().BeginDrain();
  EXPECT_FALSE(fixture.server().Drain(0.1)) << "straggler was cancelled";
  EXPECT_EQ(fixture.server().service().num_active(), 0);
  EXPECT_EQ(StateOf(fixture.port(), id), "cancelled");
}

// ------------------------------------------- deadline over the wire

TEST(DeadlineTest, DeadlineExceededIsItsOwnWireState) {
  ServerFixture fixture;
  ClientResponse created = Fetch(
      fixture.port(), "POST", "/v1/sessions",
      "{\"algorithm\": \"spin\", \"csv\": \"" + JsonEscape(EmployeeCsv()) +
          "\", \"options\": {\"timeout-ms\": 50}}");
  ASSERT_EQ(created.status, 201) << created.body;
  int64_t id = SessionIdOf(created.body);
  EXPECT_EQ(WaitTerminalState(fixture.port(), id), "deadline_exceeded");
  ClientResponse info =
      Fetch(fixture.port(), "GET", "/v1/sessions/" + std::to_string(id));
  EXPECT_NE(info.body.find("DeadlineExceeded"), std::string::npos)
      << info.body;
}

}  // namespace
}  // namespace fastod
