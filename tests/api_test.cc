// Tests for the unified Algorithm API (src/api/): the typed option
// registry, the factory, the streaming OdSink, cancellation, and —
// centrally — that every engine reached through
// AlgorithmRegistry::Create(name) produces bit-for-bit the same output as
// its legacy direct entry point.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "algo/brute_force_discovery.h"
#include "algo/conditional.h"
#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "api/engines.h"
#include "api/od_sink.h"
#include "api/registry.h"
#include "gen/generators.h"

namespace fastod {
namespace {

// ------------------------------------------------------ option registry

TEST(OptionRegistryTest, TypedParseSuccess) {
  FastodAlgorithm algo;
  EXPECT_TRUE(algo.SetOption("threads", "4").ok());
  EXPECT_TRUE(algo.SetOption("max-error", "0.25").ok());
  EXPECT_TRUE(algo.SetOption("bidirectional", "true").ok());
  EXPECT_TRUE(algo.SetOption("swap-method", "tau").ok());
  EXPECT_EQ(algo.discovery_options().num_threads, 4);
  EXPECT_DOUBLE_EQ(algo.discovery_options().max_error, 0.25);
  EXPECT_TRUE(algo.discovery_options().discover_bidirectional);
}

TEST(OptionRegistryTest, BareBoolMeansTrue) {
  // --bidirectional with no value, as the CLI forwards it.
  FastodAlgorithm algo;
  EXPECT_TRUE(algo.SetOption("bidirectional", "").ok());
  EXPECT_TRUE(algo.discovery_options().discover_bidirectional);
  EXPECT_TRUE(algo.SetOption("bidirectional", "false").ok());
  EXPECT_FALSE(algo.discovery_options().discover_bidirectional);
}

TEST(OptionRegistryTest, TypedParseFailures) {
  FastodAlgorithm algo;
  // Wrong shapes.
  EXPECT_FALSE(algo.SetOption("threads", "four").ok());
  EXPECT_FALSE(algo.SetOption("max-error", "lots").ok());
  EXPECT_FALSE(algo.SetOption("bidirectional", "maybe").ok());
  EXPECT_FALSE(algo.SetOption("swap-method", "psychic").ok());
  // Out of range.
  EXPECT_FALSE(algo.SetOption("threads", "0").ok());
  EXPECT_FALSE(algo.SetOption("max-error", "1.5").ok());
  EXPECT_FALSE(algo.SetOption("max-level", "-3").ok());
  // A failed set leaves the previous value intact.
  EXPECT_EQ(algo.discovery_options().num_threads, 1);
}

TEST(OptionRegistryTest, ErrorsNameTheOption) {
  FastodAlgorithm algo;
  Status s = algo.SetOption("threads", "four");
  EXPECT_NE(s.message().find("threads"), std::string::npos);
  EXPECT_NE(s.message().find("four"), std::string::npos);
}

TEST(OptionRegistryTest, UnknownOptionListsAvailable) {
  TaneAlgorithm algo;
  Status s = algo.SetOption("swap-method", "sort");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown option 'swap-method'"),
            std::string::npos);
  EXPECT_NE(s.message().find("timeout"), std::string::npos);
  EXPECT_NE(s.message().find("max-level"), std::string::npos);
}

TEST(OptionRegistryTest, GetNeededOptions) {
  FastodAlgorithm fastod;
  std::vector<std::string> names = fastod.GetNeededOptions();
  for (const char* expected :
       {"timeout-ms", "threads", "timeout", "max-level", "max-error",
        "bidirectional", "emit-ods", "minimality-pruning", "level-pruning",
        "key-pruning", "level-stats", "swap-method"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(names.size(), 12u);
}

TEST(OptionRegistryTest, FindOptionMetadata) {
  FastodAlgorithm algo;
  const OptionInfo* info = algo.FindOption("swap-method");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->type_name, "enum");
  EXPECT_EQ(info->default_repr, "auto");
  EXPECT_EQ(info->enum_values.size(), 3u);
  EXPECT_EQ(algo.FindOption("no-such-option"), nullptr);
}

TEST(OptionRegistryTest, DescribeOptionsSnapshot) {
  // The generated help is load-bearing for the CLI; pin its shape.
  TaneAlgorithm algo;
  EXPECT_EQ(algo.DescribeOptions(),
            "  --timeout-ms=<int>               hard deadline in "
            "milliseconds; exceeding it fails the run with DeadlineExceeded "
            "(0 = none) (default: 0)\n"
            "  --threads=<int>                  worker threads for "
            "intra-level parallelism (default: 1) [alias: --num-threads]\n"
            "  --timeout=<double>               abort after this many "
            "seconds (0 = none) (default: 0)\n"
            "  --max-level=<int>                stop after lattice level L "
            "(0 = none) (default: 0)\n"
            "  --emit-ods=<bool>                materialize FDs (false = "
            "count only) (default: true) [alias: --emit-fds]\n");
}

TEST(OptionRegistryTest, DeprecatedSpellingsStillResolve) {
  // "emit-fds" survives as an alias of the canonical "emit-ods", and the
  // historical underscore spellings resolve by hyphen normalization.
  TaneAlgorithm tane;
  ASSERT_TRUE(tane.SetOption("emit-fds", "false").ok());
  ASSERT_TRUE(tane.SetOption("emit_ods", "true").ok());
  FastodAlgorithm fastod;
  ASSERT_TRUE(fastod.SetOption("num-threads", "2").ok());
  ASSERT_TRUE(fastod.SetOption("num_threads", "3").ok());
  ASSERT_TRUE(fastod.SetOption("threads", "4").ok());
  EXPECT_FALSE(fastod.SetOption("nope-threads", "4").ok());
  const OptionInfo* info = fastod.FindOption("threads");
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->aliases.size(), 1u);
  EXPECT_EQ(info->aliases[0], "num-threads");
}

TEST(OptionRegistryTest, ApproximateSurfacesItsOwnDefault) {
  ApproximateAlgorithm algo;
  const OptionInfo* info = algo.FindOption("max-error");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->default_repr, "0.01");
}

TEST(OptionRegistryTest, KindsMatchTypeNames) {
  // The kind enum crosses the C ABI; it must agree with the string form.
  FastodAlgorithm algo;
  EXPECT_EQ(algo.FindOption("threads")->kind, OptionKind::kInt);
  EXPECT_EQ(algo.FindOption("timeout")->kind, OptionKind::kDouble);
  EXPECT_EQ(algo.FindOption("bidirectional")->kind, OptionKind::kBool);
  EXPECT_EQ(algo.FindOption("swap-method")->kind, OptionKind::kEnum);
  ConditionalAlgorithm conditional;
  EXPECT_EQ(conditional.FindOption("limit")->kind, OptionKind::kInt);
}

TEST(OptionRegistryTest, ReSetOptionBetweenExecutesOnSameData) {
  // Reconfiguring between two Execute() calls on the same loaded data
  // must behave exactly like a fresh run with the final configuration.
  FastodAlgorithm algo;
  ASSERT_TRUE(algo.LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE(algo.SetOption("max-level", "1").ok());
  ASSERT_TRUE(algo.Execute().ok());
  int64_t level1 = algo.result().NumOds();

  ASSERT_TRUE(algo.SetOption("max-level", "0").ok());
  ASSERT_TRUE(algo.SetOption("bidirectional", "true").ok());
  ASSERT_TRUE(algo.Execute().ok());

  FastodAlgorithm fresh;
  ASSERT_TRUE(fresh.SetOption("bidirectional", "true").ok());
  ASSERT_TRUE(fresh.LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE(fresh.Execute().ok());
  EXPECT_EQ(algo.result().constancy_ods, fresh.result().constancy_ods);
  EXPECT_EQ(algo.result().compatibility_ods,
            fresh.result().compatibility_ods);
  EXPECT_EQ(algo.result().bidirectional_ods,
            fresh.result().bidirectional_ods);
  EXPECT_NE(algo.result().NumOds(), level1);
}

TEST(OptionRegistryTest, UnknownOptionAfterSuccessfulRuns) {
  // A stale frontend probing an option that does not exist must not
  // disturb an already-configured, already-executed instance.
  FastodAlgorithm algo;
  ASSERT_TRUE(algo.SetOption("max-level", "2").ok());
  ASSERT_TRUE(algo.LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE(algo.Execute().ok());
  int64_t before = algo.result().NumOds();

  Status s = algo.SetOption("does-not-exist", "1");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("does-not-exist"), std::string::npos);

  ASSERT_TRUE(algo.Execute().ok());
  EXPECT_EQ(algo.result().NumOds(), before);
}

TEST(OptionRegistryTest, OutOfRangeValuesNameTheOption) {
  FastodAlgorithm algo;
  for (const auto& [name, value] :
       std::vector<std::pair<std::string, std::string>>{
           {"threads", "100000"},
           {"threads", "-1"},
           {"max-error", "1.0001"},
           {"max-level", "65"}}) {
    Status s = algo.SetOption(name, value);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << name;
    EXPECT_NE(s.message().find(name), std::string::npos)
        << "message must name the option: " << s.message();
    EXPECT_NE(s.message().find(value), std::string::npos)
        << "message must carry the offending value: " << s.message();
  }
  ConditionalAlgorithm conditional;
  Status s = conditional.SetOption("limit", "0");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("limit"), std::string::npos);
}

// ------------------------------------------------------------- registry

TEST(AlgorithmRegistryTest, DefaultHasAllSixEngines) {
  AlgorithmRegistry& registry = AlgorithmRegistry::Default();
  for (const char* name : {"fastod", "tane", "order", "brute-force",
                           "approximate", "conditional"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto algo = registry.Create(name);
    ASSERT_TRUE(algo.ok()) << name;
    EXPECT_EQ((*algo)->name(), name);
  }
}

TEST(AlgorithmRegistryTest, UnknownNameListsRegistered) {
  auto algo = AlgorithmRegistry::Default().Create("magic");
  ASSERT_FALSE(algo.ok());
  EXPECT_EQ(algo.status().code(), StatusCode::kNotFound);
  EXPECT_NE(algo.status().message().find("magic"), std::string::npos);
  EXPECT_NE(algo.status().message().find("fastod"), std::string::npos);
  EXPECT_NE(algo.status().message().find("conditional"), std::string::npos);
}

TEST(AlgorithmRegistryTest, DescribeAlgorithmsCoversEveryEngine) {
  std::string usage = AlgorithmRegistry::Default().DescribeAlgorithms();
  EXPECT_NE(usage.find("fastod —"), std::string::npos);
  EXPECT_NE(usage.find("--swap-method"), std::string::npos);
  EXPECT_NE(usage.find("brute-force —"), std::string::npos);
  EXPECT_NE(usage.find("--min-support"), std::string::npos);
}

// ------------------------------------------------------------ lifecycle

TEST(AlgorithmLifecycleTest, ExecuteWithoutDataFails) {
  FastodAlgorithm algo;
  Status s = algo.Execute();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(algo.executed());
}

TEST(AlgorithmLifecycleTest, ExecuteAccountsWallClock) {
  FastodAlgorithm algo;
  ASSERT_TRUE(algo.LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE(algo.Execute().ok());
  EXPECT_TRUE(algo.executed());
  EXPECT_GE(algo.load_seconds(), 0.0);
  EXPECT_GE(algo.execute_seconds(), 0.0);
}

TEST(AlgorithmLifecycleTest, ReExecuteAfterReconfigure) {
  FastodAlgorithm algo;
  ASSERT_TRUE(algo.LoadData(EmployeeTaxTable()).ok());
  ASSERT_TRUE(algo.Execute().ok());
  int64_t exact = algo.result().NumOds();
  ASSERT_TRUE(algo.SetOption("max-level", "1").ok());
  ASSERT_TRUE(algo.Execute().ok());
  EXPECT_LT(algo.result().NumOds(), exact);
}

TEST(AlgorithmLifecycleTest, BruteForceRejectsWideRelations) {
  BruteForceAlgorithm algo;
  ASSERT_TRUE(algo.LoadData(GenFlightLike(20, 20, 7)).ok());
  Status s = algo.Execute();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("16"), std::string::npos);
}

// ------------------------------------- cross-engine equivalence (legacy)

class ApiEquivalenceTest : public ::testing::Test {
 protected:
  ApiEquivalenceTest() : table_(EmployeeTaxTable()) {
    auto rel = EncodedRelation::FromTable(table_);
    EXPECT_TRUE(rel.ok());
    rel_ = std::move(rel).value();
  }

  std::unique_ptr<Algorithm> Create(const std::string& name) {
    auto algo = AlgorithmRegistry::Default().Create(name);
    EXPECT_TRUE(algo.ok()) << name;
    EXPECT_TRUE((*algo)->LoadData(table_).ok()) << name;
    EXPECT_TRUE((*algo)->Execute().ok()) << name;
    return std::move(*algo);
  }

  Table table_;
  std::optional<EncodedRelation> rel_;
};

TEST_F(ApiEquivalenceTest, FastodMatchesLegacy) {
  std::unique_ptr<Algorithm> algo = Create("fastod");
  const auto& api = static_cast<FastodAlgorithm&>(*algo).result();
  FastodResult legacy = Fastod().Discover(*rel_);
  EXPECT_EQ(api.constancy_ods, legacy.constancy_ods);
  EXPECT_EQ(api.compatibility_ods, legacy.compatibility_ods);
  EXPECT_EQ(api.num_constancy, legacy.num_constancy);
  EXPECT_EQ(api.num_compatibility, legacy.num_compatibility);
}

TEST_F(ApiEquivalenceTest, TaneMatchesLegacy) {
  std::unique_ptr<Algorithm> algo = Create("tane");
  const auto& api = static_cast<TaneAlgorithm&>(*algo).result();
  TaneResult legacy = Tane().Discover(*rel_);
  EXPECT_EQ(api.fds, legacy.fds);
  EXPECT_EQ(api.num_fds, legacy.num_fds);
}

TEST_F(ApiEquivalenceTest, OrderMatchesLegacy) {
  // Bounded: ORDER's list lattice is factorial in the 8 employee columns.
  auto algo = AlgorithmRegistry::Default().Create("order");
  ASSERT_TRUE(algo.ok());
  ASSERT_TRUE((*algo)->SetOption("max-level", "3").ok());
  ASSERT_TRUE((*algo)->LoadData(table_).ok());
  ASSERT_TRUE((*algo)->Execute().ok());
  const auto& api = static_cast<OrderAlgorithm&>(**algo).result();
  OrderOptions legacy_options;
  legacy_options.max_level = 3;
  OrderResult legacy = OrderBaseline(legacy_options).Discover(*rel_);
  EXPECT_EQ(api.ods, legacy.ods);
  EXPECT_EQ(api.candidates_checked, legacy.candidates_checked);
}

TEST_F(ApiEquivalenceTest, BruteForceMatchesLegacy) {
  std::unique_ptr<Algorithm> algo = Create("brute-force");
  const auto& api = static_cast<BruteForceAlgorithm&>(*algo).result();
  BruteForceDiscoveryResult legacy = BruteForceDiscoverOds(*rel_);
  EXPECT_EQ(api.constancy_ods, legacy.constancy_ods);
  EXPECT_EQ(api.compatibility_ods, legacy.compatibility_ods);
  EXPECT_EQ(api.all_valid_constancy, legacy.all_valid_constancy);
  EXPECT_EQ(api.all_valid_compatibility, legacy.all_valid_compatibility);
}

TEST_F(ApiEquivalenceTest, ApproximateMatchesLegacyAtSameThreshold) {
  auto algo = AlgorithmRegistry::Default().Create("approximate");
  ASSERT_TRUE(algo.ok());
  ASSERT_TRUE((*algo)->SetOption("max-error", "0.2").ok());
  ASSERT_TRUE((*algo)->LoadData(table_).ok());
  ASSERT_TRUE((*algo)->Execute().ok());
  const auto& api = static_cast<FastodAlgorithm&>(**algo).result();

  FastodOptions legacy_options;
  legacy_options.max_error = 0.2;
  FastodResult legacy = Fastod(legacy_options).Discover(*rel_);
  EXPECT_EQ(api.constancy_ods, legacy.constancy_ods);
  EXPECT_EQ(api.compatibility_ods, legacy.compatibility_ods);
}

TEST_F(ApiEquivalenceTest, ConditionalMatchesLegacy) {
  std::unique_ptr<Algorithm> algo = Create("conditional");
  const auto& api = static_cast<ConditionalAlgorithm&>(*algo).result();
  ConditionalOdFinder finder(&*rel_);
  std::vector<ConditionalOd> legacy = finder.DiscoverConditional();
  ASSERT_EQ(api.size(), legacy.size());
  for (size_t i = 0; i < api.size(); ++i) {
    EXPECT_EQ(api[i].condition_attribute, legacy[i].condition_attribute);
    EXPECT_EQ(api[i].binding_ranks, legacy[i].binding_ranks);
    EXPECT_DOUBLE_EQ(api[i].support, legacy[i].support);
  }
}

TEST_F(ApiEquivalenceTest, JsonNamesTheAlgorithm) {
  for (const char* name : {"fastod", "tane", "order", "brute-force",
                           "approximate", "conditional"}) {
    auto created = AlgorithmRegistry::Default().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    std::unique_ptr<Algorithm> algo = std::move(*created);
    if (algo->FindOption("max-level") != nullptr) {
      ASSERT_TRUE(algo->SetOption("max-level", "2").ok());
    }
    ASSERT_TRUE(algo->LoadData(table_).ok()) << name;
    ASSERT_TRUE(algo->Execute().ok()) << name;
    std::string json = algo->ResultJson();
    EXPECT_NE(json.find("\"algorithm\": \"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
}

// ------------------------------------------------------------ streaming

TEST_F(ApiEquivalenceTest, FastodSinkTeesAndStillMaterializes) {
  // Streaming tees by default: the sink receives the legacy sequence AND
  // the result vectors fill (so a streamed session can still render its
  // full report); emit-ods=false opts back into count-only memory use.
  CollectingOdSink sink;
  FastodAlgorithm algo;
  algo.SetSink(&sink);
  ASSERT_TRUE(algo.LoadData(table_).ok());
  ASSERT_TRUE(algo.Execute().ok());
  FastodResult legacy = Fastod().Discover(*rel_);
  EXPECT_EQ(sink.constancy_ods(), legacy.constancy_ods);
  EXPECT_EQ(sink.compatibility_ods(), legacy.compatibility_ods);
  EXPECT_EQ(algo.result().constancy_ods, legacy.constancy_ods);
  EXPECT_EQ(algo.result().compatibility_ods, legacy.compatibility_ods);
  EXPECT_EQ(algo.result().num_constancy, legacy.num_constancy);
  EXPECT_EQ(algo.result().num_compatibility, legacy.num_compatibility);
}

TEST_F(ApiEquivalenceTest, FastodSinkStreamsNoPruningWithoutEmitOds) {
  // The Exp-6 shape: no-pruning ablation counts every valid OD. Streaming
  // with emit-ods=false must deliver the same totals with empty vectors.
  CountingOdSink sink;
  FastodAlgorithm algo;
  algo.SetSink(&sink);
  ASSERT_TRUE(algo.SetOption("minimality-pruning", "false").ok());
  ASSERT_TRUE(algo.SetOption("emit-ods", "false").ok());
  ASSERT_TRUE(algo.LoadData(table_).ok());
  ASSERT_TRUE(algo.Execute().ok());
  FastodOptions legacy_options;
  legacy_options.minimality_pruning = false;
  legacy_options.emit_ods = false;
  FastodResult legacy = Fastod(legacy_options).Discover(*rel_);
  EXPECT_EQ(sink.num_constancy(), legacy.num_constancy);
  EXPECT_EQ(sink.num_compatibility(), legacy.num_compatibility);
  EXPECT_GT(sink.Total(), 0);
  EXPECT_TRUE(algo.result().constancy_ods.empty());
}

TEST_F(ApiEquivalenceTest, TaneSinkStreamsFds) {
  CollectingOdSink sink;
  TaneAlgorithm algo;
  algo.SetSink(&sink);
  ASSERT_TRUE(algo.LoadData(table_).ok());
  ASSERT_TRUE(algo.Execute().ok());
  TaneResult legacy = Tane().Discover(*rel_);
  EXPECT_EQ(sink.constancy_ods(), legacy.fds);
  EXPECT_EQ(algo.result().fds, legacy.fds);  // tees, like FASTOD
  EXPECT_EQ(algo.result().num_fds, legacy.num_fds);

  // Count-only mode drops the vector but keeps streaming and counts.
  CollectingOdSink count_only_sink;
  TaneAlgorithm count_only;
  count_only.SetSink(&count_only_sink);
  ASSERT_TRUE(count_only.SetOption("emit-fds", "false").ok());
  ASSERT_TRUE(count_only.LoadData(table_).ok());
  ASSERT_TRUE(count_only.Execute().ok());
  EXPECT_TRUE(count_only.result().fds.empty());
  EXPECT_EQ(count_only.result().num_fds, legacy.num_fds);
  EXPECT_EQ(count_only_sink.constancy_ods(), legacy.fds);
}

TEST_F(ApiEquivalenceTest, OrderSinkTeesListOds) {
  CollectingOdSink sink;
  OrderAlgorithm algo;
  algo.SetSink(&sink);
  ASSERT_TRUE(algo.SetOption("max-level", "3").ok());
  ASSERT_TRUE(algo.LoadData(table_).ok());
  ASSERT_TRUE(algo.Execute().ok());
  // ORDER tees: vector retained (used for implication checks) AND
  // streamed.
  EXPECT_EQ(sink.list_ods(), algo.result().ods);
  EXPECT_FALSE(sink.list_ods().empty());
}

// --------------------------------------------------------- cancellation

TEST_F(ApiEquivalenceTest, PreCancelledControlStopsEarly) {
  ExecutionControl control;
  control.RequestCancel();
  FastodAlgorithm algo;
  algo.SetControl(&control);
  ASSERT_TRUE(algo.LoadData(table_).ok());
  ASSERT_TRUE(algo.Execute().ok());  // cancellation is not an error
  EXPECT_TRUE(algo.result().cancelled);
  // At most the first level ran, and progress must not read as complete.
  EXPECT_LE(algo.result().levels_processed, 1);
  EXPECT_LT(control.Progress(), 1.0);
}

TEST_F(ApiEquivalenceTest, ControlReportsCompletion) {
  ExecutionControl control;
  TaneAlgorithm algo;
  algo.SetControl(&control);
  ASSERT_TRUE(algo.LoadData(table_).ok());
  ASSERT_TRUE(algo.Execute().ok());
  EXPECT_FALSE(algo.result().cancelled);
  EXPECT_DOUBLE_EQ(control.Progress(), 1.0);
}

// --------------------------------------------------- ChannelOdSink

TEST(ChannelOdSinkTest, DeliversEventsInOrderAcrossThreads) {
  ChannelOdSink channel(8);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      channel.OnConstancy(ConstancyOd{AttributeSet(), i % 7});
    }
    channel.Close();
  });
  int popped = 0;
  OdEvent event;
  while (true) {
    if (!channel.Pop(&event, std::chrono::milliseconds(100))) {
      if (channel.closed()) break;
      continue;
    }
    ASSERT_TRUE(std::holds_alternative<ConstancyOd>(event));
    EXPECT_EQ(std::get<ConstancyOd>(event).attribute, popped % 7);
    ++popped;
  }
  producer.join();
  EXPECT_EQ(popped, 100);
  EXPECT_EQ(channel.pushed(), 100);
  EXPECT_EQ(channel.dropped(), 0);
}

TEST(ChannelOdSinkTest, BackpressureBlocksProducerUntilPopped) {
  ChannelOdSink channel(2);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 5; ++i) {
      channel.OnConstancy(ConstancyOd{AttributeSet(), i});
      produced.fetch_add(1);
    }
  });
  // Capacity 2: the producer cannot run ahead of the consumer by more
  // than the buffer, however long we stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(produced.load(), 3);  // 2 buffered + 1 in flight
  OdEvent event;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.Pop(&event, std::chrono::milliseconds(1000)));
  }
  producer.join();
  EXPECT_EQ(produced.load(), 5);
  EXPECT_FALSE(channel.Pop(&event, std::chrono::milliseconds(1)));
}

TEST(ChannelOdSinkTest, CloseUnblocksProducerAndDropsButKeepsQueued) {
  ChannelOdSink channel(1);
  channel.OnConstancy(ConstancyOd{AttributeSet(), 1});  // fills the buffer
  std::thread producer([&] {
    channel.OnConstancy(ConstancyOd{AttributeSet(), 2});  // blocks
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel.Close();  // unblocks the producer; its event is dropped
  producer.join();
  EXPECT_EQ(channel.dropped(), 1);
  // Drain-then-stop: the queued event is still deliverable after Close.
  OdEvent event;
  ASSERT_TRUE(channel.Pop(&event, std::chrono::milliseconds(10)));
  EXPECT_EQ(std::get<ConstancyOd>(event).attribute, 1);
  EXPECT_FALSE(channel.Pop(&event, std::chrono::milliseconds(10)));
  EXPECT_EQ(channel.pushed(), 1);
}

TEST(ChannelOdSinkTest, CarriesEveryOdShape) {
  ChannelOdSink channel(8);
  channel.OnConstancy(ConstancyOd{AttributeSet(), 0});
  channel.OnCompatibility(CompatibilityOd(AttributeSet(), 0, 1));
  channel.OnBidirectional(BidiCompatibilityOd(AttributeSet(), 0, 1));
  channel.OnListOd(ListOd{{0}, {1}});
  channel.OnConditional(ConditionalOd{});
  OdEvent event;
  ASSERT_TRUE(channel.Pop(&event));
  EXPECT_TRUE(std::holds_alternative<ConstancyOd>(event));
  ASSERT_TRUE(channel.Pop(&event));
  EXPECT_TRUE(std::holds_alternative<CompatibilityOd>(event));
  ASSERT_TRUE(channel.Pop(&event));
  EXPECT_TRUE(std::holds_alternative<BidiCompatibilityOd>(event));
  ASSERT_TRUE(channel.Pop(&event));
  EXPECT_TRUE(std::holds_alternative<ListOd>(event));
  ASSERT_TRUE(channel.Pop(&event));
  EXPECT_TRUE(std::holds_alternative<ConditionalOd>(event));
}

// A live engine streaming through the channel produces exactly the
// CollectingOdSink sequence — the primitive the server's /stream rides.
TEST(ChannelOdSinkTest, EngineStreamMatchesCollectingSink) {
  Table table = EmployeeTaxTable();
  CollectingOdSink expected;
  FastodAlgorithm baseline;
  baseline.SetSink(&expected);
  ASSERT_TRUE(baseline.LoadData(table).ok());
  ASSERT_TRUE(baseline.Execute().ok());

  ChannelOdSink channel(4);  // smaller than the result set: exercises
                             // backpressure against a live engine
  FastodAlgorithm streamed;
  streamed.SetSink(&channel);
  ASSERT_TRUE(streamed.LoadData(table).ok());
  std::thread runner([&] {
    ASSERT_TRUE(streamed.Execute().ok());
    channel.Close();
  });
  CollectingOdSink replayed;
  OdEvent event;
  while (true) {
    if (!channel.Pop(&event, std::chrono::milliseconds(100))) {
      if (channel.closed()) break;
      continue;
    }
    if (std::holds_alternative<ConstancyOd>(event)) {
      replayed.OnConstancy(std::get<ConstancyOd>(event));
    } else if (std::holds_alternative<CompatibilityOd>(event)) {
      replayed.OnCompatibility(std::get<CompatibilityOd>(event));
    } else if (std::holds_alternative<BidiCompatibilityOd>(event)) {
      replayed.OnBidirectional(std::get<BidiCompatibilityOd>(event));
    }
  }
  runner.join();
  EXPECT_EQ(replayed.constancy_ods(), expected.constancy_ods());
  EXPECT_EQ(replayed.compatibility_ods(), expected.compatibility_ods());
  EXPECT_EQ(replayed.TotalOds(), expected.TotalOds());
}

}  // namespace
}  // namespace fastod
