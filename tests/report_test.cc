#include <gtest/gtest.h>

#include "algo/fastod.h"
#include "algo/tane.h"
#include "data/csv.h"
#include "data/encode.h"
#include "report/report.h"

namespace fastod {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() {
    auto t = ReadCsvString("x,y\n1,10\n2,20\n3,30\n");
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).value();
    auto rel = EncodedRelation::FromTable(table_);
    EXPECT_TRUE(rel.ok());
    rel_ = std::move(rel).value();
  }

  RelationInfo Info() {
    return RelationInfo{rel_.NumRows(), &rel_.schema()};
  }

  Table table_;
  EncodedRelation rel_;
};

TEST_F(ReportTest, FastodJsonHasAllSections) {
  FastodResult r = Fastod().Discover(rel_);
  std::string json = FastodResultToJson(r, Info());
  EXPECT_NE(json.find("\"algorithm\": \"fastod\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"constancy_ods\""), std::string::npos);
  EXPECT_NE(json.find("\"compatibility_ods\""), std::string::npos);
  EXPECT_NE(json.find("\"bidirectional_ods\""), std::string::npos);
  // x ~ y holds at the top level on this data.
  EXPECT_NE(json.find("\"a\": \"x\", \"b\": \"y\""), std::string::npos);
}

TEST_F(ReportTest, FastodTextSummaryLine) {
  FastodResult r = Fastod().Discover(rel_);
  std::string text = FastodResultToText(r, Info());
  EXPECT_NE(text.find("FASTOD:"), std::string::npos);
  EXPECT_NE(text.find("x ~ y"), std::string::npos);
}

TEST_F(ReportTest, TaneJsonAndText) {
  TaneResult r = Tane().Discover(rel_);
  std::string json = TaneResultToJson(r, Info());
  EXPECT_NE(json.find("\"algorithm\": \"tane\""), std::string::npos);
  EXPECT_NE(json.find("\"fds\""), std::string::npos);
  std::string text = TaneResultToText(r, Info());
  EXPECT_NE(text.find("TANE:"), std::string::npos);
}

TEST_F(ReportTest, OrderJsonAndText) {
  OrderResult r = OrderBaseline().Discover(rel_);
  std::string json = OrderResultToJson(r, Info());
  EXPECT_NE(json.find("\"algorithm\": \"order\""), std::string::npos);
  EXPECT_NE(json.find("\"ods\""), std::string::npos);
  std::string text = OrderResultToText(r, Info());
  EXPECT_NE(text.find("ORDER:"), std::string::npos);
  EXPECT_NE(text.find("orders"), std::string::npos);
}

TEST_F(ReportTest, JsonIsBalanced) {
  // Cheap structural check: equal counts of braces/brackets and an even
  // number of unescaped quotes.
  FastodResult r = Fastod().Discover(rel_);
  std::string json = FastodResultToJson(r, Info());
  int braces = 0;
  int brackets = 0;
  int quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    bool escaped = i > 0 && json[i - 1] == '\\';
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (c == '"' && !escaped) ++quotes;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST_F(ReportTest, TimedOutFlagRendered) {
  FastodResult r;
  r.timed_out = true;
  std::string json = FastodResultToJson(r, Info());
  EXPECT_NE(json.find("\"timed_out\": true"), std::string::npos);
  std::string text = FastodResultToText(r, Info());
  EXPECT_NE(text.find("[TIMED OUT]"), std::string::npos);
}

}  // namespace
}  // namespace fastod
