#!/usr/bin/env python3
"""Example client for the fastod HTTP discovery server (stdlib only).

Start a server, then run this script against it:

    ./build/fastod serve --port=8080 &
    python3 examples/stream_client.py 127.0.0.1:8080 [data.csv]

It exercises the whole session lifecycle:
  1. GET  /v1/algorithms          — list engines and their options
  2. POST /v1/sessions            — submit a discovery with "stream": true
  3. GET  /v1/sessions/{id}/stream — print each OD line as it arrives
     (chunked transfer; lines appear while the session runs)
  4. GET  /v1/sessions/{id}        — final state + progress
  5. GET  /v1/sessions/{id}/result — full report; the script verifies the
     streamed OD set matches it exactly and exits non-zero otherwise.

Without a CSV argument a small built-in employee/tax table is used.
"""
import http.client
import json
import random
import sys
import time

DEMO_CSV = (
    "month,quarter,salary,tax_rate,tax_group\n"
    "1,1,1000,10,A\n"
    "2,1,1500,15,A\n"
    "3,1,2000,20,B\n"
    "4,2,2500,25,B\n"
    "5,2,3000,30,C\n"
    "6,2,3500,35,C\n"
)


class FastodUnavailable(RuntimeError):
    """The server kept refusing (429 quota/capacity or 503 draining)
    after every retry attempt was exhausted."""


def request(conn, method, path, body=None, attempts=5, base_delay=0.25,
            max_delay=5.0):
    """One JSON request with retry on transient refusals.

    A 429 or 503 means "not now, retry": the server attaches Retry-After
    with its own hint, which we honor when present, else fall back to
    capped exponential backoff with full jitter. Anything else >= 400 is
    a real error and aborts.
    """
    headers = {"Content-Type": "application/json"} if body else {}
    for attempt in range(attempts):
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        payload = response.read().decode()
        if response.status in (429, 503):
            if attempt + 1 == attempts:
                raise FastodUnavailable(
                    f"{method} {path} -> {response.status} after "
                    f"{attempts} attempts: {payload}")
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                # Honor the server's hint, with a little jitter on top so
                # synchronized clients do not stampede back together.
                delay = float(retry_after) * (1.0 + 0.25 * random.random())
            else:
                backoff = min(max_delay, base_delay * (2 ** attempt))
                delay = backoff * random.random()
            time.sleep(delay)
            continue
        if response.status >= 400:
            raise SystemExit(
                f"{method} {path} -> {response.status}: {payload}")
        return json.loads(payload)
    raise AssertionError("unreachable")


def main():
    address = sys.argv[1] if len(sys.argv) > 1 else "127.0.0.1:8080"
    csv = open(sys.argv[2]).read() if len(sys.argv) > 2 else DEMO_CSV
    host, _, port = address.partition(":")

    conn = http.client.HTTPConnection(host, int(port or 8080), timeout=60)

    algorithms = request(conn, "GET", "/v1/algorithms")["algorithms"]
    print("algorithms:", ", ".join(a["name"] for a in algorithms))

    session = request(
        conn,
        "POST",
        "/v1/sessions",
        json.dumps({"algorithm": "fastod", "csv": csv, "stream": True}),
    )
    sid = session["id"]
    print(f"session {sid}: {session['state']}")

    # Stream: one JSON line per discovered OD, while the session runs.
    # http.client decodes the chunked transfer transparently.
    stream_conn = http.client.HTTPConnection(host, int(port or 8080),
                                             timeout=60)
    stream_conn.request("GET", f"/v1/sessions/{sid}/stream")
    stream = stream_conn.getresponse()
    streamed = []
    for raw in stream:
        for line in raw.splitlines():
            event = json.loads(line)
            if event["type"] == "end":
                print(f"stream closed: state={event['state']} "
                      f"streamed={event['streamed']}")
            else:
                streamed.append(event)
                print("  OD:", json.dumps(event))
    stream_conn.close()

    info = request(conn, "GET", f"/v1/sessions/{sid}")
    print(f"final state: {info['state']} progress={info['progress']}")

    # The post-hoc report must name exactly the streamed set.
    report = request(conn, "GET", f"/v1/sessions/{sid}/result")
    expected = []
    for od in report.get("constancy_ods", []):
        expected.append({"type": "constancy", "context": od["context"],
                         "attribute": od["attribute"]})
    for od in report.get("compatibility_ods", []):
        expected.append({"type": "compatibility", "context": od["context"],
                         "a": od["a"], "b": od["b"]})
    for od in report.get("bidirectional_ods", []):
        expected.append({"type": "bidirectional", "context": od["context"],
                         "a": od["a"], "b": od["b"],
                         "polarity": od["polarity"]})
    key = lambda od: json.dumps(od, sort_keys=True)  # noqa: E731
    if sorted(map(key, streamed)) != sorted(map(key, expected)):
        raise SystemExit(
            f"MISMATCH: streamed {len(streamed)} ODs but /result names "
            f"{len(expected)}")
    print(f"OK: streamed set == /result set ({len(streamed)} ODs)")
    conn.close()


if __name__ == "__main__":
    main()
