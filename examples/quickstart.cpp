// Quickstart: discover order dependencies on the paper's running example
// (Table 1 — employee salaries and taxes), print them, and interpret the
// result through the Theorem 5 mapping.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "fastod/fastod.h"

int main() {
  using namespace fastod;

  // Table 1 of the paper: tax is a percentage of salary; groups, subgroups
  // and bins are salary bands.
  Table table = EmployeeTaxTable();
  std::printf("Input relation (Table 1 of the paper):\n%s\n",
              table.ToString().c_str());

  // Discover the complete, minimal set of set-based canonical ODs through
  // the unified Algorithm API: every engine ("fastod", "tane", "order",
  // "brute-force", "approximate", "conditional") is created by name from
  // the registry and configured through its typed option registry.
  auto discovery = AlgorithmRegistry::Default().Create("fastod");
  if (!discovery.ok()) return 1;
  if (Status s = (*discovery)->LoadData(table); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = (*discovery)->Execute(); !s.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const FastodResult& result =
      static_cast<const FastodAlgorithm&>(**discovery).result();

  std::printf("Discovered %s minimal canonical ODs "
              "(#constancy/FDs + #order-compatibility/OCDs) in %.3fs\n\n",
              result.CountsToString().c_str(),
              (*discovery)->execute_seconds());

  std::printf("Constancy ODs  X: [] -> A   (A constant per X-class; FD X->A):\n");
  for (const ConstancyOd& od : result.constancy_ods) {
    std::printf("  %s\n", od.ToString(table.schema()).c_str());
  }
  std::printf("\nOrder compatibility ODs  X: A ~ B   (no swaps per X-class):\n");
  for (const CompatibilityOd& od : result.compatibility_ods) {
    std::printf("  %s\n", od.ToString(table.schema()).c_str());
  }

  // Interpret: the paper's Example 1 claims [salary] orders [tax]. By
  // Theorem 5 that list-based OD decomposes into canonical pieces; verify
  // each against the data.
  auto encoded = EncodedRelation::FromTable(table);
  OdValidator validator(&*encoded);
  int sal = *table.schema().IndexOf("sal");
  int tax = *table.schema().IndexOf("tax");
  ListOd salary_orders_tax{{sal}, {tax}};
  std::printf("\nChecking the list OD  %s  via its canonical image:\n",
              salary_orders_tax.ToString(table.schema()).c_str());
  bool all_hold = true;
  for (const CanonicalOd& piece : MapListOdToCanonical(salary_orders_tax)) {
    bool holds = validator.Holds(piece);
    all_hold = all_hold && holds;
    std::printf("  %-28s %s\n",
                CanonicalOdToString(piece, table.schema()).c_str(),
                holds ? "holds" : "VIOLATED");
  }
  std::printf("=> [sal] orders [tax]: %s (direct check: %s)\n",
              all_hold ? "holds" : "violated",
              validator.Holds(salary_orders_tax) ? "holds" : "violated");

  // And a negative: salary ~ subgroup has a swap (Example 3).
  int subg = *table.schema().IndexOf("subg");
  ViolationScanner scanner(&*encoded);
  auto swaps = scanner.ScanCompatibility(AttributeSet::Empty(), sal, subg);
  std::printf("\n[sal] ~ [subg] is violated by %zu swap pair(s), e.g. %s\n",
              swaps.size(),
              swaps.empty() ? "-" : swaps[0].ToString().c_str());
  return 0;
}
