// Conditional OD discovery (the paper's future-work item 3): business
// rules that hold on *portions* of a relation. A flight-fare table where
// "price increases with distance" holds per carrier class but not
// globally — exactly the kind of rule unconditional discovery misses and
// conditional refinement recovers.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "fastod/fastod.h"

int main() {
  using namespace fastod;

  // Synthesize fares: budget carriers price ~linearly with distance;
  // "premium" carriers price by demand (order-breaking); one legacy
  // carrier uses distance bands (monotone but coarse).
  Schema schema({{"carrier", DataType::kString},
                 {"route_id", DataType::kInt},
                 {"distance", DataType::kInt},
                 {"fare", DataType::kInt}});
  TableBuilder builder(schema);
  Rng rng(2026);
  const char* carriers[] = {"budget_air", "premium_air", "legacy_air"};
  for (int i = 0; i < 1200; ++i) {
    int carrier = static_cast<int>(rng.Uniform(3));
    int64_t distance = 100 + rng.Uniform(4000);
    int64_t fare;
    switch (carrier) {
      case 0:  // budget: strictly distance-driven
        fare = 40 + distance / 10;
        break;
      case 1:  // premium: demand-driven, uncorrelated with distance
        fare = 150 + rng.Uniform(900);
        break;
      default:  // legacy: banded by distance (monotone, with ties)
        fare = 100 + (distance / 500) * 75;
    }
    builder.AddRowUnchecked({Value::Str(carriers[carrier]), Value::Int(i),
                             Value::Int(distance), Value::Int(fare)});
  }
  Table table = builder.Build();
  auto rel = EncodedRelation::FromTable(table);
  if (!rel.ok()) return 1;

  int distance_col = *schema.IndexOf("distance");
  int fare_col = *schema.IndexOf("fare");
  OdValidator validator(&*rel);
  std::printf("Global check: {} : distance ~ fare   %s\n\n",
              validator.IsOrderCompatible(AttributeSet::Empty(),
                                          distance_col, fare_col)
                  ? "holds"
                  : "VIOLATED (premium carrier breaks it)");

  ConditionalOdFinder finder(&*rel);
  ConditionalOdOptions options;
  options.min_support = 0.2;
  std::printf("Conditional refinement on carrier:\n");
  auto refined =
      finder.Refine(CompatibilityOd(AttributeSet::Empty(), distance_col,
                                    fare_col),
                    *schema.IndexOf("carrier"), options);
  if (refined.has_value()) {
    // Render binding ranks as carrier names via witness rows.
    std::printf("  distance ~ fare holds for carriers: ");
    bool first = true;
    for (int32_t rank : refined->binding_ranks) {
      for (int64_t r = 0; r < table.NumRows(); ++r) {
        if (rel->rank(r, 0) == rank) {
          std::printf("%s%s", first ? "" : ", ",
                      table.at(r, 0).AsString().c_str());
          first = false;
          break;
        }
      }
    }
    std::printf("   (support %.0f%%)\n\n", refined->support * 100.0);
  }

  std::printf("Full conditional scan (support >= 20%%):\n");
  for (const ConditionalOd& c : finder.DiscoverConditional(options)) {
    std::printf("  %s\n", c.ToString(schema).c_str());
  }
  std::printf(
      "\nThe premium carrier's demand pricing hides the rule globally;\n"
      "conditioning on carrier exposes where the business rule really\n"
      "applies — and where violations would be actual data errors.\n");
  return 0;
}
