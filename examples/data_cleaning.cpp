// Data cleaning with ODs: profile a clean sample, then use the discovered
// dependencies as integrity constraints to locate errors injected into a
// dirty copy (Section 1.1: "their violations point out possible data
// errors").
#include <cstdio>
#include <algorithm>
#include <vector>

#include "fastod/fastod.h"

int main() {
  using namespace fastod;

  // A clean flight-like table: year constant, date hierarchy, route ->
  // distance -> duration chain (duration is column 10, so ask for 12).
  const int64_t kRows = 2000;
  Table clean = GenFlightLike(kRows, 12, 7);

  // Step 1: profile the clean data.
  Result<FastodResult> profile_result = Fastod().Discover(clean);
  if (!profile_result.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 profile_result.status().ToString().c_str());
    return 1;
  }
  const FastodResult& profile = *profile_result;
  std::printf("Profiled clean data: %s minimal ODs\n",
              profile.CountsToString().c_str());

  // Step 2: corrupt three cells (simulating entry errors).
  const Schema& schema = clean.schema();
  int duration = *schema.IndexOf("duration");
  int quarter = *schema.IndexOf("quarter");
  struct Injection {
    int64_t row;
    int col;
    Value bad;
  };
  std::vector<Injection> injections = {
      {137, duration, Value::Int(9999)},   // absurd duration for the route
      {1042, quarter, Value::Int(1)},      // quarter inconsistent w/ month
      {1763, duration, Value::Int(1)},     // impossibly short flight
  };
  TableBuilder builder(schema);
  for (int64_t r = 0; r < clean.NumRows(); ++r) {
    std::vector<Value> row;
    for (int c = 0; c < clean.NumColumns(); ++c) {
      Value v = clean.at(r, c);
      for (const Injection& inj : injections) {
        if (inj.row == r && inj.col == c) v = inj.bad;
      }
      row.push_back(std::move(v));
    }
    builder.AddRowUnchecked(std::move(row));
  }
  Table dirty = builder.Build();
  std::printf("Injected %zu errors into rows", injections.size());
  for (const Injection& inj : injections) {
    std::printf(" %lld", static_cast<long long>(inj.row));
  }
  std::printf("\n\n");

  // Step 3: re-validate the profiled ODs on the dirty data and accumulate
  // per-tuple violation counts.
  auto encoded = EncodedRelation::FromTable(dirty);
  if (!encoded.ok()) return 1;
  ViolationScanner scanner(&*encoded);
  std::vector<int64_t> counts(dirty.NumRows(), 0);
  int violated_ods = 0;
  ScanOptions scan_options;
  scan_options.max_violations = 10000;
  auto accumulate = [&](const CanonicalOd& od) {
    auto violations = scanner.Scan(od, scan_options);
    if (violations.empty()) return;
    ++violated_ods;
    for (const Violation& v : violations) {
      ++counts[v.tuple_s];
      ++counts[v.tuple_t];
    }
  };
  for (const ConstancyOd& od : profile.constancy_ods) {
    accumulate(CanonicalOd(od));
  }
  for (const CompatibilityOd& od : profile.compatibility_ods) {
    accumulate(CanonicalOd(od));
  }
  std::printf("%d of %lld profiled ODs are violated on the dirty copy.\n",
              violated_ods, static_cast<long long>(profile.NumOds()));

  // Step 4: rank tuples by dirtiness.
  std::vector<int64_t> order(dirty.NumRows());
  for (int64_t i = 0; i < dirty.NumRows(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&counts](int64_t a, int64_t b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  std::printf("\nTop suspect tuples (violations -> row):\n");
  for (int i = 0; i < 8 && counts[order[i]] > 0; ++i) {
    bool injected = false;
    for (const Injection& inj : injections) {
      if (inj.row == order[i]) injected = true;
    }
    std::printf("  row %-6lld %-6lld violations %s\n",
                static_cast<long long>(order[i]),
                static_cast<long long>(counts[order[i]]),
                injected ? "<== injected error" : "");
  }
  return 0;
}
