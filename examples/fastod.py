#!/usr/bin/env python3
"""In-process Python bindings for the fastod order-dependency library.

A single-file ctypes wrapper over the stable C ABI (src/capi/fastod_c.h)
— no build step, no third-party dependencies. Point FASTOD_LIB at
libfastod_c.so (or run from a build tree, which is searched by default)
and discover:

    import fastod

    with fastod.Session("fastod") as session:
        session.set_option("threads", "2")
        session.load_csv("flight.csv")
        report = session.execute()          # parsed JSON report
        print(report["stats"])

Load-once, discover-many: a Dataset is parsed, typed, encoded, and
partition-seeded once, then any number of sessions bind it by reference
(including concurrently):

    with fastod.Dataset("flight.csv") as dataset:
        for algorithm in ("fastod", "tane"):
            with fastod.Session(algorithm) as session:
                session.use_dataset(dataset)
                print(algorithm, session.execute()["stats"])

Run as a script, this file is a self-checking smoke test (used by ctest
and CI): it generates a small CSV, runs it through csv-bound and
dataset-bound sessions across two algorithms, and verifies the dataset
path reproduces the csv path bit-for-bit.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import json
import os
import random
import sys
import tempfile
import time

# ---------------------------------------------------------------------------
# Library loading
# ---------------------------------------------------------------------------

_SEARCH_PATHS = (
    os.environ.get("FASTOD_LIB"),
    "libfastod_c.so",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "build",
                 "libfastod_c.so"),
    "build/libfastod_c.so",
    ctypes.util.find_library("fastod_c"),
)


def _load_library() -> ctypes.CDLL:
    errors = []
    for candidate in _SEARCH_PATHS:
        if not candidate:
            continue
        try:
            return ctypes.CDLL(candidate)
        except OSError as error:
            errors.append(f"{candidate}: {error}")
    raise OSError(
        "cannot load libfastod_c.so; set FASTOD_LIB to its path. Tried:\n  "
        + "\n  ".join(errors))


_lib = _load_library()

# Mirrors of the FASTOD_* macros (frozen ABI constants).
OK = 0
ERR_INVALID_ARGUMENT, ERR_NOT_FOUND, ERR_OUT_OF_RANGE = 1, 2, 3
ERR_FAILED_PRECONDITION, ERR_IO, ERR_RESOURCE_EXHAUSTED = 4, 5, 6
ERR_NULL_HANDLE, ERR_INTERNAL = 7, 8
ERR_DEADLINE, ERR_UNAVAILABLE = 9, 10
STATE_CREATED, STATE_QUEUED, STATE_RUNNING = 0, 1, 2
STATE_DONE, STATE_FAILED, STATE_CANCELLED = 3, 4, 5
_TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)
_OPTION_KINDS = {0: "bool", 1: "int", 2: "double", 3: "string", 4: "enum"}


def _sig(name, restype, argtypes):
    fn = getattr(_lib, name)
    fn.restype = restype
    fn.argtypes = argtypes
    return fn


_c = ctypes.c_char_p
_p = ctypes.c_void_p
_version = _sig("fastod_version_string", _c, [])
_algorithm_count = _sig("fastod_algorithm_count", ctypes.c_int, [])
_algorithm_name = _sig("fastod_algorithm_name", _c, [ctypes.c_int])
_algorithm_description = _sig("fastod_algorithm_description", _c, [_c])
_create = _sig("fastod_create", _p, [_c])
_destroy = _sig("fastod_destroy", None, [_p])
_set_option = _sig("fastod_set_option", ctypes.c_int, [_p, _c, _c])
_option_count = _sig("fastod_option_count", ctypes.c_int, [_p])
_option_name = _sig("fastod_option_name", _c, [_p, ctypes.c_int])
_option_kind = _sig("fastod_option_kind", ctypes.c_int, [_p, ctypes.c_int])
_option_default = _sig("fastod_option_default", _c, [_p, ctypes.c_int])
_option_description = _sig("fastod_option_description", _c,
                           [_p, ctypes.c_int])
_load_csv_opts = _sig(
    "fastod_load_csv_opts", ctypes.c_int,
    [_p, _c, ctypes.c_char, ctypes.c_int, ctypes.c_long])
_execute = _sig("fastod_execute", ctypes.c_int, [_p])
_execute_async = _sig("fastod_execute_async", ctypes.c_int, [_p])
_poll = _sig("fastod_poll", ctypes.c_int,
             [_p, ctypes.POINTER(ctypes.c_double)])
_wait = _sig("fastod_wait", ctypes.c_int, [_p])
_cancel = _sig("fastod_cancel", ctypes.c_int, [_p])
_result_json = _sig("fastod_result_json", _c, [_p])
_result_text = _sig("fastod_result_text", _c, [_p])
_trace_json = _sig("fastod_session_trace_json", _c, [_p])
_last_error = _sig("fastod_last_error", _c, [_p])
_dataset_load_csv_opts = _sig(
    "fastod_dataset_load_csv_opts", _p,
    [_c, ctypes.c_char, ctypes.c_int, ctypes.c_long])
_dataset_rows = _sig("fastod_dataset_rows", ctypes.c_long, [_p])
_dataset_columns = _sig("fastod_dataset_columns", ctypes.c_int, [_p])
_dataset_append_rows = _sig("fastod_dataset_append_rows", _p, [_p, _c])
_dataset_version = _sig("fastod_dataset_version", ctypes.c_long, [_p])
_dataset_base_rows = _sig("fastod_dataset_base_rows", ctypes.c_long, [_p])
_use_dataset = _sig("fastod_use_dataset", ctypes.c_int, [_p, _p])
_dataset_destroy = _sig("fastod_dataset_destroy", None, [_p])


def _decode(value: bytes | None) -> str | None:
    return None if value is None else value.decode("utf-8")


class FastodError(RuntimeError):
    """A coded failure from the library (FASTOD_ERR_* in fastod_c.h)."""

    def __init__(self, code: int, message: str):
        super().__init__(f"fastod error {code}: {message}")
        self.code = code
        self.message = message


class FastodUnavailable(FastodError):
    """Transient overload or shutdown (FASTOD_ERR_UNAVAILABLE): the
    operation was refused, not failed — retry after a backoff."""

    def __init__(self, message: str):
        super().__init__(ERR_UNAVAILABLE, message)


def _raise(code: int, message: str):
    if code == ERR_UNAVAILABLE:
        raise FastodUnavailable(message)
    raise FastodError(code, message)


def retry_unavailable(call, *, attempts: int = 5, base_delay: float = 0.1,
                      max_delay: float = 2.0, sleep=time.sleep,
                      rng=random.random):
    """Runs `call()` with capped exponential backoff + full jitter on
    FastodUnavailable; re-raises it once `attempts` are exhausted. Any
    other error propagates immediately."""
    for attempt in range(attempts):
        try:
            return call()
        except FastodUnavailable:
            if attempt + 1 == attempts:
                raise
            delay = min(max_delay, base_delay * (2 ** attempt))
            sleep(delay * rng())
    raise AssertionError("unreachable")


def version() -> str:
    """The library's "MAJOR.MINOR.PATCH" version string."""
    return _decode(_version())


def algorithms() -> dict[str, str]:
    """Registered algorithm names mapped to their one-line descriptions."""
    out = {}
    for index in range(_algorithm_count()):
        name = _decode(_algorithm_name(index))
        out[name] = _decode(_algorithm_description(name.encode()))
    return out


class Dataset:
    """One CSV loaded once (parse + encode + level-1 partitions) for
    reuse across any number of Sessions. Closing the dataset is safe
    while sessions still use it — they keep the data alive."""

    def __init__(self, path: str, *, delimiter: str = ",",
                 has_header: bool = True, max_rows: int = -1):
        handle = _dataset_load_csv_opts(
            os.fspath(path).encode(), delimiter.encode(),
            1 if has_header else 0, max_rows)
        if not handle:
            raise FastodError(ERR_IO, _decode(_last_error(None)) or
                              f"failed to load {path!r}")
        self._handle = handle

    @property
    def rows(self) -> int:
        self._check_open()
        return _dataset_rows(self._handle)

    @property
    def columns(self) -> int:
        self._check_open()
        return _dataset_columns(self._handle)

    @property
    def version(self) -> int:
        """1 for a fresh load; parent version + 1 after append_rows."""
        self._check_open()
        return _dataset_version(self._handle)

    @property
    def base_rows(self) -> int:
        """Rows inherited from the parent version (== rows for v1)."""
        self._check_open()
        return _dataset_base_rows(self._handle)

    def append_rows(self, csv_text: str) -> "Dataset":
        """Appends headerless delta rows (same column count, no header
        line) and returns the grown relation as a NEW independent
        Dataset; this version is immutable and stays usable."""
        self._check_open()
        handle = _dataset_append_rows(self._handle, csv_text.encode())
        if not handle:
            raise FastodError(ERR_INVALID_ARGUMENT,
                              _decode(_last_error(None)) or "append failed")
        grown = Dataset.__new__(Dataset)
        grown._handle = handle
        return grown

    def close(self) -> None:
        if self._handle:
            _dataset_destroy(self._handle)
            self._handle = None

    def _check_open(self) -> None:
        if not self._handle:
            raise FastodError(ERR_NULL_HANDLE, "dataset is closed")

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; prefer close()/with
        try:
            self.close()
        except Exception:
            pass


class Session:
    """One discovery session over a named algorithm."""

    def __init__(self, algorithm: str = "fastod"):
        handle = _create(algorithm.encode())
        if not handle:
            raise FastodError(ERR_NOT_FOUND, _decode(_last_error(None)) or
                              f"unknown algorithm {algorithm!r}")
        self._handle = handle
        self.algorithm = algorithm

    # -- configuration ----------------------------------------------------
    def set_option(self, name: str, value) -> None:
        if isinstance(value, bool):
            value = "true" if value else "false"
        self._check(_set_option(self._handle, name.encode(),
                                str(value).encode()))

    def options(self) -> list[dict]:
        """Metadata for every option this algorithm accepts."""
        out = []
        for index in range(_option_count(self._handle)):
            out.append({
                "name": _decode(_option_name(self._handle, index)),
                "kind": _OPTION_KINDS.get(_option_kind(self._handle, index)),
                "default": _decode(_option_default(self._handle, index)),
                "description": _decode(
                    _option_description(self._handle, index)),
            })
        return out

    # -- data -------------------------------------------------------------
    def load_csv(self, path: str, *, delimiter: str = ",",
                 has_header: bool = True, max_rows: int = -1) -> None:
        self._check(_load_csv_opts(
            self._handle, os.fspath(path).encode(), delimiter.encode(),
            1 if has_header else 0, max_rows))

    def use_dataset(self, dataset: Dataset) -> None:
        dataset._check_open()
        self._check(_use_dataset(self._handle, dataset._handle))

    # -- execution --------------------------------------------------------
    def execute(self) -> dict:
        """Runs discovery synchronously and returns the parsed report."""
        self._check(_execute(self._handle))
        return self.result()

    def execute_async(self) -> None:
        self._check(_execute_async(self._handle))

    def poll(self) -> tuple[int, float]:
        """(STATE_*, progress in [0, 1]) of an asynchronous run."""
        progress = ctypes.c_double(0.0)
        state = _poll(self._handle, ctypes.byref(progress))
        if state < 0:
            raise FastodError(-state, "session is closed")
        return state, progress.value

    def wait(self) -> int:
        """Blocks until terminal; returns the final STATE_*."""
        state = _wait(self._handle)
        if state < 0:
            raise FastodError(-state, "session is closed")
        if state == STATE_FAILED:
            raise FastodError(ERR_INTERNAL, self.last_error() or "session failed")
        return state

    def cancel(self) -> None:
        self._check(_cancel(self._handle))

    # -- results ----------------------------------------------------------
    def result(self) -> dict:
        """The report of a DONE/CANCELLED session, parsed from JSON."""
        raw = self.result_json()
        if raw is None:
            raise FastodError(ERR_FAILED_PRECONDITION,
                              "no result (session not terminal?)")
        return json.loads(raw)

    def result_json(self) -> str | None:
        return _decode(_result_json(self._handle))

    def stream(self):
        """Yields the finished session's report as typed events, the
        way the server's NDJSON /stream frames them: revocations first
        (``{"type": "revoked", "od_type": ..., ...}`` — emitted by the
        incremental engine for prior ODs the grown data broke), then
        each discovered OD as ``{"type": "constancy" | "compatibility"
        | "bidirectional", ...}``."""
        report = self.result()
        for od_type in ("constancy", "compatibility"):
            for od in report.get(f"revoked_{od_type}_ods") or []:
                yield {"type": "revoked", "od_type": od_type, **od}
        for od_type in ("constancy", "compatibility", "bidirectional"):
            for od in report.get(f"{od_type}_ods") or []:
                yield {"type": od_type, **od}

    def result_text(self) -> str | None:
        return _decode(_result_text(self._handle))

    def trace(self) -> dict:
        """The session's observability trace, parsed from JSON.

        Readable in any state: ``{"spans": [...], "engine": {...}}``
        with phase timings (csv.parse, encode, execute, level[k]) and
        the engine's lattice-search counters once the run finished.
        Empty spans and a null engine when FASTOD_METRICS=off.
        """
        raw = _decode(_trace_json(self._handle))
        if raw is None:
            raise FastodError(ERR_NULL_HANDLE, "session is closed")
        return json.loads(raw)

    def last_error(self) -> str:
        return _decode(_last_error(self._handle))

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._handle:
            _destroy(self._handle)
            self._handle = None

    def _check(self, code: int) -> None:
        if code != OK:
            _raise(code, self.last_error())

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Self-checking smoke test (ctest + CI entry point)
# ---------------------------------------------------------------------------

_SMOKE_CSV = """month,quarter,salary,rank
1,1,100,9
2,1,200,8
4,2,300,7
5,2,400,6
7,3,500,5
8,3,600,4
"""


def _mask_seconds(report: dict) -> dict:
    report = dict(report)
    if isinstance(report.get("stats"), dict):
        report["stats"] = {k: v for k, v in report["stats"].items()
                           if k != "seconds"}
    return report


def _smoke(csv_path: str) -> int:
    print(f"fastod.py smoke test — library {version()}")
    names = algorithms()
    assert "fastod" in names and "tane" in names, names
    print(f"  {len(names)} algorithms registered")

    # Option metadata is reachable and typed.
    with Session("fastod") as session:
        kinds = {o["name"]: o["kind"] for o in session.options()}
        assert kinds.get("threads") == "int", kinds
        # Errors are real exceptions with the engine's message.
        try:
            session.set_option("threads", "zero")
            raise AssertionError("bad option value must raise")
        except FastodError as error:
            assert "threads" in error.message, error

    # Per-session CSV loads: the reference results.
    reference = {}
    for algorithm in ("fastod", "tane"):
        with Session(algorithm) as session:
            session.load_csv(csv_path)
            reference[algorithm] = _mask_seconds(session.execute())
            trace = session.trace()
            assert set(trace) == {"spans", "engine"}, trace
            if trace["engine"] is not None:  # FASTOD_METRICS may be off
                assert trace["engine"]["nodes_visited"] > 0, trace
                names = [span["name"] for span in trace["spans"]]
                assert "execute" in names, names
        print(f"  {algorithm}: csv-bound session done (trace: "
              f"{len(trace['spans'])} spans)")

    # Load once, discover many: the dataset path must reproduce the
    # csv path exactly, and survives closing the handle early.
    with Dataset(csv_path) as dataset:
        assert dataset.rows == 6 and dataset.columns == 4, \
            (dataset.rows, dataset.columns)
        sessions = []
        for algorithm in ("fastod", "tane"):
            session = Session(algorithm)
            session.use_dataset(dataset)
            sessions.append(session)
    # The dataset handle is closed; bound sessions still run.
    for session in sessions:
        session.execute_async()
    for session in sessions:
        assert session.wait() == STATE_DONE
        report = _mask_seconds(session.result())
        assert report == reference[session.algorithm], (
            f"{session.algorithm}: dataset-bound result diverged")
        print(f"  {session.algorithm}: dataset-bound session matches")
        session.close()

    # Versioned datasets: appending mints a new immutable version, and
    # the incremental engine re-validates the prior report against it —
    # revoking broken ODs and matching a fresh full run exactly.
    with Dataset(csv_path) as v1:
        assert v1.version == 1 and v1.base_rows == v1.rows, \
            (v1.version, v1.base_rows)
        with Session("fastod") as session:
            session.use_dataset(v1)
            prior = session.execute()
        # month 9 lands in quarter 1: the month ~ quarter order breaks.
        v2 = v1.append_rows("9,1,700,3\n")
        assert v1.rows == 6, "append must not grow the parent version"
    with v2:
        assert (v2.version, v2.rows, v2.base_rows) == (2, 7, 6), \
            (v2.version, v2.rows, v2.base_rows)
        with Session("incremental") as session:
            session.set_option("prior", json.dumps(prior))
            session.use_dataset(v2)
            incremental = session.execute()
            events = list(session.stream())
        with Session("fastod") as session:
            session.use_dataset(v2)
            fresh = session.execute()
    revoked = [e for e in events if e["type"] == "revoked"]
    assert revoked, "the appended row must revoke at least one prior OD"
    assert all(e["od_type"] in ("constancy", "compatibility")
               for e in revoked), revoked
    assert len(events) - len(revoked) == (
        len(incremental["constancy_ods"])
        + len(incremental["compatibility_ods"])), events

    def od_set(report: dict, key: str) -> list[str]:
        return sorted(json.dumps(od, sort_keys=True)
                      for od in report.get(key, []))

    for key in ("constancy_ods", "compatibility_ods"):
        assert od_set(incremental, key) == od_set(fresh, key), \
            f"incremental diverged from the full re-run on {key}"
    print(f"  incremental: {len(revoked)} revocation(s) streamed, "
          "surviving + new ODs match the full re-run")

    # Retry helper: passthrough on success, capped backoff on
    # FastodUnavailable, typed give-up after N attempts (no real sleeps).
    naps = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise FastodUnavailable("at capacity")
        return "ok"

    assert retry_unavailable(flaky, sleep=naps.append,
                             rng=lambda: 1.0) == "ok"
    assert calls["n"] == 3 and naps == [0.1, 0.2], (calls, naps)
    try:
        retry_unavailable(lambda: (_ for _ in ()).throw(
            FastodUnavailable("down")), attempts=2, sleep=naps.append)
        raise AssertionError("exhausted retries must re-raise")
    except FastodUnavailable as error:
        assert error.code == ERR_UNAVAILABLE, error
    print("  retry_unavailable: backoff + typed give-up verified")

    # A 1 ms hard deadline on the tiny table may or may not trip — but
    # when it does, it must surface as the dedicated deadline code.
    with Session("fastod") as session:
        session.load_csv(csv_path)
        session.set_option("timeout-ms", "1")
        try:
            session.execute()
        except FastodError as error:
            assert error.code == ERR_DEADLINE, error
            print("  timeout-ms: deadline surfaced as ERR_DEADLINE")

    print("fastod.py smoke test passed")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        return _smoke(argv[1])
    with tempfile.NamedTemporaryFile(
            "w", suffix=".csv", delete=False) as handle:
        handle.write(_SMOKE_CSV)
        path = handle.name
    try:
        return _smoke(path)
    finally:
        os.unlink(path)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
