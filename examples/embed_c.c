/*
 * embed_c.c — embedding fastod from plain C through the stable C ABI.
 *
 * Builds as C89 against fastod_c.h and libfastod_c (no C++ compiler
 * involved):
 *
 *   cc -std=c90 -pedantic embed_c.c -Ibuild/include -Lbuild -lfastod_c
 *
 * The program generates a small salary table whose tax and band columns
 * are functions of salary (so salary orders tax — a textbook OD), runs
 * the fastod engine on it asynchronously, polls for progress, and prints
 * the JSON result. Exit code 0 means ODs were discovered end to end.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "fastod_c.h"

static const char* kCsvPath = "embed_c_data.csv";

/* salary ascending implies tax ascending (tax = 10% of salary) and walks
 * the band buckets in order; group breaks the constant columns up. */
static int write_table(void) {
  FILE* f = fopen(kCsvPath, "w");
  int i;
  if (f == NULL) {
    fprintf(stderr, "cannot write %s\n", kCsvPath);
    return 1;
  }
  fprintf(f, "group,salary,tax,band\n");
  for (i = 0; i < 120; ++i) {
    int salary = 1000 + 25 * i;
    fprintf(f, "%d,%d,%d,%d\n", i % 3, salary, salary / 10, salary / 1000);
  }
  fclose(f);
  return 0;
}

static void print_options(const fastod_session_t* session) {
  int n = fastod_option_count(session);
  int i;
  printf("algorithm options (%d):\n", n);
  for (i = 0; i < n; ++i) {
    printf("  %-20s kind=%d default=%-6s %s\n",
           fastod_option_name(session, i), fastod_option_kind(session, i),
           fastod_option_default(session, i),
           fastod_option_description(session, i));
  }
}

int main(void) {
  fastod_session_t* session;
  const char* json;
  double progress;
  int state;
  int code;

  printf("fastod C ABI %s, %d algorithms (first: %s — %s)\n",
         fastod_version_string(), fastod_algorithm_count(),
         fastod_algorithm_name(0),
         fastod_algorithm_description(fastod_algorithm_name(0)));

  if (write_table() != 0) return 1;

  session = fastod_create("fastod");
  if (session == NULL) {
    fprintf(stderr, "create failed: %s\n", fastod_last_error(NULL));
    return 1;
  }
  print_options(session);

  code = fastod_set_option(session, "threads", "2");
  if (code != FASTOD_OK) {
    fprintf(stderr, "set_option failed (%d): %s\n", code,
            fastod_last_error(session));
    return 1;
  }
  /* Misconfiguration is a recoverable, named error, not a crash. */
  if (fastod_set_option(session, "warp-speed", "9") == FASTOD_OK) {
    fprintf(stderr, "unknown option unexpectedly accepted\n");
    return 1;
  }
  printf("expected option error: %s\n", fastod_last_error(session));

  code = fastod_load_csv(session, kCsvPath);
  if (code != FASTOD_OK) {
    fprintf(stderr, "load_csv failed (%d): %s\n", code,
            fastod_last_error(session));
    return 1;
  }

  code = fastod_execute_async(session);
  if (code != FASTOD_OK) {
    fprintf(stderr, "execute_async failed (%d): %s\n", code,
            fastod_last_error(session));
    return 1;
  }
  state = fastod_poll(session, &progress);
  printf("after submit: state=%d progress=%.2f\n", state, progress);

  state = fastod_wait(session);
  if (state != FASTOD_STATE_DONE) {
    fprintf(stderr, "run ended in state %d: %s\n", state,
            fastod_last_error(session));
    return 1;
  }

  json = fastod_result_json(session);
  if (json == NULL || strstr(json, "\"constancy_ods\"") == NULL) {
    fprintf(stderr, "missing JSON result\n");
    return 1;
  }
  printf("%s", json);

  /* The generated table carries real dependencies; an empty result would
   * mean the pipeline silently broke. */
  if (strstr(json, "\"attribute\"") == NULL &&
      strstr(json, "\"a\":") == NULL) {
    fprintf(stderr, "expected at least one discovered OD\n");
    return 1;
  }

  fastod_destroy(session);
  remove(kCsvPath);
  printf("embed_c: OK\n");
  return 0;
}
