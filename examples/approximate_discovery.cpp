// Approximate OD discovery (the paper's future-work extension, Section 7):
// on noisy data, exact discovery loses the business rules that "almost"
// hold; a small error threshold recovers them.
#include <cstdio>
#include <algorithm>

#include "common/rng.h"
#include "fastod/fastod.h"

int main() {
  using namespace fastod;

  // A voters table with 1% simulated entry noise in the zip column: the
  // FD city -> zip (and its order compatibility) holds on 99% of rows.
  const int64_t kRows = 2000;
  Table clean = GenNcvoterLike(kRows, 8, 17);
  const Schema& schema = clean.schema();
  int city = *schema.IndexOf("city");
  int zip = *schema.IndexOf("zip");

  Rng rng(4242);
  TableBuilder builder(schema);
  int64_t corrupted = 0;
  for (int64_t r = 0; r < clean.NumRows(); ++r) {
    std::vector<Value> row;
    for (int c = 0; c < clean.NumColumns(); ++c) {
      Value v = clean.at(r, c);
      if (c == zip && rng.Chance(0.01)) {
        v = Value::Int(10000 + rng.Uniform(90000));  // typo'd zip
        ++corrupted;
      }
      row.push_back(std::move(v));
    }
    builder.AddRowUnchecked(std::move(row));
  }
  Table noisy = builder.Build();
  std::printf("Corrupted %lld of %lld zip values (~1%%).\n\n",
              static_cast<long long>(corrupted),
              static_cast<long long>(kRows));

  auto encoded = EncodedRelation::FromTable(noisy);
  if (!encoded.ok()) return 1;

  // The rule we care about.
  ConstancyOd city_zip{AttributeSet::Single(city), zip};
  std::printf("g3 error of {city}: [] -> zip on the noisy data: %.4f\n\n",
              CanonicalOdError(*encoded, CanonicalOd(city_zip)));

  std::printf("%-10s %-14s %-28s %s\n", "epsilon", "ODs found",
              "(constancy + compat)", "city->zip recovered?");
  // One "approximate" Algorithm instance, reconfigured per threshold
  // through its typed option registry and re-executed on the loaded data.
  auto algo = AlgorithmRegistry::Default().Create("approximate");
  if (!algo.ok() || !(*algo)->LoadData(noisy).ok()) return 1;
  for (double eps : {0.0, 0.005, 0.02, 0.05}) {
    char eps_text[32];
    std::snprintf(eps_text, sizeof(eps_text), "%g", eps);
    if (!(*algo)->SetOption("max-error", eps_text).ok()) return 1;
    if (!(*algo)->Execute().ok()) return 1;
    const FastodResult& result =
        static_cast<const FastodAlgorithm&>(**algo).result();
    bool recovered =
        std::find(result.constancy_ods.begin(), result.constancy_ods.end(),
                  city_zip) != result.constancy_ods.end();
    char counts[64];
    std::snprintf(counts, sizeof(counts), "(%lld + %lld)",
                  static_cast<long long>(result.num_constancy),
                  static_cast<long long>(result.num_compatibility));
    std::printf("%-10.3f %-14lld %-28s %s\n", eps,
                static_cast<long long>(result.NumOds()), counts,
                recovered ? "yes" : "no");
  }
  std::printf(
      "\nWith eps=0 the noise kills the rule; a threshold just above the\n"
      "noise rate recovers it without flooding the result with accidental\n"
      "dependencies (large eps would).\n");
  return 0;
}
