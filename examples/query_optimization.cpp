// Query optimization with discovered ODs on a TPC-DS-style date dimension
// (Query 1 / Section 1.1 of the paper).
//
// Demonstrates the two rewrites the paper motivates:
//  1. Join elimination: a BETWEEN predicate on d_year can be rewritten to a
//     surrogate-key range because {d_date_sk} orders d_year — two probes
//     into date_dim replace a full join.
//  2. Order-by simplification: ORDER BY d_year, d_quarter, d_month can use
//     an index on (d_year, d_month) because d_month orders d_quarter.
#include <cstdio>

#include "fastod/fastod.h"

int main() {
  using namespace fastod;

  // Four years of the date dimension, surrogate keys assigned in date
  // order (as every warehouse load job does).
  Table date_dim = GenDateDim(4 * 365, 2012);
  const Schema& schema = date_dim.schema();
  std::printf("date_dim: %lld rows x %d attributes\n\n",
              static_cast<long long>(date_dim.NumRows()),
              date_dim.NumColumns());

  Result<FastodResult> result = Fastod().Discover(date_dim);
  if (!result.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("FASTOD found %s minimal ODs. The optimizer-relevant ones:\n",
              result->CountsToString().c_str());

  int sk = *schema.IndexOf("d_date_sk");
  int year = *schema.IndexOf("d_year");
  int month = *schema.IndexOf("d_month");
  int quarter = *schema.IndexOf("d_quarter");

  auto has_constancy = [&](AttributeSet ctx, int a) {
    for (const ConstancyOd& od : result->constancy_ods) {
      if (od.context == ctx && od.attribute == a) return true;
    }
    return false;
  };
  auto has_compat = [&](AttributeSet ctx, int a, int b) {
    CompatibilityOd want(ctx, a, b);
    for (const CompatibilityOd& od : result->compatibility_ods) {
      if (od == want) return true;
    }
    return false;
  };

  bool sk_fd_year = has_constancy(AttributeSet::Single(sk), year);
  bool sk_oc_year = has_compat(AttributeSet::Empty(), sk, year);
  std::printf("  {d_date_sk}: [] -> d_year   %s\n",
              sk_fd_year ? "found" : "MISSING");
  std::printf("  {}: d_date_sk ~ d_year      %s\n",
              sk_oc_year ? "found" : "MISSING");
  bool m_fd_q = has_constancy(AttributeSet::Single(month), quarter);
  bool m_oc_q = has_compat(AttributeSet::Empty(), month, quarter);
  std::printf("  {d_month}: [] -> d_quarter  %s\n",
              m_fd_q ? "found" : "MISSING");
  std::printf("  {}: d_month ~ d_quarter     %s\n\n",
              m_oc_q ? "found" : "MISSING");

  // --- Rewrite 1: join elimination for the BETWEEN predicate. ---
  // By Theorem 5, {d_date_sk}: []->d_year plus {}: d_date_sk ~ d_year is
  // exactly [d_date_sk] orders [d_year], so year ranges map to contiguous
  // surrogate-key ranges.
  if (sk_fd_year && sk_oc_year) {
    int64_t lo_sk = -1;
    int64_t hi_sk = -1;
    for (int64_t r = 0; r < date_dim.NumRows(); ++r) {
      int64_t y = date_dim.at(r, year).AsInt();
      if (y >= 2013 && y <= 2014) {
        int64_t s = date_dim.at(r, sk).AsInt();
        if (lo_sk < 0 || s < lo_sk) lo_sk = s;
        if (s > hi_sk) hi_sk = s;
      }
    }
    std::printf(
        "Rewrite 1 (join elimination):\n"
        "  d_year BETWEEN 2013 AND 2014\n"
        "  ==>  ws.date_sk BETWEEN %lld AND %lld   -- two index probes,\n"
        "       no join with date_dim needed ([d_date_sk] orders [d_year])\n\n",
        static_cast<long long>(lo_sk), static_cast<long long>(hi_sk));
  }

  // --- Rewrite 2: order-by simplification. ---
  if (m_fd_q && m_oc_q) {
    std::printf(
        "Rewrite 2 (sort simplification):\n"
        "  ORDER BY d_year, d_quarter, d_month\n"
        "  ==>  ORDER BY d_year, d_month           -- d_month orders\n"
        "       d_quarter, so the (d_year, d_month) index yields the\n"
        "       requested order with no extra sort\n\n");
  }

  // Show what the incomplete baseline would do with the same table.
  OrderOptions order_opt;
  order_opt.timeout_seconds = 5.0;
  order_opt.max_level = 3;
  OrderResult order = OrderBaseline(order_opt).Discover(
      *EncodedRelation::FromTable(date_dim));
  std::printf("For comparison, the ORDER baseline reports %zu list ODs "
              "(timeout=%s); constants and embedded FDs are not among "
              "them (Section 4.5).\n",
              order.ods.size(), order.timed_out ? "hit" : "no");
  return 0;
}
