/*
 * fastod_c.h — stable C ABI for the fastod order-dependency library.
 *
 * Handle-based sessions over the C++ DiscoveryService: create a session
 * for a named algorithm, configure it with string options, bind a CSV,
 * execute (synchronously or asynchronously on the library's worker
 * pool), poll progress, and collect the result as JSON. No C++ type
 * crosses this boundary; every function is callable from C89, and the
 * header itself compiles as C89 ("cc -std=c90 -pedantic").
 *
 *   fastod_session_t* s = fastod_create("fastod");
 *   fastod_set_option(s, "threads", "2");
 *   fastod_load_csv(s, "flight.csv");
 *   fastod_execute_async(s);
 *   while (fastod_poll(s, &progress) < FASTOD_STATE_DONE) sleep(1);
 *   puts(fastod_result_json(s));      (or block with fastod_wait(s))
 *   fastod_destroy(s);
 *
 * Error handling: functions returning int yield FASTOD_OK (0) or a
 * positive FASTOD_ERR_* code; the human-readable message is kept per
 * session and read with fastod_last_error(). Functions returning
 * const char* yield pointers owned by the library — never free() them;
 * they stay valid until the next call on the same session (or, for
 * session-less functions, for the process lifetime).
 *
 * Thread safety: one session may be driven from one thread at a time,
 * except fastod_poll/fastod_cancel/fastod_last_error, which are safe
 * concurrently with an asynchronous run. Distinct sessions are fully
 * independent; they share only the scheduler's worker pool.
 *
 * Thread affinity: the "threads" option parallelizes the engine
 * internally (a work-stealing task graph over the lattice search); it
 * never changes this API's contract. Results are byte-identical across
 * thread counts, callbacks do not exist at this layer, and the internal
 * workers (named "fastod-od-N" / "fastod-fd-N" in debuggers and
 * profilers) live only for the duration of one execution. Session-less
 * functions (fastod_version_string, registry introspection) are safe
 * from any thread concurrently.
 */
#ifndef FASTOD_CAPI_FASTOD_C_H_
#define FASTOD_CAPI_FASTOD_C_H_

/* Library version this header was generated with; compare against
 * fastod_version_string() to detect header/library skew. */
#define FASTOD_VERSION_MAJOR 0
#define FASTOD_VERSION_MINOR 7
#define FASTOD_VERSION_PATCH 0

/* Error codes. 1..6 and 8..10 mirror fastod::StatusCode; 7 flags misuse
 * of the C layer itself (NULL or destroyed handle). */
#define FASTOD_OK 0
#define FASTOD_ERR_INVALID_ARGUMENT 1
#define FASTOD_ERR_NOT_FOUND 2
#define FASTOD_ERR_OUT_OF_RANGE 3
#define FASTOD_ERR_FAILED_PRECONDITION 4
#define FASTOD_ERR_IO 5
#define FASTOD_ERR_RESOURCE_EXHAUSTED 6
#define FASTOD_ERR_NULL_HANDLE 7
#define FASTOD_ERR_INTERNAL 8
/* The run's hard wall-clock deadline passed (the "timeout-ms" option);
 * the session is FASTOD_STATE_FAILED with this code in its status. */
#define FASTOD_ERR_DEADLINE 9
/* Transient overload or shutdown (admission cap, pool stopping); the
 * operation was refused — retry later. */
#define FASTOD_ERR_UNAVAILABLE 10

/* Session states returned by fastod_poll() and fastod_wait(). The
 * terminal states are DONE, FAILED and CANCELLED. */
#define FASTOD_STATE_CREATED 0
#define FASTOD_STATE_QUEUED 1
#define FASTOD_STATE_RUNNING 2
#define FASTOD_STATE_DONE 3
#define FASTOD_STATE_FAILED 4
#define FASTOD_STATE_CANCELLED 5

/* Option kinds returned by fastod_option_kind(); frozen, mirroring
 * fastod::OptionKind. */
#define FASTOD_OPTION_BOOL 0
#define FASTOD_OPTION_INT 1
#define FASTOD_OPTION_DOUBLE 2
#define FASTOD_OPTION_STRING 3
#define FASTOD_OPTION_ENUM 4

#ifdef __cplusplus
extern "C" {
#endif

/* Opaque session handle. */
typedef struct fastod_session fastod_session_t;

/* Opaque shared-dataset handle (load once, discover many). */
typedef struct fastod_dataset fastod_dataset_t;

/* "MAJOR.MINOR.PATCH", matching the macros this header was built with. */
const char* fastod_version_string(void);

/* ---- Registry introspection (no session required) ------------------ */

/* Number of registered discovery algorithms. */
int fastod_algorithm_count(void);
/* Name of the index-th algorithm (registration order), or NULL when the
 * index is out of range. */
const char* fastod_algorithm_name(int index);
/* One-line description of a named algorithm, or NULL for unknown names. */
const char* fastod_algorithm_description(const char* algorithm);

/* ---- Session lifecycle --------------------------------------------- */

/* Creates a session running `algorithm` (see fastod_algorithm_name).
 * Returns NULL for unknown names; the message — listing the registered
 * names — is then available via fastod_last_error(NULL). */
fastod_session_t* fastod_create(const char* algorithm);

/* Releases the session and its results. Safe on NULL. A still-running
 * execution is cancelled and detached; the library reclaims it once the
 * engine stops at its next check point. */
void fastod_destroy(fastod_session_t* session);

/* Parses and applies one option ("threads", "4"). Unknown names and
 * malformed or out-of-range values fail, naming the option in
 * fastod_last_error(). Only valid before execution is scheduled.
 *
 * Names are matched against the canonical hyphenated spelling first
 * ("emit-ods"), then against registered deprecated aliases ("emit-fds")
 * and underscore spellings ("emit_ods"). Non-canonical spellings keep
 * working but are counted in the fastod_deprecated_option_total metric;
 * new code should send the canonical name reported by
 * fastod_option_name(). */
int fastod_set_option(fastod_session_t* session, const char* name,
                      const char* value);

/* ---- Option introspection ------------------------------------------ */

/* Number of options the session's algorithm accepts. Deprecated aliases
 * are not separate options; only canonical names are enumerated. */
int fastod_option_count(const fastod_session_t* session);
/* Metadata of the index-th option (registration order). Name/description/
 * default return NULL and kind returns -1 when the index is out of
 * range. The default is rendered in the same spelling fastod_set_option
 * parses. */
const char* fastod_option_name(const fastod_session_t* session, int index);
int fastod_option_kind(const fastod_session_t* session, int index);
const char* fastod_option_default(const fastod_session_t* session,
                                  int index);
const char* fastod_option_description(const fastod_session_t* session,
                                      int index);

/* ---- Data + execution ---------------------------------------------- */

/* Reads a CSV file (header row, comma delimiter, type inference) and
 * binds it to the session. fastod_load_csv_opts overrides the delimiter,
 * header handling and row limit (max_rows < 0 means all rows). */
int fastod_load_csv(fastod_session_t* session, const char* path);
int fastod_load_csv_opts(fastod_session_t* session, const char* path,
                         char delimiter, int has_header, long max_rows);

/* ---- Shared datasets ------------------------------------------------ */

/* Loads a CSV once — parse, type inference, order-preserving encoding,
 * and the level-1 partitions every level-wise engine builds first — into
 * an immutable dataset any number of sessions can bind by reference via
 * fastod_use_dataset(), including sessions running concurrently with
 * different algorithms. Returns NULL on failure; the message is then
 * available via fastod_last_error(NULL). */
fastod_dataset_t* fastod_dataset_load_csv(const char* path);
fastod_dataset_t* fastod_dataset_load_csv_opts(const char* path,
                                               char delimiter,
                                               int has_header,
                                               long max_rows);

/* Row / attribute counts of a loaded dataset (-1 on NULL). */
long fastod_dataset_rows(const fastod_dataset_t* dataset);
int fastod_dataset_columns(const fastod_dataset_t* dataset);

/* Appends rows (headerless CSV text, comma delimiter, one row per line)
 * to a dataset, returning a NEW handle for the grown version; the input
 * handle and every session bound to it are untouched — versions are
 * immutable. Delta rows are re-encoded into the existing dictionaries
 * and the level-1 partitions extended, so the grown version costs work
 * proportional to the delta, not the whole relation. Returns NULL on
 * failure (column-count mismatch, parse error); the message is then
 * available via fastod_last_error(NULL). */
fastod_dataset_t* fastod_dataset_append_rows(const fastod_dataset_t* dataset,
                                             const char* csv_text);

/* Version number of the handle's dataset (1 for a freshly loaded one,
 * +1 per append) and the rows it inherited from the version it grew
 * from (0 for version 1). rows - base_rows is the last delta's size.
 * Both return -1 on NULL. */
long fastod_dataset_version(const fastod_dataset_t* dataset);
long fastod_dataset_base_rows(const fastod_dataset_t* dataset);

/* Binds the dataset to a session — no copy, no re-parse; the session
 * keeps the data alive for its own lifetime, so destroying the dataset
 * handle while sessions still use it is safe. Only valid before
 * execution is scheduled. */
int fastod_use_dataset(fastod_session_t* session,
                       const fastod_dataset_t* dataset);

/* Releases the handle's reference. Safe on NULL. Sessions bound to the
 * dataset are unaffected (reference counting keeps the data alive). */
void fastod_dataset_destroy(fastod_dataset_t* dataset);

/* Runs discovery on the calling thread; returns once terminal. */
int fastod_execute(fastod_session_t* session);

/* Schedules discovery on the library's worker pool and returns
 * immediately; observe it with fastod_poll()/fastod_wait(). */
int fastod_execute_async(fastod_session_t* session);

/* Returns the FASTOD_STATE_* of the session, or the negated
 * FASTOD_ERR_NULL_HANDLE on a NULL handle. When progress_out is non-NULL
 * it receives the engine's completion fraction in [0, 1]. */
int fastod_poll(const fastod_session_t* session, double* progress_out);

/* Blocks until the session is terminal; returns its final
 * FASTOD_STATE_* (negated error code on a NULL handle). */
int fastod_wait(fastod_session_t* session);

/* Asks a queued or running execution to stop at its next check point.
 * Queued runs are skipped; running engines keep their partial results.
 * Idempotent. */
int fastod_cancel(fastod_session_t* session);

/* ---- Results ------------------------------------------------------- */

/* The result in the library's stable JSON shape (see report/report.h in
 * the C++ sources). Valid once the session is DONE or CANCELLED (partial
 * results); NULL otherwise. Owned by the session — valid until the next
 * call on it. */
const char* fastod_result_json(fastod_session_t* session);

/* Human-readable result summary under the same rules. */
const char* fastod_result_text(fastod_session_t* session);

/* The session's observability trace as JSON: the phase spans recorded
 * while it ran (csv.parse, encode, execute, level[k]) plus the engine's
 * search counters once terminal — {"spans":[...],"engine":...}. Unlike
 * fastod_result_json this is readable in ANY state (a running session
 * shows the spans completed so far) and is empty-but-valid JSON when
 * metrics are disabled via FASTOD_METRICS=off. NULL only on a NULL or
 * destroyed handle. Owned by the session — valid until the next call on
 * it. */
const char* fastod_session_trace_json(fastod_session_t* session);

/* The message of the most recent failure on this session; "" when none.
 * fastod_last_error(NULL) reads the calling thread's session-less error
 * (a failed fastod_create). */
const char* fastod_last_error(const fastod_session_t* session);

#ifdef __cplusplus
}
#endif

#endif /* FASTOD_CAPI_FASTOD_C_H_ */
