// Implementation of the stable C ABI (capi/fastod_c.h) over the service
// layer. One process-wide DiscoveryService backs every C session, so C
// embedders get the same batch scheduling semantics as C++ ones: at most
// hardware-concurrency sessions execute at once, the rest queue.
//
// The fastod_session struct is the only state the C layer adds: the
// service handle, a per-session error string, and copies of the rendered
// results (so returned const char* stay valid regardless of what the
// service does afterwards). No exception escapes: the underlying library
// reports through Status, which maps 1:1 onto the FASTOD_ERR_* codes.
#include "capi/fastod_c.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/registry.h"
#include "common/status.h"
#include "data/dataset_store.h"
#include "service/discovery_service.h"

namespace {

using fastod::AlgorithmRegistry;
using fastod::CsvOptions;
using fastod::DiscoveryService;
using fastod::DiscoverySession;
using fastod::LoadedDataset;
using fastod::OptionInfo;
using fastod::SessionId;
using fastod::SessionState;
using fastod::Status;
using fastod::StatusCode;
using fastod::Table;

int CodeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return FASTOD_OK;
    case StatusCode::kInvalidArgument:
      return FASTOD_ERR_INVALID_ARGUMENT;
    case StatusCode::kNotFound:
      return FASTOD_ERR_NOT_FOUND;
    case StatusCode::kOutOfRange:
      return FASTOD_ERR_OUT_OF_RANGE;
    case StatusCode::kFailedPrecondition:
      return FASTOD_ERR_FAILED_PRECONDITION;
    case StatusCode::kIoError:
      return FASTOD_ERR_IO;
    case StatusCode::kResourceExhausted:
      return FASTOD_ERR_RESOURCE_EXHAUSTED;
    case StatusCode::kInternal:
      return FASTOD_ERR_INTERNAL;
    case StatusCode::kDeadlineExceeded:
      return FASTOD_ERR_DEADLINE;
    case StatusCode::kUnavailable:
      return FASTOD_ERR_UNAVAILABLE;
  }
  return FASTOD_ERR_INVALID_ARGUMENT;
}

DiscoveryService& GlobalService() {
  static DiscoveryService* service = new DiscoveryService();
  return *service;
}

// Session-less errors (fastod_create failures), per thread.
std::string& ThreadError() {
  static thread_local std::string error;
  return error;
}

}  // namespace

// The opaque handle. Poll/cancel/last_error may race with the driving
// thread, so the mutable strings are mutex-guarded.
struct fastod_session {
  SessionId id = 0;
  mutable std::mutex mutex;
  std::string last_error;   // guarded by mutex
  std::string result_copy;  // guarded by mutex
  std::string trace_copy;   // guarded by mutex
};

// A shared-dataset handle is one strong reference to an immutable
// LoadedDataset; sessions bound to it take their own references, so
// destroy order between handles and sessions is a non-issue.
struct fastod_dataset {
  std::shared_ptr<const LoadedDataset> dataset;
};

namespace {

int Fail(fastod_session_t* session, const Status& status) {
  std::lock_guard<std::mutex> lock(session->mutex);
  session->last_error = status.message();
  return CodeOf(status);
}

int Apply(fastod_session_t* session, const Status& status) {
  if (status.ok()) return FASTOD_OK;
  return Fail(session, status);
}

}  // namespace

extern "C" {

const char* fastod_version_string(void) {
  static const std::string version =
      std::to_string(FASTOD_VERSION_MAJOR) + "." +
      std::to_string(FASTOD_VERSION_MINOR) + "." +
      std::to_string(FASTOD_VERSION_PATCH);
  return version.c_str();
}

int fastod_algorithm_count(void) {
  return static_cast<int>(AlgorithmRegistry::Default().Names().size());
}

const char* fastod_algorithm_name(int index) {
  // Registration is process-wide and append-only (re-registering a name
  // replaces its factory in place), so extending the cache — never
  // reassigning it — keeps every pointer ever returned valid for the
  // process lifetime as the header promises.
  static std::mutex mutex;
  static std::vector<std::string>* cache = new std::vector<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  std::vector<std::string> names = AlgorithmRegistry::Default().Names();
  for (size_t i = cache->size(); i < names.size(); ++i) {
    cache->push_back(names[i]);
  }
  if (index < 0 || index >= static_cast<int>(cache->size())) return nullptr;
  return (*cache)[index].c_str();
}

const char* fastod_algorithm_description(const char* algorithm) {
  if (algorithm == nullptr) return nullptr;
  // Descriptions live on algorithm instances; cache one rendering per
  // name so the returned pointer is stable.
  static std::mutex mutex;
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache->find(algorithm);
  if (it == cache->end()) {
    auto algo = AlgorithmRegistry::Default().Create(algorithm);
    if (!algo.ok()) return nullptr;
    it = cache->emplace(algorithm, (*algo)->description()).first;
  }
  return it->second.c_str();
}

fastod_session_t* fastod_create(const char* algorithm) {
  if (algorithm == nullptr) {
    ThreadError() = "algorithm name must be non-NULL";
    return nullptr;
  }
  fastod::Result<SessionId> id = GlobalService().Create(algorithm);
  if (!id.ok()) {
    ThreadError() = id.status().message();
    return nullptr;
  }
  auto* session = new fastod_session();
  session->id = *id;
  return session;
}

void fastod_destroy(fastod_session_t* session) {
  if (session == nullptr) return;
  (void)GlobalService().Destroy(session->id);
  delete session;
}

int fastod_set_option(fastod_session_t* session, const char* name,
                      const char* value) {
  if (session == nullptr) return FASTOD_ERR_NULL_HANDLE;
  if (name == nullptr) {
    return Fail(session,
                Status::InvalidArgument("option name must be non-NULL"));
  }
  return Apply(session, GlobalService().SetOption(
                            session->id, name,
                            value == nullptr ? "" : value));
}

namespace {

const OptionInfo* OptionAt(const fastod_session_t* session, int index) {
  if (session == nullptr) return nullptr;
  auto live = GlobalService().Find(session->id);
  if (live == nullptr) return nullptr;
  // OptionInfo objects live on the algorithm, whose lifetime the session
  // shares; the registry is append-only, so the pointer stays valid.
  std::vector<std::string> names = live->algorithm().GetNeededOptions();
  if (index < 0 || index >= static_cast<int>(names.size())) return nullptr;
  return live->algorithm().FindOption(names[index]);
}

}  // namespace

int fastod_option_count(const fastod_session_t* session) {
  if (session == nullptr) return 0;
  auto live = GlobalService().Find(session->id);
  if (live == nullptr) return 0;
  return static_cast<int>(live->algorithm().GetNeededOptions().size());
}

const char* fastod_option_name(const fastod_session_t* session, int index) {
  const OptionInfo* info = OptionAt(session, index);
  return info == nullptr ? nullptr : info->name.c_str();
}

int fastod_option_kind(const fastod_session_t* session, int index) {
  const OptionInfo* info = OptionAt(session, index);
  return info == nullptr ? -1 : static_cast<int>(info->kind);
}

const char* fastod_option_default(const fastod_session_t* session,
                                  int index) {
  const OptionInfo* info = OptionAt(session, index);
  return info == nullptr ? nullptr : info->default_repr.c_str();
}

const char* fastod_option_description(const fastod_session_t* session,
                                      int index) {
  const OptionInfo* info = OptionAt(session, index);
  return info == nullptr ? nullptr : info->description.c_str();
}

int fastod_load_csv(fastod_session_t* session, const char* path) {
  return fastod_load_csv_opts(session, path, ',', 1, -1);
}

int fastod_load_csv_opts(fastod_session_t* session, const char* path,
                         char delimiter, int has_header, long max_rows) {
  if (session == nullptr) return FASTOD_ERR_NULL_HANDLE;
  if (path == nullptr) {
    return Fail(session, Status::InvalidArgument("path must be non-NULL"));
  }
  CsvOptions options;
  options.delimiter = delimiter;
  options.has_header = has_header != 0;
  options.max_rows = max_rows;
  return Apply(session, GlobalService().LoadCsv(session->id, path, options));
}

fastod_dataset_t* fastod_dataset_load_csv(const char* path) {
  return fastod_dataset_load_csv_opts(path, ',', 1, -1);
}

fastod_dataset_t* fastod_dataset_load_csv_opts(const char* path,
                                               char delimiter,
                                               int has_header,
                                               long max_rows) {
  if (path == nullptr) {
    ThreadError() = "path must be non-NULL";
    return nullptr;
  }
  CsvOptions options;
  options.delimiter = delimiter;
  options.has_header = has_header != 0;
  options.max_rows = max_rows;
  fastod::Result<Table> table = fastod::ReadCsvFile(path, options);
  if (!table.ok()) {
    ThreadError() = table.status().message();
    return nullptr;
  }
  fastod::Result<std::shared_ptr<const LoadedDataset>> dataset =
      LoadedDataset::Build(path, *std::move(table),
                           std::string("csv:") + path);
  if (!dataset.ok()) {
    ThreadError() = dataset.status().message();
    return nullptr;
  }
  auto* handle = new fastod_dataset();
  handle->dataset = *std::move(dataset);
  return handle;
}

long fastod_dataset_rows(const fastod_dataset_t* dataset) {
  if (dataset == nullptr) return -1;
  return static_cast<long>(dataset->dataset->NumRows());
}

int fastod_dataset_columns(const fastod_dataset_t* dataset) {
  if (dataset == nullptr) return -1;
  return dataset->dataset->NumAttributes();
}

fastod_dataset_t* fastod_dataset_append_rows(const fastod_dataset_t* dataset,
                                             const char* csv_text) {
  if (dataset == nullptr) {
    ThreadError() = "dataset must be non-NULL";
    return nullptr;
  }
  if (csv_text == nullptr) {
    ThreadError() = "csv_text must be non-NULL";
    return nullptr;
  }
  CsvOptions options;
  options.has_header = false;  // deltas are data-only
  fastod::Result<Table> delta = fastod::ReadCsvString(csv_text, options);
  if (!delta.ok()) {
    ThreadError() = delta.status().message();
    return nullptr;
  }
  fastod::Result<std::shared_ptr<const LoadedDataset>> grown =
      LoadedDataset::Append(dataset->dataset, *std::move(delta));
  if (!grown.ok()) {
    ThreadError() = grown.status().message();
    return nullptr;
  }
  auto* handle = new fastod_dataset();
  handle->dataset = *std::move(grown);
  return handle;
}

long fastod_dataset_version(const fastod_dataset_t* dataset) {
  if (dataset == nullptr) return -1;
  return static_cast<long>(dataset->dataset->version());
}

long fastod_dataset_base_rows(const fastod_dataset_t* dataset) {
  if (dataset == nullptr) return -1;
  return static_cast<long>(dataset->dataset->base_rows());
}

int fastod_use_dataset(fastod_session_t* session,
                       const fastod_dataset_t* dataset) {
  if (session == nullptr) return FASTOD_ERR_NULL_HANDLE;
  if (dataset == nullptr) {
    return Fail(session,
                Status::InvalidArgument("dataset must be non-NULL"));
  }
  return Apply(session,
               GlobalService().LoadDataset(session->id, dataset->dataset));
}

void fastod_dataset_destroy(fastod_dataset_t* dataset) { delete dataset; }

int fastod_execute(fastod_session_t* session) {
  int code = fastod_execute_async(session);
  if (code != FASTOD_OK) return code;
  return fastod_wait(session) == FASTOD_STATE_FAILED
             ? Fail(session, GlobalService().Find(session->id)->status())
             : FASTOD_OK;
}

int fastod_execute_async(fastod_session_t* session) {
  if (session == nullptr) return FASTOD_ERR_NULL_HANDLE;
  return Apply(session, GlobalService().Submit(session->id));
}

int fastod_poll(const fastod_session_t* session, double* progress_out) {
  if (session == nullptr) return -FASTOD_ERR_NULL_HANDLE;
  fastod::Result<DiscoveryService::PollInfo> info =
      GlobalService().Poll(session->id);
  if (!info.ok()) return -FASTOD_ERR_NOT_FOUND;
  if (progress_out != nullptr) *progress_out = info->progress;
  if (info->state == SessionState::kFailed && !info->error.empty()) {
    std::lock_guard<std::mutex> lock(session->mutex);
    const_cast<fastod_session_t*>(session)->last_error = info->error;
  }
  return static_cast<int>(info->state);
}

int fastod_wait(fastod_session_t* session) {
  if (session == nullptr) return -FASTOD_ERR_NULL_HANDLE;
  fastod::Result<SessionState> state = GlobalService().Wait(session->id);
  if (!state.ok()) return -FASTOD_ERR_NOT_FOUND;
  if (*state == SessionState::kFailed) {
    auto live = GlobalService().Find(session->id);
    if (live != nullptr) (void)Fail(session, live->status());
  }
  return static_cast<int>(*state);
}

int fastod_cancel(fastod_session_t* session) {
  if (session == nullptr) return FASTOD_ERR_NULL_HANDLE;
  return Apply(session, GlobalService().Cancel(session->id));
}

namespace {

const char* ResultString(fastod_session_t* session, bool json) {
  if (session == nullptr) return nullptr;
  SessionState state = static_cast<SessionState>(
      fastod_poll(session, nullptr));
  if (state != SessionState::kDone && state != SessionState::kCancelled) {
    return nullptr;
  }
  fastod::Result<std::string> rendered =
      json ? GlobalService().ResultJson(session->id)
           : GlobalService().ResultText(session->id);
  // A session cancelled before it ever ran has no rendering; NULL beats
  // handing C callers an empty string that looks like a result.
  if (!rendered.ok() || rendered->empty()) return nullptr;
  std::lock_guard<std::mutex> lock(session->mutex);
  session->result_copy = std::move(rendered).value();
  return session->result_copy.c_str();
}

}  // namespace

const char* fastod_result_json(fastod_session_t* session) {
  return ResultString(session, /*json=*/true);
}

const char* fastod_result_text(fastod_session_t* session) {
  return ResultString(session, /*json=*/false);
}

const char* fastod_session_trace_json(fastod_session_t* session) {
  if (session == nullptr) return nullptr;
  fastod::Result<std::string> trace =
      GlobalService().TraceJson(session->id);
  if (!trace.ok()) return nullptr;
  // Separate buffer from result_copy so interleaving trace and result
  // reads never invalidates the other's pointer mid-use.
  std::lock_guard<std::mutex> lock(session->mutex);
  session->trace_copy = std::move(trace).value();
  return session->trace_copy.c_str();
}

const char* fastod_last_error(const fastod_session_t* session) {
  if (session == nullptr) return ThreadError().c_str();
  std::lock_guard<std::mutex> lock(session->mutex);
  // The pointer must outlive the lock; the string is only replaced by
  // later calls on the same session, which the contract forbids racing.
  return session->last_error.c_str();
}

}  // extern "C"
