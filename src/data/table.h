// In-memory relation instances (column-oriented).
#ifndef FASTOD_DATA_TABLE_H_
#define FASTOD_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace fastod {

/// A relation instance: a Schema plus columnar Value storage. Tables are
/// immutable once built (use TableBuilder); all algorithms take tables by
/// const reference.
class Table {
 public:
  Table() = default;
  Table(Schema schema, std::vector<std::vector<Value>> columns);

  const Schema& schema() const { return schema_; }
  int64_t NumRows() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].size());
  }
  int NumColumns() const { return schema_.NumAttributes(); }

  const Value& at(int64_t row, int col) const;
  const std::vector<Value>& column(int col) const;

  /// A new table containing only the given columns, in the given order.
  Table Project(const std::vector<int>& column_indices) const;

  /// A new table with the first `n` rows (or fewer if the table is smaller).
  Table Head(int64_t n) const;

  /// A new table with rows at the given indices (duplicates allowed).
  Table SelectRows(const std::vector<int64_t>& row_indices) const;

  /// Human-readable rendering of the first `max_rows` rows.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
};

/// Row-at-a-time construction with per-row validation.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row. The row must have exactly one value per attribute;
  /// each non-null value must match the declared column type.
  Status AddRow(std::vector<Value> row);

  /// Unchecked append for generators that construct well-typed rows.
  void AddRowUnchecked(std::vector<Value> row);

  int64_t NumRows() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].size());
  }

  /// Finalizes the table. The builder is left empty.
  Table Build();

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace fastod

#endif  // FASTOD_DATA_TABLE_H_
