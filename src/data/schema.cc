#include "data/schema.h"

#include <utility>

#include "common/macros.h"

namespace fastod {

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {}

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<AttributeDef> defs;
  defs.reserve(names.size());
  for (const std::string& n : names) {
    defs.push_back(AttributeDef{n, DataType::kString});
  }
  return Schema(std::move(defs));
}

const AttributeDef& Schema::attribute(int index) const {
  FASTOD_CHECK(index >= 0 && index < NumAttributes());
  return attributes_[index];
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < NumAttributes(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Result<std::vector<int>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    Result<int> idx = IndexOf(n);
    if (!idx.ok()) return idx.status();
    out.push_back(*idx);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (NumAttributes() != other.NumAttributes()) return false;
  for (int i = 0; i < NumAttributes(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].type != other.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace fastod
