// CSV import/export with type inference.
//
// The evaluation datasets in the paper (flight, ncvoter, hepatitis, dbtesma)
// are CSV files; this reader lets users run discovery on their own data.
// Supports RFC-4180-style quoting ("a,b" fields, "" escapes), configurable
// delimiter, optional header row, and per-column type inference
// (int -> double -> string; empty fields become NULL).
#ifndef FASTOD_DATA_CSV_H_
#define FASTOD_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace fastod {

struct CsvOptions {
  char delimiter = ',';
  /// If true, the first record provides attribute names; otherwise columns
  /// are named col0, col1, ...
  bool has_header = true;
  /// If true, infer int/double column types where every non-empty field
  /// parses; otherwise every column is string-typed.
  bool infer_types = true;
  /// Maximum number of data rows to read (-1 = all).
  int64_t max_rows = -1;
};

/// Parses CSV text into a Table.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = CsvOptions());

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = CsvOptions());

/// Serializes a table to CSV (always writes a header row; quotes fields
/// containing the delimiter, quotes, or newlines).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace fastod

#endif  // FASTOD_DATA_CSV_H_
