// Columnar data plane primitives: interned value dictionaries and
// contiguous code columns.
//
// The discovery engines never touch Values on their hot paths; they run
// over per-column dense codes (data/encode.h). This header provides the
// two compact building blocks of that plane:
//
//   * CodeColumn — one contiguous uint32 allocation holding the dense
//     order-preserving code of every tuple, 4 bytes/row exactly. Codes
//     are bounded by the (int32) row count, so the indexing operator
//     returns them as int32_t and every downstream scan keeps using -1
//     sentinels unchanged; the raw uint32 view feeds radix passes.
//
//   * ValueDictionary — the interned sorted distinct values of one
//     column, code -> value. Immutable once built (reads need no lock),
//     with small flat storage: a tag byte and a 64-bit slot per entry
//     plus one shared string arena. The dictionary is what lets a
//     LoadedDataset drop its raw Value table entirely and still render
//     values (conditional bindings, reports) and merge-encode appended
//     deltas against a parent version.
#ifndef FASTOD_DATA_COLUMN_H_
#define FASTOD_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "data/value.h"

namespace fastod {

/// Dense order-preserving codes of one column, one contiguous uint32
/// array. Code order equals value order; equal values share a code.
class CodeColumn {
 public:
  CodeColumn() = default;
  CodeColumn(std::vector<uint32_t> codes, int32_t num_distinct)
      : codes_(std::move(codes)), num_distinct_(num_distinct) {
    codes_.shrink_to_fit();
  }

  /// Convenience for tests and the few callers that still assemble rank
  /// vectors by hand.
  static CodeColumn FromRanks(const std::vector<int32_t>& ranks,
                              int32_t num_distinct);

  int64_t size() const { return static_cast<int64_t>(codes_.size()); }

  /// Codes never exceed the int32 row count, so expose them signed: all
  /// sweep code compares against -1 sentinels without casts.
  int32_t operator[](int64_t row) const {
    FASTOD_DCHECK(row >= 0 && row < size());
    return static_cast<int32_t>(codes_[row]);
  }

  const uint32_t* data() const { return codes_.data(); }
  int32_t num_distinct() const { return num_distinct_; }

  /// Exact bytes of the contiguous allocation.
  int64_t ByteSize() const {
    return static_cast<int64_t>(codes_.capacity() * sizeof(uint32_t));
  }

  bool operator==(const CodeColumn& other) const = default;

 private:
  std::vector<uint32_t> codes_;
  int32_t num_distinct_ = 0;
};

/// The interned distinct values of one column in ascending value order
/// (code -> value). Storage is flat: one DataType tag byte and one
/// 64-bit slot per code (the integer, the bit-cast double, or the byte
/// offset of the string in the shared arena). Strings sort after every
/// other type, so their codes form a contiguous suffix and the arena
/// holds them back to back in code order.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  class Builder {
   public:
    /// Appends the value for the next code. Values must arrive in
    /// ascending order — exactly the order FromTable discovers ranks.
    void Add(const Value& value);
    ValueDictionary Build();

   private:
    // The flat arrays directly (ValueDictionary is incomplete here);
    // Build() moves them into place.
    std::vector<uint8_t> tags_;
    std::vector<int64_t> slots_;
    std::string arena_;
  };

  int32_t size() const { return static_cast<int32_t>(tags_.size()); }

  /// Materializes the value behind `code`.
  Value At(int32_t code) const;

  /// Three-way comparison of the interned value against `v` under the
  /// Value total order (<0, 0, >0).
  int Compare(int32_t code, const Value& v) const;

  /// Rendered form of the interned value ("NULL", "42", raw string).
  std::string ToString(int32_t code) const;

  /// Exact bytes across the flat arrays and the string arena.
  int64_t ByteSize() const {
    return static_cast<int64_t>(tags_.capacity() * sizeof(uint8_t) +
                                slots_.capacity() * sizeof(int64_t) +
                                arena_.capacity());
  }

 private:
  std::string_view StringAt(int32_t code) const;

  std::vector<uint8_t> tags_;   // DataType per code
  std::vector<int64_t> slots_;  // int / bit-cast double / arena offset
  std::string arena_;           // string payloads, in code order
};

}  // namespace fastod

#endif  // FASTOD_DATA_COLUMN_H_
