#include "data/dataset_store.h"

#include "common/fault.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/timer.h"

namespace fastod {

namespace {

int64_t PartitionBytes(const StrippedPartition& partition) {
  return static_cast<int64_t>(
      (partition.NumElements() + partition.NumClasses() + 1) *
      sizeof(int32_t));
}

/// Exact resident bytes of a dataset: the relation's contiguous code
/// columns and dictionary allocations plus the level-1 partitions.
int64_t DatasetBytes(const EncodedRelation& relation,
                     const std::vector<StrippedPartition>& singletons) {
  int64_t bytes = relation.ByteSize();
  for (const StrippedPartition& partition : singletons) {
    bytes += PartitionBytes(partition);
  }
  return bytes;
}

}  // namespace

Result<std::shared_ptr<const LoadedDataset>> LoadedDataset::Build(
    std::string id, Table table, std::string source) {
  WallTimer timer;
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  // make_shared needs a public constructor; the explicit new keeps it
  // private to this factory.
  std::shared_ptr<LoadedDataset> dataset(new LoadedDataset());
  dataset->id_ = std::move(id);
  dataset->source_ = std::move(source);
  dataset->relation_ = *std::move(encoded);
  // Version 1 has no append block: the whole relation is "base". The raw
  // table dies here — its values live on interned in the dictionaries.
  dataset->base_rows_ = dataset->relation_.NumRows();

  const EncodedRelation& relation = dataset->relation_;
  dataset->singletons_.reserve(relation.NumAttributes());
  for (int a = 0; a < relation.NumAttributes(); ++a) {
    dataset->singletons_.push_back(
        StrippedPartition::ForAttribute(relation.codes(a)));
  }
  dataset->approx_bytes_ = DatasetBytes(relation, dataset->singletons_);
  dataset->load_seconds_ = timer.ElapsedSeconds();
  return std::shared_ptr<const LoadedDataset>(std::move(dataset));
}

Result<std::shared_ptr<const LoadedDataset>> LoadedDataset::Append(
    const std::shared_ptr<const LoadedDataset>& base, Table delta) {
  FASTOD_CHECK(base != nullptr);
  if (delta.NumColumns() != base->NumAttributes()) {
    return Status::InvalidArgument(
        "append block has " + std::to_string(delta.NumColumns()) +
        " columns; dataset '" + base->id() + "' has " +
        std::to_string(base->NumAttributes()));
  }
  WallTimer timer;
  const int64_t n = base->NumRows();
  const int64_t d = delta.NumRows();
  const int cols = base->NumAttributes();

  std::shared_ptr<LoadedDataset> grown(new LoadedDataset());
  grown->id_ = base->id_;
  grown->source_ = base->source_;
  grown->version_ = base->version_ + 1;
  grown->base_rows_ = n;

  // The base schema wins (delta column names, if the block came with a
  // header, are positional).
  std::vector<CodeColumn> merged_codes;
  std::vector<ValueDictionary> merged_dicts;
  merged_codes.reserve(cols);
  merged_dicts.reserve(cols);
  for (int c = 0; c < cols; ++c) {
    const std::vector<Value>& delta_col = delta.column(c);
    const CodeColumn& old_codes = base->relation_.codes(c);
    const ValueDictionary& old_dict = base->relation_.dictionary(c);
    const int32_t old_distinct = old_dict.size();

    // Delta rows in value order, stable tiebreak like FromTable.
    std::vector<int32_t> order(d);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&delta_col](int32_t x, int32_t y) {
                int cmp = Value::Compare(delta_col[x], delta_col[y]);
                if (cmp != 0) return cmp < 0;
                return x < y;
              });

    // Merge the parent's dictionary with the delta's sorted values:
    // every old code shifts up by the count of unseen delta values
    // ordered before it, each delta row reads its merged code straight
    // off the walk, and the merged dictionary is built in the same pass
    // (parent representatives win ties, exactly like FromTable's
    // smallest-row-id interning on the concatenated column). The result
    // is dense and order-preserving — bit-for-bit what FromTable
    // produces on the concatenated table.
    ValueDictionary::Builder dict_builder;
    std::vector<int32_t> shift(old_distinct, 0);
    std::vector<uint32_t> delta_code(d, 0);
    int32_t next_code = 0;
    int32_t oi = 0;
    int64_t di = 0;
    while (oi < old_distinct || di < d) {
      int cmp;
      if (oi >= old_distinct) {
        cmp = 1;
      } else if (di >= d) {
        cmp = -1;
      } else {
        cmp = old_dict.Compare(oi, delta_col[order[di]]);
      }
      if (cmp <= 0) {
        dict_builder.Add(old_dict.At(oi));
        shift[oi] = next_code - oi;
        if (cmp == 0) {
          while (di < d && old_dict.Compare(oi, delta_col[order[di]]) == 0) {
            delta_code[order[di]] = static_cast<uint32_t>(next_code);
            ++di;
          }
        }
        ++oi;
      } else {
        const Value& value = delta_col[order[di]];
        dict_builder.Add(value);
        while (di < d && Value::Compare(value, delta_col[order[di]]) == 0) {
          delta_code[order[di]] = static_cast<uint32_t>(next_code);
          ++di;
        }
      }
      ++next_code;
    }

    std::vector<uint32_t> merged(static_cast<size_t>(n + d));
    for (int64_t i = 0; i < n; ++i) {
      int32_t old_code = old_codes[i];
      merged[i] = static_cast<uint32_t>(old_code + shift[old_code]);
    }
    for (int64_t j = 0; j < d; ++j) merged[n + j] = delta_code[j];
    merged_codes.emplace_back(std::move(merged), next_code);
    merged_dicts.push_back(dict_builder.Build());
  }

  grown->relation_ = EncodedRelation::FromColumns(
      base->relation_.schema(), std::move(merged_codes),
      std::move(merged_dicts));

  const EncodedRelation& relation = grown->relation_;
  grown->singletons_.reserve(cols);
  for (int a = 0; a < cols; ++a) {
    grown->singletons_.push_back(
        StrippedPartition::ForAttribute(relation.codes(a)));
  }
  grown->approx_bytes_ = DatasetBytes(relation, grown->singletons_);
  grown->load_seconds_ = timer.ElapsedSeconds();
  return std::shared_ptr<const LoadedDataset>(std::move(grown));
}

DatasetStore::DatasetStore(int64_t budget_bytes)
    : budget_bytes_(budget_bytes < 0 ? 0 : budget_bytes) {}

DatasetStore& DatasetStore::Global() {
  static DatasetStore* store = new DatasetStore();
  return *store;
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::PutTable(
    const std::string& id, Table table, std::string source) {
  Result<std::shared_ptr<const LoadedDataset>> dataset =
      LoadedDataset::Build(id, std::move(table), std::move(source));
  if (!dataset.ok()) return dataset.status();
  return Insert(*std::move(dataset));
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::PutCsvFile(
    const std::string& id, const std::string& path,
    const CsvOptions& options) {
  Result<Table> table = ReadCsvFile(path, options);
  if (!table.ok()) return table.status();
  return PutTable(id, *std::move(table), "csv:" + path);
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::PutCsvString(
    const std::string& id, const std::string& text,
    const CsvOptions& options) {
  Result<Table> table = ReadCsvString(text, options);
  if (!table.ok()) return table.status();
  return PutTable(id, *std::move(table), "inline");
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::Insert(
    std::shared_ptr<const LoadedDataset> dataset) {
  if (FASTOD_FAULT_POINT("dataset_store.insert")) {
    return Status::ResourceExhausted(
        "injected fault: dataset_store.insert");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(dataset->id());
  if (it != datasets_.end()) {
    return Status::FailedPrecondition(
        "dataset '" + dataset->id() +
        "' already exists; erase it before reloading");
  }
  if (budget_bytes_ > 0) {
    // Decide fit against the *pinned* floor before evicting anything: an
    // insert that can never fit (oversized, or blocked by pinned
    // residents) must be refused without flushing healthy idle entries.
    int64_t pinned_bytes = 0;
    for (const auto& [id, entry] : datasets_) {
      if (entry.dataset.use_count() != 1) {
        pinned_bytes += entry.dataset->ApproxBytes();
      }
    }
    if (pinned_bytes + dataset->ApproxBytes() > budget_bytes_) {
      return Status::ResourceExhausted(
          "dataset '" + dataset->id() + "' (" +
          std::to_string(dataset->ApproxBytes()) +
          " bytes) does not fit the store budget (" +
          std::to_string(budget_bytes_) + " bytes, " +
          std::to_string(pinned_bytes) +
          " pinned); erase or unpin datasets first");
    }
    EvictFor(dataset->ApproxBytes());
  }
  Entry entry;
  entry.dataset = dataset;
  entry.last_used = ++clock_;
  total_bytes_ += dataset->ApproxBytes();
  datasets_.emplace(dataset->id(), std::move(entry));
  return dataset;
}

namespace {

void PruneHistory(
    std::vector<std::weak_ptr<const LoadedDataset>>& history) {
  history.erase(
      std::remove_if(history.begin(), history.end(),
                     [](const std::weak_ptr<const LoadedDataset>& slot) {
                       return slot.expired();
                     }),
      history.end());
}

}  // namespace

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::AppendRows(
    const std::string& id, Table delta) {
  if (FASTOD_FAULT_POINT("dataset_store.append")) {
    return Status::ResourceExhausted("injected fault: dataset_store.append");
  }
  std::shared_ptr<const LoadedDataset> base;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = datasets_.find(id);
    if (it == datasets_.end()) {
      return Status::NotFound("no dataset with id '" + id + "'");
    }
    base = it->second.dataset;
  }
  // Merge-encode outside the lock; concurrent sessions keep reading
  // `base` undisturbed, including while we splice the new version in.
  Result<std::shared_ptr<const LoadedDataset>> grown =
      LoadedDataset::Append(base, std::move(delta));
  if (!grown.ok()) return grown.status();

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + id +
                            "' was erased during the append");
  }
  Entry& entry = it->second;
  if (entry.dataset != base) {
    return Status::FailedPrecondition(
        "dataset '" + id +
        "' changed during the append; retry against the current version");
  }
  if (budget_bytes_ > 0) {
    int64_t pinned_bytes = 0;
    for (const auto& [other_id, other] : datasets_) {
      if (other_id == id) continue;
      if (other.dataset.use_count() != 1) {
        pinned_bytes += other.dataset->ApproxBytes();
      }
    }
    if (pinned_bytes + (*grown)->ApproxBytes() > budget_bytes_) {
      return Status::ResourceExhausted(
          "appending to dataset '" + id + "' would grow it to " +
          std::to_string((*grown)->ApproxBytes()) +
          " bytes, over the store budget (" + std::to_string(budget_bytes_) +
          " bytes, " + std::to_string(pinned_bytes) +
          " pinned elsewhere); erase or unpin datasets first");
    }
    // The superseded version leaves the accounting now (it survives only
    // under session pins, outside the budget); evict idle entries if the
    // grown version still does not fit. This entry cannot be victimized:
    // the local `base` reference keeps its use_count above 1.
    total_bytes_ -= base->ApproxBytes();
    EvictFor((*grown)->ApproxBytes());
    total_bytes_ += (*grown)->ApproxBytes();
  } else {
    total_bytes_ += (*grown)->ApproxBytes() - base->ApproxBytes();
  }
  PruneHistory(entry.history);
  entry.history.push_back(base);
  entry.dataset = *grown;
  entry.last_used = ++clock_;
  return *std::move(grown);
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::AppendCsvString(
    const std::string& id, const std::string& text,
    const CsvOptions& options) {
  Result<Table> table = ReadCsvString(text, options);
  if (!table.ok()) return table.status();
  return AppendRows(id, *std::move(table));
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::AppendCsvFile(
    const std::string& id, const std::string& path,
    const CsvOptions& options) {
  Result<Table> table = ReadCsvFile(path, options);
  if (!table.ok()) return table.status();
  return AppendRows(id, *std::move(table));
}

void DatasetStore::EvictFor(int64_t needed) {
  while (total_bytes_ + needed > budget_bytes_) {
    // LRU among unpinned entries. use_count()==1 means the store holds
    // the only reference: every outside copy is handed out under this
    // mutex, so the count cannot rise concurrently — only drop, which
    // just delays eviction to the next pass.
    auto victim = datasets_.end();
    for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
      if (it->second.dataset.use_count() != 1) continue;
      if (victim == datasets_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == datasets_.end()) return;  // everything pinned
    total_bytes_ -= victim->second.dataset->ApproxBytes();
    datasets_.erase(victim);
    ++evictions_;
  }
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::Get(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  it->second.last_used = ++clock_;
  ++it->second.hits;
  return it->second.dataset;
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::Get(
    const std::string& id, int64_t version) {
  if (version <= 0) return Get(id);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  Entry& entry = it->second;
  if (entry.dataset->version() == version) {
    entry.last_used = ++clock_;
    ++entry.hits;
    return entry.dataset;
  }
  // Superseded versions: alive exactly while some session pins them. No
  // LRU bump — they are outside the budget, the store holds no reference.
  for (auto rit = entry.history.rbegin(); rit != entry.history.rend();
       ++rit) {
    std::shared_ptr<const LoadedDataset> held = rit->lock();
    if (held != nullptr && held->version() == version) {
      ++entry.hits;
      return held;
    }
  }
  return Status::NotFound(
      "version " + std::to_string(version) + " of dataset '" + id +
      "' is not resident (current is version " +
      std::to_string(entry.dataset->version()) +
      "; superseded versions live only while a session pins them)");
}

Status DatasetStore::Erase(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  total_bytes_ -= it->second.dataset->ApproxBytes();
  datasets_.erase(it);
  return Status::Ok();
}

namespace {

DatasetInfo InfoOf(
    const std::string& id,
    const std::shared_ptr<const LoadedDataset>& dataset, int64_t hits,
    const std::vector<std::weak_ptr<const LoadedDataset>>& history) {
  DatasetInfo info;
  info.id = id;
  info.source = dataset->source();
  info.rows = dataset->NumRows();
  info.columns = dataset->NumAttributes();
  info.bytes = dataset->ApproxBytes();
  info.hits = hits;
  info.pinned = dataset.use_count() > 1;
  info.version = dataset->version();

  DatasetVersionInfo current;
  current.version = dataset->version();
  current.rows = dataset->NumRows();
  current.bytes = dataset->ApproxBytes();
  current.pinned = info.pinned;
  current.current = true;
  info.versions.push_back(current);
  // Retained (superseded) versions, newest first. A lockable slot means
  // some session still pins that version — it is alive but unbudgeted.
  for (auto rit = history.rbegin(); rit != history.rend(); ++rit) {
    std::shared_ptr<const LoadedDataset> held = rit->lock();
    if (held == nullptr) continue;
    DatasetVersionInfo old;
    old.version = held->version();
    old.rows = held->NumRows();
    old.bytes = held->ApproxBytes();
    old.pinned = true;
    info.retained_bytes += old.bytes;
    info.versions.push_back(old);
  }
  return info;
}

}  // namespace

bool DatasetStore::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.find(id) != datasets_.end();
}

Result<DatasetInfo> DatasetStore::Info(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  return InfoOf(id, it->second.dataset, it->second.hits,
                it->second.history);
}

std::vector<DatasetInfo> DatasetStore::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [id, entry] : datasets_) {
    out.push_back(InfoOf(id, entry.dataset, entry.hits, entry.history));
  }
  return out;
}

int64_t DatasetStore::RetainedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t bytes = 0;
  for (const auto& [id, entry] : datasets_) {
    for (const auto& slot : entry.history) {
      std::shared_ptr<const LoadedDataset> held = slot.lock();
      if (held != nullptr) bytes += held->ApproxBytes();
    }
  }
  return bytes;
}

void DatasetStore::SetBudgetBytes(int64_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes < 0 ? 0 : budget_bytes;
  if (budget_bytes_ > 0) EvictFor(0);
}

int64_t DatasetStore::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

int64_t DatasetStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

int64_t DatasetStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(datasets_.size());
}

int64_t DatasetStore::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace fastod
