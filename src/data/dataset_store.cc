#include "data/dataset_store.h"

#include "common/fault.h"

#include <utility>

#include "common/timer.h"

namespace fastod {

namespace {

/// Resident bytes of one column of raw cells: the Value footprint plus
/// string heap allocations (small strings may actually live inline, so
/// this over- rather than under-counts — the safe direction for a cap).
int64_t ColumnBytes(const std::vector<Value>& column) {
  int64_t bytes = static_cast<int64_t>(column.size() * sizeof(Value));
  for (const Value& value : column) {
    if (value.type() == DataType::kString) {
      bytes += static_cast<int64_t>(value.AsString().capacity());
    }
  }
  return bytes;
}

int64_t PartitionBytes(const StrippedPartition& partition) {
  return static_cast<int64_t>(
      (partition.NumElements() + partition.NumClasses() + 1) *
      sizeof(int32_t));
}

}  // namespace

Result<std::shared_ptr<const LoadedDataset>> LoadedDataset::Build(
    std::string id, Table table, std::string source) {
  WallTimer timer;
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  // make_shared needs a public constructor; the explicit new keeps it
  // private to this factory.
  std::shared_ptr<LoadedDataset> dataset(new LoadedDataset());
  dataset->id_ = std::move(id);
  dataset->source_ = std::move(source);
  dataset->table_ = std::move(table);
  dataset->relation_ = *std::move(encoded);

  const EncodedRelation& relation = dataset->relation_;
  dataset->singletons_.reserve(relation.NumAttributes());
  int64_t bytes = 0;
  for (int a = 0; a < relation.NumAttributes(); ++a) {
    dataset->singletons_.push_back(StrippedPartition::ForAttribute(
        relation.ranks(a), relation.NumDistinct(a)));
    bytes += static_cast<int64_t>(relation.ranks(a).size() * sizeof(int32_t));
    bytes += PartitionBytes(dataset->singletons_.back());
    bytes += ColumnBytes(dataset->table_.column(a));
  }
  dataset->approx_bytes_ = bytes;
  dataset->load_seconds_ = timer.ElapsedSeconds();
  return std::shared_ptr<const LoadedDataset>(std::move(dataset));
}

DatasetStore::DatasetStore(int64_t budget_bytes)
    : budget_bytes_(budget_bytes < 0 ? 0 : budget_bytes) {}

DatasetStore& DatasetStore::Global() {
  static DatasetStore* store = new DatasetStore();
  return *store;
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::PutTable(
    const std::string& id, Table table, std::string source) {
  Result<std::shared_ptr<const LoadedDataset>> dataset =
      LoadedDataset::Build(id, std::move(table), std::move(source));
  if (!dataset.ok()) return dataset.status();
  return Insert(*std::move(dataset));
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::PutCsvFile(
    const std::string& id, const std::string& path,
    const CsvOptions& options) {
  Result<Table> table = ReadCsvFile(path, options);
  if (!table.ok()) return table.status();
  return PutTable(id, *std::move(table), "csv:" + path);
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::PutCsvString(
    const std::string& id, const std::string& text,
    const CsvOptions& options) {
  Result<Table> table = ReadCsvString(text, options);
  if (!table.ok()) return table.status();
  return PutTable(id, *std::move(table), "inline");
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::Insert(
    std::shared_ptr<const LoadedDataset> dataset) {
  if (FASTOD_FAULT_POINT("dataset_store.insert")) {
    return Status::ResourceExhausted(
        "injected fault: dataset_store.insert");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(dataset->id());
  if (it != datasets_.end()) {
    return Status::FailedPrecondition(
        "dataset '" + dataset->id() +
        "' already exists; erase it before reloading");
  }
  if (budget_bytes_ > 0) {
    // Decide fit against the *pinned* floor before evicting anything: an
    // insert that can never fit (oversized, or blocked by pinned
    // residents) must be refused without flushing healthy idle entries.
    int64_t pinned_bytes = 0;
    for (const auto& [id, entry] : datasets_) {
      if (entry.dataset.use_count() != 1) {
        pinned_bytes += entry.dataset->ApproxBytes();
      }
    }
    if (pinned_bytes + dataset->ApproxBytes() > budget_bytes_) {
      return Status::ResourceExhausted(
          "dataset '" + dataset->id() + "' (" +
          std::to_string(dataset->ApproxBytes()) +
          " bytes) does not fit the store budget (" +
          std::to_string(budget_bytes_) + " bytes, " +
          std::to_string(pinned_bytes) +
          " pinned); erase or unpin datasets first");
    }
    EvictFor(dataset->ApproxBytes());
  }
  Entry entry;
  entry.dataset = dataset;
  entry.last_used = ++clock_;
  total_bytes_ += dataset->ApproxBytes();
  datasets_.emplace(dataset->id(), std::move(entry));
  return dataset;
}

void DatasetStore::EvictFor(int64_t needed) {
  while (total_bytes_ + needed > budget_bytes_) {
    // LRU among unpinned entries. use_count()==1 means the store holds
    // the only reference: every outside copy is handed out under this
    // mutex, so the count cannot rise concurrently — only drop, which
    // just delays eviction to the next pass.
    auto victim = datasets_.end();
    for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
      if (it->second.dataset.use_count() != 1) continue;
      if (victim == datasets_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == datasets_.end()) return;  // everything pinned
    total_bytes_ -= victim->second.dataset->ApproxBytes();
    datasets_.erase(victim);
    ++evictions_;
  }
}

Result<std::shared_ptr<const LoadedDataset>> DatasetStore::Get(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  it->second.last_used = ++clock_;
  ++it->second.hits;
  return it->second.dataset;
}

Status DatasetStore::Erase(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  total_bytes_ -= it->second.dataset->ApproxBytes();
  datasets_.erase(it);
  return Status::Ok();
}

namespace {

DatasetInfo InfoOf(const std::string& id,
                   const std::shared_ptr<const LoadedDataset>& dataset,
                   int64_t hits) {
  DatasetInfo info;
  info.id = id;
  info.source = dataset->source();
  info.rows = dataset->NumRows();
  info.columns = dataset->NumAttributes();
  info.bytes = dataset->ApproxBytes();
  info.hits = hits;
  info.pinned = dataset.use_count() > 1;
  return info;
}

}  // namespace

bool DatasetStore::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.find(id) != datasets_.end();
}

Result<DatasetInfo> DatasetStore::Info(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset with id '" + id + "'");
  }
  return InfoOf(id, it->second.dataset, it->second.hits);
}

std::vector<DatasetInfo> DatasetStore::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [id, entry] : datasets_) {
    out.push_back(InfoOf(id, entry.dataset, entry.hits));
  }
  return out;
}

void DatasetStore::SetBudgetBytes(int64_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes < 0 ? 0 : budget_bytes;
  if (budget_bytes_ > 0) EvictFor(0);
}

int64_t DatasetStore::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

int64_t DatasetStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

int64_t DatasetStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(datasets_.size());
}

int64_t DatasetStore::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace fastod
