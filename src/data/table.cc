#include "data/table.h"

#include <utility>

#include "common/macros.h"

namespace fastod {

Table::Table(Schema schema, std::vector<std::vector<Value>> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  FASTOD_CHECK(static_cast<int>(columns_.size()) == schema_.NumAttributes());
  for (size_t c = 1; c < columns_.size(); ++c) {
    FASTOD_CHECK(columns_[c].size() == columns_[0].size());
  }
}

const Value& Table::at(int64_t row, int col) const {
  FASTOD_DCHECK(col >= 0 && col < NumColumns());
  FASTOD_DCHECK(row >= 0 && row < NumRows());
  return columns_[col][row];
}

const std::vector<Value>& Table::column(int col) const {
  FASTOD_CHECK(col >= 0 && col < NumColumns());
  return columns_[col];
}

Table Table::Project(const std::vector<int>& column_indices) const {
  std::vector<AttributeDef> defs;
  std::vector<std::vector<Value>> cols;
  defs.reserve(column_indices.size());
  cols.reserve(column_indices.size());
  for (int c : column_indices) {
    FASTOD_CHECK(c >= 0 && c < NumColumns());
    defs.push_back(schema_.attribute(c));
    cols.push_back(columns_[c]);
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

Table Table::Head(int64_t n) const {
  if (n >= NumRows()) return *this;
  std::vector<std::vector<Value>> cols(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    cols[c].assign(columns_[c].begin(), columns_[c].begin() + n);
  }
  return Table(schema_, std::move(cols));
}

Table Table::SelectRows(const std::vector<int64_t>& row_indices) const {
  std::vector<std::vector<Value>> cols(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    cols[c].reserve(row_indices.size());
    for (int64_t r : row_indices) {
      FASTOD_CHECK(r >= 0 && r < NumRows());
      cols[c].push_back(columns_[c][r]);
    }
  }
  return Table(schema_, std::move(cols));
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out;
  for (int c = 0; c < NumColumns(); ++c) {
    if (c > 0) out += " | ";
    out += schema_.name(c);
  }
  out += "\n";
  int64_t limit = NumRows() < max_rows ? NumRows() : max_rows;
  for (int64_t r = 0; r < limit; ++r) {
    for (int c = 0; c < NumColumns(); ++c) {
      if (c > 0) out += " | ";
      out += at(r, c).ToString();
    }
    out += "\n";
  }
  if (limit < NumRows()) {
    out += "... (" + std::to_string(NumRows() - limit) + " more rows)\n";
  }
  return out;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.NumAttributes());
}

Status TableBuilder::AddRow(std::vector<Value> row) {
  if (static_cast<int>(row.size()) != schema_.NumAttributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(schema_.NumAttributes()) + " attributes");
  }
  for (int c = 0; c < schema_.NumAttributes(); ++c) {
    if (!row[c].is_null() && row[c].type() != schema_.type(c)) {
      return Status::InvalidArgument(
          "column '" + schema_.name(c) + "' expects " +
          DataTypeName(schema_.type(c)) + ", got " +
          DataTypeName(row[c].type()));
    }
  }
  AddRowUnchecked(std::move(row));
  return Status::Ok();
}

void TableBuilder::AddRowUnchecked(std::vector<Value> row) {
  FASTOD_DCHECK(static_cast<int>(row.size()) == schema_.NumAttributes());
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
}

Table TableBuilder::Build() {
  Table t(schema_, std::move(columns_));
  columns_.clear();
  columns_.resize(schema_.NumAttributes());
  return t;
}

}  // namespace fastod
