// Load-once, discover-many: a process-wide registry of immutable loaded
// relations shared across discovery sessions.
//
// Every DiscoverySession used to parse, type-infer and dictionary-encode
// its own CSV; a server answering repeated discoveries over the same
// relation paid that preprocessing per request. TANE-style systems show
// input preparation and partition construction dominating at scale, so a
// LoadedDataset captures the whole pipeline once — the columnar
// EncodedRelation (per-column interned value dictionary plus contiguous
// uint32 code column; the raw Table is *not* retained) and the level-1
// single-attribute stripped partitions Π*_{A} every level-wise engine
// builds first — and any number of sessions (concurrent, mixed-algorithm)
// run over the same instance by shared_ptr.
//
// The DatasetStore is the registry: datasets are keyed by caller-chosen
// id, the store holds one reference each, and sessions pin entries simply
// by holding the shared_ptr Get() returned. A configurable memory budget
// bounds residency: when an insert would exceed it, the store evicts
// unpinned entries (use_count == 1, i.e. no live session) in
// least-recently-used order; pinned entries are never evicted — an insert
// that cannot fit even after evicting everything unpinned is refused with
// ResourceExhausted rather than destroying data under running sessions.
// Eviction only drops the store's reference: a session that raced its
// dataset into eviction keeps it alive until the run finishes.
//
// All DatasetStore methods are thread-safe. LoadedDataset is deeply
// immutable after construction, so shared use across threads needs no
// further synchronization.
#ifndef FASTOD_DATA_DATASET_STORE_H_
#define FASTOD_DATA_DATASET_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/csv.h"
#include "data/encode.h"
#include "data/table.h"
#include "partition/stripped_partition.h"

namespace fastod {

/// One fully preprocessed relation: dictionary-interned columnar encoding
/// plus the level-1 partitions. Construction does all the work; the
/// object never changes. The raw Table is consumed, not kept — values
/// survive only interned in the per-column dictionaries.
///
/// Datasets are *versioned*: Build() produces version 1, and Append()
/// derives version k+1 from version k plus a block of delta rows. Each
/// version is itself deeply immutable — an append never mutates its
/// parent, it merge-encodes only the delta rows against the parent's
/// value dictionaries (shifting existing codes where new values
/// interleave) and rebuilds the level-1 partitions linearly, so sessions
/// running over the parent are undisturbed and a new session sees the
/// grown relation.
class LoadedDataset {
 public:
  /// Encodes `table` and prebuilds Π*_{A} for every attribute A. Fails on
  /// relations the engines cannot represent (> 64 attributes). `source`
  /// is a human-readable provenance note ("csv:/data/flight.csv", ...).
  static Result<std::shared_ptr<const LoadedDataset>> Build(
      std::string id, Table table, std::string source = "table");

  /// Version base->version()+1: `base`'s rows followed by `delta`'s rows
  /// (column count must match; `base`'s schema wins). Delta rows are
  /// merge-encoded against the parent's value dictionaries — O(rows)
  /// integer work plus O(delta log delta) value comparisons — and the
  /// resulting codes and merged dictionaries are bit-for-bit what
  /// FromTable would produce on the concatenated table. An empty delta
  /// yields a new (identical but renumbered) version.
  static Result<std::shared_ptr<const LoadedDataset>> Append(
      const std::shared_ptr<const LoadedDataset>& base, Table delta);

  const std::string& id() const { return id_; }
  const std::string& source() const { return source_; }
  const EncodedRelation& relation() const { return relation_; }
  const Schema& schema() const { return relation_.schema(); }

  /// 1 for Build()-loaded datasets; parent version + 1 after Append().
  int64_t version() const { return version_; }
  /// Rows inherited from the parent version — the first delta row index
  /// of this version's append block. Equals NumRows() for version 1 (no
  /// append happened, the delta is empty).
  int64_t base_rows() const { return base_rows_; }
  /// Rows this version appended over its parent.
  int64_t delta_rows() const { return NumRows() - base_rows_; }

  /// Prebuilt Π*_{A} for attribute A (size NumAttributes()) — the exact
  /// partitions FASTOD/TANE would construct at lattice level 1, so
  /// engines seed their caches from here instead of rebuilding.
  const std::vector<StrippedPartition>& singleton_partitions() const {
    return singletons_;
  }

  int64_t NumRows() const { return relation_.NumRows(); }
  int NumAttributes() const { return relation_.NumAttributes(); }

  /// Exact resident footprint — code columns + value dictionaries +
  /// level-1 partitions, summed from the contiguous allocations — the
  /// unit the store's memory budget is accounted in.
  int64_t ApproxBytes() const { return approx_bytes_; }

  /// Wall-clock of the one-time preprocessing (parse excluded).
  double load_seconds() const { return load_seconds_; }

 private:
  LoadedDataset() = default;

  std::string id_;
  std::string source_;
  EncodedRelation relation_;
  std::vector<StrippedPartition> singletons_;
  int64_t version_ = 1;
  int64_t base_rows_ = 0;
  int64_t approx_bytes_ = 0;
  double load_seconds_ = 0.0;
};

/// One resident (or session-retained) version of a dataset.
struct DatasetVersionInfo {
  int64_t version = 0;
  int64_t rows = 0;
  int64_t bytes = 0;
  /// True when a reference besides the store's is live (for retained
  /// superseded versions, always — sessions are the only thing keeping
  /// them alive).
  bool pinned = false;
  /// False for superseded versions the store no longer accounts for.
  bool current = false;
};

/// Snapshot row of DatasetStore::List(). `rows`/`bytes` describe the
/// current (latest) version; superseded versions still pinned by running
/// sessions are accounted separately so eviction telemetry stays truthful
/// after appends.
struct DatasetInfo {
  std::string id;
  std::string source;
  int64_t rows = 0;
  int columns = 0;
  int64_t bytes = 0;
  /// Get() calls served (sessions bound) since insertion.
  int64_t hits = 0;
  /// True when at least one reference besides the store's is live.
  bool pinned = false;
  /// Version of the current entry (1 until the first append).
  int64_t version = 1;
  /// Summed bytes of superseded versions kept alive by sessions — memory
  /// the process pays for beyond `bytes`, outside the store's budget.
  int64_t retained_bytes = 0;
  /// Every live version, current first, then retained ones descending.
  std::vector<DatasetVersionInfo> versions;
};

class DatasetStore {
 public:
  /// `budget_bytes` caps the summed ApproxBytes of resident datasets;
  /// 0 means unlimited.
  explicit DatasetStore(int64_t budget_bytes = 0);

  DatasetStore(const DatasetStore&) = delete;
  DatasetStore& operator=(const DatasetStore&) = delete;

  /// The process-wide store the C ABI (and any default-constructed
  /// service) shares. Unlimited budget until SetBudgetBytes.
  static DatasetStore& Global();

  // ---- Insertion ----------------------------------------------------
  /// Each Put preprocesses outside the lock, then registers the dataset
  /// under `id`. Duplicate ids are refused (FailedPrecondition) — ids
  /// name immutable data, so silently replacing one would redirect
  /// future sessions mid-stream. Returns the inserted dataset, pinned.
  Result<std::shared_ptr<const LoadedDataset>> PutTable(
      const std::string& id, Table table, std::string source = "table");
  Result<std::shared_ptr<const LoadedDataset>> PutCsvFile(
      const std::string& id, const std::string& path,
      const CsvOptions& options = CsvOptions());
  Result<std::shared_ptr<const LoadedDataset>> PutCsvString(
      const std::string& id, const std::string& text,
      const CsvOptions& options = CsvOptions());

  // ---- Appends ------------------------------------------------------
  /// Appends `delta`'s rows to the dataset registered under `id`,
  /// installing the new version as the entry's current dataset. The
  /// superseded version leaves the store's budget accounting immediately
  /// but stays alive while running sessions pin it (and remains
  /// addressable through Get(id, version) until they let go). Returns
  /// the new version, pinned. Fails with NotFound for unknown ids,
  /// FailedPrecondition when another append raced this one, and
  /// ResourceExhausted when the grown dataset cannot fit the budget.
  Result<std::shared_ptr<const LoadedDataset>> AppendRows(
      const std::string& id, Table delta);
  Result<std::shared_ptr<const LoadedDataset>> AppendCsvString(
      const std::string& id, const std::string& text,
      const CsvOptions& options = CsvOptions());
  Result<std::shared_ptr<const LoadedDataset>> AppendCsvFile(
      const std::string& id, const std::string& path,
      const CsvOptions& options = CsvOptions());

  // ---- Lookup -------------------------------------------------------
  /// The dataset registered under `id` (NotFound otherwise). Holding the
  /// returned pointer pins the entry against eviction; it stays valid
  /// even if the entry is evicted or erased afterwards.
  Result<std::shared_ptr<const LoadedDataset>> Get(const std::string& id);

  /// A specific version: the current one, or a superseded version still
  /// alive under a session's pin. `version` <= 0 means latest. NotFound
  /// when the version never existed or is no longer resident (superseded
  /// versions die with their last pinning session).
  Result<std::shared_ptr<const LoadedDataset>> Get(const std::string& id,
                                                   int64_t version);

  /// True iff `id` is resident. Unlike Get(), does not pin, bump the
  /// LRU clock, or count a hit — for existence probes (e.g. the
  /// server's auto-id generation).
  bool Contains(const std::string& id) const;

  /// One dataset's info row without snapshotting the whole store.
  Result<DatasetInfo> Info(const std::string& id) const;

  /// Drops the store's reference (NotFound for unknown ids). Live
  /// sessions keep the dataset alive; new Get()s fail.
  Status Erase(const std::string& id);

  /// Insertion-ordered snapshot (ids sort lexicographically).
  std::vector<DatasetInfo> List() const;

  // ---- Budget -------------------------------------------------------
  /// Re-bounds the store, evicting unpinned LRU entries as needed to get
  /// under the new budget (pinned entries may keep the total above it).
  void SetBudgetBytes(int64_t budget_bytes);
  int64_t budget_bytes() const;

  /// Summed ApproxBytes of resident datasets.
  int64_t TotalBytes() const;
  int64_t size() const;
  /// Total entries evicted by the budget (not Erase) since construction.
  int64_t evictions() const;

  /// Summed ApproxBytes of superseded versions still alive under session
  /// pins, across all entries (memory outside the budget).
  int64_t RetainedBytes() const;

 private:
  struct Entry {
    std::shared_ptr<const LoadedDataset> dataset;
    /// Superseded versions, oldest first. Weak: the store deliberately
    /// does not keep old versions alive — they live exactly as long as
    /// some session pins them, and expired slots are pruned lazily.
    std::vector<std::weak_ptr<const LoadedDataset>> history;
    uint64_t last_used = 0;
    int64_t hits = 0;
  };

  Result<std::shared_ptr<const LoadedDataset>> Insert(
      std::shared_ptr<const LoadedDataset> dataset);
  /// Evicts unpinned entries, LRU first, until `needed` fits under the
  /// budget or nothing unpinned remains. Caller holds mutex_.
  void EvictFor(int64_t needed);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> datasets_;  // guarded by mutex_
  int64_t budget_bytes_ = 0;               // guarded by mutex_
  int64_t total_bytes_ = 0;                // guarded by mutex_
  int64_t evictions_ = 0;                  // guarded by mutex_
  uint64_t clock_ = 0;                     // guarded by mutex_
};

}  // namespace fastod

#endif  // FASTOD_DATA_DATASET_STORE_H_
