#include "data/encode.h"

#include <algorithm>
#include <numeric>

#include "od/attribute_set.h"

namespace fastod {

Result<EncodedRelation> EncodedRelation::FromTable(const Table& table) {
  if (table.NumColumns() > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument(
        "relation has " + std::to_string(table.NumColumns()) +
        " attributes; the discovery lattice supports at most " +
        std::to_string(AttributeSet::kMaxAttributes));
  }
  EncodedRelation rel;
  rel.schema_ = table.schema();
  rel.num_rows_ = table.NumRows();
  rel.codes_.resize(table.NumColumns());
  rel.dicts_.resize(table.NumColumns());

  const int64_t n = table.NumRows();
  std::vector<int32_t> order(n);
  for (int c = 0; c < table.NumColumns(); ++c) {
    const std::vector<Value>& col = table.column(c);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&col](int32_t a, int32_t b) {
      int cmp = Value::Compare(col[a], col[b]);
      if (cmp != 0) return cmp < 0;
      return a < b;  // stable tiebreak for determinism
    });
    std::vector<uint32_t> codes(n, 0);
    ValueDictionary::Builder dict;
    int32_t next_code = -1;
    for (int64_t i = 0; i < n; ++i) {
      if (i == 0 || Value::Compare(col[order[i - 1]], col[order[i]]) != 0) {
        ++next_code;
        // The group's first tuple has the smallest row id carrying this
        // value (the sort tiebreak), so it is the interned representative.
        dict.Add(col[order[i]]);
      }
      codes[order[i]] = static_cast<uint32_t>(next_code);
    }
    rel.codes_[c] = CodeColumn(std::move(codes), n == 0 ? 0 : next_code + 1);
    rel.dicts_[c] = dict.Build();
  }
  return rel;
}

EncodedRelation EncodedRelation::FromColumns(
    Schema schema, std::vector<CodeColumn> codes,
    std::vector<ValueDictionary> dicts) {
  FASTOD_CHECK(codes.size() == dicts.size());
  EncodedRelation rel;
  rel.num_rows_ = codes.empty() ? 0 : codes[0].size();
  rel.schema_ = std::move(schema);
  rel.codes_ = std::move(codes);
  rel.dicts_ = std::move(dicts);
  return rel;
}

int64_t EncodedRelation::ByteSize() const {
  int64_t bytes = 0;
  for (const CodeColumn& col : codes_) bytes += col.ByteSize();
  for (const ValueDictionary& dict : dicts_) bytes += dict.ByteSize();
  return bytes;
}

}  // namespace fastod
