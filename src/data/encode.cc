#include "data/encode.h"

#include <algorithm>
#include <numeric>

#include "od/attribute_set.h"

namespace fastod {

Result<EncodedRelation> EncodedRelation::FromTable(const Table& table) {
  if (table.NumColumns() > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument(
        "relation has " + std::to_string(table.NumColumns()) +
        " attributes; the discovery lattice supports at most " +
        std::to_string(AttributeSet::kMaxAttributes));
  }
  EncodedRelation rel;
  rel.schema_ = table.schema();
  rel.num_rows_ = table.NumRows();
  rel.ranks_.resize(table.NumColumns());
  rel.num_distinct_.resize(table.NumColumns(), 0);

  const int64_t n = table.NumRows();
  std::vector<int32_t> order(n);
  for (int c = 0; c < table.NumColumns(); ++c) {
    const std::vector<Value>& col = table.column(c);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&col](int32_t a, int32_t b) {
      int cmp = Value::Compare(col[a], col[b]);
      if (cmp != 0) return cmp < 0;
      return a < b;  // stable tiebreak for determinism
    });
    std::vector<int32_t>& ranks = rel.ranks_[c];
    ranks.assign(n, 0);
    int32_t next_rank = -1;
    for (int64_t i = 0; i < n; ++i) {
      if (i == 0 || Value::Compare(col[order[i - 1]], col[order[i]]) != 0) {
        ++next_rank;
      }
      ranks[order[i]] = next_rank;
    }
    rel.num_distinct_[c] = n == 0 ? 0 : next_rank + 1;
  }
  return rel;
}

EncodedRelation EncodedRelation::FromRanks(
    Schema schema, std::vector<std::vector<int32_t>> ranks,
    std::vector<int32_t> num_distinct) {
  FASTOD_CHECK(ranks.size() == num_distinct.size());
  EncodedRelation rel;
  rel.num_rows_ = ranks.empty() ? 0 : static_cast<int64_t>(ranks[0].size());
  rel.schema_ = std::move(schema);
  rel.ranks_ = std::move(ranks);
  rel.num_distinct_ = std::move(num_distinct);
  return rel;
}

}  // namespace fastod
