#include "data/value.h"

#include <cstdio>

#include "common/macros.h"

namespace fastod {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt;
    case 2:
      return DataType::kDouble;
    case 3:
      return DataType::kString;
  }
  return DataType::kNull;
}

int64_t Value::AsInt() const {
  FASTOD_DCHECK(std::holds_alternative<int64_t>(rep_));
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  FASTOD_DCHECK(std::holds_alternative<double>(rep_));
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  FASTOD_DCHECK(std::holds_alternative<std::string>(rep_));
  return std::get<std::string>(rep_);
}

double Value::NumericValue() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  FASTOD_DCHECK(std::holds_alternative<double>(rep_));
  return std::get<double>(rep_);
}

namespace {

// Rank of a type in the cross-type total order: null < numeric < string.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kInt:
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:  // both null
      return 0;
    case 1: {  // both numeric
      // Exact comparison when both are ints avoids double rounding for
      // values beyond 2^53.
      if (a.type() == DataType::kInt && b.type() == DataType::kInt) {
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      double x = a.NumericValue();
      double y = b.NumericValue();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {  // both strings
      const std::string& x = a.AsString();
      const std::string& y = b.AsString();
      int c = x.compare(y);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case DataType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace fastod
