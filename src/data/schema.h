// Relation schemas: ordered attribute (column) definitions.
#ifndef FASTOD_DATA_SCHEMA_H_
#define FASTOD_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace fastod {

/// One attribute: a name and a declared type.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kString;
};

/// An ordered list of attributes. Attribute indices (0-based positions) are
/// the attribute identifiers used throughout the library — AttributeSet,
/// canonical ODs, and partitions all speak in indices; Schema translates
/// back to names for display.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  /// Convenience: all-string schema from names.
  static Schema FromNames(const std::vector<std::string>& names);

  int NumAttributes() const { return static_cast<int>(attributes_.size()); }
  const AttributeDef& attribute(int index) const;
  const std::string& name(int index) const { return attribute(index).name; }
  DataType type(int index) const { return attribute(index).type; }

  /// Index of the attribute called `name`, or an error if absent.
  Result<int> IndexOf(const std::string& name) const;

  /// Resolves a list of names to indices; fails on the first unknown name.
  Result<std::vector<int>> IndicesOf(
      const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace fastod

#endif  // FASTOD_DATA_SCHEMA_H_
