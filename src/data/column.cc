#include "data/column.h"

#include <bit>

namespace fastod {

CodeColumn CodeColumn::FromRanks(const std::vector<int32_t>& ranks,
                                 int32_t num_distinct) {
  std::vector<uint32_t> codes(ranks.size());
  for (size_t i = 0; i < ranks.size(); ++i) {
    FASTOD_DCHECK(ranks[i] >= 0 && ranks[i] < num_distinct);
    codes[i] = static_cast<uint32_t>(ranks[i]);
  }
  return CodeColumn(std::move(codes), num_distinct);
}

void ValueDictionary::Builder::Add(const Value& value) {
  tags_.push_back(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case DataType::kNull:
      slots_.push_back(0);
      break;
    case DataType::kInt:
      slots_.push_back(value.AsInt());
      break;
    case DataType::kDouble:
      slots_.push_back(std::bit_cast<int64_t>(value.AsDouble()));
      break;
    case DataType::kString:
      slots_.push_back(static_cast<int64_t>(arena_.size()));
      arena_ += value.AsString();
      break;
  }
}

ValueDictionary ValueDictionary::Builder::Build() {
  ValueDictionary dict;
  dict.tags_ = std::move(tags_);
  dict.slots_ = std::move(slots_);
  dict.arena_ = std::move(arena_);
  dict.tags_.shrink_to_fit();
  dict.slots_.shrink_to_fit();
  dict.arena_.shrink_to_fit();
  return dict;
}

std::string_view ValueDictionary::StringAt(int32_t code) const {
  FASTOD_DCHECK(static_cast<DataType>(tags_[code]) == DataType::kString);
  size_t begin = static_cast<size_t>(slots_[code]);
  // Strings occupy a contiguous code suffix in arena order, so the next
  // entry's offset (or the arena end) bounds this one.
  size_t end = code + 1 < size() ? static_cast<size_t>(slots_[code + 1])
                                 : arena_.size();
  return std::string_view(arena_.data() + begin, end - begin);
}

Value ValueDictionary::At(int32_t code) const {
  FASTOD_DCHECK(code >= 0 && code < size());
  switch (static_cast<DataType>(tags_[code])) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt:
      return Value::Int(slots_[code]);
    case DataType::kDouble:
      return Value::Double(std::bit_cast<double>(slots_[code]));
    case DataType::kString:
      return Value::Str(std::string(StringAt(code)));
  }
  return Value::Null();
}

int ValueDictionary::Compare(int32_t code, const Value& v) const {
  return Value::Compare(At(code), v);
}

std::string ValueDictionary::ToString(int32_t code) const {
  return At(code).ToString();
}

}  // namespace fastod
