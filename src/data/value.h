// Typed cell values.
//
// Tables hold Value cells; the discovery algorithms never touch Values on
// their hot paths — they run over the order-preserving integer encoding
// produced by data/encode.h (Section 4.6 of the paper: "values of the
// columns are replaced with integers ... ordering is preserved").
#ifndef FASTOD_DATA_VALUE_H_
#define FASTOD_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace fastod {

enum class DataType {
  kNull,    // only as a cell state, not a column type
  kInt,     // 64-bit signed integer
  kDouble,  // IEEE double
  kString,  // byte string, ordered lexicographically
};

/// Returns a short lowercase name ("int", "double", ...).
const char* DataTypeName(DataType type);

/// A single typed cell. Small, copyable, with a total order:
///   null < all non-null; ints and doubles compare numerically with each
///   other; any number < any string. Within strings: lexicographic byte
///   order. This matches SQL ascending order with NULLS FIRST.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Typed accessors; calling the wrong one is a bug (checked in debug).
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: AsInt widened, or AsDouble. Only for numeric values.
  double NumericValue() const;

  /// Three-way comparison under the total order documented above.
  /// Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator<(const Value& other) const { return Compare(*this, other) < 0; }

  /// Rendered form: "NULL", "42", "3.5", or the raw string.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

}  // namespace fastod

#endif  // FASTOD_DATA_VALUE_H_
