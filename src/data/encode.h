// Order-preserving dictionary encoding.
//
// Section 4.6 of the paper: "The values of the columns are replaced with
// integers 1, 2, ..., n, in a way that the equivalence classes do not change
// and the ordering is preserved." All discovery algorithms run over this
// encoded form: equal values share a rank, and rank order equals value
// order, so both split detection (equality) and swap detection (ordering)
// reduce to integer comparisons.
#ifndef FASTOD_DATA_ENCODE_H_
#define FASTOD_DATA_ENCODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace fastod {

/// The integer-encoded image of a Table: per column, a dense rank in
/// [0, NumDistinct) for every tuple. Ranks are assigned in ascending value
/// order (ties = equal values share a rank), under the Value total order
/// (NULLs first).
class EncodedRelation {
 public:
  EncodedRelation() = default;

  /// Encodes every column of `table`. Fails if the table has more than
  /// AttributeSet::kMaxAttributes columns.
  static Result<EncodedRelation> FromTable(const Table& table);

  /// Wraps precomputed rank columns. The append path in
  /// data/dataset_store.cc merge-encodes delta rows into the parent
  /// version's dictionaries instead of re-sorting the whole table; the
  /// caller guarantees the ranks are dense and order-preserving, exactly
  /// as FromTable would have assigned them.
  static EncodedRelation FromRanks(Schema schema,
                                   std::vector<std::vector<int32_t>> ranks,
                                   std::vector<int32_t> num_distinct);

  int NumAttributes() const { return static_cast<int>(ranks_.size()); }
  int64_t NumRows() const { return num_rows_; }
  const Schema& schema() const { return schema_; }

  /// Rank of every tuple on attribute `attr` (size NumRows()).
  const std::vector<int32_t>& ranks(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < NumAttributes());
    return ranks_[attr];
  }

  int32_t rank(int64_t row, int attr) const { return ranks(attr)[row]; }

  /// Number of distinct values in column `attr`.
  int32_t NumDistinct(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < NumAttributes());
    return num_distinct_[attr];
  }

 private:
  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<std::vector<int32_t>> ranks_;
  std::vector<int32_t> num_distinct_;
};

}  // namespace fastod

#endif  // FASTOD_DATA_ENCODE_H_
