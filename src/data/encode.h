// Order-preserving dictionary encoding.
//
// Section 4.6 of the paper: "The values of the columns are replaced with
// integers 1, 2, ..., n, in a way that the equivalence classes do not change
// and the ordering is preserved." All discovery algorithms run over this
// encoded form: equal values share a code, and code order equals value
// order, so both split detection (equality) and swap detection (ordering)
// reduce to integer comparisons.
//
// The encoded image is columnar: one contiguous CodeColumn per attribute
// (4 bytes/row) plus the column's interned ValueDictionary (code ->
// value), which replaces retaining the raw Value table for rendering and
// for merge-encoding appended deltas.
#ifndef FASTOD_DATA_ENCODE_H_
#define FASTOD_DATA_ENCODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "data/table.h"

namespace fastod {

/// The integer-encoded image of a Table: per column, a dense code in
/// [0, NumDistinct) for every tuple. Codes are assigned in ascending value
/// order (ties = equal values share a code), under the Value total order
/// (NULLs first).
class EncodedRelation {
 public:
  EncodedRelation() = default;

  /// Encodes every column of `table`. Fails if the table has more than
  /// AttributeSet::kMaxAttributes columns.
  static Result<EncodedRelation> FromTable(const Table& table);

  /// Wraps precomputed code columns and their dictionaries. The append
  /// path in data/dataset_store.cc merge-encodes delta rows into the
  /// parent version's dictionaries instead of re-sorting the whole
  /// table; the caller guarantees codes are dense and order-preserving,
  /// exactly as FromTable would have assigned them.
  static EncodedRelation FromColumns(Schema schema,
                                     std::vector<CodeColumn> codes,
                                     std::vector<ValueDictionary> dicts);

  int NumAttributes() const { return static_cast<int>(codes_.size()); }
  int64_t NumRows() const { return num_rows_; }
  const Schema& schema() const { return schema_; }

  /// Code of every tuple on attribute `attr` (size NumRows()).
  const CodeColumn& codes(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < NumAttributes());
    return codes_[attr];
  }

  int32_t rank(int64_t row, int attr) const { return codes(attr)[row]; }

  /// Number of distinct values in column `attr`.
  int32_t NumDistinct(int attr) const { return codes(attr).num_distinct(); }

  /// Interned distinct values of column `attr`, code -> value.
  const ValueDictionary& dictionary(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < NumAttributes());
    return dicts_[attr];
  }

  /// Exact bytes across every code column and dictionary.
  int64_t ByteSize() const;

 private:
  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<CodeColumn> codes_;
  std::vector<ValueDictionary> dicts_;
};

}  // namespace fastod

#endif  // FASTOD_DATA_ENCODE_H_
