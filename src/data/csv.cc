#include "data/csv.h"

#include "common/fault.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace fastod {

namespace {

// Splits CSV text into records of raw fields, honoring quotes. Returns an
// error for unterminated quoted fields.
Result<std::vector<std::vector<std::string>>> Tokenize(const std::string& text,
                                                       char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current record has content
  size_t i = 0;
  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    field_started = false;
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // escaped quote
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == delim) {
      end_field();
      field_started = true;
      ++i;
      continue;
    }
    if (c == '\n') {
      if (field_started || !field.empty()) end_record();
      ++i;
      continue;
    }
    if (c == '\r') {  // swallow; \r\n handled by the \n branch
      ++i;
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty()) end_record();
  return records;
}

DataType InferColumnType(const std::vector<std::vector<std::string>>& records,
                         size_t first_data_row, size_t col, int64_t max_rows) {
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;
  int64_t seen = 0;
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (max_rows >= 0 && seen >= max_rows) break;
    ++seen;
    if (col >= records[r].size()) continue;
    std::string_view f = Trim(records[r][col]);
    if (f.empty()) continue;  // NULL, no evidence
    any_value = true;
    if (all_int && !ParseInt(f).has_value()) all_int = false;
    if (!all_int && all_double && !ParseDouble(f).has_value()) {
      all_double = false;
      break;
    }
  }
  if (!any_value) return DataType::kString;
  if (all_int) return DataType::kInt;
  if (all_double) return DataType::kDouble;
  return DataType::kString;
}

Value ParseField(const std::string& raw, DataType type) {
  std::string_view f = Trim(raw);
  if (f.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt:
      if (auto v = ParseInt(f)) return Value::Int(*v);
      return Value::Null();
    case DataType::kDouble:
      if (auto v = ParseDouble(f)) return Value::Double(*v);
      return Value::Null();
    default:
      return Value::Str(std::string(f));
  }
}

bool NeedsQuoting(const std::string& s, char delim) {
  for (char c : s) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  if (FASTOD_FAULT_POINT("csv.read")) {
    return Status::IoError("injected fault: csv.read");
  }
  auto tokenized = Tokenize(text, options.delimiter);
  if (!tokenized.ok()) return tokenized.status();
  const std::vector<std::vector<std::string>>& records = *tokenized;
  if (records.empty()) {
    return Status::InvalidArgument("CSV input contains no records");
  }

  size_t num_cols = records[0].size();
  for (const auto& rec : records) {
    if (rec.size() != num_cols) {
      return Status::InvalidArgument(
          "ragged CSV: expected " + std::to_string(num_cols) +
          " fields, found a record with " + std::to_string(rec.size()));
    }
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    for (const std::string& h : records[0]) {
      names.emplace_back(Trim(h));
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < num_cols; ++c) {
      names.push_back("col" + std::to_string(c));
    }
  }

  std::vector<AttributeDef> defs(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    defs[c].name = names[c];
    defs[c].type = options.infer_types
                       ? InferColumnType(records, first_data_row, c,
                                         options.max_rows)
                       : DataType::kString;
  }

  std::vector<DataType> col_types(num_cols);
  for (size_t c = 0; c < num_cols; ++c) col_types[c] = defs[c].type;

  TableBuilder builder(Schema{std::move(defs)});
  int64_t rows_added = 0;
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (options.max_rows >= 0 && rows_added >= options.max_rows) break;
    std::vector<Value> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      row.push_back(ParseField(records[r][c], col_types[c]));
    }
    Status s = builder.AddRow(std::move(row));
    if (!s.ok()) return s;
    ++rows_added;
  }
  return builder.Build();
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (int c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += delimiter;
    const std::string& name = table.schema().name(c);
    out += NeedsQuoting(name, delimiter) ? QuoteField(name) : name;
  }
  out += '\n';
  for (int64_t r = 0; r < table.NumRows(); ++r) {
    // A lone NULL in a single-column table would render as a blank line,
    // which readers (including ours) skip; write a quoted empty field so
    // the record survives the round trip.
    if (table.NumColumns() == 1 && table.at(r, 0).is_null()) {
      out += "\"\"\n";
      continue;
    }
    for (int c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out += delimiter;
      const Value& v = table.at(r, c);
      if (v.is_null()) continue;  // NULL renders as empty field
      std::string s = v.ToString();
      out += NeedsQuoting(s, delimiter) ? QuoteField(s) : s;
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace fastod
