// An executable form of the set-based axiomatization (Figure 2 of the
// paper): a saturation-based inference engine over canonical ODs.
//
// OdTheory materializes the closure of a fact set under the axioms
//   1. Reflexivity      X: [] -> A for A ∈ X
//   2. Identity         X: A ~ A                      (answered at query time)
//   3. Commutativity    pairs are stored unordered
//   4. Strengthen       X: [] -> A, XA: [] -> B  ⟹  X: [] -> B
//   5. Propagate        X: [] -> A  ⟹  X: A ~ B
//   6. Augmentation-I   X: [] -> A  ⟹  ZX: [] -> A
//   7. Augmentation-II  X: A ~ B    ⟹  ZX: A ~ B
//   8. Chain            applied in its single-intermediate instance
//                       (n = 1): X: A ~ B, X: B ~ C, XB: A ~ C ⟹ X: A ~ C
// over the full powerset of a (small) schema. The engine is *sound* by
// construction — every rule is one of the paper's axioms — and the tests
// verify soundness empirically: anything derived from ODs valid on a table
// is itself valid on that table. (Completeness of the engine is not
// claimed: general Chain instances with longer intermediate sequences are
// not enumerated. The paper proves the axiom *system* complete; enumerating
// all Chain instances is exponential and unnecessary for our audits.)
//
// Intended for schemas of at most kMaxTheoryAttributes attributes: the
// closure materializes facts for all 2^m contexts.
#ifndef FASTOD_AXIOMS_INFERENCE_H_
#define FASTOD_AXIOMS_INFERENCE_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "od/canonical_od.h"

namespace fastod {

class OdTheory {
 public:
  static constexpr int kMaxTheoryAttributes = 12;

  /// The theory ranges over attributes {0, ..., num_attributes-1}.
  explicit OdTheory(int num_attributes);

  void Add(const ConstancyOd& od);
  void Add(const CompatibilityOd& od);
  void Add(const CanonicalOd& od);

  /// Saturates the fact set under the axioms. Idempotent; call again after
  /// adding more facts.
  void Close();

  /// Membership of `od` in the closure (trivial ODs are always implied).
  /// Requires Close() after the last Add().
  bool Implies(const ConstancyOd& od) const;
  bool Implies(const CompatibilityOd& od) const;
  bool Implies(const CanonicalOd& od) const;

  /// Non-trivial facts currently materialized (after Close() this includes
  /// derived facts; Reflexivity facts are excluded as trivial).
  std::vector<ConstancyOd> ConstancyFacts() const;
  std::vector<CompatibilityOd> CompatibilityFacts() const;

  int num_attributes() const { return num_attributes_; }

 private:
  int num_attributes_;
  bool closed_ = false;
  // context bits -> bitset of constant attributes.
  std::unordered_map<uint64_t, uint64_t> constant_;
  // context bits -> set of packed pairs (a*64+b, a<b).
  std::unordered_map<uint64_t, std::set<uint16_t>> compatible_;
};

/// Removes every OD implied by the remaining ones (greedy, deterministic:
/// larger contexts dropped first). Used to audit that discovery output is
/// non-redundant with respect to the axioms.
struct CanonicalOdSet {
  std::vector<ConstancyOd> constancy;
  std::vector<CompatibilityOd> compatibility;
};
CanonicalOdSet MinimalCover(const CanonicalOdSet& ods, int num_attributes);

}  // namespace fastod

#endif  // FASTOD_AXIOMS_INFERENCE_H_
