#include "axioms/inference.h"

#include <algorithm>

#include "common/macros.h"

namespace fastod {

namespace {

uint16_t PackPair(int a, int b) {
  if (a > b) std::swap(a, b);
  return static_cast<uint16_t>(a * 64 + b);
}

}  // namespace

OdTheory::OdTheory(int num_attributes) : num_attributes_(num_attributes) {
  FASTOD_CHECK(num_attributes >= 0 &&
               num_attributes <= kMaxTheoryAttributes);
}

void OdTheory::Add(const ConstancyOd& od) {
  constant_[od.context.bits()] |= uint64_t{1} << od.attribute;
  closed_ = false;
}

void OdTheory::Add(const CompatibilityOd& od) {
  compatible_[od.context.bits()].insert(PackPair(od.a, od.b));
  closed_ = false;
}

void OdTheory::Add(const CanonicalOd& od) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    Add(std::get<ConstancyOd>(od));
  } else {
    Add(std::get<CompatibilityOd>(od));
  }
}

void OdTheory::Close() {
  const uint64_t num_contexts = uint64_t{1} << num_attributes_;
  // Reflexivity: X: [] -> A for every A ∈ X.
  for (uint64_t ctx = 0; ctx < num_contexts; ++ctx) {
    constant_[ctx] |= ctx;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint64_t ctx = 0; ctx < num_contexts; ++ctx) {
      uint64_t& consts = constant_[ctx];
      std::set<uint16_t>& pairs = compatible_[ctx];

      // Augmentation-I / II: push facts to every one-attribute superset.
      for (int z = 0; z < num_attributes_; ++z) {
        if (ctx & (uint64_t{1} << z)) continue;
        const uint64_t super = ctx | (uint64_t{1} << z);
        uint64_t& super_consts = constant_[super];
        if ((super_consts | consts) != super_consts) {
          super_consts |= consts;
          changed = true;
        }
        std::set<uint16_t>& super_pairs = compatible_[super];
        for (uint16_t p : pairs) {
          if (super_pairs.insert(p).second) changed = true;
        }
      }

      // Strengthen: X: [] -> A and XA: [] -> B imply X: [] -> B.
      for (int a = 0; a < num_attributes_; ++a) {
        if (!(consts & (uint64_t{1} << a))) continue;
        if (ctx & (uint64_t{1} << a)) continue;  // XA == X, nothing new
        const uint64_t xa = ctx | (uint64_t{1} << a);
        auto it = constant_.find(xa);
        if (it == constant_.end()) continue;
        if ((consts | it->second) != consts) {
          consts |= it->second;
          changed = true;
        }
      }

      // Propagate: X: [] -> A implies X: A ~ B for every B.
      for (int a = 0; a < num_attributes_; ++a) {
        if (!(consts & (uint64_t{1} << a))) continue;
        for (int b = 0; b < num_attributes_; ++b) {
          if (b == a) continue;
          if (pairs.insert(PackPair(a, b)).second) changed = true;
        }
      }

      // Chain (n = 1): X: A ~ B, X: B ~ C, XB: A ~ C imply X: A ~ C.
      // Iterate over a snapshot: insertions invalidate set iterators.
      std::vector<uint16_t> snapshot(pairs.begin(), pairs.end());
      for (uint16_t p1 : snapshot) {
        const int u = p1 / 64;
        const int v = p1 % 64;
        // Treat both orientations (Commutativity).
        for (int flip = 0; flip < 2; ++flip) {
          const int a = flip ? v : u;
          const int mid = flip ? u : v;
          for (int c = 0; c < num_attributes_; ++c) {
            if (c == a || c == mid) continue;
            if (pairs.count(PackPair(mid, c)) == 0) continue;
            if (pairs.count(PackPair(a, c)) > 0) continue;
            const uint64_t xb = ctx | (uint64_t{1} << mid);
            auto it = compatible_.find(xb);
            if (it == compatible_.end()) continue;
            if (it->second.count(PackPair(a, c)) == 0) continue;
            pairs.insert(PackPair(a, c));
            changed = true;
          }
        }
      }
    }
  }
  closed_ = true;
}

bool OdTheory::Implies(const ConstancyOd& od) const {
  FASTOD_CHECK(closed_);
  if (od.IsTrivial()) return true;
  auto it = constant_.find(od.context.bits());
  return it != constant_.end() &&
         (it->second & (uint64_t{1} << od.attribute)) != 0;
}

bool OdTheory::Implies(const CompatibilityOd& od) const {
  FASTOD_CHECK(closed_);
  if (od.IsTrivial()) return true;
  auto it = compatible_.find(od.context.bits());
  return it != compatible_.end() &&
         it->second.count(PackPair(od.a, od.b)) > 0;
}

bool OdTheory::Implies(const CanonicalOd& od) const {
  if (std::holds_alternative<ConstancyOd>(od)) {
    return Implies(std::get<ConstancyOd>(od));
  }
  return Implies(std::get<CompatibilityOd>(od));
}

std::vector<ConstancyOd> OdTheory::ConstancyFacts() const {
  std::vector<ConstancyOd> out;
  for (const auto& [ctx, attrs] : constant_) {
    AttributeSet context(ctx);
    for (int a = 0; a < num_attributes_; ++a) {
      if (!(attrs & (uint64_t{1} << a))) continue;
      ConstancyOd od{context, a};
      if (!od.IsTrivial()) out.push_back(od);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CompatibilityOd> OdTheory::CompatibilityFacts() const {
  std::vector<CompatibilityOd> out;
  for (const auto& [ctx, pairs] : compatible_) {
    AttributeSet context(ctx);
    for (uint16_t p : pairs) {
      CompatibilityOd od(context, p / 64, p % 64);
      if (!od.IsTrivial()) out.push_back(od);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

CanonicalOdSet MinimalCover(const CanonicalOdSet& ods, int num_attributes) {
  // Greedy removal, largest contexts first so that general (small-context)
  // facts survive and specializations are dropped.
  CanonicalOdSet cover = ods;
  std::sort(cover.constancy.begin(), cover.constancy.end(),
            [](const ConstancyOd& x, const ConstancyOd& y) {
              if (x.context.Count() != y.context.Count()) {
                return x.context.Count() > y.context.Count();
              }
              return x < y;
            });
  std::sort(cover.compatibility.begin(), cover.compatibility.end(),
            [](const CompatibilityOd& x, const CompatibilityOd& y) {
              if (x.context.Count() != y.context.Count()) {
                return x.context.Count() > y.context.Count();
              }
              return x < y;
            });

  auto build_theory = [&](size_t skip_const, size_t skip_compat) {
    OdTheory theory(num_attributes);
    for (size_t i = 0; i < cover.constancy.size(); ++i) {
      if (i != skip_const) theory.Add(cover.constancy[i]);
    }
    for (size_t i = 0; i < cover.compatibility.size(); ++i) {
      if (i != skip_compat) theory.Add(cover.compatibility[i]);
    }
    theory.Close();
    return theory;
  };

  constexpr size_t kNone = static_cast<size_t>(-1);
  for (size_t i = 0; i < cover.constancy.size();) {
    OdTheory theory = build_theory(i, kNone);
    if (theory.Implies(cover.constancy[i])) {
      cover.constancy.erase(cover.constancy.begin() + i);
    } else {
      ++i;
    }
  }
  for (size_t i = 0; i < cover.compatibility.size();) {
    OdTheory theory = build_theory(kNone, i);
    if (theory.Implies(cover.compatibility[i])) {
      cover.compatibility.erase(cover.compatibility.begin() + i);
    } else {
      ++i;
    }
  }
  std::sort(cover.constancy.begin(), cover.constancy.end());
  std::sort(cover.compatibility.begin(), cover.compatibility.end());
  return cover;
}

}  // namespace fastod
