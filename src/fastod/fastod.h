// Umbrella header: the full public API of the FASTOD library.
//
// Quickstart — every discovery engine ("fastod", "tane", "order",
// "brute-force", "approximate", "conditional") is reachable by name
// through the unified Algorithm API:
//
//   #include "fastod/fastod.h"
//
//   fastod::Result<fastod::Table> table = fastod::ReadCsvFile("data.csv");
//   auto algo = fastod::AlgorithmRegistry::Default().Create("fastod");
//   (*algo)->SetOption("threads", "4");     // typed, introspectable
//   (*algo)->LoadData(*table);
//   (*algo)->Execute();
//   std::cout << (*algo)->ResultText();
//
// Configuration is discoverable at runtime ((*algo)->DescribeOptions()),
// output can stream through an OdSink instead of materializing, and runs
// are cancellable via ExecutionControl. The engines' direct entry points
// (fastod::Fastod etc., below) remain available for typed access to
// results and options structs.
//
// See README.md for the architecture overview and examples/ for complete
// programs.
#ifndef FASTOD_FASTOD_FASTOD_H_
#define FASTOD_FASTOD_FASTOD_H_

#include "algo/approximate.h"
#include "algo/brute_force_discovery.h"
#include "algo/conditional.h"
#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "api/algorithm.h"
#include "api/engines.h"
#include "api/od_sink.h"
#include "api/option.h"
#include "api/registry.h"
#include "axioms/inference.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "data/csv.h"
#include "data/encode.h"
#include "data/table.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "od/attribute_set.h"
#include "od/bidirectional.h"
#include "od/canonical_od.h"
#include "od/knowledge.h"
#include "od/list_od.h"
#include "od/mapping.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"
#include "validate/violation_scanner.h"

#endif  // FASTOD_FASTOD_FASTOD_H_
