// Umbrella header: the full public API of the FASTOD library.
//
// Quickstart:
//
//   #include "fastod/fastod.h"
//
//   fastod::Result<fastod::Table> table = fastod::ReadCsvFile("data.csv");
//   fastod::Fastod discovery;
//   fastod::Result<fastod::FastodResult> result =
//       discovery.Discover(*table);
//   for (const auto& od : result->constancy_ods)
//     std::cout << od.ToString(table->schema()) << "\n";
//   for (const auto& od : result->compatibility_ods)
//     std::cout << od.ToString(table->schema()) << "\n";
//
// See README.md for the architecture overview and examples/ for complete
// programs.
#ifndef FASTOD_FASTOD_FASTOD_H_
#define FASTOD_FASTOD_FASTOD_H_

#include "algo/approximate.h"
#include "algo/brute_force_discovery.h"
#include "algo/conditional.h"
#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "axioms/inference.h"
#include "common/status.h"
#include "data/csv.h"
#include "data/encode.h"
#include "data/table.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "gen/random_table.h"
#include "od/attribute_set.h"
#include "od/bidirectional.h"
#include "od/canonical_od.h"
#include "od/knowledge.h"
#include "od/list_od.h"
#include "od/mapping.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"
#include "validate/violation_scanner.h"

#endif  // FASTOD_FASTOD_FASTOD_H_
