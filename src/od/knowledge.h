// OdKnowledge: exact implication queries against a discovery result.
//
// Because FASTOD's output is *complete and minimal* (Theorem 8), every
// valid canonical OD of the relation is derivable from the emitted set by
// exactly two rules:
//   * constancy:      X: [] -> A holds  iff  some emitted Y: [] -> A has
//                     Y ⊆ X (Augmentation-I + completeness);
//   * compatibility:  X: A ~ B holds  iff  some emitted Y: A ~ B has
//                     Y ⊆ X, or X: [] -> A holds, or X: [] -> B holds
//                     (Augmentation-II / Propagate + completeness).
// OdKnowledge indexes the result to answer these queries without touching
// the data again, and lifts them to list-based ODs through the Theorem 5
// mapping — "does [X] order [Y] follow from what was discovered?" — the
// question a query optimizer asks.
//
// The queries are exact (sound AND complete) only when constructed from a
// complete minimal discovery (default FastodOptions; no timeout hit, no
// max_level cap, exact validity). Built from partial results the answers
// remain sound: true still means the OD holds.
#ifndef FASTOD_OD_KNOWLEDGE_H_
#define FASTOD_OD_KNOWLEDGE_H_

#include <unordered_map>
#include <vector>

#include "algo/fastod.h"
#include "od/canonical_od.h"
#include "od/list_od.h"

namespace fastod {

class OdKnowledge {
 public:
  /// Indexes `result` (which must outlive nothing — contents are copied).
  explicit OdKnowledge(const FastodResult& result);

  /// X: [] -> A — equivalently the FD X -> A.
  bool ImpliesConstancy(AttributeSet context, int attribute) const;

  /// X: A ~ B.
  bool ImpliesCompatibility(AttributeSet context, int a, int b) const;

  bool Implies(const CanonicalOd& od) const;

  /// X ↦ Y via the Theorem 5 decomposition: all |Y| constancy pieces and
  /// all |X|·|Y| compatibility pieces must be implied.
  bool Implies(const ListOd& od) const;

  /// All unary list ODs [A] ↦ [B] (A ≠ B) implied by the knowledge —
  /// the single-attribute rewrites (order-by substitution, join
  /// elimination) optimizers consume first.
  std::vector<ListOd> UnaryListOds(int num_attributes) const;

  int64_t NumFacts() const {
    return num_constancy_facts_ + num_compatibility_facts_;
  }

 private:
  // attribute -> minimal contexts in which it is constant.
  std::unordered_map<int, std::vector<AttributeSet>> constancy_;
  // packed pair (a*64+b, a<b) -> minimal compatibility contexts.
  std::unordered_map<int, std::vector<AttributeSet>> compatibility_;
  int64_t num_constancy_facts_ = 0;
  int64_t num_compatibility_facts_ = 0;
};

}  // namespace fastod

#endif  // FASTOD_OD_KNOWLEDGE_H_
