#include "od/canonical_od.h"

#include "data/schema.h"

namespace fastod {

namespace {

std::string AttrName(int attr) {
  if (attr < 26) return std::string(1, static_cast<char>('A' + attr));
  return "#" + std::to_string(attr);
}

}  // namespace

std::string ConstancyOd::ToString() const {
  return context.ToString() + ": [] -> " + AttrName(attribute);
}

std::string ConstancyOd::ToString(const Schema& schema) const {
  return context.ToString(schema) + ": [] -> " + schema.name(attribute);
}

std::string CompatibilityOd::ToString() const {
  return context.ToString() + ": " + AttrName(a) + " ~ " + AttrName(b);
}

std::string CompatibilityOd::ToString(const Schema& schema) const {
  return context.ToString(schema) + ": " + schema.name(a) + " ~ " +
         schema.name(b);
}

std::string CanonicalOdToString(const CanonicalOd& od) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    return std::get<ConstancyOd>(od).ToString();
  }
  return std::get<CompatibilityOd>(od).ToString();
}

std::string CanonicalOdToString(const CanonicalOd& od, const Schema& schema) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    return std::get<ConstancyOd>(od).ToString(schema);
  }
  return std::get<CompatibilityOd>(od).ToString(schema);
}

}  // namespace fastod
