#include "od/list_od.h"

#include "data/schema.h"

namespace fastod {

namespace {

std::string AttrName(int attr) {
  if (attr < 26) return std::string(1, static_cast<char>('A' + attr));
  return "#" + std::to_string(attr);
}

}  // namespace

std::string OrderSpecToString(const OrderSpec& spec) {
  std::string out = "[";
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i > 0) out += ",";
    out += AttrName(spec[i]);
  }
  out += "]";
  return out;
}

std::string OrderSpecToString(const OrderSpec& spec, const Schema& schema) {
  std::string out = "[";
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.name(spec[i]);
  }
  out += "]";
  return out;
}

AttributeSet OrderSpecSet(const OrderSpec& spec) {
  AttributeSet s;
  for (int a : spec) s = s.With(a);
  return s;
}

bool IsPrefixOf(const OrderSpec& prefix, const OrderSpec& list) {
  if (prefix.size() > list.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] != list[i]) return false;
  }
  return true;
}

std::string ListOd::ToString() const {
  return OrderSpecToString(lhs) + " orders " + OrderSpecToString(rhs);
}

std::string ListOd::ToString(const Schema& schema) const {
  return OrderSpecToString(lhs, schema) + " orders " +
         OrderSpecToString(rhs, schema);
}

}  // namespace fastod
