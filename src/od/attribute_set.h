// AttributeSet: a set of attribute indices, packed into one 64-bit word.
//
// This is the key enabling data structure of the paper's approach: ODs are
// mapped into a *set-based* canonical form (Section 3), so the discovery
// lattice is the 2^|R| set-containment lattice rather than the factorial
// list-containment lattice. Every lattice node, context, and candidate set
// Cc+(X) is an AttributeSet. The 64-attribute cap comfortably covers the
// paper's evaluation (max 40 attributes).
#ifndef FASTOD_OD_ATTRIBUTE_SET_H_
#define FASTOD_OD_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/macros.h"

namespace fastod {

class Schema;

class AttributeSet {
 public:
  /// Maximum number of attributes a relation may have.
  static constexpr int kMaxAttributes = 64;

  constexpr AttributeSet() : bits_(0) {}
  explicit constexpr AttributeSet(uint64_t bits) : bits_(bits) {}

  static AttributeSet Empty() { return AttributeSet(); }
  static AttributeSet Single(int attr) {
    FASTOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return AttributeSet(uint64_t{1} << attr);
  }
  /// {0, 1, ..., n-1}: the full relation schema R.
  static AttributeSet FullSet(int n) {
    FASTOD_DCHECK(n >= 0 && n <= kMaxAttributes);
    if (n == 0) return AttributeSet();
    if (n == 64) return AttributeSet(~uint64_t{0});
    return AttributeSet((uint64_t{1} << n) - 1);
  }
  static AttributeSet FromIndices(const std::vector<int>& indices) {
    AttributeSet s;
    for (int a : indices) s = s.With(a);
    return s;
  }

  uint64_t bits() const { return bits_; }
  bool IsEmpty() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }

  bool Contains(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return (bits_ >> attr) & 1;
  }
  bool ContainsAll(AttributeSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  bool Intersects(AttributeSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  AttributeSet With(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return AttributeSet(bits_ | (uint64_t{1} << attr));
  }
  AttributeSet Without(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return AttributeSet(bits_ & ~(uint64_t{1} << attr));
  }
  AttributeSet Union(AttributeSet other) const {
    return AttributeSet(bits_ | other.bits_);
  }
  AttributeSet Intersect(AttributeSet other) const {
    return AttributeSet(bits_ & other.bits_);
  }
  AttributeSet Minus(AttributeSet other) const {
    return AttributeSet(bits_ & ~other.bits_);
  }

  /// Lowest attribute index, or -1 if empty.
  int First() const {
    return bits_ == 0 ? -1 : std::countr_zero(bits_);
  }
  /// Lowest attribute index greater than `attr`, or -1.
  int Next(int attr) const {
    uint64_t rest = (attr + 1 >= 64) ? 0 : (bits_ >> (attr + 1)) << (attr + 1);
    return rest == 0 ? -1 : std::countr_zero(rest);
  }

  /// Attribute indices in ascending order.
  std::vector<int> ToIndices() const;

  bool operator==(const AttributeSet& o) const { return bits_ == o.bits_; }
  bool operator!=(const AttributeSet& o) const { return bits_ != o.bits_; }
  bool operator<(const AttributeSet& o) const { return bits_ < o.bits_; }

  /// "{}" or "{a,c,d}" using 'A'+index placeholders.
  std::string ToString() const;
  /// "{year,salary}" using schema names.
  std::string ToString(const Schema& schema) const;

 private:
  uint64_t bits_;
};

/// Iteration helper: visits set members in ascending order.
///   for (int a = s.First(); a >= 0; a = s.Next(a)) { ... }
///
/// Range-style adapter for readability in non-hot code.
class AttributeSetIterable {
 public:
  explicit AttributeSetIterable(AttributeSet set) : set_(set) {}
  class Iterator {
   public:
    Iterator(AttributeSet set, int cur) : set_(set), cur_(cur) {}
    int operator*() const { return cur_; }
    Iterator& operator++() {
      cur_ = set_.Next(cur_);
      return *this;
    }
    bool operator!=(const Iterator& o) const { return cur_ != o.cur_; }

   private:
    AttributeSet set_;
    int cur_;
  };
  Iterator begin() const { return Iterator(set_, set_.First()); }
  Iterator end() const { return Iterator(set_, -1); }

 private:
  AttributeSet set_;
};

inline AttributeSetIterable Members(AttributeSet set) {
  return AttributeSetIterable(set);
}

struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const {
    // splitmix64 finalizer: cheap and well-distributed for bitmask keys.
    uint64_t z = s.bits() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

}  // namespace fastod

#endif  // FASTOD_OD_ATTRIBUTE_SET_H_
