// The polynomial mapping from list-based ODs to set-based canonical ODs
// (Theorems 3-5 of the paper) — the paper's first key contribution.
//
//   X ↦ Y  holds  iff
//     (i)  ∀j:   {X}: [] -> Y_j                       (Theorem 3: X ↦ XY)
//     (ii) ∀i,j: {X_1..X_{i-1}, Y_1..Y_{j-1}}: X_i ~ Y_j   (Theorem 4: X ~ Y)
//
// The mapping has size |X|·|Y| + |Y| — quadratic, which is what makes a
// set-lattice discovery algorithm possible at all.
#ifndef FASTOD_OD_MAPPING_H_
#define FASTOD_OD_MAPPING_H_

#include <vector>

#include "od/canonical_od.h"
#include "od/list_od.h"

namespace fastod {

/// The full canonical image of X ↦ Y per Theorem 5. Trivial canonical ODs
/// (e.g. {A}: [] -> A) are included verbatim; callers that want the reduced
/// image should filter with IsTrivial().
std::vector<CanonicalOd> MapListOdToCanonical(const ListOd& od);

/// Canonical image of the order-compatibility statement X ~ Y only
/// (Theorem 4).
std::vector<CompatibilityOd> MapOrderCompatibilityToCanonical(
    const OrderSpec& lhs, const OrderSpec& rhs);

/// Canonical image of the FD-equivalent statement X ↦ XY only (Theorem 3).
std::vector<ConstancyOd> MapPrefixOdToCanonical(const OrderSpec& lhs,
                                                const OrderSpec& rhs);

}  // namespace fastod

#endif  // FASTOD_OD_MAPPING_H_
