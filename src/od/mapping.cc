#include "od/mapping.h"

namespace fastod {

std::vector<ConstancyOd> MapPrefixOdToCanonical(const OrderSpec& lhs,
                                                const OrderSpec& rhs) {
  // Theorem 3: X ↦ XY iff ∀j, {X}: [] -> Y_j.
  std::vector<ConstancyOd> out;
  out.reserve(rhs.size());
  AttributeSet context = OrderSpecSet(lhs);
  for (int y : rhs) {
    out.push_back(ConstancyOd{context, y});
  }
  return out;
}

std::vector<CompatibilityOd> MapOrderCompatibilityToCanonical(
    const OrderSpec& lhs, const OrderSpec& rhs) {
  // Theorem 4: X ~ Y iff ∀i,j, {X_1..X_{i-1}, Y_1..Y_{j-1}}: X_i ~ Y_j.
  std::vector<CompatibilityOd> out;
  out.reserve(lhs.size() * rhs.size());
  AttributeSet lhs_prefix;  // {X_1..X_{i-1}}
  for (size_t i = 0; i < lhs.size(); ++i) {
    AttributeSet context = lhs_prefix;  // plus {Y_1..Y_{j-1}} built below
    for (size_t j = 0; j < rhs.size(); ++j) {
      out.emplace_back(context, lhs[i], rhs[j]);
      context = context.With(rhs[j]);
    }
    lhs_prefix = lhs_prefix.With(lhs[i]);
  }
  return out;
}

std::vector<CanonicalOd> MapListOdToCanonical(const ListOd& od) {
  // Theorem 5 = Theorem 3 ∧ Theorem 4.
  std::vector<CanonicalOd> out;
  for (ConstancyOd& c : MapPrefixOdToCanonical(od.lhs, od.rhs)) {
    out.emplace_back(std::move(c));
  }
  for (CompatibilityOd& c :
       MapOrderCompatibilityToCanonical(od.lhs, od.rhs)) {
    out.emplace_back(std::move(c));
  }
  return out;
}

}  // namespace fastod
