// Bidirectional order dependencies — the paper's first future-work item
// (Section 7): "we plan to extend our OD discovery framework to
// bidirectional ODs [25]", i.e. ODs over order specifications that mix
// ascending and descending attributes (SQL: ORDER BY A ASC, B DESC).
//
// Two layers are provided:
//  * list-level: DirectedSpec / BidirectionalListOd with full validation
//    in validate/od_validator.h;
//  * canonical-level: a polarity bit on order compatibility. Within a
//    context, "A ~ B opposite" means sorting a class by A ascending sorts
//    it by B *descending* (equivalently: ascending compatibility of A with
//    the rank-reversed B). Discovery of opposite-polarity OCDs is switched
//    on by FastodOptions::discover_bidirectional; see algo/fastod.h for
//    the minimality semantics of the extension.
#ifndef FASTOD_OD_BIDIRECTIONAL_H_
#define FASTOD_OD_BIDIRECTIONAL_H_

#include <string>
#include <vector>

#include "od/attribute_set.h"
#include "od/canonical_od.h"

namespace fastod {

class Schema;

enum class SortDirection { kAsc, kDesc };

/// One attribute of a directional order specification.
struct DirectedAttribute {
  int attr = -1;
  SortDirection direction = SortDirection::kAsc;

  bool operator==(const DirectedAttribute& o) const {
    return attr == o.attr && direction == o.direction;
  }
};

/// ORDER BY A ASC, B DESC, ... — a lexicographic order with per-attribute
/// direction.
using DirectedSpec = std::vector<DirectedAttribute>;

std::string DirectedSpecToString(const DirectedSpec& spec);
std::string DirectedSpecToString(const DirectedSpec& spec,
                                 const Schema& schema);

/// Convenience constructors.
DirectedAttribute Asc(int attr);
DirectedAttribute Desc(int attr);

/// X ↦ Y over directional specifications.
struct BidirectionalListOd {
  DirectedSpec lhs;
  DirectedSpec rhs;

  bool operator==(const BidirectionalListOd& o) const {
    return lhs == o.lhs && rhs == o.rhs;
  }

  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

/// Canonical bidirectional order compatibility: within every equivalence
/// class of Π_X, sorting by A ascending sorts B descending (and vice
/// versa). The pair is stored unordered (the relation is symmetric:
/// reversing both directions preserves it).
struct BidiCompatibilityOd {
  AttributeSet context;
  int a = -1;
  int b = -1;

  BidiCompatibilityOd() = default;
  BidiCompatibilityOd(AttributeSet ctx, int attr_a, int attr_b)
      : context(ctx),
        a(attr_a < attr_b ? attr_a : attr_b),
        b(attr_a < attr_b ? attr_b : attr_a) {}

  bool operator==(const BidiCompatibilityOd& o) const {
    return context == o.context && a == o.a && b == o.b;
  }
  bool operator<(const BidiCompatibilityOd& o) const {
    if (context != o.context) return context < o.context;
    if (a != o.a) return a < o.a;
    return b < o.b;
  }

  /// Same triviality rules as the ascending shape, except A = B is not
  /// trivial here — it is *unsatisfiable* on classes with two distinct
  /// A-values, so it is excluded from candidates instead.
  bool IsTrivial() const {
    return a == b || context.Contains(a) || context.Contains(b);
  }

  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

}  // namespace fastod

#endif  // FASTOD_OD_BIDIRECTIONAL_H_
