#include "od/knowledge.h"

#include <algorithm>

#include "od/mapping.h"

namespace fastod {

namespace {

int PackPair(int a, int b) {
  if (a > b) std::swap(a, b);
  return a * 64 + b;
}

bool AnySubsetOf(const std::vector<AttributeSet>& contexts,
                 AttributeSet context) {
  for (AttributeSet y : contexts) {
    if (context.ContainsAll(y)) return true;
  }
  return false;
}

}  // namespace

OdKnowledge::OdKnowledge(const FastodResult& result) {
  for (const ConstancyOd& od : result.constancy_ods) {
    constancy_[od.attribute].push_back(od.context);
    ++num_constancy_facts_;
  }
  for (const CompatibilityOd& od : result.compatibility_ods) {
    compatibility_[PackPair(od.a, od.b)].push_back(od.context);
    ++num_compatibility_facts_;
  }
}

bool OdKnowledge::ImpliesConstancy(AttributeSet context,
                                   int attribute) const {
  if (context.Contains(attribute)) return true;  // trivial (Reflexivity)
  auto it = constancy_.find(attribute);
  return it != constancy_.end() && AnySubsetOf(it->second, context);
}

bool OdKnowledge::ImpliesCompatibility(AttributeSet context, int a,
                                       int b) const {
  if (a == b) return true;                                  // Identity
  if (context.Contains(a) || context.Contains(b)) return true;  // Lemma 4
  auto it = compatibility_.find(PackPair(a, b));
  if (it != compatibility_.end() && AnySubsetOf(it->second, context)) {
    return true;
  }
  // Propagate: endpoint constancy in (a subset of) the context.
  return ImpliesConstancy(context, a) || ImpliesConstancy(context, b);
}

bool OdKnowledge::Implies(const CanonicalOd& od) const {
  if (std::holds_alternative<ConstancyOd>(od)) {
    const ConstancyOd& c = std::get<ConstancyOd>(od);
    return ImpliesConstancy(c.context, c.attribute);
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  return ImpliesCompatibility(c.context, c.a, c.b);
}

bool OdKnowledge::Implies(const ListOd& od) const {
  for (const CanonicalOd& piece : MapListOdToCanonical(od)) {
    if (!Implies(piece)) return false;
  }
  return true;
}

std::vector<ListOd> OdKnowledge::UnaryListOds(int num_attributes) const {
  std::vector<ListOd> out;
  for (int a = 0; a < num_attributes; ++a) {
    for (int b = 0; b < num_attributes; ++b) {
      if (a == b) continue;
      ListOd od{{a}, {b}};
      if (Implies(od)) out.push_back(od);
    }
  }
  return out;
}

}  // namespace fastod
