// Set-based canonical ODs (Definition 6 of the paper).
//
// Every list-based OD maps (Theorem 5) into a conjunction of two canonical
// shapes over a *context* set X:
//   * constancy      X: [] -> A   — A is constant within every equivalence
//                                   class of Π_X (equivalently the FD X → A),
//   * compatibility  X: A ~ B     — no swap between A and B within any
//                                   equivalence class of Π_X.
// FASTOD discovers exactly these two shapes; the paper abbreviates the first
// as "FDs" and the second as "OCDs" in the experiment figures.
#ifndef FASTOD_OD_CANONICAL_OD_H_
#define FASTOD_OD_CANONICAL_OD_H_

#include <string>
#include <variant>
#include <vector>

#include "od/attribute_set.h"

namespace fastod {

class Schema;

/// X: [] -> A (constancy; the FD X -> A).
struct ConstancyOd {
  AttributeSet context;
  int attribute = -1;

  bool operator==(const ConstancyOd& o) const {
    return context == o.context && attribute == o.attribute;
  }
  bool operator<(const ConstancyOd& o) const {
    if (context != o.context) return context < o.context;
    return attribute < o.attribute;
  }

  /// Trivial iff A ∈ X (Reflexivity axiom).
  bool IsTrivial() const { return context.Contains(attribute); }

  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

/// X: A ~ B (order compatibility within the context). Canonicalized with
/// a < b; order compatibility is symmetric (Commutativity axiom).
struct CompatibilityOd {
  AttributeSet context;
  int a = -1;
  int b = -1;

  CompatibilityOd() = default;
  CompatibilityOd(AttributeSet ctx, int attr_a, int attr_b)
      : context(ctx),
        a(attr_a < attr_b ? attr_a : attr_b),
        b(attr_a < attr_b ? attr_b : attr_a) {}

  bool operator==(const CompatibilityOd& o) const {
    return context == o.context && a == o.a && b == o.b;
  }
  bool operator<(const CompatibilityOd& o) const {
    if (context != o.context) return context < o.context;
    if (a != o.a) return a < o.a;
    return b < o.b;
  }

  /// Trivial iff A = B (Identity) or A ∈ X or B ∈ X (Normalization).
  bool IsTrivial() const {
    return a == b || context.Contains(a) || context.Contains(b);
  }

  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

struct ConstancyOdHash {
  size_t operator()(const ConstancyOd& od) const {
    return AttributeSetHash()(od.context) * 131 +
           static_cast<size_t>(od.attribute);
  }
};

struct CompatibilityOdHash {
  size_t operator()(const CompatibilityOd& od) const {
    return AttributeSetHash()(od.context) * 131 +
           static_cast<size_t>(od.a) * 67 + static_cast<size_t>(od.b);
  }
};

/// Either canonical shape, for APIs that return mixed sets.
using CanonicalOd = std::variant<ConstancyOd, CompatibilityOd>;

std::string CanonicalOdToString(const CanonicalOd& od);
std::string CanonicalOdToString(const CanonicalOd& od, const Schema& schema);

}  // namespace fastod

#endif  // FASTOD_OD_CANONICAL_OD_H_
