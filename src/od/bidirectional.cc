#include "od/bidirectional.h"

#include "data/schema.h"

namespace fastod {

namespace {

std::string AttrName(int attr) {
  if (attr < 26) return std::string(1, static_cast<char>('A' + attr));
  return "#" + std::to_string(attr);
}

std::string Render(const DirectedSpec& spec, const Schema* schema) {
  std::string out = "[";
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i > 0) out += ",";
    out += schema != nullptr ? schema->name(spec[i].attr)
                             : AttrName(spec[i].attr);
    out += spec[i].direction == SortDirection::kAsc ? " asc" : " desc";
  }
  out += "]";
  return out;
}

}  // namespace

DirectedAttribute Asc(int attr) {
  return DirectedAttribute{attr, SortDirection::kAsc};
}

DirectedAttribute Desc(int attr) {
  return DirectedAttribute{attr, SortDirection::kDesc};
}

std::string DirectedSpecToString(const DirectedSpec& spec) {
  return Render(spec, nullptr);
}

std::string DirectedSpecToString(const DirectedSpec& spec,
                                 const Schema& schema) {
  return Render(spec, &schema);
}

std::string BidirectionalListOd::ToString() const {
  return DirectedSpecToString(lhs) + " orders " + DirectedSpecToString(rhs);
}

std::string BidirectionalListOd::ToString(const Schema& schema) const {
  return DirectedSpecToString(lhs, schema) + " orders " +
         DirectedSpecToString(rhs, schema);
}

std::string BidiCompatibilityOd::ToString() const {
  return context.ToString() + ": " + AttrName(a) + " ~ " + AttrName(b) +
         " desc";
}

std::string BidiCompatibilityOd::ToString(const Schema& schema) const {
  return context.ToString(schema) + ": " + schema.name(a) + " ~ " +
         schema.name(b) + " desc";
}

}  // namespace fastod
