#include "od/attribute_set.h"

#include "data/schema.h"

namespace fastod {

std::vector<int> AttributeSet::ToIndices() const {
  std::vector<int> out;
  out.reserve(Count());
  for (int a = First(); a >= 0; a = Next(a)) out.push_back(a);
  return out;
}

std::string AttributeSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int a = First(); a >= 0; a = Next(a)) {
    if (!first) out += ",";
    first = false;
    if (a < 26) {
      out += static_cast<char>('A' + a);
    } else {
      out += "#" + std::to_string(a);
    }
  }
  out += "}";
  return out;
}

std::string AttributeSet::ToString(const Schema& schema) const {
  std::string out = "{";
  bool first = true;
  for (int a = First(); a >= 0; a = Next(a)) {
    if (!first) out += ",";
    first = false;
    out += a < schema.NumAttributes() ? schema.name(a)
                                      : "#" + std::to_string(a);
  }
  out += "}";
  return out;
}

}  // namespace fastod
