// List-based order dependencies X ↦ Y (Definition 2 of the paper).
//
// The natural, SQL-order-by-style OD representation: both sides are
// *order specifications*, i.e. attribute lists defining lexicographic
// orders. The ORDER baseline works directly on these; FASTOD reaches them
// through the canonical mapping (od/mapping.h).
#ifndef FASTOD_OD_LIST_OD_H_
#define FASTOD_OD_LIST_OD_H_

#include <string>
#include <vector>

#include "od/attribute_set.h"

namespace fastod {

class Schema;

/// An attribute list [A, B, C] interpreted lexicographically (sort by A,
/// break ties by B, then C), as in a SQL ORDER BY clause.
using OrderSpec = std::vector<int>;

std::string OrderSpecToString(const OrderSpec& spec);
std::string OrderSpecToString(const OrderSpec& spec, const Schema& schema);

/// The set of attributes appearing in `spec`.
AttributeSet OrderSpecSet(const OrderSpec& spec);

/// True iff `prefix` is a (possibly improper) prefix of `list`.
bool IsPrefixOf(const OrderSpec& prefix, const OrderSpec& list);

/// X ↦ Y: "X orders Y" — sorting by X lexicographically implies the table
/// is also sorted by Y.
struct ListOd {
  OrderSpec lhs;
  OrderSpec rhs;

  bool operator==(const ListOd& o) const {
    return lhs == o.lhs && rhs == o.rhs;
  }
  bool operator<(const ListOd& o) const {
    if (lhs != o.lhs) return lhs < o.lhs;
    return rhs < o.rhs;
  }

  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

struct ListOdHash {
  size_t operator()(const ListOd& od) const {
    size_t h = 1469598103934665603ULL;
    for (int a : od.lhs) h = h * 1099511628211ULL + static_cast<size_t>(a + 1);
    h = h * 1099511628211ULL + 0xffff;  // side separator
    for (int a : od.rhs) h = h * 1099511628211ULL + static_cast<size_t>(a + 1);
    return h;
  }
};

}  // namespace fastod

#endif  // FASTOD_OD_LIST_OD_H_
