// Batch scheduling of discovery sessions over a shared worker pool.
//
// The DiscoveryService is the embedding surface the ROADMAP's server and
// C-API items call for: callers create handle-addressed sessions, submit
// them, and poll — many relations × many algorithms run concurrently on
// one common/thread_pool.h, at most num_threads() at a time, the rest
// queued in submission order:
//
//   DiscoveryService service(8);
//   auto id = service.Create("fastod");
//   service.SetOption(*id, "threads", "1");
//   service.SubmitCsv(*id, "flight.csv", CsvOptions());   // async
//   while (!IsTerminal(service.Poll(*id)->state)) ...     // or Wait(*id)
//   std::cout << *service.ResultJson(*id);
//
// Handles (SessionId) are plain integers, never reused within a service,
// so they cross FFI boundaries safely — capi/fastod_c.h wraps exactly
// this class. All methods are thread-safe; sessions are internally
// shared_ptr-owned, so Destroy() of a running session is safe (the worker
// keeps the object alive until its run finishes).
//
// Shutdown: the destructor requests cancellation of every live session,
// then drains the pool — engines stop at their next check point, so
// destruction is prompt even with deep queues.
#ifndef FASTOD_SERVICE_DISCOVERY_SERVICE_H_
#define FASTOD_SERVICE_DISCOVERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/od_sink.h"
#include "api/registry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/csv.h"
#include "data/dataset_store.h"
#include "service/discovery_session.h"

namespace fastod {

using SessionId = int64_t;

class DiscoveryService {
 public:
  /// `num_threads` caps concurrently executing sessions; 0 means
  /// hardware concurrency. `registry` defaults to the process-wide
  /// AlgorithmRegistry; tests inject private registries with extra
  /// engines. `store` is the dataset registry LoadDataset/SubmitDataset
  /// resolve ids against, defaulting to DatasetStore::Global(); the
  /// server injects its own budgeted store.
  explicit DiscoveryService(int num_threads = 0,
                            const AlgorithmRegistry* registry = nullptr,
                            DatasetStore* store = nullptr);
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  int num_threads() const { return pool_.num_threads(); }
  /// The dataset registry this service resolves dataset ids against.
  DatasetStore& store() { return store_; }

  // ---- Admission control --------------------------------------------
  /// Caps queued + running sessions; a Submit beyond the cap is refused
  /// with kUnavailable (retry once capacity frees). 0 = unlimited.
  void SetMaxActiveSessions(int64_t max_active);
  int64_t max_active_sessions() const;
  /// Sessions currently queued or running (admitted, not yet terminal).
  int64_t num_active() const;

  // ---- Session lifecycle --------------------------------------------
  /// Instantiates `algorithm` from the registry behind a fresh session
  /// handle. NotFound lists the registered names.
  Result<SessionId> Create(const std::string& algorithm);

  /// Forwarders to the addressed session (NotFound on stale handles).
  Status SetOption(SessionId id, const std::string& name,
                   const std::string& value);
  Status LoadCsv(SessionId id, const std::string& path,
                 const CsvOptions& options = CsvOptions());
  Status LoadTable(SessionId id, Table table);
  /// Binds the dataset registered in store() under `dataset_id` — by
  /// reference, so N sessions on one dataset share a single parse,
  /// encoding, and set of level-1 partitions. The session pins the
  /// dataset until destroyed. `version` <= 0 binds the current version;
  /// a positive version binds that exact version, which succeeds only
  /// while it is current or still pinned by another session (superseded
  /// versions live exactly as long as someone holds them).
  Status LoadDataset(SessionId id, const std::string& dataset_id,
                     int64_t version = 0);
  /// Same, for a dataset the caller already holds (C ABI dataset
  /// handles bypass the store's id namespace).
  Status LoadDataset(SessionId id,
                     std::shared_ptr<const LoadedDataset> dataset);
  Status SetSink(SessionId id, OdSink* sink);

  /// Queues the session's run on the pool and returns immediately.
  Status Submit(SessionId id);
  /// Submit with a deferred CSV read: parsing + encoding happen on the
  /// worker, so N CsvJobs pipeline end to end. Read errors surface as
  /// the session turning kFailed.
  Status SubmitCsv(SessionId id, const std::string& path,
                   const CsvOptions& options = CsvOptions());
  /// LoadDataset + Submit in one call — the load-once/discover-many
  /// submission path. Binding is in-memory and synchronous (unlike
  /// SubmitCsv there is no IO to defer), so stale dataset ids fail here,
  /// not as a kFailed session.
  Status SubmitDataset(SessionId id, const std::string& dataset_id,
                       int64_t version = 0);

  struct PollInfo {
    SessionState state = SessionState::kCreated;
    double progress = 0.0;   // engine-reported fraction in [0, 1]
    std::string error;       // non-empty exactly for kFailed
    // The failure's StatusCode (kOk otherwise); lets frontends
    // distinguish e.g. kDeadlineExceeded without parsing the message.
    StatusCode error_code = StatusCode::kOk;
  };
  /// One consistent snapshot of the session's observable state.
  Result<PollInfo> Poll(SessionId id) const;

  /// Requests cooperative cancellation (running) or skips the run
  /// entirely (queued). Idempotent; terminal sessions are unaffected.
  Status Cancel(SessionId id);
  /// Cancels every live session (the drain-deadline straggler sweep).
  void CancelAll();

  /// Blocks until the session is terminal; returns its final state.
  Result<SessionState> Wait(SessionId id);
  /// Blocks until every session created so far is terminal.
  void WaitAll();

  /// Rendered results of a terminal session (see DiscoverySession).
  Result<std::string> ResultJson(SessionId id) const;
  Result<std::string> ResultText(SessionId id) const;

  /// The session's trace (spans + engine counters) as JSON. Unlike the
  /// results this is readable in any state — a running session shows the
  /// spans completed so far; engine counters appear once it finishes.
  Result<std::string> TraceJson(SessionId id) const;

  /// Read access for result inspection beyond the rendered strings.
  /// The pointer stays valid until Destroy(); treat it as const while the
  /// session is non-terminal.
  std::shared_ptr<const DiscoverySession> Find(SessionId id) const;

  /// Cancels (if needed) and forgets the handle. A still-running worker
  /// keeps the session object alive until its run finishes.
  Status Destroy(SessionId id);

  /// Stops the worker pool: runs every already-accepted session to
  /// completion, then returns. Running engines (including multi-threaded
  /// task-graph runs on their private pools) finish normally; they are
  /// NOT cancelled — pair with CancelAll() for a fast drain. From the
  /// moment Shutdown() begins, Submit() of further sessions fails them
  /// with kUnavailable instead of queueing work no worker will take
  /// (tests/robustness_test.cc pins the no-deadlock guarantee).
  /// Idempotent; also performed by the destructor.
  void Shutdown();

  int64_t num_sessions() const;

  // ---- Shared streaming ---------------------------------------------
  /// Attaches `sink` to every session created *after* this call, wrapped
  /// in one MutexOdSink so concurrent sessions may share it safely. Pass
  /// nullptr to stop. The sink must outlive all sessions using it.
  void SetSharedSink(OdSink* sink);

 private:
  std::shared_ptr<DiscoverySession> FindMutable(SessionId id) const;
  void RunSession(const std::shared_ptr<DiscoverySession>& session);
  /// Claims one admission slot or refuses with kUnavailable.
  Status Admit();
  /// Returns an admission slot (MarkQueued failed, pool refused, or the
  /// run finished).
  void Unadmit();
  /// Hands an admitted, queued session to the pool; on refusal (pool
  /// stopping) fails the session with kUnavailable and returns it.
  Status Schedule(const std::shared_ptr<DiscoverySession>& session);

  const AlgorithmRegistry& registry_;
  DatasetStore& store_;

  mutable std::mutex mutex_;
  std::condition_variable terminal_cv_;  // notified on any terminal move
  std::map<SessionId, std::shared_ptr<DiscoverySession>> sessions_;
  SessionId next_id_ = 1;
  int64_t max_active_ = 0;  // guarded by mutex_; 0 = unlimited
  int64_t active_ = 0;      // guarded by mutex_; admitted, not terminal
  // Every shared-sink decorator ever attached stays alive for the
  // service's lifetime, so replacing the shared sink never dangles
  // sessions still pointing at the previous wrapper.
  std::vector<std::unique_ptr<MutexOdSink>> shared_sinks_;
  MutexOdSink* current_shared_sink_ = nullptr;

  // Last member: destroyed first, so the drain in ~ThreadPool still sees
  // a fully alive service (RunSession touches sessions_ and the cv).
  ThreadPool pool_;
};

}  // namespace fastod

#endif  // FASTOD_SERVICE_DISCOVERY_SERVICE_H_
