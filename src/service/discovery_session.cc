#include "service/discovery_session.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace fastod {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kCreated:
      return "created";
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kFailed:
      return "failed";
    case SessionState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

DiscoverySession::DiscoverySession(std::unique_ptr<Algorithm> algorithm)
    : algorithm_(std::move(algorithm)) {
  algorithm_->SetControl(&control_);
}

Status DiscoverySession::SetOption(const std::string& name,
                                   const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; options may only change before submission");
  }
  return algorithm_->SetOption(name, value);
}

Status DiscoverySession::LoadCsv(const std::string& path,
                                 const CsvOptions& options) {
  Result<Table> table = ReadCsvFile(path, options);
  if (!table.ok()) return table.status();
  return LoadTable(std::move(table).value());
}

Status DiscoverySession::SetDeferredCsv(std::string path,
                                        CsvOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same freeze point as LoadTable: a source swapped in after queueing
  // would silently redirect the pending run to the wrong dataset.
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; data may only be bound before submission");
  }
  has_deferred_csv_ = true;
  csv_path_ = std::move(path);
  csv_options_ = options;
  return Status::Ok();
}

Status DiscoverySession::LoadTable(Table table) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; data may only be bound before submission");
  }
  return algorithm_->LoadData(std::move(table));
}

Status DiscoverySession::LoadDataset(
    std::shared_ptr<const LoadedDataset> dataset) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; data may only be bound before submission");
  }
  return algorithm_->LoadData(std::move(dataset));
}

void DiscoverySession::SetSink(OdSink* sink) { algorithm_->SetSink(sink); }

Status DiscoverySession::MarkQueued() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; it can be submitted only once");
  }
  if (!algorithm_->has_data() && !has_deferred_csv_) {
    return Status::FailedPrecondition(
        "session has no data; call LoadCsv/LoadTable before submitting");
  }
  state_ = SessionState::kQueued;
  return Status::Ok();
}

void DiscoverySession::FailQueued(Status status) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != SessionState::kQueued) return;
    state_ = SessionState::kFailed;
    status_ = std::move(status);
  }
  RecordObservability(SessionState::kFailed);
}

void DiscoverySession::Run() {
  bool load_csv = false;
  std::string path;
  CsvOptions csv_options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A cancel that arrived while queued wins: skip the run entirely.
    if (state_ != SessionState::kQueued) return;
    if (control_.CancelRequested()) {
      state_ = SessionState::kCancelled;
      return;
    }
    state_ = SessionState::kRunning;
    if (has_deferred_csv_ && !algorithm_->has_data()) {
      load_csv = true;
      path = csv_path_;
      csv_options = csv_options_;
    }
  }
  // Exceptions from the load or the engine (bad_alloc, a third-party
  // backend throwing) become a kFailed session, never an unwinding worker
  // thread: the library's no-throw contract holds at this boundary.
  const bool observe = obs::Enabled();
  Status executed;
  try {
    if (load_csv) {
      double start = trace_.Now();
      Result<Table> table = ReadCsvFile(path, csv_options);
      if (observe) {
        trace_.RecordSpan("csv.parse", start, trace_.Now() - start);
      }
      if (!table.ok()) {
        Finish(SessionState::kFailed, table.status());
        return;
      }
      start = trace_.Now();
      Status s = algorithm_->LoadData(std::move(table).value());
      if (observe) trace_.RecordSpan("encode", start, trace_.Now() - start);
      if (!s.ok()) {
        Finish(SessionState::kFailed, s);
        return;
      }
    }
    double start = trace_.Now();
    executed = algorithm_->Execute();
    if (observe) {
      trace_.RecordSpan("execute", start, trace_.Now() - start);
      // The level-wise engines time each lattice level; replay those
      // clocks as back-to-back child spans of the execute phase.
      double cursor = start;
      for (const obs::LevelStats& level : algorithm_->stats().levels) {
        trace_.RecordSpan("level[" + std::to_string(level.level) + "]",
                          cursor, level.seconds);
        cursor += level.seconds;
      }
    }
  } catch (const std::exception& e) {
    Finish(SessionState::kFailed,
           Status::Internal(std::string("engine threw: ") + e.what()));
    return;
  } catch (...) {
    Finish(SessionState::kFailed,
           Status::Internal("engine threw a non-standard exception"));
    return;
  }
  if (!executed.ok()) {
    Finish(SessionState::kFailed, executed);
    return;
  }
  // Engines treat cancellation as a clean early stop, not an error; the
  // session keeps whatever partial results they rendered.
  Finish(control_.CancelRequested() ? SessionState::kCancelled
                                    : SessionState::kDone,
         Status::Ok());
}

void DiscoverySession::Finish(SessionState terminal, Status status) {
  std::string json;
  std::string text;
  if (terminal != SessionState::kFailed) {
    json = algorithm_->ResultJson();
    text = algorithm_->ResultText();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = terminal;
    status_ = std::move(status);
    result_json_ = std::move(json);
    result_text_ = std::move(text);
  }
  RecordObservability(terminal);
}

void DiscoverySession::RecordObservability(SessionState terminal) {
  if (!obs::Enabled()) return;
  const obs::EngineStats& stats = algorithm_->stats();
  trace_.SetEngineStats(stats);

  obs::Registry& registry = obs::Registry::Global();
  const std::string& algorithm = algorithm_->name();
  registry
      .GetCounter("fastod_sessions_total",
                  "Discovery sessions reaching a terminal state",
                  {{"algorithm", algorithm},
                   {"state", SessionStateName(terminal)}})
      ->Inc();
  if (terminal == SessionState::kFailed) return;  // nothing ran to report

  registry
      .GetHistogram("fastod_session_execute_seconds",
                    "Engine wall-clock per completed session",
                    obs::LatencyBucketsSeconds(), {{"algorithm", algorithm}})
      ->Observe(algorithm_->execute_seconds());
  const obs::Labels by_algorithm = {{"algorithm", algorithm}};
  registry
      .GetCounter("fastod_lattice_nodes_total",
                  "Lattice nodes visited by the search", by_algorithm)
      ->Inc(stats.nodes_visited);
  registry
      .GetCounter("fastod_lattice_nodes_pruned_total",
                  "Lattice nodes removed by pruning rules", by_algorithm)
      ->Inc(stats.nodes_pruned);
  registry
      .GetCounter("fastod_validation_checks_total",
                  "Partition validation scans performed",
                  {{"algorithm", algorithm}, {"kind", "constancy"}})
      ->Inc(stats.constancy_checks);
  registry
      .GetCounter("fastod_validation_checks_total",
                  "Partition validation scans performed",
                  {{"algorithm", algorithm}, {"kind", "swap"}})
      ->Inc(stats.swap_checks);
  registry
      .GetCounter("fastod_ods_emitted_total",
                  "Dependencies reported by finished sessions",
                  by_algorithm)
      ->Inc(stats.ods_emitted);
  registry
      .GetCounter("fastod_partition_cache_gets_total",
                  "PartitionCache lookups served", by_algorithm)
      ->Inc(stats.partition_cache_gets);
  registry
      .GetCounter("fastod_partition_cache_puts_total",
                  "Partitions built or copied into the PartitionCache",
                  by_algorithm)
      ->Inc(stats.partition_cache_puts);
  registry
      .GetCounter("fastod_tasks_ready_total",
                  "Lattice nodes whose dependencies completed and that "
                  "became runnable on the task graph",
                  by_algorithm)
      ->Inc(stats.tasks_ready);
  registry
      .GetCounter("fastod_tasks_spawned_total",
                  "Tasks handed to the work-stealing scheduler",
                  by_algorithm)
      ->Inc(stats.tasks_spawned);
  registry
      .GetCounter("fastod_tasks_stolen_total",
                  "Tasks executed by a worker other than the one whose "
                  "deque received them",
                  by_algorithm)
      ->Inc(stats.tasks_stolen);
  // Worker-busy fraction per lattice level, from the most recent
  // task-graph run of this algorithm (gauge semantics: last run wins).
  for (const obs::LevelStats& level : stats.levels) {
    if (level.occupancy <= 0.0) continue;
    registry
        .GetGauge("fastod_task_graph_level_occupancy_permille",
                  "Worker-busy fraction (in 1/1000ths) while the task "
                  "graph processed one lattice level (most recent run)",
                  {{"algorithm", algorithm},
                   {"level", std::to_string(level.level)}})
        ->Set(static_cast<int64_t>(level.occupancy * 1000.0));
  }
}

SessionState DiscoverySession::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void DiscoverySession::RequestCancel() {
  control_.RequestCancel();
  std::lock_guard<std::mutex> lock(mutex_);
  // Sessions that never reached a worker turn terminal immediately so
  // waiters don't block on a run that will never happen. kQueued stays —
  // the worker task still owns the kQueued→terminal transition.
  if (state_ == SessionState::kCreated) state_ = SessionState::kCancelled;
}

Status DiscoverySession::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

const std::string& DiscoverySession::result_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_json_;
}

const std::string& DiscoverySession::result_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_text_;
}

double DiscoverySession::execute_seconds() const {
  return algorithm_->execute_seconds();
}

}  // namespace fastod
