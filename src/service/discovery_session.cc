#include "service/discovery_session.h"

#include <exception>
#include <utility>

namespace fastod {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kCreated:
      return "created";
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kFailed:
      return "failed";
    case SessionState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

DiscoverySession::DiscoverySession(std::unique_ptr<Algorithm> algorithm)
    : algorithm_(std::move(algorithm)) {
  algorithm_->SetControl(&control_);
}

Status DiscoverySession::SetOption(const std::string& name,
                                   const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; options may only change before submission");
  }
  return algorithm_->SetOption(name, value);
}

Status DiscoverySession::LoadCsv(const std::string& path,
                                 const CsvOptions& options) {
  Result<Table> table = ReadCsvFile(path, options);
  if (!table.ok()) return table.status();
  return LoadTable(std::move(table).value());
}

Status DiscoverySession::SetDeferredCsv(std::string path,
                                        CsvOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same freeze point as LoadTable: a source swapped in after queueing
  // would silently redirect the pending run to the wrong dataset.
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; data may only be bound before submission");
  }
  has_deferred_csv_ = true;
  csv_path_ = std::move(path);
  csv_options_ = options;
  return Status::Ok();
}

Status DiscoverySession::LoadTable(Table table) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; data may only be bound before submission");
  }
  return algorithm_->LoadData(std::move(table));
}

Status DiscoverySession::LoadDataset(
    std::shared_ptr<const LoadedDataset> dataset) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; data may only be bound before submission");
  }
  return algorithm_->LoadData(std::move(dataset));
}

void DiscoverySession::SetSink(OdSink* sink) { algorithm_->SetSink(sink); }

Status DiscoverySession::MarkQueued() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateName(state_)) +
        "; it can be submitted only once");
  }
  if (!algorithm_->has_data() && !has_deferred_csv_) {
    return Status::FailedPrecondition(
        "session has no data; call LoadCsv/LoadTable before submitting");
  }
  state_ = SessionState::kQueued;
  return Status::Ok();
}

void DiscoverySession::FailQueued(Status status) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != SessionState::kQueued) return;
  state_ = SessionState::kFailed;
  status_ = std::move(status);
}

void DiscoverySession::Run() {
  bool load_csv = false;
  std::string path;
  CsvOptions csv_options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A cancel that arrived while queued wins: skip the run entirely.
    if (state_ != SessionState::kQueued) return;
    if (control_.CancelRequested()) {
      state_ = SessionState::kCancelled;
      return;
    }
    state_ = SessionState::kRunning;
    if (has_deferred_csv_ && !algorithm_->has_data()) {
      load_csv = true;
      path = csv_path_;
      csv_options = csv_options_;
    }
  }
  // Exceptions from the load or the engine (bad_alloc, a third-party
  // backend throwing) become a kFailed session, never an unwinding worker
  // thread: the library's no-throw contract holds at this boundary.
  Status executed;
  try {
    if (load_csv) {
      Result<Table> table = ReadCsvFile(path, csv_options);
      if (!table.ok()) {
        Finish(SessionState::kFailed, table.status());
        return;
      }
      if (Status s = algorithm_->LoadData(std::move(table).value());
          !s.ok()) {
        Finish(SessionState::kFailed, s);
        return;
      }
    }
    executed = algorithm_->Execute();
  } catch (const std::exception& e) {
    Finish(SessionState::kFailed,
           Status::Internal(std::string("engine threw: ") + e.what()));
    return;
  } catch (...) {
    Finish(SessionState::kFailed,
           Status::Internal("engine threw a non-standard exception"));
    return;
  }
  if (!executed.ok()) {
    Finish(SessionState::kFailed, executed);
    return;
  }
  // Engines treat cancellation as a clean early stop, not an error; the
  // session keeps whatever partial results they rendered.
  Finish(control_.CancelRequested() ? SessionState::kCancelled
                                    : SessionState::kDone,
         Status::Ok());
}

void DiscoverySession::Finish(SessionState terminal, Status status) {
  std::string json;
  std::string text;
  if (terminal != SessionState::kFailed) {
    json = algorithm_->ResultJson();
    text = algorithm_->ResultText();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = terminal;
  status_ = std::move(status);
  result_json_ = std::move(json);
  result_text_ = std::move(text);
}

SessionState DiscoverySession::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void DiscoverySession::RequestCancel() {
  control_.RequestCancel();
  std::lock_guard<std::mutex> lock(mutex_);
  // Sessions that never reached a worker turn terminal immediately so
  // waiters don't block on a run that will never happen. kQueued stays —
  // the worker task still owns the kQueued→terminal transition.
  if (state_ == SessionState::kCreated) state_ = SessionState::kCancelled;
}

Status DiscoverySession::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

const std::string& DiscoverySession::result_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_json_;
}

const std::string& DiscoverySession::result_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_text_;
}

double DiscoverySession::execute_seconds() const {
  return algorithm_->execute_seconds();
}

}  // namespace fastod
