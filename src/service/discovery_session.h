// One discovery job as a long-lived, observable object.
//
// A DiscoverySession owns everything one run needs — the configured
// Algorithm, its ExecutionControl, an optional OdSink, the data source,
// and the rendered result cache — behind a small thread-safe state
// machine:
//
//   kCreated ──Submit──▶ kQueued ──worker──▶ kRunning ──▶ kDone
//                                                     └──▶ kFailed
//                (RequestCancel at any point)         └──▶ kCancelled
//
// The owner (DiscoveryService, or a direct embedder) configures and binds
// data from one thread, then hands Run() to a worker; after that, every
// accessor here is safe to call concurrently with the run: state(),
// progress() and RequestCancel() poll/flip atomics shared with the engine,
// and the result accessors return the cache written under the state mutex
// when the session turned terminal. Terminal sessions are immutable.
//
// Cancellation is cooperative (common/cancellation.h): a cancel requested
// while the engine is mid-run is honored at its next level boundary and
// the session keeps the partial results the engine reported; a cancel
// before the worker picks the session up skips the run entirely.
#ifndef FASTOD_SERVICE_DISCOVERY_SESSION_H_
#define FASTOD_SERVICE_DISCOVERY_SESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "api/algorithm.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "data/csv.h"
#include "data/dataset_store.h"
#include "obs/trace.h"

namespace fastod {

enum class SessionState : int {
  kCreated = 0,    // configured, no run scheduled yet
  kQueued = 1,     // waiting for a worker
  kRunning = 2,    // Execute() in flight
  kDone = 3,       // terminal: completed, results cached
  kFailed = 4,     // terminal: load or execute error, see status()
  kCancelled = 5,  // terminal: cancel honored, partial results cached
};

/// True for the three states no session ever leaves.
inline bool IsTerminal(SessionState state) {
  return state == SessionState::kDone || state == SessionState::kFailed ||
         state == SessionState::kCancelled;
}

/// "created", "queued", ... for logs and JSON.
const char* SessionStateName(SessionState state);

class DiscoverySession {
 public:
  /// Wraps an algorithm instance (typically fresh from a registry).
  explicit DiscoverySession(std::unique_ptr<Algorithm> algorithm);

  DiscoverySession(const DiscoverySession&) = delete;
  DiscoverySession& operator=(const DiscoverySession&) = delete;

  // ---- Configuration (before Submit/Run only) -----------------------
  Status SetOption(const std::string& name, const std::string& value);
  /// Reads and binds a CSV file now; errors surface synchronously.
  Status LoadCsv(const std::string& path, const CsvOptions& options);
  /// Defers the CSV read into Run() (a worker thread), so a batch of
  /// sessions parallelizes parsing and encoding too. Read errors then
  /// surface through state()/status() as kFailed.
  Status SetDeferredCsv(std::string path, CsvOptions options);
  Status LoadTable(Table table);
  /// Binds a shared preprocessed dataset (data/dataset_store.h) by
  /// reference — no parse, encode, or copy. The session pins the dataset
  /// (keeps it alive and ineligible for store eviction) until destroyed.
  Status LoadDataset(std::shared_ptr<const LoadedDataset> dataset);
  /// Attaches a streaming consumer for the run. The sink must outlive the
  /// session's terminal transition; see the OdSink threading contract.
  void SetSink(OdSink* sink);

  // ---- Execution ----------------------------------------------------
  /// Marks the session queued; fails if it already left kCreated.
  Status MarkQueued();
  /// Moves a *queued* session straight to kFailed with `status` — the
  /// recovery path when Submit accepted the session but could not hand
  /// it to a worker (pool shut down). No-op in any other state.
  void FailQueued(Status status);
  /// Runs load (if deferred) + Execute on the calling thread and moves
  /// the session to a terminal state. Called once, by the worker.
  void Run();

  // ---- Observation (any thread) -------------------------------------
  SessionState state() const;
  /// Engine-reported completion fraction in [0, 1].
  double progress() const { return control_.Progress(); }
  /// Flags the run to stop at its next check point (or never start).
  void RequestCancel();
  /// The error that made the session kFailed; OK otherwise.
  Status status() const;

  // ---- Results (terminal states only; empty before) -----------------
  /// Cached Algorithm::ResultJson() / ResultText(). For kCancelled these
  /// hold the partial results the engine reported; for kFailed they are
  /// empty. Stable until the session is destroyed.
  const std::string& result_json() const;
  const std::string& result_text() const;
  /// Engine wall-clock of the completed run.
  double execute_seconds() const;

  const Algorithm& algorithm() const { return *algorithm_; }

  // ---- Observability ------------------------------------------------
  /// The session's trace (obs/trace.h): phase spans recorded by Run()
  /// (csv.parse, encode, execute, level[k]) plus the engine's search
  /// counters, captured when the run finishes. Safe to render from any
  /// thread at any time; spans appear as the run passes through them.
  /// Empty when metrics are disabled (FASTOD_METRICS=off).
  const obs::TraceRecorder& trace() const { return trace_; }
  std::string trace_json() const { return trace_.ToJson(); }

 private:
  void Finish(SessionState terminal, Status status);
  /// Publishes the terminal transition to the global metrics registry
  /// and copies the engine's counters into the trace.
  void RecordObservability(SessionState terminal);

  std::unique_ptr<Algorithm> algorithm_;
  ExecutionControl control_;
  obs::TraceRecorder trace_;  // internally synchronized

  mutable std::mutex mutex_;
  SessionState state_ = SessionState::kCreated;  // guarded by mutex_
  Status status_;                                // guarded by mutex_
  std::string result_json_;                      // guarded by mutex_
  std::string result_text_;                      // guarded by mutex_

  // Deferred CSV source; consumed by Run() before Execute.
  bool has_deferred_csv_ = false;
  std::string csv_path_;
  CsvOptions csv_options_;
};

}  // namespace fastod

#endif  // FASTOD_SERVICE_DISCOVERY_SESSION_H_
