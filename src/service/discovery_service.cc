#include "service/discovery_service.h"

#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace fastod {

namespace {

int ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

Status StaleHandle(SessionId id) {
  return Status::NotFound("no session with id " + std::to_string(id));
}

}  // namespace

DiscoveryService::DiscoveryService(int num_threads,
                                   const AlgorithmRegistry* registry,
                                   DatasetStore* store)
    : registry_(registry != nullptr ? *registry
                                    : AlgorithmRegistry::Default()),
      store_(store != nullptr ? *store : DatasetStore::Global()),
      pool_(ResolveThreads(num_threads)) {}

DiscoveryService::~DiscoveryService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) session->RequestCancel();
  }
  // ~ThreadPool (the first member destroyed) drains the queue; cancelled
  // runs stop at their next check point.
}

void DiscoveryService::Shutdown() { pool_.Stop(); }

Result<SessionId> DiscoveryService::Create(const std::string& algorithm) {
  Result<std::unique_ptr<Algorithm>> algo = registry_.Create(algorithm);
  if (!algo.ok()) return algo.status();
  auto session = std::make_shared<DiscoverySession>(std::move(algo).value());
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_shared_sink_ != nullptr) {
    session->SetSink(current_shared_sink_);
  }
  SessionId id = next_id_++;
  sessions_.emplace(id, std::move(session));
  return id;
}

std::shared_ptr<DiscoverySession> DiscoveryService::FindMutable(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::shared_ptr<const DiscoverySession> DiscoveryService::Find(
    SessionId id) const {
  return FindMutable(id);
}

Status DiscoveryService::SetOption(SessionId id, const std::string& name,
                                   const std::string& value) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  return session->SetOption(name, value);
}

Status DiscoveryService::LoadCsv(SessionId id, const std::string& path,
                                 const CsvOptions& options) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  return session->LoadCsv(path, options);
}

Status DiscoveryService::LoadTable(SessionId id, Table table) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  return session->LoadTable(std::move(table));
}

Status DiscoveryService::LoadDataset(SessionId id,
                                     const std::string& dataset_id,
                                     int64_t version) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  Result<std::shared_ptr<const LoadedDataset>> dataset =
      store_.Get(dataset_id, version);
  if (!dataset.ok()) return dataset.status();
  return session->LoadDataset(*std::move(dataset));
}

Status DiscoveryService::LoadDataset(
    SessionId id, std::shared_ptr<const LoadedDataset> dataset) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  return session->LoadDataset(std::move(dataset));
}

Status DiscoveryService::SetSink(SessionId id, OdSink* sink) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  if (session->state() != SessionState::kCreated) {
    return Status::FailedPrecondition(
        "sink may only be attached before submission");
  }
  session->SetSink(sink);
  return Status::Ok();
}

void DiscoveryService::SetMaxActiveSessions(int64_t max_active) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_active_ = max_active < 0 ? 0 : max_active;
}

int64_t DiscoveryService::max_active_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_active_;
}

int64_t DiscoveryService::num_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

namespace {

// Resolved once; updated on every admission transition (not per node,
// so the lookup-by-name cost would also be fine).
obs::Gauge* ActiveSessionsGauge() {
  static obs::Gauge* gauge = obs::Registry::Global().GetGauge(
      "fastod_service_active_sessions",
      "Sessions admitted and not yet terminal (queued + running)");
  return gauge;
}

obs::Counter* AdmissionRejectionsCounter() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "fastod_service_admission_rejections_total",
      "Session submissions refused by admission control",
      {{"reason", "capacity"}});
  return counter;
}

}  // namespace

Status DiscoveryService::Admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_active_ > 0 && active_ >= max_active_) {
    AdmissionRejectionsCounter()->Inc();
    return Status::Unavailable(
        "service at capacity (" + std::to_string(active_) + "/" +
        std::to_string(max_active_) + " active sessions); retry later");
  }
  ++active_;
  ActiveSessionsGauge()->Set(active_);
  return Status::Ok();
}

void DiscoveryService::Unadmit() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    ActiveSessionsGauge()->Set(active_);
  }
  // A submitter blocked on capacity has no cv of its own; waiters on
  // terminal_cv_ may also be polling num_active() (drain), so wake them.
  terminal_cv_.notify_all();
}

Status DiscoveryService::Schedule(
    const std::shared_ptr<DiscoverySession>& session) {
  if (pool_.Submit([this, session] { RunSession(session); })) {
    return Status::Ok();
  }
  // The pool began shutting down between our admission and the hand-off
  // (service teardown racing a submit). Surface it instead of leaving the
  // session kQueued forever with no worker coming.
  Status refused = Status::Unavailable(
      "service is shutting down; session not scheduled");
  session->FailQueued(refused);
  Unadmit();
  return refused;
}

Status DiscoveryService::Submit(SessionId id) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  if (Status s = Admit(); !s.ok()) return s;
  if (Status s = session->MarkQueued(); !s.ok()) {
    Unadmit();
    return s;
  }
  return Schedule(session);
}

Status DiscoveryService::SubmitCsv(SessionId id, const std::string& path,
                                   const CsvOptions& options) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  if (Status s = session->SetDeferredCsv(path, options); !s.ok()) return s;
  if (Status s = Admit(); !s.ok()) return s;
  if (Status s = session->MarkQueued(); !s.ok()) {
    Unadmit();
    return s;
  }
  return Schedule(session);
}

Status DiscoveryService::SubmitDataset(SessionId id,
                                       const std::string& dataset_id,
                                       int64_t version) {
  if (Status s = LoadDataset(id, dataset_id, version); !s.ok()) return s;
  return Submit(id);
}

void DiscoveryService::RunSession(
    const std::shared_ptr<DiscoverySession>& session) {
  session->Run();
  // Waiters re-check under the lock; taking it here orders the terminal
  // store before their wake-up. The admission slot frees with the same
  // lock hold, so a rejected submitter retrying after Wait() gets in.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  terminal_cv_.notify_all();
}

Result<DiscoveryService::PollInfo> DiscoveryService::Poll(
    SessionId id) const {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  PollInfo info;
  info.state = session->state();
  info.progress = session->progress();
  if (info.state == SessionState::kFailed) {
    Status status = session->status();
    info.error = status.ToString();
    info.error_code = status.code();
  }
  return info;
}

Status DiscoveryService::Cancel(SessionId id) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  session->RequestCancel();
  // A kCreated session turns terminal synchronously; wake waiters.
  { std::lock_guard<std::mutex> lock(mutex_); }
  terminal_cv_.notify_all();
  return Status::Ok();
}

void DiscoveryService::CancelAll() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) session->RequestCancel();
  }
  terminal_cv_.notify_all();
}

Result<SessionState> DiscoveryService::Wait(SessionId id) {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [&] { return IsTerminal(session->state()); });
  return session->state();
}

void DiscoveryService::WaitAll() {
  std::vector<std::shared_ptr<DiscoverySession>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) live.push_back(session);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [&] {
    for (const auto& session : live) {
      SessionState state = session->state();
      // Unsubmitted sessions don't block a batch drain.
      if (state != SessionState::kCreated && !IsTerminal(state)) {
        return false;
      }
    }
    return true;
  });
}

Result<std::string> DiscoveryService::ResultJson(SessionId id) const {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  if (!IsTerminal(session->state())) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) + " is " +
        SessionStateName(session->state()) + "; results require a "
        "terminal session (poll or wait first)");
  }
  return session->result_json();
}

Result<std::string> DiscoveryService::TraceJson(SessionId id) const {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  return session->trace_json();
}

Result<std::string> DiscoveryService::ResultText(SessionId id) const {
  auto session = FindMutable(id);
  if (session == nullptr) return StaleHandle(id);
  if (!IsTerminal(session->state())) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) + " is " +
        SessionStateName(session->state()) + "; results require a "
        "terminal session (poll or wait first)");
  }
  return session->result_text();
}

Status DiscoveryService::Destroy(SessionId id) {
  std::shared_ptr<DiscoverySession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return StaleHandle(id);
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // A queued/running worker task holds its own shared_ptr; cancelling
  // makes it finish promptly, after which the object dies with the last
  // reference.
  session->RequestCancel();
  return Status::Ok();
}

int64_t DiscoveryService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(sessions_.size());
}

void DiscoveryService::SetSharedSink(OdSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink == nullptr) {
    current_shared_sink_ = nullptr;
    return;
  }
  shared_sinks_.push_back(std::make_unique<MutexOdSink>(sink));
  current_shared_sink_ = shared_sinks_.back().get();
}

}  // namespace fastod
