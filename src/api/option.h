// Typed, introspectable algorithm options.
//
// Every Algorithm (api/algorithm.h) exposes its configuration as a flat,
// string-keyed registry of typed options: each option has a name, a
// one-line description, a rendered default, and a parser that validates
// and applies a string value. Frontends — the CLI, future Python/C
// bindings, a server — configure any engine uniformly through
// SetOption(name, value) and generate their help/usage text from the
// metadata, without compile-time knowledge of the engine's options struct.
//
// Options bind to fields of the engine's native struct (FastodOptions and
// friends) by pointer, so SetOption writes through immediately and the
// legacy structs remain the single source of truth for defaults.
#ifndef FASTOD_API_OPTION_H_
#define FASTOD_API_OPTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace fastod {

/// Option value categories. The numeric values are frozen: they cross the
/// C ABI as the FASTOD_OPTION_* constants in capi/fastod_c.h, so bindings
/// in any language can switch on them without parsing type_name.
enum class OptionKind : int {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kEnum = 4,
};

/// Introspection record for one registered option. Everything a frontend
/// needs crosses language boundaries as plain data: the kind as an int,
/// the default rendered as a string (the same spelling SetOption parses).
struct OptionInfo {
  std::string name;
  OptionKind kind = OptionKind::kString;
  std::string type_name;     // "bool", "int", "double", "string", "enum"
  std::string description;
  std::string default_repr;  // rendered default value
  std::vector<std::string> enum_values;  // non-empty only for enums
  /// Deprecated alternate spellings Set() still accepts (each use bumps
  /// the fastod_deprecated_option_total{name} counter). Frontends should
  /// advertise `name` and list these only as back-compat.
  std::vector<std::string> aliases;
};

class OptionRegistry {
 public:
  /// Registration. Target pointers must outlive the registry; the target's
  /// current value is rendered as the default. Min/max bounds are
  /// inclusive and validated at SetOption time.
  void AddBool(const std::string& name, bool* target,
               const std::string& description);
  void AddInt(const std::string& name, int* target,
              const std::string& description, int min_value, int max_value);
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& description, int64_t min_value,
                int64_t max_value);
  void AddDouble(const std::string& name, double* target,
                 const std::string& description, double min_value,
                 double max_value);
  void AddString(const std::string& name, std::string* target,
                 const std::string& description);
  /// `values` maps each accepted spelling to an int stored via `target`.
  void AddEnum(const std::string& name, int* target,
               const std::string& description,
               std::vector<std::pair<std::string, int>> values,
               const std::string& default_repr);

  /// Registers a deprecated alternate spelling for option `canonical`
  /// (which must already be registered). Set(alias, ...) keeps working
  /// but counts against fastod_deprecated_option_total{name=alias}.
  void AddAlias(const std::string& canonical, const std::string& alias);

  /// Parses and applies `value`. For bools an empty value means "true"
  /// (mirroring --flag with no argument). Resolution order: canonical
  /// name, then deprecated aliases, then the underscore spelling of
  /// either (historical "num_threads" style); non-canonical hits bump a
  /// deprecation counter. Unknown names and malformed or out-of-range
  /// values are errors naming the option.
  Status Set(const std::string& name, const std::string& value);

  /// Option names in registration order.
  std::vector<std::string> Names() const;

  const OptionInfo* Find(const std::string& name) const;

  /// Help text, one option per line:
  ///   --name=<type>  description (default: X)
  std::string Describe() const;

 private:
  struct Option {
    OptionInfo info;
    std::function<Status(const std::string&)> apply;
  };
  void Add(OptionInfo info, std::function<Status(const std::string&)> apply);

  std::vector<Option> options_;
};

}  // namespace fastod

#endif  // FASTOD_API_OPTION_H_
