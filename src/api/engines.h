// Adapters exposing every discovery engine in src/algo/ through the
// unified Algorithm interface (api/algorithm.h).
//
// Each adapter is a thin shim: it registers typed options that write
// straight into the engine's native options struct, forwards the attached
// OdSink / ExecutionControl, runs the legacy entry point in
// ExecuteInternal(), and renders through report/report.h. The engines'
// direct APIs (Fastod::Discover etc.) remain available and authoritative;
// tests/api_test.cc pins the adapters to them bit-for-bit.
//
// Registered names (api/registry.h):
//   fastod       complete minimal canonical-OD discovery (Section 4)
//   tane         FD-only baseline (Exp-4 comparator)
//   order        list-based ORDER baseline (Exp-3 comparator)
//   brute-force  exhaustive oracle (<= 16 attributes)
//   approximate  FASTOD under g3 threshold validity (max-error > 0)
//   conditional  conditional ODs over attribute bindings (Section 7)
//   incremental  delta re-validation + targeted re-search over a grown
//                dataset version (incremental/incremental_engine.h)
#ifndef FASTOD_API_ENGINES_H_
#define FASTOD_API_ENGINES_H_

#include <string>
#include <vector>

#include "algo/brute_force_discovery.h"
#include "algo/conditional.h"
#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "api/algorithm.h"

namespace fastod {

class AlgorithmRegistry;

/// Populates `registry` with the six engine adapters above. Idempotent
/// per registry (names are replaced, not duplicated).
void RegisterBuiltinAlgorithms(AlgorithmRegistry* registry);

class FastodAlgorithm : public Algorithm {
 public:
  FastodAlgorithm();

  const FastodOptions& discovery_options() const { return opts_; }
  const FastodResult& result() const { return result_; }

  std::string ResultText() const override;
  std::string ResultJson() const override;

 protected:
  /// `defaults` seeds the option registry, so subclasses (approximate)
  /// surface their own defaults in DescribeOptions().
  FastodAlgorithm(std::string name, std::string description,
                  FastodOptions defaults);
  Status ExecuteInternal() override;

  FastodOptions opts_;
  /// Staging for the swap-method enum option; applied to
  /// opts_.swap_method at Execute time.
  int swap_method_choice_;
  FastodResult result_;
};

/// FASTOD under g3 threshold validity: identical machinery, but an OD is
/// accepted when its removal error is at most --max-error (default 0.01
/// rather than exact 0).
class ApproximateAlgorithm : public FastodAlgorithm {
 public:
  ApproximateAlgorithm();

  std::string ResultText() const override;
  std::string ResultJson() const override;
};

class TaneAlgorithm : public Algorithm {
 public:
  TaneAlgorithm();

  const TaneResult& result() const { return result_; }

  std::string ResultText() const override;
  std::string ResultJson() const override;

 protected:
  Status ExecuteInternal() override;

 private:
  TaneOptions opts_;
  TaneResult result_;
};

class OrderAlgorithm : public Algorithm {
 public:
  OrderAlgorithm();

  const OrderResult& result() const { return result_; }

  std::string ResultText() const override;
  std::string ResultJson() const override;

 protected:
  Status ExecuteInternal() override;

 private:
  OrderOptions opts_;
  OrderResult result_;
};

/// The exhaustive oracle; refuses relations with more than 16 attributes.
class BruteForceAlgorithm : public Algorithm {
 public:
  BruteForceAlgorithm();

  const BruteForceDiscoveryResult& result() const { return result_; }

  std::string ResultText() const override;
  std::string ResultJson() const override;

 protected:
  Status ExecuteInternal() override;

 private:
  /// The oracle result reshaped for the shared FASTOD renderers.
  FastodResult AsFastodResult() const;

  double max_error_ = 0.0;
  bool bidirectional_ = false;
  BruteForceDiscoveryResult result_;
  double seconds_ = 0.0;
};

class ConditionalAlgorithm : public Algorithm {
 public:
  ConditionalAlgorithm();

  const std::vector<ConditionalOd>& result() const { return result_; }

  std::string ResultText() const override;
  std::string ResultJson() const override;

 protected:
  Status ExecuteInternal() override;

 private:
  /// Renders a binding rank as the original cell value when the raw table
  /// is available (LoadData(Table)), "#rank" otherwise.
  std::string BindingValue(int attr, int32_t rank) const;

  ConditionalOdOptions opts_;
  /// Staging for the int32_t ConditionalOdOptions field; narrowed at
  /// Execute time.
  int64_t max_condition_cardinality_;
  std::vector<ConditionalOd> result_;
  double seconds_ = 0.0;
};

}  // namespace fastod

#endif  // FASTOD_API_ENGINES_H_
