#include "api/engines.h"

#include <cstdio>
#include <limits>
#include <utility>

#include "api/od_sink.h"
#include "api/registry.h"
#include "incremental/incremental_engine.h"
#include "common/timer.h"
#include "report/report.h"

namespace fastod {

namespace {

RelationInfo Info(const EncodedRelation& relation) {
  return RelationInfo{relation.NumRows(), &relation.schema()};
}

constexpr double kNoLimit = std::numeric_limits<double>::max();

FastodOptions ApproximateDefaults() {
  FastodOptions defaults;
  defaults.max_error = 0.01;
  return defaults;
}

// Copies the counters a finished FASTOD-family run accumulated into the
// generic telemetry shape (fastod and approximate share FastodResult).
obs::EngineStats StatsOf(const FastodResult& result) {
  obs::EngineStats stats;
  stats.levels_processed = result.levels_processed;
  stats.nodes_visited = result.total_nodes;
  stats.ods_emitted = result.NumOds();
  stats.partition_cache_gets = result.partition_cache_gets;
  stats.partition_cache_puts = result.partition_cache_puts;
  stats.tasks_ready = result.tasks_ready;
  stats.tasks_spawned = result.tasks_spawned;
  stats.tasks_stolen = result.tasks_stolen;
  stats.levels.reserve(result.level_stats.size());
  for (const FastodLevelStats& level : result.level_stats) {
    obs::LevelStats l;
    l.level = level.level;
    l.nodes = level.nodes;
    l.nodes_pruned = level.nodes_pruned;
    l.constancy_checks = level.constancy_checks;
    l.swap_checks = level.swap_checks;
    l.key_prune_hits = level.key_prune_hits;
    l.ods_found = level.constancy_found + level.compatibility_found +
                  level.bidirectional_found;
    l.seconds = level.seconds;
    l.occupancy = level.occupancy;
    stats.nodes_pruned += level.nodes_pruned;
    stats.constancy_checks += level.constancy_checks;
    stats.swap_checks += level.swap_checks;
    stats.key_prune_hits += level.key_prune_hits;
    stats.levels.push_back(l);
  }
  return stats;
}

}  // namespace

// ------------------------------------------------------------- fastod

FastodAlgorithm::FastodAlgorithm()
    : FastodAlgorithm("fastod",
                      "complete, minimal set-based canonical OD discovery "
                      "(Section 4 of the paper)",
                      FastodOptions()) {}

FastodAlgorithm::FastodAlgorithm(std::string name, std::string description,
                                 FastodOptions defaults)
    : Algorithm(std::move(name), std::move(description)),
      opts_(defaults),
      swap_method_choice_(static_cast<int>(defaults.swap_method)) {
  options().AddInt("threads", &opts_.num_threads,
                   "worker threads for intra-level parallelism", 1, 1024);
  options().AddAlias("threads", "num-threads");
  options().AddDouble("timeout", &opts_.timeout_seconds,
                      "abort after this many seconds (0 = none)", 0.0,
                      kNoLimit);
  options().AddInt("max-level", &opts_.max_level,
                   "stop after lattice level L (0 = none)", 0, 64);
  options().AddDouble("max-error", &opts_.max_error,
                      "approximate g3 threshold (0 = exact)", 0.0, 1.0);
  options().AddBool("bidirectional", &opts_.discover_bidirectional,
                    "also discover opposite-polarity compatibilities");
  options().AddBool("emit-ods", &opts_.emit_ods,
                    "materialize ODs (false = count only)");
  options().AddBool("minimality-pruning", &opts_.minimality_pruning,
                    "candidate-set pruning; false = no-pruning ablation");
  options().AddBool("level-pruning", &opts_.level_pruning,
                    "delete nodes with empty candidate sets (Lemma 11)");
  options().AddBool("key-pruning", &opts_.key_pruning,
                    "skip validations under superkey contexts (Lemmas "
                    "12-13)");
  options().AddBool("level-stats", &opts_.collect_level_stats,
                    "record per-level statistics (Exp-7)");
  options().AddEnum("swap-method", &swap_method_choice_,
                    "swap-check strategy (Section 4.6)",
                    {{"auto", static_cast<int>(SwapCheckMethod::kAuto)},
                     {"sort", static_cast<int>(SwapCheckMethod::kSortBased)},
                     {"tau", static_cast<int>(SwapCheckMethod::kTauBased)}},
                    "auto");
}

Status FastodAlgorithm::ExecuteInternal() {
  FastodOptions run = opts_;
  run.swap_method = static_cast<SwapCheckMethod>(swap_method_choice_);
  run.sink = sink();
  run.control = control();
  result_ = Fastod(run).Discover(relation(), prebuilt_singletons());
  mutable_stats() = StatsOf(result_);
  return Status::Ok();
}

std::string FastodAlgorithm::ResultText() const {
  return FastodResultToText(result_, Info(relation()));
}

std::string FastodAlgorithm::ResultJson() const {
  return FastodResultToJson(result_, Info(relation()));
}

// -------------------------------------------------------- approximate

ApproximateAlgorithm::ApproximateAlgorithm()
    : FastodAlgorithm("approximate",
                      "FASTOD under g3 threshold validity: accept ODs whose "
                      "removal error is at most --max-error",
                      ApproximateDefaults()) {}

std::string ApproximateAlgorithm::ResultText() const {
  return FastodResultToText(result_, Info(relation()), "APPROXIMATE");
}

std::string ApproximateAlgorithm::ResultJson() const {
  return FastodResultToJson(result_, Info(relation()), "approximate");
}

// --------------------------------------------------------------- tane

TaneAlgorithm::TaneAlgorithm()
    : Algorithm("tane",
                "TANE: minimal functional dependencies only (the Exp-4 "
                "comparator)") {
  options().AddInt("threads", &opts_.num_threads,
                   "worker threads for intra-level parallelism", 1, 1024);
  options().AddAlias("threads", "num-threads");
  options().AddDouble("timeout", &opts_.timeout_seconds,
                      "abort after this many seconds (0 = none)", 0.0,
                      kNoLimit);
  options().AddInt("max-level", &opts_.max_level,
                   "stop after lattice level L (0 = none)", 0, 64);
  // Canonical name matches fastod's "emit-ods"; the historical
  // "emit-fds" spelling survives as a deprecated alias.
  options().AddBool("emit-ods", &opts_.emit_fds,
                    "materialize FDs (false = count only)");
  options().AddAlias("emit-ods", "emit-fds");
}

Status TaneAlgorithm::ExecuteInternal() {
  TaneOptions run = opts_;
  run.sink = sink();
  run.control = control();
  result_ = Tane(run).Discover(relation(), prebuilt_singletons());
  obs::EngineStats& stats = mutable_stats();
  stats.levels_processed = result_.levels_processed;
  stats.nodes_visited = result_.total_nodes;
  stats.ods_emitted = result_.num_fds;
  stats.partition_cache_gets = result_.partition_cache_gets;
  stats.partition_cache_puts = result_.partition_cache_puts;
  stats.tasks_ready = result_.tasks_ready;
  stats.tasks_spawned = result_.tasks_spawned;
  stats.tasks_stolen = result_.tasks_stolen;
  return Status::Ok();
}

std::string TaneAlgorithm::ResultText() const {
  return TaneResultToText(result_, Info(relation()));
}

std::string TaneAlgorithm::ResultJson() const {
  return TaneResultToJson(result_, Info(relation()));
}

// -------------------------------------------------------------- order

OrderAlgorithm::OrderAlgorithm()
    : Algorithm("order",
                "ORDER (Langer & Naumann): list-based baseline, incomplete "
                "by Section 4.5 (the Exp-3 comparator)") {
  options().AddDouble("timeout", &opts_.timeout_seconds,
                      "abort after this many seconds (0 = none)", 0.0,
                      kNoLimit);
  options().AddInt("max-level", &opts_.max_level,
                   "stop after list length L (0 = none)", 0, 64);
  options().AddBool("pruning", &opts_.enable_pruning,
                    "swap/split/subtree pruning (false = exhaustive)");
}

Status OrderAlgorithm::ExecuteInternal() {
  OrderOptions run = opts_;
  run.sink = sink();
  run.control = control();
  result_ = OrderBaseline(run).Discover(relation(), prebuilt_singletons());
  obs::EngineStats& stats = mutable_stats();
  stats.levels_processed = result_.levels_processed;
  stats.nodes_visited = result_.total_nodes;
  stats.candidates_checked = result_.candidates_checked;
  stats.candidates_pruned = result_.candidates_pruned;
  stats.ods_emitted = static_cast<int64_t>(result_.ods.size());
  return Status::Ok();
}

std::string OrderAlgorithm::ResultText() const {
  return OrderResultToText(result_, Info(relation()));
}

std::string OrderAlgorithm::ResultJson() const {
  return OrderResultToJson(result_, Info(relation()));
}

// -------------------------------------------------------- brute-force

BruteForceAlgorithm::BruteForceAlgorithm()
    : Algorithm("brute-force",
                "exhaustive canonical-OD oracle via the definitional "
                "checks; tiny relations only (<= 16 attributes)") {
  options().AddDouble("max-error", &max_error_,
                      "approximate g3 threshold (0 = exact)", 0.0, 1.0);
  options().AddBool("bidirectional", &bidirectional_,
                    "also discover opposite-polarity compatibilities");
}

Status BruteForceAlgorithm::ExecuteInternal() {
  if (relation().NumAttributes() > 16) {
    return Status::InvalidArgument(
        "brute-force oracle supports at most 16 attributes, got " +
        std::to_string(relation().NumAttributes()));
  }
  WallTimer timer;
  result_ = BruteForceDiscoverOds(relation(), max_error_, bidirectional_,
                                  prebuilt_singletons());
  seconds_ = timer.ElapsedSeconds();
  mutable_stats().ods_emitted =
      static_cast<int64_t>(result_.constancy_ods.size() +
                           result_.compatibility_ods.size() +
                           result_.bidirectional_ods.size());
  if (sink() != nullptr) {
    // The oracle materializes regardless, so streaming tees.
    for (const ConstancyOd& od : result_.constancy_ods) {
      sink()->OnConstancy(od);
    }
    for (const CompatibilityOd& od : result_.compatibility_ods) {
      sink()->OnCompatibility(od);
    }
    for (const BidiCompatibilityOd& od : result_.bidirectional_ods) {
      sink()->OnBidirectional(od);
    }
  }
  return Status::Ok();
}

FastodResult BruteForceAlgorithm::AsFastodResult() const {
  FastodResult shaped;
  shaped.constancy_ods = result_.constancy_ods;
  shaped.compatibility_ods = result_.compatibility_ods;
  shaped.bidirectional_ods = result_.bidirectional_ods;
  shaped.num_constancy = static_cast<int64_t>(result_.constancy_ods.size());
  shaped.num_compatibility =
      static_cast<int64_t>(result_.compatibility_ods.size());
  shaped.num_bidirectional =
      static_cast<int64_t>(result_.bidirectional_ods.size());
  shaped.seconds = seconds_;
  return shaped;
}

std::string BruteForceAlgorithm::ResultText() const {
  return FastodResultToText(AsFastodResult(), Info(relation()),
                            "BRUTE-FORCE");
}

std::string BruteForceAlgorithm::ResultJson() const {
  return FastodResultToJson(AsFastodResult(), Info(relation()),
                            "brute-force");
}

// -------------------------------------------------------- conditional

ConditionalAlgorithm::ConditionalAlgorithm()
    : Algorithm("conditional",
                "conditional ODs over attribute bindings (the Section 7 "
                "future-work extension)"),
      max_condition_cardinality_(opts_.max_condition_cardinality) {
  options().AddDouble("min-support", &opts_.min_support,
                      "minimum covered-tuple fraction", 0.0, 1.0);
  options().AddInt64("limit", &opts_.max_results,
                     "maximum conditional ODs to report", 1,
                     std::numeric_limits<int64_t>::max());
  // max_condition_cardinality is int32_t; stage through a plain int.
  options().AddInt64("max-condition-cardinality",
                     &max_condition_cardinality_,
                     "skip condition attributes with more distinct values",
                     1, std::numeric_limits<int32_t>::max());
}

Status ConditionalAlgorithm::ExecuteInternal() {
  WallTimer timer;
  ConditionalOdOptions run = opts_;
  run.max_condition_cardinality =
      static_cast<int32_t>(max_condition_cardinality_);
  ConditionalOdFinder finder(&relation(), prebuilt_singletons());
  result_ = finder.DiscoverConditional(run);
  seconds_ = timer.ElapsedSeconds();
  mutable_stats().ods_emitted = static_cast<int64_t>(result_.size());
  if (sink() != nullptr) {
    for (const ConditionalOd& od : result_) sink()->OnConditional(od);
  }
  return Status::Ok();
}

std::string ConditionalAlgorithm::BindingValue(int attr,
                                               int32_t rank) const {
  // The interned dictionary entry for this code *is* the original value
  // (FromTable interns the first-occurrence representative).
  const ValueDictionary& dict = relation().dictionary(attr);
  if (rank >= 0 && rank < dict.size()) return dict.ToString(rank);
  return "#" + std::to_string(rank);
}

std::string ConditionalAlgorithm::ResultText() const {
  const Schema& schema = relation().schema();
  std::string out = std::to_string(result_.size()) +
                    " conditional OD(s) at support >= " +
                    std::to_string(opts_.min_support) + "\n";
  for (const ConditionalOd& c : result_) {
    std::string line = "  (";
    line += schema.name(c.condition_attribute);
    line += " in {";
    for (size_t i = 0; i < c.binding_ranks.size(); ++i) {
      if (i > 0) line += ",";
      line += BindingValue(c.condition_attribute, c.binding_ranks[i]);
    }
    char support_buf[32];
    std::snprintf(support_buf, sizeof(support_buf), "%.0f%%",
                  c.support * 100.0);
    line += "}) => ";
    line += CanonicalOdToString(c.od, schema);
    line += "  [support ";
    line += support_buf;
    line += "]\n";
    out += line;
  }
  return out;
}

std::string ConditionalAlgorithm::ResultJson() const {
  const Schema& schema = relation().schema();
  std::string out = ReportHeaderJson("conditional", Info(relation()),
                                     seconds_, /*timed_out=*/false);
  out += "  \"conditional_ods\": [\n";
  for (size_t i = 0; i < result_.size(); ++i) {
    const ConditionalOd& c = result_[i];
    char support_buf[32];
    std::snprintf(support_buf, sizeof(support_buf), "%.6f", c.support);
    out += "    {\"condition\": \"" +
           JsonEscape(schema.name(c.condition_attribute)) +
           "\", \"bindings\": [";
    for (size_t j = 0; j < c.binding_ranks.size(); ++j) {
      if (j > 0) out += ",";
      out += '"';
      out += JsonEscape(
          BindingValue(c.condition_attribute, c.binding_ranks[j]));
      out += '"';
    }
    out += "], \"od\": \"" +
           JsonEscape(CanonicalOdToString(c.od, schema)) +
           "\", \"support\": " + support_buf + "}";
    if (i + 1 < result_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

// ----------------------------------------------------------- registry

void RegisterBuiltinAlgorithms(AlgorithmRegistry* registry) {
  registry->Register("fastod", [] {
    return std::unique_ptr<Algorithm>(new FastodAlgorithm());
  });
  registry->Register("tane", [] {
    return std::unique_ptr<Algorithm>(new TaneAlgorithm());
  });
  registry->Register("order", [] {
    return std::unique_ptr<Algorithm>(new OrderAlgorithm());
  });
  registry->Register("brute-force", [] {
    return std::unique_ptr<Algorithm>(new BruteForceAlgorithm());
  });
  registry->Register("approximate", [] {
    return std::unique_ptr<Algorithm>(new ApproximateAlgorithm());
  });
  registry->Register("conditional", [] {
    return std::unique_ptr<Algorithm>(new ConditionalAlgorithm());
  });
  registry->Register("incremental", [] {
    return std::unique_ptr<Algorithm>(new IncrementalAlgorithm());
  });
}

}  // namespace fastod
