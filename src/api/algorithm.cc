#include "api/algorithm.h"

#include <limits>
#include <utility>

#include "common/timer.h"

namespace fastod {

Algorithm::Algorithm(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {
  // Registered here so *every* engine — including ones with no native
  // checkpointing — carries the hard-deadline contract: exceeding it
  // turns Execute() into a kDeadlineExceeded error. Engines with
  // checkpoints stop mid-run (StopRequested at cancellation safepoints);
  // the rest are caught at the Execute() boundary.
  options_.AddInt64("timeout-ms", &timeout_ms_,
                    "hard deadline in milliseconds; exceeding it fails "
                    "the run with DeadlineExceeded (0 = none)",
                    0, std::numeric_limits<int64_t>::max());
}

Status Algorithm::LoadData(Table table) {
  WallTimer timer;
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  dataset_.reset();
  relation_ = *std::move(encoded);
  executed_ = false;
  load_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

Status Algorithm::LoadData(EncodedRelation relation) {
  WallTimer timer;
  dataset_.reset();
  relation_ = std::move(relation);
  executed_ = false;
  load_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

Status Algorithm::BindDataset(std::shared_ptr<const LoadedDataset> dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must be non-null");
  }
  // Near-zero by design: the parse/encode/partition work happened once,
  // in LoadedDataset::Build, and is shared by reference here.
  WallTimer timer;
  relation_.reset();
  dataset_ = std::move(dataset);
  executed_ = false;
  load_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

Status Algorithm::Execute() {
  if (!has_data()) {
    return Status::FailedPrecondition(
        "Execute() requires LoadData() first (algorithm '" + name_ + "')");
  }
  // (Re)arm the hard deadline for this run; 0 disarms. Going through the
  // attached ExecutionControl lets engines honor it at the cancellation
  // safepoints; the local Deadline backstops runs with no control.
  Deadline local = timeout_ms_ > 0
                       ? Deadline::After(timeout_ms_ / 1000.0)
                       : Deadline::Infinite();
  if (control_ != nullptr) control_->SetDeadlineAfterMillis(timeout_ms_);
  stats_ = obs::EngineStats();
  WallTimer timer;
  Status status = ExecuteInternal();
  execute_seconds_ = timer.ElapsedSeconds();
  if (status.ok() && timeout_ms_ > 0 &&
      (control_ != nullptr ? control_->DeadlineExceeded()
                           : local.Exceeded())) {
    status = Status::DeadlineExceeded(
        "run exceeded timeout-ms=" + std::to_string(timeout_ms_) +
        " (algorithm '" + name_ + "')");
  }
  executed_ = status.ok();
  return status;
}

}  // namespace fastod
