#include "api/algorithm.h"

#include <utility>

#include "common/timer.h"

namespace fastod {

Status Algorithm::LoadData(Table table) {
  WallTimer timer;
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  dataset_.reset();
  table_ = std::move(table);
  relation_ = *std::move(encoded);
  executed_ = false;
  load_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

Status Algorithm::LoadData(EncodedRelation relation) {
  WallTimer timer;
  dataset_.reset();
  table_.reset();
  relation_ = std::move(relation);
  executed_ = false;
  load_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

Status Algorithm::LoadData(std::shared_ptr<const LoadedDataset> dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must be non-null");
  }
  // Near-zero by design: the parse/encode/partition work happened once,
  // in LoadedDataset::Build, and is shared by reference here.
  WallTimer timer;
  table_.reset();
  relation_.reset();
  dataset_ = std::move(dataset);
  executed_ = false;
  load_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

Status Algorithm::Execute() {
  if (!has_data()) {
    return Status::FailedPrecondition(
        "Execute() requires LoadData() first (algorithm '" + name_ + "')");
  }
  WallTimer timer;
  Status status = ExecuteInternal();
  execute_seconds_ = timer.ElapsedSeconds();
  executed_ = status.ok();
  return status;
}

}  // namespace fastod
