// String-keyed factory for discovery algorithms.
//
// The registry is how frontends (CLI, bindings, a future server) turn a
// user-supplied name into a configured-to-defaults Algorithm instance:
//
//   Result<std::unique_ptr<Algorithm>> algo =
//       AlgorithmRegistry::Default().Create("tane");
//
// Default() comes pre-populated with the six built-in engines
// (api/engines.h); embedders may register additional backends under new
// names, or build private registries for testing. Unknown names fail with
// a NotFound status that lists every registered name, so callers can
// surface an actionable one-line error.
#ifndef FASTOD_API_REGISTRY_H_
#define FASTOD_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/algorithm.h"
#include "common/status.h"

namespace fastod {

class AlgorithmRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Algorithm>()>;

  /// Binds `name` to `factory`; re-registering a name replaces it.
  void Register(const std::string& name, Factory factory);

  /// Instantiates the algorithm registered under `name`, or NotFound
  /// listing the registered names.
  Result<std::unique_ptr<Algorithm>> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names, in registration order.
  std::vector<std::string> Names() const;

  /// Names joined with ", " — for error and usage text.
  std::string NamesList() const;

  /// Usage text covering every registered algorithm: name, description,
  /// and its options (generated from option metadata).
  std::string DescribeAlgorithms() const;

  /// The process-wide registry, lazily populated with the built-in
  /// engines on first use.
  static AlgorithmRegistry& Default();

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };
  const Entry* Find(const std::string& name) const;

  std::vector<Entry> entries_;
};

}  // namespace fastod

#endif  // FASTOD_API_REGISTRY_H_
