// The unified discovery-algorithm interface.
//
// Every engine in src/algo/ is exposed through one abstract Algorithm with
// a fixed lifecycle:
//
//   auto algo = AlgorithmRegistry::Default().Create("fastod");   // factory
//   (*algo)->SetOption("threads", "4");                          // configure
//   (*algo)->LoadData(table);                                    // bind data
//   (*algo)->Execute();                                          // run
//   std::cout << (*algo)->ResultText();                          // render
//
// Configuration goes through the typed option registry (api/option.h), so
// frontends need no compile-time knowledge of any engine's options struct
// and can generate usage/help text from metadata. Output can stream
// through an OdSink (api/od_sink.h) instead of materializing; long runs
// can be cancelled and report coarse progress through an ExecutionControl.
// Wall-clock time of both lifecycle phases is accounted on the object.
//
// Threading: an Algorithm object is single-driver — exactly one thread
// may move it through the lifecycle (SetOption → LoadData → Execute →
// Result*), though different phases may run on different threads as long
// as they do not overlap (the service layer configures on API threads
// and executes on a pool worker). Engines configured with threads > 1
// create internal workers for the duration of Execute(); those never
// touch the Algorithm object itself, and every cross-thread contract the
// caller can observe (sink emission order, stats) is documented on the
// member it applies to. See docs/CONCURRENCY.md for the full contract.
//
// Adapters for the concrete engines live in api/engines.h; the string-keyed
// factory in api/registry.h.
#ifndef FASTOD_API_ALGORITHM_H_
#define FASTOD_API_ALGORITHM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/option.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "data/dataset_store.h"
#include "data/encode.h"
#include "data/table.h"
#include "obs/trace.h"

namespace fastod {

class OdSink;

class Algorithm {
 public:
  virtual ~Algorithm() = default;
  Algorithm(const Algorithm&) = delete;
  Algorithm& operator=(const Algorithm&) = delete;

  /// Registry key ("fastod", "tane", ...).
  const std::string& name() const { return name_; }
  /// One-line summary for usage text.
  const std::string& description() const { return description_; }

  // ---- Options ------------------------------------------------------
  /// Parses and applies one option. Unknown names and malformed values
  /// are errors; values apply to the next Execute().
  Status SetOption(const std::string& option_name,
                   const std::string& value) {
    return options_.Set(option_name, value);
  }
  /// All configurable option names, in registration order.
  std::vector<std::string> GetNeededOptions() const {
    return options_.Names();
  }
  /// Help text for this algorithm's options, one per line.
  std::string DescribeOptions() const { return options_.Describe(); }
  const OptionInfo* FindOption(const std::string& option_name) const {
    return options_.Find(option_name);
  }

  // ---- Lifecycle ----------------------------------------------------
  /// Binds a table: dictionary-encodes it into the columnar
  /// EncodedRelation and discards the raw values (they survive interned
  /// in the per-column dictionaries). Fails on relations the engines
  /// cannot represent (> 64 attributes).
  Status LoadData(Table table);
  /// Binds an already-encoded relation.
  Status LoadData(EncodedRelation relation);
  /// Binds a shared, already-preprocessed dataset (data/dataset_store.h):
  /// no copy of the encoding or level-1 partitions is made, and holding
  /// the pointer pins the dataset for the algorithm's lifetime — the
  /// load-once/discover-many path. Every engine seeds its level-1
  /// partitions from the dataset's prebuilt ones (see
  /// prebuilt_singletons()). LoadData(dataset) is an alias.
  Status BindDataset(std::shared_ptr<const LoadedDataset> dataset);
  Status LoadData(std::shared_ptr<const LoadedDataset> dataset) {
    return BindDataset(std::move(dataset));
  }
  bool has_data() const {
    return relation_.has_value() || dataset_ != nullptr;
  }
  /// The loaded relation's schema, or nullptr before LoadData. Stable for
  /// the algorithm's lifetime once data is bound — frontends that render
  /// streamed ODs (attribute indices) back to names hold onto it.
  const Schema* schema() const {
    return has_data() ? &relation().schema() : nullptr;
  }

  /// Runs the engine on the loaded data. Requires LoadData; may be called
  /// again after reconfiguring with SetOption. Cancellation (through the
  /// attached ExecutionControl) is not an error: engines stop cleanly and
  /// report partial results.
  Status Execute();
  bool executed() const { return executed_; }

  /// Wall-clock accounting for the two lifecycle phases.
  double load_seconds() const { return load_seconds_; }
  double execute_seconds() const { return execute_seconds_; }

  // ---- Streaming / control ------------------------------------------
  /// Attaches a streaming consumer for discovered dependencies. Must
  /// outlive Execute(). Engines that can avoid materializing their result
  /// vectors do so when a sink is attached (see api/od_sink.h).
  ///
  /// Thread affinity: sink callbacks are always SERIALIZED — the sink
  /// never sees two concurrent calls from one run — but in multi-threaded
  /// runs (threads > 1) they are issued from whichever internal worker
  /// performs the deterministic level merge, which varies per level and
  /// per run and is generally NOT the thread that called Execute(). A
  /// sink must therefore not assume thread identity (thread-locals,
  /// GUI-thread-only APIs); plain non-reentrant state needs no locking.
  /// Emission order is canonical and thread-count-independent.
  void SetSink(OdSink* sink) { sink_ = sink; }
  /// Attaches a cancellation/progress channel. Must outlive Execute().
  /// RequestCancel/StopRequested are safe from any thread at any time;
  /// multi-threaded engines poll it at task boundaries, so observance
  /// latency is one lattice-node task, same as the serial safepoints.
  void SetControl(ExecutionControl* control) { control_ = control; }

  // ---- Results ------------------------------------------------------
  /// Human-readable result summary; valid after Execute().
  virtual std::string ResultText() const = 0;
  /// Machine-readable result in the stable JSON shape of report/report.h.
  virtual std::string ResultJson() const = 0;

  /// Engine search telemetry of the last Execute() (obs/trace.h): lattice
  /// nodes visited/pruned (per level for the level-wise engines),
  /// swap/split validation calls, partition-cache traffic, ODs emitted.
  /// The engines accumulate these internally anyway; adapters copy them
  /// out once per run, so reading this costs the hot path nothing.
  /// Zeroed until the first Execute() completes.
  const obs::EngineStats& stats() const { return stats_; }

 protected:
  Algorithm(std::string name, std::string description);

  /// Subclasses register their options here, in their constructor.
  OptionRegistry& options() { return options_; }

  /// Engine invocation; data is loaded and the wall clock is running.
  virtual Status ExecuteInternal() = 0;

  const EncodedRelation& relation() const {
    return dataset_ != nullptr ? dataset_->relation() : *relation_;
  }
  /// The shared dataset, when BindDataset was used; nullptr otherwise.
  const LoadedDataset* dataset() const { return dataset_.get(); }
  /// The bound dataset's prebuilt level-1 partitions, or nullptr when no
  /// dataset is bound. Adapters pass this straight into their engine so
  /// every engine seeds Π*_{A} uniformly instead of rebuilding.
  const std::vector<StrippedPartition>* prebuilt_singletons() const {
    return dataset_ != nullptr ? &dataset_->singleton_partitions() : nullptr;
  }
  OdSink* sink() const { return sink_; }
  ExecutionControl* control() const { return control_; }

  /// Where ExecuteInternal() deposits the run's search telemetry
  /// (Execute() clears it before each run).
  obs::EngineStats& mutable_stats() { return stats_; }

 private:
  std::string name_;
  std::string description_;
  OptionRegistry options_;
  std::optional<EncodedRelation> relation_;
  std::shared_ptr<const LoadedDataset> dataset_;
  OdSink* sink_ = nullptr;
  ExecutionControl* control_ = nullptr;
  // Hard wall-clock deadline for Execute() (the "timeout-ms" option every
  // engine inherits): exceeding it is a kDeadlineExceeded *error*, unlike
  // the engines' own soft "timeout" option, which ends a run cleanly with
  // timed_out=true in the report. 0 = none.
  int64_t timeout_ms_ = 0;
  obs::EngineStats stats_;
  bool executed_ = false;
  double load_seconds_ = 0.0;
  double execute_seconds_ = 0.0;
};

}  // namespace fastod

#endif  // FASTOD_API_ALGORITHM_H_
