// Streaming consumption of discovered dependencies.
//
// Discovery output can be enormous — the FASTOD-NoPruning ablation of
// Exp-6 counts tens of millions of non-minimal ODs — so the unified
// Algorithm API emits through a callback interface instead of forcing every
// result into a vector. Engines deliver each dependency exactly once, in
// the same deterministic order the legacy result vectors would have held
// (node order within a level, levels ascending), so a CollectingOdSink
// reproduces the legacy vectors bit-for-bit while a CountingOdSink runs in
// O(1) memory.
//
// Each OD shape has its own hook with a no-op default; a sink overrides
// only what it consumes. ListOd is ORDER's native (list-based) output
// shape; ConditionalOd comes from the conditional engine.
//
// Threading contract — single consumer. One Execute() invokes a sink's
// hooks from exactly one thread (the thread that merges node results), so
// a sink attached to one algorithm needs no internal locking. Nothing in
// the sink implementations here is synchronized: CollectingOdSink's
// accessors and Clear(), and CountingOdSink's counters, may only be
// touched before Execute() starts or after it returns — never while a run
// is emitting. To share one sink across concurrently executing algorithms
// (as DiscoveryService's shared-sink mode does), wrap it in a MutexOdSink,
// which serializes every hook; emission order across sessions is then
// whatever the thread interleaving produces, though each session's own
// emissions still arrive in its deterministic order.
#ifndef FASTOD_API_OD_SINK_H_
#define FASTOD_API_OD_SINK_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <variant>
#include <vector>

#include "algo/conditional.h"
#include "od/bidirectional.h"
#include "od/canonical_od.h"
#include "od/list_od.h"

namespace fastod {

/// A retraction: a dependency reported by a prior run that no longer
/// holds after the dataset grew — the incremental engine's second event
/// kind. Streams deliver these interleaved with (new) discoveries, so a
/// consumer tracking "the current OD set of this dataset" applies both.
struct RevokedOd {
  CanonicalOd od;
};

class OdSink {
 public:
  virtual ~OdSink() = default;

  virtual void OnConstancy(const ConstancyOd& od) { (void)od; }
  virtual void OnCompatibility(const CompatibilityOd& od) { (void)od; }
  virtual void OnBidirectional(const BidiCompatibilityOd& od) { (void)od; }
  virtual void OnListOd(const ListOd& od) { (void)od; }
  virtual void OnConditional(const ConditionalOd& od) { (void)od; }
  virtual void OnRevoked(const RevokedOd& od) { (void)od; }
};

/// The materializing default: stores everything it receives, in emission
/// order.
class CollectingOdSink : public OdSink {
 public:
  void OnConstancy(const ConstancyOd& od) override;
  void OnCompatibility(const CompatibilityOd& od) override;
  void OnBidirectional(const BidiCompatibilityOd& od) override;
  void OnListOd(const ListOd& od) override;
  void OnConditional(const ConditionalOd& od) override;
  void OnRevoked(const RevokedOd& od) override;

  const std::vector<ConstancyOd>& constancy_ods() const { return constancy_; }
  const std::vector<CompatibilityOd>& compatibility_ods() const {
    return compatibility_;
  }
  const std::vector<BidiCompatibilityOd>& bidirectional_ods() const {
    return bidirectional_;
  }
  const std::vector<ListOd>& list_ods() const { return list_; }
  const std::vector<ConditionalOd>& conditional_ods() const {
    return conditional_;
  }
  const std::vector<RevokedOd>& revoked_ods() const { return revoked_; }

  /// Discoveries only; revocations are counted by revoked_ods().size().
  int64_t TotalOds() const;
  void Clear();

 private:
  std::vector<ConstancyOd> constancy_;
  std::vector<CompatibilityOd> compatibility_;
  std::vector<BidiCompatibilityOd> bidirectional_;
  std::vector<ListOd> list_;
  std::vector<ConditionalOd> conditional_;
  std::vector<RevokedOd> revoked_;
};

/// Counts emissions without retaining them — constant memory regardless of
/// output size.
class CountingOdSink : public OdSink {
 public:
  void OnConstancy(const ConstancyOd&) override { ++num_constancy_; }
  void OnCompatibility(const CompatibilityOd&) override {
    ++num_compatibility_;
  }
  void OnBidirectional(const BidiCompatibilityOd&) override {
    ++num_bidirectional_;
  }
  void OnListOd(const ListOd&) override { ++num_list_; }
  void OnConditional(const ConditionalOd&) override { ++num_conditional_; }
  void OnRevoked(const RevokedOd&) override { ++num_revoked_; }

  int64_t num_constancy() const { return num_constancy_; }
  int64_t num_compatibility() const { return num_compatibility_; }
  int64_t num_bidirectional() const { return num_bidirectional_; }
  int64_t num_list() const { return num_list_; }
  int64_t num_conditional() const { return num_conditional_; }
  int64_t num_revoked() const { return num_revoked_; }
  /// Discoveries only; revocations are counted by num_revoked().
  int64_t Total() const {
    return num_constancy_ + num_compatibility_ + num_bidirectional_ +
           num_list_ + num_conditional_;
  }

 private:
  int64_t num_constancy_ = 0;
  int64_t num_compatibility_ = 0;
  int64_t num_bidirectional_ = 0;
  int64_t num_list_ = 0;
  int64_t num_conditional_ = 0;
  int64_t num_revoked_ = 0;
};

/// Any one emitted dependency or retraction, shape-erased for queueing
/// and transport.
using OdEvent = std::variant<ConstancyOd, CompatibilityOd,
                             BidiCompatibilityOd, ListOd, ConditionalOd,
                             RevokedOd>;

/// Bounded producer/consumer channel between a running engine and a
/// concurrent reader — the incremental-delivery primitive the HTTP
/// server's /stream endpoint is built on.
///
/// The engine thread is the producer: every hook enqueues one OdEvent,
/// *blocking* while the queue is at capacity, so a slow consumer applies
/// backpressure instead of letting an Exp-6-sized result set pile up in
/// memory. The consumer thread calls Pop() until it returns false with
/// the channel closed.
///
/// Close() may be called from either side and is where the lifetime knot
/// unties: a consumer that goes away (client disconnect) closes the
/// channel, which unblocks and *drops* all further pushes — the engine
/// run completes normally, it just stops paying for delivery. Events
/// already queued remain poppable after Close (drain-then-stop).
class ChannelOdSink : public OdSink {
 public:
  explicit ChannelOdSink(size_t capacity = 256);

  // Producer side — the OdSink hooks (single-producer contract as above).
  void OnConstancy(const ConstancyOd& od) override;
  void OnCompatibility(const CompatibilityOd& od) override;
  void OnBidirectional(const BidiCompatibilityOd& od) override;
  void OnListOd(const ListOd& od) override;
  void OnConditional(const ConditionalOd& od) override;
  void OnRevoked(const RevokedOd& od) override;

  // Consumer side.
  /// Dequeues the oldest event. Returns false on timeout with the queue
  /// still open (caller may retry) and on a drained closed channel
  /// (caller should stop); distinguish via closed().
  bool Pop(OdEvent* out,
           std::chrono::milliseconds timeout = std::chrono::milliseconds(50));
  /// Irreversibly stops accepting events and wakes both sides.
  void Close();
  bool closed() const;

  /// Accepted / dropped-after-close counters, for diagnostics.
  int64_t pushed() const;
  int64_t dropped() const;

 private:
  void Push(OdEvent event);

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<OdEvent> queue_;  // guarded by mutex_
  bool closed_ = false;        // guarded by mutex_
  int64_t pushed_ = 0;         // guarded by mutex_
  int64_t dropped_ = 0;        // guarded by mutex_
};

/// Decorator that serializes every hook of a wrapped sink, lifting the
/// single-consumer contract so one sink can be shared by concurrently
/// executing algorithms. The wrapped sink must outlive the decorator; read
/// it only after every sharing Execute() has returned.
class MutexOdSink : public OdSink {
 public:
  explicit MutexOdSink(OdSink* wrapped) : wrapped_(wrapped) {}

  void OnConstancy(const ConstancyOd& od) override;
  void OnCompatibility(const CompatibilityOd& od) override;
  void OnBidirectional(const BidiCompatibilityOd& od) override;
  void OnListOd(const ListOd& od) override;
  void OnConditional(const ConditionalOd& od) override;
  void OnRevoked(const RevokedOd& od) override;

 private:
  std::mutex mutex_;
  OdSink* wrapped_;
};

}  // namespace fastod

#endif  // FASTOD_API_OD_SINK_H_
