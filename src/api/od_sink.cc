#include "api/od_sink.h"

namespace fastod {

void CollectingOdSink::OnConstancy(const ConstancyOd& od) {
  constancy_.push_back(od);
}

void CollectingOdSink::OnCompatibility(const CompatibilityOd& od) {
  compatibility_.push_back(od);
}

void CollectingOdSink::OnBidirectional(const BidiCompatibilityOd& od) {
  bidirectional_.push_back(od);
}

void CollectingOdSink::OnListOd(const ListOd& od) { list_.push_back(od); }

void CollectingOdSink::OnConditional(const ConditionalOd& od) {
  conditional_.push_back(od);
}

int64_t CollectingOdSink::TotalOds() const {
  return static_cast<int64_t>(constancy_.size() + compatibility_.size() +
                              bidirectional_.size() + list_.size() +
                              conditional_.size());
}

void CollectingOdSink::Clear() {
  constancy_.clear();
  compatibility_.clear();
  bidirectional_.clear();
  list_.clear();
  conditional_.clear();
}

void MutexOdSink::OnConstancy(const ConstancyOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnConstancy(od);
}

void MutexOdSink::OnCompatibility(const CompatibilityOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnCompatibility(od);
}

void MutexOdSink::OnBidirectional(const BidiCompatibilityOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnBidirectional(od);
}

void MutexOdSink::OnListOd(const ListOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnListOd(od);
}

void MutexOdSink::OnConditional(const ConditionalOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnConditional(od);
}

}  // namespace fastod
