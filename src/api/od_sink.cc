#include "api/od_sink.h"

#include "common/fault.h"

namespace fastod {

void CollectingOdSink::OnConstancy(const ConstancyOd& od) {
  constancy_.push_back(od);
}

void CollectingOdSink::OnCompatibility(const CompatibilityOd& od) {
  compatibility_.push_back(od);
}

void CollectingOdSink::OnBidirectional(const BidiCompatibilityOd& od) {
  bidirectional_.push_back(od);
}

void CollectingOdSink::OnListOd(const ListOd& od) { list_.push_back(od); }

void CollectingOdSink::OnConditional(const ConditionalOd& od) {
  conditional_.push_back(od);
}

void CollectingOdSink::OnRevoked(const RevokedOd& od) {
  revoked_.push_back(od);
}

int64_t CollectingOdSink::TotalOds() const {
  return static_cast<int64_t>(constancy_.size() + compatibility_.size() +
                              bidirectional_.size() + list_.size() +
                              conditional_.size());
}

void CollectingOdSink::Clear() {
  constancy_.clear();
  compatibility_.clear();
  bidirectional_.clear();
  list_.clear();
  conditional_.clear();
  revoked_.clear();
}

ChannelOdSink::ChannelOdSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void ChannelOdSink::Push(OdEvent event) {
  if (FASTOD_FAULT_POINT("sink.push")) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++dropped_;
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) {
      ++dropped_;
      return;
    }
    queue_.push_back(std::move(event));
    ++pushed_;
  }
  not_empty_.notify_one();
}

void ChannelOdSink::OnConstancy(const ConstancyOd& od) { Push(od); }
void ChannelOdSink::OnCompatibility(const CompatibilityOd& od) { Push(od); }
void ChannelOdSink::OnBidirectional(const BidiCompatibilityOd& od) {
  Push(od);
}
void ChannelOdSink::OnListOd(const ListOd& od) { Push(od); }
void ChannelOdSink::OnConditional(const ConditionalOd& od) { Push(od); }
void ChannelOdSink::OnRevoked(const RevokedOd& od) { Push(od); }

bool ChannelOdSink::Pop(OdEvent* out, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_for(lock, timeout,
                      [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // timeout, or closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void ChannelOdSink::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool ChannelOdSink::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int64_t ChannelOdSink::pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

int64_t ChannelOdSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void MutexOdSink::OnConstancy(const ConstancyOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnConstancy(od);
}

void MutexOdSink::OnCompatibility(const CompatibilityOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnCompatibility(od);
}

void MutexOdSink::OnBidirectional(const BidiCompatibilityOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnBidirectional(od);
}

void MutexOdSink::OnListOd(const ListOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnListOd(od);
}

void MutexOdSink::OnConditional(const ConditionalOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnConditional(od);
}

void MutexOdSink::OnRevoked(const RevokedOd& od) {
  std::lock_guard<std::mutex> lock(mutex_);
  wrapped_->OnRevoked(od);
}

}  // namespace fastod
