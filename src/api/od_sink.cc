#include "api/od_sink.h"

namespace fastod {

void CollectingOdSink::OnConstancy(const ConstancyOd& od) {
  constancy_.push_back(od);
}

void CollectingOdSink::OnCompatibility(const CompatibilityOd& od) {
  compatibility_.push_back(od);
}

void CollectingOdSink::OnBidirectional(const BidiCompatibilityOd& od) {
  bidirectional_.push_back(od);
}

void CollectingOdSink::OnListOd(const ListOd& od) { list_.push_back(od); }

void CollectingOdSink::OnConditional(const ConditionalOd& od) {
  conditional_.push_back(od);
}

int64_t CollectingOdSink::TotalOds() const {
  return static_cast<int64_t>(constancy_.size() + compatibility_.size() +
                              bidirectional_.size() + list_.size() +
                              conditional_.size());
}

void CollectingOdSink::Clear() {
  constancy_.clear();
  compatibility_.clear();
  bidirectional_.clear();
  list_.clear();
  conditional_.clear();
}

}  // namespace fastod
