#include "api/registry.h"

#include <utility>

#include "api/engines.h"

namespace fastod {

void AlgorithmRegistry::Register(const std::string& name, Factory factory) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(Entry{name, std::move(factory)});
}

const AlgorithmRegistry::Entry* AlgorithmRegistry::Find(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Result<std::unique_ptr<Algorithm>> AlgorithmRegistry::Create(
    const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("unknown algorithm '" + name +
                            "' (registered: " + NamesList() + ")");
  }
  return entry->factory();
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

std::string AlgorithmRegistry::NamesList() const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += (i == 0 ? "" : ", ") + entries_[i].name;
  }
  return out;
}

std::string AlgorithmRegistry::DescribeAlgorithms() const {
  std::string out;
  for (const Entry& entry : entries_) {
    std::unique_ptr<Algorithm> algorithm = entry.factory();
    out += entry.name + " — " + algorithm->description() + "\n";
    out += algorithm->DescribeOptions();
  }
  return out;
}

AlgorithmRegistry& AlgorithmRegistry::Default() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    RegisterBuiltinAlgorithms(r);
    return r;
  }();
  return *registry;
}

}  // namespace fastod
