#include "api/option.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace fastod {

namespace {

/// The historical option surface drifted between hyphen and underscore
/// spellings; hyphens are canonical now, underscores resolve via this.
std::string Hyphenated(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '_', '-');
  return out;
}

void CountDeprecatedUse(const std::string& spelling) {
  if (!obs::Enabled()) return;
  obs::Registry::Global()
      .GetCounter("fastod_deprecated_option_total",
                  "Uses of deprecated option spellings (by alias)",
                  {{"name", spelling}})
      ->Inc();
}

std::string RenderDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

Status BadValue(const std::string& name, const std::string& value,
                const std::string& expected) {
  return Status::InvalidArgument("option '" + name + "': invalid value '" +
                                 value + "' (expected " + expected + ")");
}

}  // namespace

void OptionRegistry::Add(OptionInfo info,
                         std::function<Status(const std::string&)> apply) {
  options_.push_back(Option{std::move(info), std::move(apply)});
}

void OptionRegistry::AddBool(const std::string& name, bool* target,
                             const std::string& description) {
  OptionInfo info{name, OptionKind::kBool, "bool", description,
                  *target ? "true" : "false",
                  {}};
  Add(std::move(info), [name, target](const std::string& value) {
    // An empty value mirrors a bare --flag on the command line.
    if (value.empty() || value == "true" || value == "1" || value == "on") {
      *target = true;
      return Status::Ok();
    }
    if (value == "false" || value == "0" || value == "off") {
      *target = false;
      return Status::Ok();
    }
    return BadValue(name, value, "true/false");
  });
}

void OptionRegistry::AddInt(const std::string& name, int* target,
                            const std::string& description, int min_value,
                            int max_value) {
  OptionInfo info{name, OptionKind::kInt, "int", description,
                  std::to_string(*target),
                  {}};
  Add(std::move(info),
      [name, target, min_value, max_value](const std::string& value) {
        std::optional<int64_t> parsed = ParseInt(value);
        if (!parsed.has_value()) return BadValue(name, value, "an integer");
        if (*parsed < min_value || *parsed > max_value) {
          return BadValue(name, value,
                          "an integer in [" + std::to_string(min_value) +
                              ", " + std::to_string(max_value) + "]");
        }
        *target = static_cast<int>(*parsed);
        return Status::Ok();
      });
}

void OptionRegistry::AddInt64(const std::string& name, int64_t* target,
                              const std::string& description,
                              int64_t min_value, int64_t max_value) {
  OptionInfo info{name, OptionKind::kInt, "int", description,
                  std::to_string(*target),
                  {}};
  Add(std::move(info),
      [name, target, min_value, max_value](const std::string& value) {
        std::optional<int64_t> parsed = ParseInt(value);
        if (!parsed.has_value()) return BadValue(name, value, "an integer");
        if (*parsed < min_value || *parsed > max_value) {
          return BadValue(name, value,
                          "an integer in [" + std::to_string(min_value) +
                              ", " + std::to_string(max_value) + "]");
        }
        *target = *parsed;
        return Status::Ok();
      });
}

void OptionRegistry::AddDouble(const std::string& name, double* target,
                               const std::string& description,
                               double min_value, double max_value) {
  OptionInfo info{name, OptionKind::kDouble, "double", description,
                  RenderDouble(*target),
                  {}};
  Add(std::move(info),
      [name, target, min_value, max_value](const std::string& value) {
        std::optional<double> parsed = ParseDouble(value);
        if (!parsed.has_value()) return BadValue(name, value, "a number");
        if (*parsed < min_value || *parsed > max_value) {
          return BadValue(name, value,
                          "a number in [" + RenderDouble(min_value) + ", " +
                              RenderDouble(max_value) + "]");
        }
        *target = *parsed;
        return Status::Ok();
      });
}

void OptionRegistry::AddString(const std::string& name, std::string* target,
                               const std::string& description) {
  OptionInfo info{name, OptionKind::kString, "string", description,
                  *target,
                  {}};
  Add(std::move(info), [target](const std::string& value) {
    *target = value;
    return Status::Ok();
  });
}

void OptionRegistry::AddEnum(const std::string& name, int* target,
                             const std::string& description,
                             std::vector<std::pair<std::string, int>> values,
                             const std::string& default_repr) {
  OptionInfo info{name, OptionKind::kEnum, "enum", description,
                  default_repr,
                  {}};
  for (const auto& [spelling, unused] : values) {
    info.enum_values.push_back(spelling);
  }
  Add(std::move(info),
      [name, target, values = std::move(values)](const std::string& value) {
        for (const auto& [spelling, mapped] : values) {
          if (value == spelling) {
            *target = mapped;
            return Status::Ok();
          }
        }
        std::string expected = "one of";
        for (size_t i = 0; i < values.size(); ++i) {
          expected += (i == 0 ? " " : ", ") + values[i].first;
        }
        return BadValue(name, value, expected);
      });
}

void OptionRegistry::AddAlias(const std::string& canonical,
                              const std::string& alias) {
  for (Option& option : options_) {
    if (option.info.name == canonical) {
      option.info.aliases.push_back(alias);
      return;
    }
  }
  FASTOD_CHECK(false && "AddAlias: canonical option not registered");
}

Status OptionRegistry::Set(const std::string& name, const std::string& value) {
  for (Option& option : options_) {
    if (option.info.name == name) return option.apply(value);
  }
  // Deprecated spellings: registered aliases, then the underscore form of
  // the canonical name or an alias. Each hit is counted by the spelling
  // the caller actually used.
  const std::string hyphenated = Hyphenated(name);
  for (Option& option : options_) {
    const OptionInfo& info = option.info;
    bool match =
        std::find(info.aliases.begin(), info.aliases.end(), name) !=
        info.aliases.end();
    if (!match && hyphenated != name) {
      match = info.name == hyphenated ||
              std::find(info.aliases.begin(), info.aliases.end(),
                        hyphenated) != info.aliases.end();
    }
    if (match) {
      CountDeprecatedUse(name);
      return option.apply(value);
    }
  }
  std::string known;
  for (size_t i = 0; i < options_.size(); ++i) {
    known += (i == 0 ? "" : ", ") + options_[i].info.name;
  }
  return Status::NotFound("unknown option '" + name + "' (available: " +
                          known + ")");
}

std::vector<std::string> OptionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const Option& option : options_) names.push_back(option.info.name);
  return names;
}

const OptionInfo* OptionRegistry::Find(const std::string& name) const {
  for (const Option& option : options_) {
    if (option.info.name == name) return &option.info;
  }
  return nullptr;
}

std::string OptionRegistry::Describe() const {
  std::string out;
  for (const Option& option : options_) {
    const OptionInfo& info = option.info;
    std::string type = info.type_name;
    if (type == "enum") {
      type.clear();
      for (size_t i = 0; i < info.enum_values.size(); ++i) {
        if (i > 0) type += "|";
        type += info.enum_values[i];
      }
    }
    std::string line = "  --" + info.name + "=<" + type + ">";
    if (line.size() < 34) line.append(34 - line.size(), ' ');
    line += " " + info.description + " (default: " + info.default_repr + ")";
    for (const std::string& alias : info.aliases) {
      line += " [alias: --" + alias + "]";
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace fastod
