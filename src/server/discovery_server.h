// The HTTP frontend over DiscoveryService — the ROADMAP's "server
// frontend" and "incremental result delivery over the wire" items.
//
// JSON API (all bodies are JSON; errors are {"error", "code"} with the
// Status code mapped onto the HTTP status):
//
//   GET    /v1/algorithms            registry-driven metadata: every
//                                    algorithm with its typed options
//   POST   /v1/sessions              create + submit one session
//          {"algorithm": "fastod",              (required)
//           "options": {"threads": 2},          (values may be
//                                                string/number/bool)
//           "csv": "a,b\n1,2\n",                inline data — XOR —
//           "csv_path": "/data/flight.csv",     server-side file, read
//                                               on the worker — XOR —
//           "dataset_id": "flight",             a resident dataset
//                                               uploaded via /v1/datasets
//           "dataset_version": 2,               pin a specific version
//                                               (dataset_id only;
//                                               default = current)
//           "csv_options": {"delimiter": ",", "has_header": true,
//                           "max_rows": 1000},
//           "stream": true}                     enable /stream below
//
//   POST   /v1/datasets              load once, discover many: parse +
//                                    encode + build level-1 partitions
//                                    now, then any number of sessions
//                                    (concurrent, mixed-algorithm) bind
//                                    the resident dataset by reference
//          {"id": "flight",                     optional (ds-N otherwise)
//           "csv": "..." | "csv_path": "...",   exactly one
//           "csv_options": {...}}
//   POST   /v1/datasets/{id}/rows    append rows, minting a new dataset
//                                    version: delta rows are re-encoded
//                                    into the existing dictionaries and
//                                    the level-1 partitions extended,
//                                    without touching the prior version
//                                    (which stays alive while sessions
//                                    pin it). Responds {id,version,rows,
//                                    appended_rows,columns,bytes}; 409
//                                    when a concurrent append won the
//                                    race. Delta CSVs default to
//                                    has_header=false (data-only).
//          {"csv": "..." | "csv_path": "...",   exactly one
//           "csv_options": {...}}
//   GET    /v1/datasets              {"datasets":[{id,source,version,
//                                    rows,columns,bytes,retained_bytes,
//                                    hits,pinned,versions:[...]}...],
//                                    total_bytes,budget_bytes,evictions,
//                                    hits_total,pinned_count}
//   GET    /v1/datasets/{id}         one dataset's info row
//   DELETE /v1/datasets/{id}         drop the store's reference; running
//                                    sessions keep the data alive, new
//                                    dataset_id submissions get 404
//
// Dataset residency is bounded by options.dataset_budget_bytes: an
// upload that would exceed it evicts idle (unpinned) datasets in LRU
// order, and is refused with 503 when the budget is exhausted by pinned
// ones. Sessions pin their dataset for their whole lifetime (purge
// sessions to unpin).
//   GET    /v1/sessions/{id}         {"id","algorithm","state",
//                                     "progress","error"?}
//   DELETE /v1/sessions/{id}         cooperative cancel (idempotent)
//   DELETE /v1/sessions/{id}?purge=1 destroy a *terminal* session and
//                                    free everything it retains (the
//                                    encoded relation, cached report,
//                                    stream channel); 409 while live —
//                                    long-running servers must purge or
//                                    they accumulate one dataset per
//                                    session
//   GET    /v1/sessions/{id}/result  the stable report JSON of a
//                                    terminal session (409 before)
//   GET    /v1/sessions/{id}/stream  chunked transfer; one JSON line per
//                                    OD *while the session runs*, closed
//                                    by an {"type":"end",...} line. The
//                                    incremental algorithm additionally
//                                    emits {"type":"revoked",...} lines
//                                    for prior ODs the appended rows
//                                    falsified
//   GET    /v1/sessions/{id}/trace   the session's observability trace
//                                    (phase spans + engine search
//                                    counters, see obs/trace.h) as JSON;
//                                    readable in any state — a running
//                                    session shows the spans so far
//   GET    /metrics                  Prometheus text exposition of the
//                                    process-wide obs::Registry, with
//                                    dataset-store gauges refreshed at
//                                    scrape time; empty families when
//                                    FASTOD_METRICS=off
//
// Streaming rides a bounded ChannelOdSink: the engine blocks when the
// client cannot keep up (backpressure, not unbounded buffering), and a
// client that disconnects closes the channel, which lets the run finish
// while dropping delivery. Mirroring FASTOD's level-wise traversal, ODs
// arrive in the engine's deterministic emission order, so the streamed
// set of a completed session is exactly the /result set.
//
// Caveat that follows from backpressure: a "stream": true session whose
// stream is never consumed parks its worker once the channel fills
// (stream_capacity events). Clients that opt into streaming must either
// read the stream or DELETE the session; cancel and server shutdown
// both close the channel, so nothing can wedge past the session's
// lifetime.
#ifndef FASTOD_SERVER_DISCOVERY_SERVER_H_
#define FASTOD_SERVER_DISCOVERY_SERVER_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "api/od_sink.h"
#include "api/registry.h"
#include "common/status.h"
#include "server/httpd.h"
#include "service/discovery_service.h"

namespace fastod {

struct DiscoveryServerOptions {
  std::string host = "127.0.0.1";
  int port = 8080;  // 0 picks an ephemeral port (see port())
  /// HTTP workers. Every open /stream pins one for the session's
  /// lifetime, so size this above the expected concurrent stream count.
  int http_threads = 8;
  /// Concurrently executing discovery sessions (0 = hardware).
  int worker_threads = 0;
  /// ChannelOdSink bound per streaming session.
  size_t stream_capacity = 256;
  /// Permit {"csv_path": ...} submissions that read files server-side.
  /// Disable when exposing the server beyond trusted callers.
  bool allow_csv_path = true;
  /// Memory budget for resident datasets (see data/dataset_store.h);
  /// 0 = unlimited.
  int64_t dataset_budget_bytes = 256LL << 20;
  /// Admission cap on queued+running sessions across all clients
  /// (0 = unlimited). The session past the cap is refused with 429.
  int64_t max_sessions = 0;
  /// Per-client cap on live (non-terminal) sessions, keyed by the
  /// X-Client-Id header when present, else the peer IP (0 = unlimited).
  /// Exceeding it is a 429; terminal sessions stop counting immediately
  /// but are only purged explicitly.
  int64_t max_sessions_per_client = 0;
  /// Request-body cap; over-limit uploads get 413 before any parsing.
  /// 0 = the HTTP layer's default (64 MiB).
  size_t max_body_bytes = 0;
  /// Retry-After hint (seconds) attached to 429/503 rejections.
  int retry_after_seconds = 1;
};

class DiscoveryServer {
 public:
  explicit DiscoveryServer(DiscoveryServerOptions options = {},
                           const AlgorithmRegistry* registry = nullptr);
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  Status Start();
  void Stop();
  /// The bound port (valid after Start; differs from options.port when
  /// that was 0).
  int port() const { return http_.port(); }

  // ---- Graceful drain -----------------------------------------------
  /// Phase one: flips the server into draining mode — every new
  /// POST /v1/sessions is refused with 503 + Retry-After. Established
  /// work keeps being served: running sessions finish, open streams keep
  /// flowing, and (because the protocol is one request per connection)
  /// the listen socket stays open so clients can still poll and fetch
  /// results of in-flight sessions; Stop() closes it.
  void BeginDrain();
  bool draining() const { return draining_.load(); }
  /// Phase two: blocks until no session is queued or running, up to
  /// `timeout_seconds`; on timeout cancels the stragglers (closing their
  /// stream channels so backpressure cannot wedge the cancel) and waits
  /// for them to stop. Returns true when every session finished without
  /// being cancelled.
  bool Drain(double timeout_seconds);

  /// The backing service, for in-process inspection in tests.
  DiscoveryService& service() { return service_; }

 private:
  // Per-session streaming state. The channel must outlive the session's
  // terminal transition (the engine may still be pushing), so states are
  // only dropped with the server.
  struct StreamState {
    explicit StreamState(size_t capacity) : channel(capacity) {}
    ChannelOdSink channel;
    std::atomic<bool> claimed{false};  // one consumer per stream
  };

  void Handle(const HttpRequest& request, HttpResponseWriter& writer);
  /// The route dispatch behind Handle(), which wraps it with the HTTP
  /// request counter and latency histogram.
  void Route(const HttpRequest& request, HttpResponseWriter& writer);
  void HandleAlgorithms(HttpResponseWriter& writer);
  void HandleMetrics(HttpResponseWriter& writer);
  void HandleCreateSession(const HttpRequest& request,
                           HttpResponseWriter& writer);
  void HandleCreateDataset(const HttpRequest& request,
                           HttpResponseWriter& writer);
  void HandleAppendRows(const std::string& dataset_id,
                        const HttpRequest& request,
                        HttpResponseWriter& writer);
  void HandleListDatasets(HttpResponseWriter& writer);
  void HandleDatasetInfo(const std::string& dataset_id,
                         HttpResponseWriter& writer);
  void HandleDatasetDelete(const std::string& dataset_id,
                           HttpResponseWriter& writer);
  void HandleSessionInfo(SessionId id, HttpResponseWriter& writer);
  void HandleCancel(SessionId id, bool purge, HttpResponseWriter& writer);
  void HandleResult(SessionId id, HttpResponseWriter& writer);
  void HandleTrace(SessionId id, HttpResponseWriter& writer);
  void HandleStream(SessionId id, HttpResponseWriter& writer);

  std::shared_ptr<StreamState> FindStream(SessionId id) const;
  std::string SessionInfoJson(SessionId id,
                              const DiscoveryService::PollInfo& info) const;
  /// Counts the client's live sessions (pruning terminal ones) and
  /// claims a slot, or refuses with kUnavailable when at quota.
  Status AdmitClient(const std::string& client_key, SessionId id);
  void ForgetClientSession(SessionId id);

  const AlgorithmRegistry& registry_;
  DiscoveryServerOptions options_;
  std::atomic<bool> draining_{false};

  mutable std::mutex mutex_;
  std::map<SessionId, std::shared_ptr<StreamState>> streams_;
  std::map<SessionId, std::string> algorithm_names_;
  // Per-client quota bookkeeping (both guarded by mutex_): who owns each
  // session, and each client's live set.
  std::map<SessionId, std::string> session_clients_;
  std::map<std::string, std::set<SessionId>> client_sessions_;
  std::atomic<int64_t> next_dataset_id_{1};  // for autogenerated ids

  // Destruction order is load-bearing: ~HttpServer first (no new
  // requests, handlers drained), then ~DiscoveryService (cancels and
  // joins every run — sessions release their dataset pins here), then
  // the dataset store those sessions were pinning, and only then the
  // stream channels above, which running engines may push into until
  // the service drain completes.
  DatasetStore store_;
  DiscoveryService service_;
  HttpServer http_;
};

}  // namespace fastod

#endif  // FASTOD_SERVER_DISCOVERY_SERVER_H_
