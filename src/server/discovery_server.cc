#include "server/discovery_server.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/json.h"
#include "common/timer.h"
#include "data/csv.h"
#include "data/schema.h"
#include "obs/metrics.h"
#include "od/attribute_set.h"

namespace fastod {

namespace {

int HttpStatusOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

/// The session state spelled for the wire: a deadline failure gets its
/// own state so clients need not parse the error message.
std::string WireStateName(SessionState state, StatusCode error_code) {
  if (state == SessionState::kFailed &&
      error_code == StatusCode::kDeadlineExceeded) {
    return "deadline_exceeded";
  }
  return SessionStateName(state);
}

void SendError(HttpResponseWriter& writer, const Status& status) {
  JsonWriter w;
  w.BeginObject()
      .Key("error")
      .String(status.message())
      .Key("code")
      .String(StatusCodeName(status.code()))
      .EndObject();
  writer.Send(HttpStatusOf(status.code()), "application/json",
              w.str() + "\n");
}

void SendJson(HttpResponseWriter& writer, int status,
              const std::string& body) {
  writer.Send(status, "application/json", body);
}

/// Overload/drain rejection: `http_status` is 429 (per-client quota,
/// admission cap) or 503 (draining), always with a Retry-After hint.
void SendRetryLater(HttpResponseWriter& writer, const Status& status,
                    int http_status, int retry_after_seconds) {
  JsonWriter w;
  w.BeginObject()
      .Key("error")
      .String(status.message())
      .Key("code")
      .String(StatusCodeName(status.code()))
      .EndObject();
  writer.Send(http_status, "application/json", w.str() + "\n",
              {{"Retry-After", std::to_string(retry_after_seconds)}});
}

/// Quota key: an explicit client identity beats the peer address (many
/// clients behind one NAT/proxy share an IP), which beats nothing.
std::string ClientKey(const HttpRequest& request) {
  auto it = request.headers.find("x-client-id");
  if (it != request.headers.end() && !it->second.empty()) {
    return it->second;
  }
  return request.peer.empty() ? "unknown" : request.peer;
}

/// Renders a JSON option value to the string spelling SetOption parses.
Result<std::string> OptionValueToString(const std::string& name,
                                        const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::kString:
      return value.string_value();
    case JsonValue::Type::kBool:
      return std::string(value.bool_value() ? "true" : "false");
    case JsonValue::Type::kNumber: {
      double number = value.number_value();
      if (number == std::floor(number) && std::abs(number) < 1e15) {
        return std::to_string(static_cast<int64_t>(number));
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number);
      return std::string(buf);
    }
    default:
      return Status::InvalidArgument(
          "option '" + name +
          "' must be a string, number, or boolean, got " + value.Dump());
  }
}

void AppendContext(JsonWriter* w, AttributeSet context,
                   const Schema& schema) {
  w->BeginArray();
  for (int a = context.First(); a >= 0; a = context.Next(a)) {
    w->String(schema.name(a));
  }
  w->EndArray();
}

void AppendSpec(JsonWriter* w, const OrderSpec& spec, const Schema& schema) {
  w->BeginArray();
  for (int a : spec) w->String(schema.name(a));
  w->EndArray();
}

/// One streamed OD as a single NDJSON line. Field names match the
/// /result report shapes so clients parse both with one schema.
std::string EventJsonLine(const OdEvent& event, const Schema& schema) {
  JsonWriter w;
  w.BeginObject();
  std::visit(
      [&](const auto& od) {
        using T = std::decay_t<decltype(od)>;
        if constexpr (std::is_same_v<T, ConstancyOd>) {
          w.Key("type").String("constancy").Key("context");
          AppendContext(&w, od.context, schema);
          w.Key("attribute").String(schema.name(od.attribute));
        } else if constexpr (std::is_same_v<T, CompatibilityOd>) {
          w.Key("type").String("compatibility").Key("context");
          AppendContext(&w, od.context, schema);
          w.Key("a").String(schema.name(od.a));
          w.Key("b").String(schema.name(od.b));
        } else if constexpr (std::is_same_v<T, BidiCompatibilityOd>) {
          w.Key("type").String("bidirectional").Key("context");
          AppendContext(&w, od.context, schema);
          w.Key("a").String(schema.name(od.a));
          w.Key("b").String(schema.name(od.b));
          w.Key("polarity").String("opposite");
        } else if constexpr (std::is_same_v<T, ListOd>) {
          w.Key("type").String("list").Key("lhs");
          AppendSpec(&w, od.lhs, schema);
          w.Key("rhs");
          AppendSpec(&w, od.rhs, schema);
        } else if constexpr (std::is_same_v<T, ConditionalOd>) {
          w.Key("type").String("conditional");
          w.Key("condition").String(schema.name(od.condition_attribute));
          w.Key("bindings").BeginArray();
          for (int32_t rank : od.binding_ranks) w.Int(rank);
          w.EndArray();
          w.Key("od").String(CanonicalOdToString(od.od, schema));
          w.Key("support").Double(od.support);
        } else if constexpr (std::is_same_v<T, RevokedOd>) {
          // A retraction of a previously streamed/reported OD; od_type +
          // the shape's usual fields identify which one.
          w.Key("type").String("revoked");
          if (std::holds_alternative<ConstancyOd>(od.od)) {
            const ConstancyOd& c = std::get<ConstancyOd>(od.od);
            w.Key("od_type").String("constancy").Key("context");
            AppendContext(&w, c.context, schema);
            w.Key("attribute").String(schema.name(c.attribute));
          } else {
            const CompatibilityOd& c = std::get<CompatibilityOd>(od.od);
            w.Key("od_type").String("compatibility").Key("context");
            AppendContext(&w, c.context, schema);
            w.Key("a").String(schema.name(c.a));
            w.Key("b").String(schema.name(c.b));
          }
        }
      },
      event);
  w.EndObject();
  return w.str() + "\n";
}

/// Parses a {"csv_options": {...}} object into CsvOptions.
Result<CsvOptions> ParseCsvOptionsField(const JsonValue* raw) {
  CsvOptions csv_options;
  if (raw == nullptr) return csv_options;
  if (!raw->is_object()) {
    return Status::InvalidArgument("\"csv_options\" must be an object");
  }
  if (const JsonValue* delim = raw->Find("delimiter"); delim != nullptr) {
    if (!delim->is_string() || delim->string_value().size() != 1) {
      return Status::InvalidArgument(
          "\"delimiter\" must be a one-character string");
    }
    csv_options.delimiter = delim->string_value()[0];
  }
  if (const JsonValue* header = raw->Find("has_header"); header != nullptr) {
    if (!header->is_bool()) {
      return Status::InvalidArgument("\"has_header\" must be a boolean");
    }
    csv_options.has_header = header->bool_value();
  }
  if (const JsonValue* max_rows = raw->Find("max_rows");
      max_rows != nullptr) {
    // int_value() saturates rather than invoking UB, but garbage like
    // 1e30 or 2.5 deserves a 400, not a silent clamp.
    if (!max_rows->is_number() ||
        max_rows->number_value() !=
            static_cast<double>(max_rows->int_value()) ||
        max_rows->int_value() < -1) {
      return Status::InvalidArgument(
          "\"max_rows\" must be an integer >= -1");
    }
    csv_options.max_rows = max_rows->int_value();
  }
  return csv_options;
}

/// Shared validation for the "csv" / "csv_path" data-source fields of
/// session and dataset creation (the XOR-arity rules differ per
/// endpoint and stay at the call sites).
Status ValidateCsvSource(const JsonValue* csv, const JsonValue* csv_path,
                         bool allow_csv_path) {
  if (csv != nullptr && !csv->is_string()) {
    return Status::InvalidArgument("\"csv\" must be a string");
  }
  if (csv_path != nullptr) {
    if (!allow_csv_path) {
      return Status::InvalidArgument(
          "server-side \"csv_path\" reads are disabled; send inline "
          "\"csv\"");
    }
    if (!csv_path->is_string()) {
      return Status::InvalidArgument("\"csv_path\" must be a string");
    }
  }
  return Status::Ok();
}

/// Dataset ids travel inside URL paths, so constrain them to characters
/// that need no escaping anywhere (and keep List() renderings sane).
Status ValidateDatasetId(const std::string& id) {
  if (id.empty() || id.size() > 128) {
    return Status::InvalidArgument(
        "dataset id must be 1..128 characters");
  }
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "dataset id may contain only [A-Za-z0-9._-], got '" + id + "'");
    }
  }
  return Status::Ok();
}

void AppendDatasetInfo(JsonWriter* w, const DatasetInfo& info) {
  w->BeginObject()
      .Key("id")
      .String(info.id)
      .Key("source")
      .String(info.source)
      .Key("version")
      .Int(info.version)
      .Key("rows")
      .Int(info.rows)
      .Key("columns")
      .Int(info.columns)
      .Key("bytes")
      .Int(info.bytes)
      .Key("retained_bytes")
      .Int(info.retained_bytes)
      .Key("hits")
      .Int(info.hits)
      .Key("pinned")
      .Bool(info.pinned);
  if (!info.versions.empty()) {
    w->Key("versions").BeginArray();
    for (const DatasetVersionInfo& v : info.versions) {
      w->BeginObject()
          .Key("version")
          .Int(v.version)
          .Key("rows")
          .Int(v.rows)
          .Key("bytes")
          .Int(v.bytes)
          .Key("pinned")
          .Bool(v.pinned)
          .Key("current")
          .Bool(v.current)
          .EndObject();
    }
    w->EndArray();
  }
  w->EndObject();
}

/// Collapses a request path onto its route template so the per-route
/// metric labels stay bounded no matter what ids clients send.
std::string RouteFamily(const std::string& path) {
  if (path == "/metrics" || path == "/v1/algorithms" ||
      path == "/v1/sessions" || path == "/v1/datasets") {
    return path;
  }
  if (path.rfind("/v1/datasets/", 0) == 0) {
    const char* rows = "/rows";
    if (path.size() >= std::strlen(rows) &&
        path.compare(path.size() - std::strlen(rows), std::string::npos,
                     rows) == 0) {
      return "/v1/datasets/{id}/rows";
    }
    return "/v1/datasets/{id}";
  }
  if (path.rfind("/v1/sessions/", 0) == 0) {
    for (const char* suffix : {"/result", "/stream", "/trace"}) {
      if (path.size() >= std::strlen(suffix) &&
          path.compare(path.size() - std::strlen(suffix),
                       std::string::npos, suffix) == 0) {
        return std::string("/v1/sessions/{id}") + suffix;
      }
    }
    return "/v1/sessions/{id}";
  }
  return "other";
}

obs::Counter* StreamOdsCounter() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "fastod_http_stream_ods_total",
      "OD events delivered over /stream responses");
  return counter;
}

obs::Counter* StreamBytesCounter() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "fastod_http_stream_bytes_total",
      "Bytes written to /stream response bodies");
  return counter;
}

obs::Counter* RejectionCounter(const char* reason) {
  return obs::Registry::Global().GetCounter(
      "fastod_service_admission_rejections_total",
      "Session submissions refused by admission control",
      {{"reason", reason}});
}

/// "/v1/sessions/<id>..." → id + remaining suffix, or nullopt.
std::optional<std::pair<SessionId, std::string>> ParseSessionPath(
    const std::string& path) {
  const std::string prefix = "/v1/sessions/";
  if (path.rfind(prefix, 0) != 0) return std::nullopt;
  std::string rest = path.substr(prefix.size());
  size_t slash = rest.find('/');
  std::string id_text = rest.substr(0, slash);
  if (id_text.empty()) return std::nullopt;
  char* end = nullptr;
  long long id = std::strtoll(id_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || id <= 0) return std::nullopt;
  return std::make_pair(static_cast<SessionId>(id),
                        slash == std::string::npos ? ""
                                                   : rest.substr(slash));
}

}  // namespace

DiscoveryServer::DiscoveryServer(DiscoveryServerOptions options,
                                 const AlgorithmRegistry* registry)
    : registry_(registry != nullptr ? *registry
                                    : AlgorithmRegistry::Default()),
      options_(std::move(options)),
      store_(options_.dataset_budget_bytes),
      service_(options_.worker_threads, &registry_, &store_),
      http_([this](const HttpRequest& request,
                   HttpResponseWriter& writer) { Handle(request, writer); },
            options_.http_threads) {
  service_.SetMaxActiveSessions(options_.max_sessions);
  http_.set_max_body_bytes(options_.max_body_bytes);
}

DiscoveryServer::~DiscoveryServer() { Stop(); }

Status DiscoveryServer::Start() {
  return http_.Start(options_.host, options_.port);
}

void DiscoveryServer::BeginDrain() { draining_.store(true); }

bool DiscoveryServer::Drain(double timeout_seconds) {
  WallTimer timer;
  while (service_.num_active() > 0) {
    if (timer.ElapsedSeconds() >= timeout_seconds) {
      // Stragglers: close their channels first so an engine parked on
      // stream backpressure reaches its cancellation checkpoint.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [id, stream] : streams_) stream->channel.Close();
      }
      service_.CancelAll();
      while (service_.num_active() > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

void DiscoveryServer::Stop() {
  http_.Stop();
  // Unblock any engine still pushing into an unconsumed channel, so the
  // service drain in ~DiscoveryService cannot deadlock on backpressure.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, stream] : streams_) stream->channel.Close();
}

Status DiscoveryServer::AdmitClient(const std::string& client_key,
                                    SessionId id) {
  if (options_.max_sessions_per_client <= 0) return Status::Ok();
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<SessionId>& live = client_sessions_[client_key];
  // Terminal sessions free their quota slot without requiring a purge.
  for (auto it = live.begin(); it != live.end();) {
    auto session = service_.Find(*it);
    if (session == nullptr || IsTerminal(session->state())) {
      session_clients_.erase(*it);
      it = live.erase(it);
    } else {
      ++it;
    }
  }
  if (static_cast<int64_t>(live.size()) >=
      options_.max_sessions_per_client) {
    return Status::Unavailable(
        "client '" + client_key + "' is at its session quota (" +
        std::to_string(live.size()) + "/" +
        std::to_string(options_.max_sessions_per_client) +
        " live sessions); wait for one to finish or cancel it");
  }
  live.insert(id);
  session_clients_[id] = client_key;
  return Status::Ok();
}

void DiscoveryServer::ForgetClientSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = session_clients_.find(id);
  if (it == session_clients_.end()) return;
  auto client = client_sessions_.find(it->second);
  if (client != client_sessions_.end()) {
    client->second.erase(id);
    if (client->second.empty()) client_sessions_.erase(client);
  }
  session_clients_.erase(it);
}

std::shared_ptr<DiscoveryServer::StreamState> DiscoveryServer::FindStream(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : it->second;
}

std::string DiscoveryServer::SessionInfoJson(
    SessionId id, const DiscoveryService::PollInfo& info) const {
  std::string algorithm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = algorithm_names_.find(id);
    if (it != algorithm_names_.end()) algorithm = it->second;
  }
  auto stream = FindStream(id);
  JsonWriter w;
  w.BeginObject()
      .Key("id")
      .Int(id)
      .Key("algorithm")
      .String(algorithm)
      .Key("state")
      .String(WireStateName(info.state, info.error_code))
      .Key("progress")
      .Double(info.progress);
  if (!info.error.empty()) w.Key("error").String(info.error);
  if (stream != nullptr) {
    w.Key("stream").Bool(true).Key("ods_streamed").Int(
        stream->channel.pushed());
  }
  w.EndObject();
  return w.str() + "\n";
}

void DiscoveryServer::Handle(const HttpRequest& request,
                             HttpResponseWriter& writer) {
  if (!obs::Enabled()) return Route(request, writer);
  WallTimer timer;
  Route(request, writer);
  // For /stream this measures the whole stream lifetime, which is the
  // honest number: the request held an HTTP worker that long.
  const std::string route = RouteFamily(request.path);
  obs::Registry& registry = obs::Registry::Global();
  registry
      .GetCounter("fastod_http_requests_total", "HTTP requests handled",
                  {{"method", request.method}, {"route", route}})
      ->Inc();
  registry
      .GetHistogram("fastod_http_request_seconds",
                    "Wall-clock from dispatch to response completion",
                    obs::LatencyBucketsSeconds(), {{"route", route}})
      ->Observe(timer.ElapsedSeconds());
}

void DiscoveryServer::Route(const HttpRequest& request,
                            HttpResponseWriter& writer) {
  // Routes match on path first, method second: a wrong method on an
  // existing route is 405 (so clients don't mistake a live session for
  // a missing one), only an unknown path is 404.
  auto method_not_allowed = [&](const char* allowed) {
    JsonWriter w;
    w.BeginObject()
        .Key("error")
        .String(std::string("method ") + request.method +
                " not allowed here; use " + allowed)
        .Key("code")
        .String("MethodNotAllowed")
        .EndObject();
    writer.Send(405, "application/json", w.str() + "\n");
  };
  if (request.path == "/metrics") {
    if (request.method != "GET") return method_not_allowed("GET");
    HandleMetrics(writer);
    return;
  }
  if (request.path == "/v1/algorithms") {
    if (request.method != "GET") return method_not_allowed("GET");
    HandleAlgorithms(writer);
    return;
  }
  if (request.path == "/v1/sessions") {
    if (request.method != "POST") return method_not_allowed("POST");
    HandleCreateSession(request, writer);
    return;
  }
  if (request.path == "/v1/datasets") {
    if (request.method == "POST") return HandleCreateDataset(request, writer);
    if (request.method == "GET") return HandleListDatasets(writer);
    return method_not_allowed("GET or POST");
  }
  const std::string dataset_prefix = "/v1/datasets/";
  if (request.path.rfind(dataset_prefix, 0) == 0) {
    std::string dataset_id = request.path.substr(dataset_prefix.size());
    const std::string rows_suffix = "/rows";
    if (dataset_id.size() > rows_suffix.size() &&
        dataset_id.compare(dataset_id.size() - rows_suffix.size(),
                           std::string::npos, rows_suffix) == 0) {
      dataset_id.resize(dataset_id.size() - rows_suffix.size());
      if (!dataset_id.empty() &&
          dataset_id.find('/') == std::string::npos) {
        if (request.method != "POST") return method_not_allowed("POST");
        return HandleAppendRows(dataset_id, request, writer);
      }
    }
    if (!dataset_id.empty() &&
        dataset_id.find('/') == std::string::npos) {
      if (request.method == "GET") {
        return HandleDatasetInfo(dataset_id, writer);
      }
      if (request.method == "DELETE") {
        return HandleDatasetDelete(dataset_id, writer);
      }
      return method_not_allowed("GET or DELETE");
    }
  }
  if (auto session_path = ParseSessionPath(request.path)) {
    auto [id, suffix] = *session_path;
    if (suffix.empty()) {
      if (request.method == "GET") return HandleSessionInfo(id, writer);
      if (request.method == "DELETE") {
        auto purge = request.query.find("purge");
        return HandleCancel(
            id, purge != request.query.end() && purge->second != "0",
            writer);
      }
      return method_not_allowed("GET or DELETE");
    }
    if (suffix == "/result" || suffix == "/stream" || suffix == "/trace") {
      if (request.method != "GET") return method_not_allowed("GET");
      if (suffix == "/trace") return HandleTrace(id, writer);
      return suffix == "/result" ? HandleResult(id, writer)
                                 : HandleStream(id, writer);
    }
  }
  SendError(writer,
            Status::NotFound("no route for " + request.method + " " +
                             request.path));
}

void DiscoveryServer::HandleAlgorithms(HttpResponseWriter& writer) {
  JsonWriter w;
  w.BeginObject().Key("algorithms").BeginArray();
  for (const std::string& name : registry_.Names()) {
    Result<std::unique_ptr<Algorithm>> algo = registry_.Create(name);
    if (!algo.ok()) continue;
    w.BeginObject()
        .Key("name")
        .String((*algo)->name())
        .Key("description")
        .String((*algo)->description())
        .Key("options")
        .BeginArray();
    for (const std::string& option : (*algo)->GetNeededOptions()) {
      const OptionInfo* info = (*algo)->FindOption(option);
      if (info == nullptr) continue;
      w.BeginObject()
          .Key("name")
          .String(info->name)
          .Key("type")
          .String(info->type_name)
          .Key("default")
          .String(info->default_repr)
          .Key("description")
          .String(info->description);
      if (!info->enum_values.empty()) {
        w.Key("values").BeginArray();
        for (const std::string& value : info->enum_values) w.String(value);
        w.EndArray();
      }
      if (!info->aliases.empty()) {
        // Deprecated back-compat spellings; clients should send "name".
        w.Key("aliases").BeginArray();
        for (const std::string& alias : info->aliases) w.String(alias);
        w.EndArray();
      }
      w.EndObject();
    }
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  SendJson(writer, 200, w.str() + "\n");
}

void DiscoveryServer::HandleMetrics(HttpResponseWriter& writer) {
  obs::Registry& registry = obs::Registry::Global();
  if (obs::Enabled()) {
    // Dataset-store state is a snapshot, not a stream of events, so its
    // gauges refresh at scrape time instead of on every store mutation.
    int64_t pinned = 0;
    int64_t hits = 0;
    int64_t versions = 0;
    for (const DatasetInfo& info : store_.List()) {
      pinned += info.pinned ? 1 : 0;
      hits += info.hits;
      versions += static_cast<int64_t>(info.versions.size());
    }
    registry
        .GetGauge("fastod_dataset_store_resident_bytes",
                  "Approximate bytes held by resident datasets")
        ->Set(store_.TotalBytes());
    registry
        .GetGauge("fastod_dataset_store_budget_bytes",
                  "Configured dataset residency budget (0 = unlimited)")
        ->Set(store_.budget_bytes());
    registry
        .GetGauge("fastod_dataset_store_entries", "Resident datasets")
        ->Set(store_.size());
    registry
        .GetGauge("fastod_dataset_store_pinned",
                  "Resident datasets pinned by live sessions")
        ->Set(pinned);
    // Hits drop when a dataset is evicted or erased (its row leaves the
    // snapshot), so these are gauges, not counters.
    registry
        .GetGauge("fastod_dataset_store_hits",
                  "Get() calls served by currently resident datasets")
        ->Set(hits);
    registry
        .GetGauge("fastod_dataset_store_evictions",
                  "Datasets evicted by the residency budget since start")
        ->Set(store_.evictions());
    registry
        .GetGauge("fastod_dataset_store_retained_bytes",
                  "Bytes held by superseded dataset versions still "
                  "pinned by sessions")
        ->Set(store_.RetainedBytes());
    registry
        .GetGauge("fastod_dataset_store_versions",
                  "Resident dataset versions (current + retained)")
        ->Set(versions);
  }
  writer.Send(200, "text/plain; version=0.0.4; charset=utf-8",
              registry.WriteText());
}

void DiscoveryServer::HandleCreateSession(const HttpRequest& request,
                                          HttpResponseWriter& writer) {
  if (draining_.load()) {
    if (obs::Enabled()) RejectionCounter("draining")->Inc();
    return SendRetryLater(
        writer,
        Status::Unavailable(
            "server is draining; no new sessions are admitted"),
        503, options_.retry_after_seconds);
  }
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return SendError(writer, parsed.status());
  const JsonValue& body = *parsed;
  if (!body.is_object()) {
    return SendError(writer,
                     Status::InvalidArgument("request body must be a JSON "
                                             "object"));
  }
  for (const auto& [key, value] : body.object_items()) {
    (void)value;
    if (key != "algorithm" && key != "options" && key != "csv" &&
        key != "csv_path" && key != "dataset_id" && key != "csv_options" &&
        key != "dataset_version" && key != "stream") {
      return SendError(writer, Status::InvalidArgument(
                                   "unknown request field '" + key + "'"));
    }
  }
  const JsonValue* algorithm = body.Find("algorithm");
  if (algorithm == nullptr || !algorithm->is_string()) {
    return SendError(writer, Status::InvalidArgument(
                                 "\"algorithm\" (string) is required"));
  }
  const JsonValue* csv = body.Find("csv");
  const JsonValue* csv_path = body.Find("csv_path");
  const JsonValue* dataset_id = body.Find("dataset_id");
  int sources = (csv != nullptr) + (csv_path != nullptr) +
                (dataset_id != nullptr);
  if (sources != 1) {
    return SendError(writer, Status::InvalidArgument(
                                 "provide exactly one of \"csv\", "
                                 "\"csv_path\", and \"dataset_id\""));
  }
  if (dataset_id != nullptr && !dataset_id->is_string()) {
    return SendError(writer, Status::InvalidArgument(
                                 "\"dataset_id\" must be a string"));
  }
  int64_t dataset_version = 0;  // 0 = current
  if (const JsonValue* raw = body.Find("dataset_version"); raw != nullptr) {
    if (dataset_id == nullptr) {
      return SendError(writer,
                       Status::InvalidArgument(
                           "\"dataset_version\" applies only to "
                           "\"dataset_id\" sessions"));
    }
    if (!raw->is_number() ||
        raw->number_value() != static_cast<int64_t>(raw->number_value()) ||
        raw->number_value() < 1) {
      return SendError(writer, Status::InvalidArgument(
                                   "\"dataset_version\" must be a "
                                   "positive integer"));
    }
    dataset_version = static_cast<int64_t>(raw->number_value());
  }
  if (dataset_id != nullptr && body.Find("csv_options") != nullptr) {
    // Parse settings were fixed when the dataset was uploaded; silently
    // ignoring them here would let clients believe they applied.
    return SendError(writer,
                     Status::InvalidArgument(
                         "\"csv_options\" does not apply to "
                         "\"dataset_id\" sessions (set them at upload)"));
  }
  if (Status s = ValidateCsvSource(csv, csv_path, options_.allow_csv_path);
      !s.ok()) {
    return SendError(writer, s);
  }
  Result<CsvOptions> parsed_csv_options =
      ParseCsvOptionsField(body.Find("csv_options"));
  if (!parsed_csv_options.ok()) {
    return SendError(writer, parsed_csv_options.status());
  }
  CsvOptions csv_options = *parsed_csv_options;
  bool stream = false;
  if (const JsonValue* raw = body.Find("stream"); raw != nullptr) {
    if (!raw->is_bool()) {
      return SendError(writer, Status::InvalidArgument(
                                   "\"stream\" must be a boolean"));
    }
    stream = raw->bool_value();
  }

  Result<SessionId> id = service_.Create(algorithm->string_value());
  if (!id.ok()) return SendError(writer, id.status());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    algorithm_names_[*id] = algorithm->string_value();
  }
  if (Status quota = AdmitClient(ClientKey(request), *id); !quota.ok()) {
    (void)service_.Destroy(*id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      algorithm_names_.erase(*id);
    }
    if (obs::Enabled()) RejectionCounter("client_quota")->Inc();
    return SendRetryLater(writer, quota, 429,
                          options_.retry_after_seconds);
  }

  Status setup = [&]() -> Status {
    if (const JsonValue* options = body.Find("options");
        options != nullptr) {
      if (!options->is_object()) {
        return Status::InvalidArgument("\"options\" must be an object");
      }
      for (const auto& [name, value] : options->object_items()) {
        Result<std::string> rendered = OptionValueToString(name, value);
        if (!rendered.ok()) return rendered.status();
        if (Status s = service_.SetOption(*id, name, *rendered); !s.ok()) {
          return s;
        }
      }
    }
    if (stream) {
      auto state = std::make_shared<StreamState>(options_.stream_capacity);
      if (Status s = service_.SetSink(*id, &state->channel); !s.ok()) {
        return s;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      streams_[*id] = std::move(state);
    }
    if (csv != nullptr) {
      Result<Table> table = ReadCsvString(csv->string_value(), csv_options);
      if (!table.ok()) return table.status();
      if (Status s = service_.LoadTable(*id, std::move(table).value());
          !s.ok()) {
        return s;
      }
      return service_.Submit(*id);
    }
    if (dataset_id != nullptr) {
      return service_.SubmitDataset(*id, dataset_id->string_value(),
                                    dataset_version);
    }
    return service_.SubmitCsv(*id, csv_path->string_value(), csv_options);
  }();
  if (!setup.ok()) {
    (void)service_.Destroy(*id);
    ForgetClientSession(*id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      streams_.erase(*id);
      algorithm_names_.erase(*id);
    }
    if (setup.code() == StatusCode::kUnavailable) {
      // The service-wide admission cap: same retry semantics as the
      // per-client quota.
      return SendRetryLater(writer, setup, 429,
                            options_.retry_after_seconds);
    }
    return SendError(writer, setup);
  }
  Result<DiscoveryService::PollInfo> info = service_.Poll(*id);
  SendJson(writer, 201,
           SessionInfoJson(*id, info.ok()
                                    ? *info
                                    : DiscoveryService::PollInfo()));
}

void DiscoveryServer::HandleCreateDataset(const HttpRequest& request,
                                          HttpResponseWriter& writer) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return SendError(writer, parsed.status());
  const JsonValue& body = *parsed;
  if (!body.is_object()) {
    return SendError(writer,
                     Status::InvalidArgument("request body must be a JSON "
                                             "object"));
  }
  for (const auto& [key, value] : body.object_items()) {
    (void)value;
    if (key != "id" && key != "csv" && key != "csv_path" &&
        key != "csv_options") {
      return SendError(writer, Status::InvalidArgument(
                                   "unknown request field '" + key + "'"));
    }
  }
  const JsonValue* csv = body.Find("csv");
  const JsonValue* csv_path = body.Find("csv_path");
  if ((csv == nullptr) == (csv_path == nullptr)) {
    return SendError(writer,
                     Status::InvalidArgument("provide exactly one of "
                                             "\"csv\" and \"csv_path\""));
  }
  if (Status s = ValidateCsvSource(csv, csv_path, options_.allow_csv_path);
      !s.ok()) {
    return SendError(writer, s);
  }
  Result<CsvOptions> csv_options =
      ParseCsvOptionsField(body.Find("csv_options"));
  if (!csv_options.ok()) return SendError(writer, csv_options.status());
  std::string dataset_id;
  if (const JsonValue* id = body.Find("id"); id != nullptr) {
    if (!id->is_string()) {
      return SendError(writer,
                       Status::InvalidArgument("\"id\" must be a string"));
    }
    dataset_id = id->string_value();
  } else {
    // Skip ids users already claimed (the charset allows "ds-N"); a
    // concurrent claim between this probe and the Put still 409s, but
    // only in a race nobody can hit deliberately without also owning
    // the id.
    do {
      dataset_id = "ds-" + std::to_string(next_dataset_id_.fetch_add(1));
    } while (store_.Contains(dataset_id));
  }
  if (Status s = ValidateDatasetId(dataset_id); !s.ok()) {
    return SendError(writer, s);
  }
  Result<std::shared_ptr<const LoadedDataset>> dataset =
      csv != nullptr
          ? store_.PutCsvString(dataset_id, csv->string_value(),
                                *csv_options)
          : store_.PutCsvFile(dataset_id, csv_path->string_value(),
                              *csv_options);
  if (!dataset.ok()) return SendError(writer, dataset.status());
  DatasetInfo info;
  info.id = dataset_id;
  info.source = (*dataset)->source();
  info.rows = (*dataset)->NumRows();
  info.columns = (*dataset)->NumAttributes();
  info.bytes = (*dataset)->ApproxBytes();
  JsonWriter w;
  AppendDatasetInfo(&w, info);
  SendJson(writer, 201, w.str() + "\n");
}

void DiscoveryServer::HandleAppendRows(const std::string& dataset_id,
                                       const HttpRequest& request,
                                       HttpResponseWriter& writer) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return SendError(writer, parsed.status());
  const JsonValue& body = *parsed;
  if (!body.is_object()) {
    return SendError(writer,
                     Status::InvalidArgument("request body must be a JSON "
                                             "object"));
  }
  for (const auto& [key, value] : body.object_items()) {
    (void)value;
    if (key != "csv" && key != "csv_path" && key != "csv_options") {
      return SendError(writer, Status::InvalidArgument(
                                   "unknown request field '" + key + "'"));
    }
  }
  const JsonValue* csv = body.Find("csv");
  const JsonValue* csv_path = body.Find("csv_path");
  if ((csv == nullptr) == (csv_path == nullptr)) {
    return SendError(writer,
                     Status::InvalidArgument("provide exactly one of "
                                             "\"csv\" and \"csv_path\""));
  }
  if (Status s = ValidateCsvSource(csv, csv_path, options_.allow_csv_path);
      !s.ok()) {
    return SendError(writer, s);
  }
  // Appended rows are data-only by default: the dataset's schema was fixed
  // at upload, so delta CSVs normally carry no header line.
  CsvOptions csv_options;
  csv_options.has_header = false;
  if (const JsonValue* raw = body.Find("csv_options"); raw != nullptr) {
    Result<CsvOptions> explicit_options = ParseCsvOptionsField(raw);
    if (!explicit_options.ok()) {
      return SendError(writer, explicit_options.status());
    }
    csv_options = *explicit_options;
  }
  Result<std::shared_ptr<const LoadedDataset>> grown =
      csv != nullptr
          ? store_.AppendCsvString(dataset_id, csv->string_value(),
                                   csv_options)
          : store_.AppendCsvFile(dataset_id, csv_path->string_value(),
                                 csv_options);
  if (!grown.ok()) return SendError(writer, grown.status());
  JsonWriter w;
  w.BeginObject()
      .Key("id")
      .String(dataset_id)
      .Key("version")
      .Int((*grown)->version())
      .Key("rows")
      .Int((*grown)->NumRows())
      .Key("appended_rows")
      .Int((*grown)->delta_rows())
      .Key("columns")
      .Int((*grown)->NumAttributes())
      .Key("bytes")
      .Int((*grown)->ApproxBytes())
      .EndObject();
  SendJson(writer, 200, w.str() + "\n");
}

void DiscoveryServer::HandleListDatasets(HttpResponseWriter& writer) {
  JsonWriter w;
  w.BeginObject().Key("datasets").BeginArray();
  int64_t hits_total = 0;
  int64_t pinned_count = 0;
  for (const DatasetInfo& info : store_.List()) {
    AppendDatasetInfo(&w, info);
    hits_total += info.hits;
    pinned_count += info.pinned ? 1 : 0;
  }
  w.EndArray()
      .Key("total_bytes")
      .Int(store_.TotalBytes())
      .Key("budget_bytes")
      .Int(store_.budget_bytes())
      .Key("evictions")
      .Int(store_.evictions())
      .Key("hits_total")
      .Int(hits_total)
      .Key("pinned_count")
      .Int(pinned_count)
      .EndObject();
  SendJson(writer, 200, w.str() + "\n");
}

void DiscoveryServer::HandleDatasetInfo(const std::string& dataset_id,
                                        HttpResponseWriter& writer) {
  Result<DatasetInfo> info = store_.Info(dataset_id);
  if (!info.ok()) return SendError(writer, info.status());
  JsonWriter w;
  AppendDatasetInfo(&w, *info);
  SendJson(writer, 200, w.str() + "\n");
}

void DiscoveryServer::HandleDatasetDelete(const std::string& dataset_id,
                                          HttpResponseWriter& writer) {
  if (Status s = store_.Erase(dataset_id); !s.ok()) {
    return SendError(writer, s);
  }
  JsonWriter w;
  w.BeginObject()
      .Key("id")
      .String(dataset_id)
      .Key("deleted")
      .Bool(true)
      .EndObject();
  SendJson(writer, 200, w.str() + "\n");
}

void DiscoveryServer::HandleSessionInfo(SessionId id,
                                        HttpResponseWriter& writer) {
  Result<DiscoveryService::PollInfo> info = service_.Poll(id);
  if (!info.ok()) return SendError(writer, info.status());
  SendJson(writer, 200, SessionInfoJson(id, *info));
}

void DiscoveryServer::HandleCancel(SessionId id, bool purge,
                                   HttpResponseWriter& writer) {
  if (purge) {
    // Purge frees everything the session retains (encoded relation,
    // cached report, stream channel). Only terminal sessions qualify: a
    // live run still holds the sink pointer, so freeing the channel
    // under it would be a use-after-free — cancel first, poll terminal,
    // then purge.
    auto session = service_.Find(id);
    if (session == nullptr) {
      return SendError(writer, Status::NotFound("no session with id " +
                                                std::to_string(id)));
    }
    if (!IsTerminal(session->state())) {
      return SendError(writer,
                       Status::FailedPrecondition(
                           "session is " +
                           std::string(SessionStateName(session->state())) +
                           "; purge requires a terminal session (cancel "
                           "and poll first)"));
    }
    if (Status s = service_.Destroy(id); !s.ok()) {
      return SendError(writer, s);
    }
    ForgetClientSession(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      streams_.erase(id);
      algorithm_names_.erase(id);
    }
    JsonWriter w;
    w.BeginObject().Key("id").Int(id).Key("purged").Bool(true).EndObject();
    return SendJson(writer, 200, w.str() + "\n");
  }
  if (Status s = service_.Cancel(id); !s.ok()) {
    return SendError(writer, s);
  }
  // Unblock a producer stuck on backpressure so the cancel can be
  // honored even when nobody is (or will be) consuming the stream; the
  // consumer, if any, drains the queue and sees the terminal state.
  if (auto stream = FindStream(id); stream != nullptr) {
    stream->channel.Close();
  }
  Result<DiscoveryService::PollInfo> info = service_.Poll(id);
  if (!info.ok()) return SendError(writer, info.status());
  SendJson(writer, 200, SessionInfoJson(id, *info));
}

void DiscoveryServer::HandleResult(SessionId id,
                                   HttpResponseWriter& writer) {
  Result<std::string> json = service_.ResultJson(id);
  if (!json.ok()) return SendError(writer, json.status());
  if (json->empty()) {
    // Failed, or cancelled before the run started: no report exists.
    Result<DiscoveryService::PollInfo> info = service_.Poll(id);
    if (!info.ok()) return SendError(writer, info.status());
    JsonWriter w;
    w.BeginObject()
        .Key("state")
        .String(SessionStateName(info->state))
        .Key("error")
        .String(info->error)
        .EndObject();
    int status = info->state == SessionState::kFailed ? 500 : 200;
    return SendJson(writer, status, w.str() + "\n");
  }
  std::string body = *std::move(json);
  if (obs::Enabled()) {
    // The trace is spliced here rather than baked into the session's
    // cached report: timings differ per run, and the cached report must
    // stay byte-identical across sessions over the same data.
    Result<std::string> trace = service_.TraceJson(id);
    size_t brace = body.rfind('}');
    if (trace.ok() && brace != std::string::npos) {
      body.insert(brace, ",\"trace\":" + *trace);
    }
  }
  SendJson(writer, 200, body);
}

void DiscoveryServer::HandleTrace(SessionId id,
                                  HttpResponseWriter& writer) {
  Result<std::string> json = service_.TraceJson(id);
  if (!json.ok()) return SendError(writer, json.status());
  SendJson(writer, 200, *json + "\n");
}

void DiscoveryServer::HandleStream(SessionId id,
                                   HttpResponseWriter& writer) {
  auto session = service_.Find(id);
  if (session == nullptr) {
    return SendError(writer,
                     Status::NotFound("no session with id " +
                                      std::to_string(id)));
  }
  auto stream = FindStream(id);
  if (stream == nullptr) {
    return SendError(writer, Status::FailedPrecondition(
                                 "session was not created with "
                                 "\"stream\": true"));
  }
  if (stream->claimed.exchange(true)) {
    return SendError(writer, Status::FailedPrecondition(
                                 "stream already consumed (one reader "
                                 "per session)"));
  }
  // Once the client is gone there is nothing left to deliver: Close()
  // turns the engine's remaining pushes into drops (the run still
  // finishes for /result consumers) and the handler simply returns —
  // no draining loop survives a dead peer.
  if (!writer.BeginChunked(200, "application/x-ndjson")) {
    stream->channel.Close();
    return;
  }

  ChannelOdSink& channel = stream->channel;
  OdEvent event;
  int64_t streamed = 0;
  const Schema* schema = nullptr;
  obs::Counter* ods_counter =
      obs::Enabled() ? StreamOdsCounter() : nullptr;
  obs::Counter* bytes_counter =
      obs::Enabled() ? StreamBytesCounter() : nullptr;
  for (;;) {
    if (channel.Pop(&event, std::chrono::milliseconds(50))) {
      // The engine emitted this after binding data, so the schema is
      // set; it is immutable for the rest of the session.
      if (schema == nullptr) schema = session->algorithm().schema();
      std::string line = EventJsonLine(event, *schema);
      if (!writer.WriteChunk(line)) {
        channel.Close();
        return;
      }
      if (ods_counter != nullptr) {
        ods_counter->Inc();
        bytes_counter->Inc(static_cast<int64_t>(line.size()));
      }
      ++streamed;
      continue;
    }
    SessionState state = session->state();
    if (IsTerminal(state)) {
      // Every push happened before the terminal transition; one
      // non-blocking drain empties the queue, then the end line closes
      // the stream.
      while (channel.Pop(&event, std::chrono::milliseconds(0))) {
        if (schema == nullptr) schema = session->algorithm().schema();
        std::string line = EventJsonLine(event, *schema);
        if (!writer.WriteChunk(line)) {
          channel.Close();
          return;
        }
        if (ods_counter != nullptr) {
          ods_counter->Inc();
          bytes_counter->Inc(static_cast<int64_t>(line.size()));
        }
        ++streamed;
      }
      Status final_status = session->status();
      JsonWriter w;
      w.BeginObject()
          .Key("type")
          .String("end")
          .Key("state")
          .String(WireStateName(state, final_status.code()))
          .Key("streamed")
          .Int(streamed);
      if (state == SessionState::kFailed) {
        w.Key("error").String(final_status.ToString());
      }
      w.EndObject();
      std::string end_line = w.str() + "\n";
      writer.WriteChunk(end_line);
      if (bytes_counter != nullptr) {
        bytes_counter->Inc(static_cast<int64_t>(end_line.size()));
      }
      writer.EndChunked();
      return;
    }
    if (http_.stopping()) {
      channel.Close();
      writer.EndChunked();
      return;
    }
    if (channel.closed()) {
      // Cancelled (DELETE closed the channel) but the engine hasn't hit
      // its checkpoint yet: Pop returns instantly on a closed drained
      // channel, so pace the terminal-state polling explicitly instead
      // of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace fastod
