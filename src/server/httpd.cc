#include "server/httpd.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/json.h"

namespace fastod {

namespace {

// Bounds chosen for an API server, not a file server: headers fit any
// sane client; the body cap admits multi-megabyte inline CSVs while
// keeping a hostile request from ballooning a worker.
constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024 * 1024;
constexpr int kIoTimeoutSeconds = 30;

std::string PercentDecode(const std::string& in, bool plus_is_space) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+' && plus_is_space) {
      out += ' ';
    } else if (c == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      auto hex = [](char h) {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out += static_cast<char>(hex(in[i + 1]) * 16 + hex(in[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

void ParseQuery(const std::string& text,
                std::map<std::string, std::string>* query) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t amp = text.find('&', pos);
    if (amp == std::string::npos) amp = text.size();
    std::string pair = text.substr(pos, amp - pos);
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) (*query)[PercentDecode(pair, true)] = "";
    } else {
      (*query)[PercentDecode(pair.substr(0, eq), true)] =
          PercentDecode(pair.substr(eq + 1), true);
    }
    pos = amp + 1;
  }
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

/// Reads one request off `fd`. Returns 0 on success, else the HTTP
/// status to reject with (408 timeout, 400 malformed, 413 too large).
int ReadRequest(int fd, size_t max_body_bytes, HttpRequest* request) {
  std::string buffer;
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes) return 431;
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return 408;  // timeout, reset, or premature close
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }
  std::string head = buffer.substr(0, header_end);
  std::string rest = buffer.substr(header_end + 4);

  // Request line: METHOD SP target SP HTTP/1.x
  size_t line_end = head.find("\r\n");
  std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return 400;
  request->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return 400;
  size_t question = target.find('?');
  if (question != std::string::npos) {
    ParseQuery(target.substr(question + 1), &request->query);
    target = target.substr(0, question);
  }
  request->path = PercentDecode(target, false);

  // Header fields, names lowercased. Continuation lines (obsolete
  // folding) are rejected as malformed.
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return 400;
    std::string name = ToLower(line.substr(0, colon));
    size_t value_begin = line.find_first_not_of(" \t", colon + 1);
    request->headers[name] =
        value_begin == std::string::npos ? "" : line.substr(value_begin);
  }

  // Body: Content-Length only. Chunked uploads are not implemented, and
  // RFC 7230 demands an explicit rejection over silently reading the
  // chunk framing as if it were the body.
  if (request->headers.count("transfer-encoding") != 0) return 501;
  auto it = request->headers.find("content-length");
  if (it == request->headers.end()) {
    request->body = std::move(rest);
    return 0;
  }
  char* end = nullptr;
  unsigned long long length = std::strtoull(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return 400;
  if (length > max_body_bytes) return 413;
  request->body = std::move(rest);
  while (request->body.size() < length) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return 408;
    request->body.append(chunk, static_cast<size_t>(n));
  }
  request->body.resize(length);
  return 0;
}

}  // namespace

const char* HttpReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 410:
      return "Gone";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

// ---------------------------------------------------------------- writer

bool HttpResponseWriter::WriteAll(const char* data, size_t size) {
  if (FASTOD_FAULT_POINT("httpd.write")) return false;
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished client surfaces as EPIPE, not SIGPIPE.
    ssize_t n = send(fd_, data, size, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool HttpResponseWriter::Send(int status, const std::string& content_type,
                              const std::string& body) {
  return Send(status, content_type, body, HttpHeaders());
}

bool HttpResponseWriter::Send(int status, const std::string& content_type,
                              const std::string& body,
                              const HttpHeaders& extra_headers) {
  started_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpReason(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size());
  for (const auto& [name, value] : extra_headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  return WriteAll(head.data(), head.size()) &&
         WriteAll(body.data(), body.size());
}

bool HttpResponseWriter::BeginChunked(int status,
                                      const std::string& content_type) {
  started_ = true;
  chunked_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpReason(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nTransfer-Encoding: chunked"
                     "\r\nConnection: close\r\n\r\n";
  return WriteAll(head.data(), head.size());
}

bool HttpResponseWriter::WriteChunk(const std::string& data) {
  if (!chunked_ || data.empty()) return chunked_;
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  return WriteAll(size_line, static_cast<size_t>(n)) &&
         WriteAll(data.data(), data.size()) && WriteAll("\r\n", 2);
}

bool HttpResponseWriter::EndChunked() {
  if (!chunked_) return false;
  chunked_ = false;
  return WriteAll("0\r\n\r\n", 5);
}

// ---------------------------------------------------------------- server

HttpServer::HttpServer(HttpHandler handler, int num_threads)
    : handler_(std::move(handler)),
      num_threads_(num_threads),
      max_body_bytes_(kMaxBodyBytes) {}

void HttpServer::set_max_body_bytes(size_t max_body_bytes) {
  max_body_bytes_ = max_body_bytes == 0 ? kMaxBodyBytes : max_body_bytes;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(const std::string& host, int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("invalid bind address '" + host +
                                   "' (expected an IPv4 literal)");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError("bind " + host + ":" + std::to_string(port) +
                               ": " + std::strerror(errno));
    close(fd);
    return s;
  }
  if (listen(fd, 128) != 0) {
    Status s = Status::IoError(std::string("listen: ") +
                               std::strerror(errno));
    close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status s = Status::IoError(std::string("getsockname: ") +
                               std::strerror(errno));
    close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  pool_ = std::make_unique<ThreadPool>(num_threads_);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr),
                    &peer_len);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listening socket is gone; StopAccepting/Stop own cleanup
    }
    // IP only, never the port: per-connection ephemeral ports would give
    // every request from one client a distinct quota key.
    char peer_buf[INET_ADDRSTRLEN] = "";
    std::string peer;
    if (peer_addr.sin_family == AF_INET &&
        inet_ntop(AF_INET, &peer_addr.sin_addr, peer_buf,
                  sizeof(peer_buf)) != nullptr) {
      peer = peer_buf;
    }
    timeval timeout{};
    timeout.tv_sec = kIoTimeoutSeconds;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.insert(fd);
    }
    if (!pool_->Submit([this, fd, peer = std::move(peer)]() mutable {
          HandleConnection(fd, std::move(peer));
        })) {
      // Pool already stopped (teardown race): drop the connection.
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.erase(fd);
      close(fd);
    }
  }
}

void HttpServer::HandleConnection(int fd, std::string peer) {
  HttpRequest request;
  request.peer = std::move(peer);
  HttpResponseWriter writer(fd);
  int reject = ReadRequest(fd, max_body_bytes_, &request);
  if (reject != 0) {
    if (reject != 408) {  // a dead peer gets no farewell
      writer.Send(reject, "text/plain", std::string(HttpReason(reject)) +
                                            "\n");
    }
  } else {
    try {
      handler_(request, writer);
      if (!writer.started()) {
        writer.Send(500, "text/plain", "handler produced no response\n");
      }
    } catch (const std::exception& e) {
      if (!writer.started()) {
        writer.Send(500, "application/json",
                    "{\"error\": \"" + JsonEscape(e.what()) + "\"}\n");
      }
    } catch (...) {
      if (!writer.started()) {
        writer.Send(500, "text/plain", "internal error\n");
      }
    }
  }
  shutdown(fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.erase(fd);
  }
  close(fd);
}

void HttpServer::CloseListener() {
  if (listen_fd_ < 0) return;
  // shutdown() makes a blocked accept() return immediately; close()
  // alone is not guaranteed to on all kernels.
  shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::StopAccepting() { CloseListener(); }

void HttpServer::Stop() {
  if (listen_fd_ < 0 && pool_ == nullptr) return;
  stopping_.store(true);
  CloseListener();
  {
    // Kick handlers out of blocked recv()/send() now rather than after
    // the 30s socket timeout; the fds are closed by their handlers.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : connections_) shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains queued connections and in-flight handlers
}

}  // namespace fastod
