// A dependency-free blocking HTTP/1.1 server on the shared ThreadPool.
//
// Scope: exactly what the discovery API needs — request-line + header
// parsing, Content-Length bodies, percent-decoded paths and query
// strings, fixed responses, and chunked transfer encoding for streaming
// endpoints. One request per connection (every response carries
// `Connection: close`), no TLS, no compression; production deployments
// are expected to sit behind a reverse proxy that provides both.
//
// Threading: Start() spawns one acceptor thread; each accepted
// connection is handed to a ThreadPool worker via Submit(), so at most
// `num_threads` requests are in flight and the rest queue in accept
// order. The pool is private to the server — never the DiscoveryService
// session pool — so a streaming handler that blocks for the whole run
// of a session can never starve the workers that run the session.
//
// Shutdown: Stop() (or the destructor) closes the listening socket,
// flips stopping(), and drains the pool. Long-lived handlers must poll
// stopping() and return; short handlers just finish.
#ifndef FASTOD_SERVER_HTTPD_H_
#define FASTOD_SERVER_HTTPD_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace fastod {

/// One parsed request. Header names are lowercased; the path is
/// percent-decoded with the query string split off into `query`.
struct HttpRequest {
  std::string method;  // uppercase: "GET", "POST", "DELETE", ...
  std::string path;    // e.g. "/v1/sessions/7/stream"
  std::string peer;    // client IPv4 literal (no port), for quota keying
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Extra response headers, e.g. {{"Retry-After", "2"}}.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Standard reason phrase for the status codes the server emits.
const char* HttpReason(int status);

/// Response surface handed to handlers. Exactly one of Send() or
/// BeginChunked()…WriteChunk()…EndChunked() per request. Every write
/// reports whether the client is still there; a false return means the
/// peer is gone and the handler should wind down (nothing more will be
/// delivered).
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(int fd) : fd_(fd) {}

  HttpResponseWriter(const HttpResponseWriter&) = delete;
  HttpResponseWriter& operator=(const HttpResponseWriter&) = delete;

  /// Complete response with Content-Length.
  bool Send(int status, const std::string& content_type,
            const std::string& body);
  /// Same, with extra headers appended (e.g. Retry-After on 429/503).
  bool Send(int status, const std::string& content_type,
            const std::string& body, const HttpHeaders& extra_headers);

  /// Starts a chunked response; stream with WriteChunk, finish with
  /// EndChunked (which sends the terminating 0-length chunk).
  bool BeginChunked(int status, const std::string& content_type);
  bool WriteChunk(const std::string& data);
  bool EndChunked();

  /// True once any bytes of a response have been written (after which an
  /// error can no longer be reported as a status code).
  bool started() const { return started_; }

 private:
  bool WriteAll(const char* data, size_t size);

  int fd_;
  bool started_ = false;
  bool chunked_ = false;
};

using HttpHandler =
    std::function<void(const HttpRequest&, HttpResponseWriter&)>;

class HttpServer {
 public:
  /// `num_threads` bounds concurrently served requests (streaming
  /// handlers occupy one worker for their whole lifetime — size
  /// accordingly).
  explicit HttpServer(HttpHandler handler, int num_threads = 8);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds `host:port` and starts accepting. Port 0 picks an ephemeral
  /// port — read the actual one from port().
  Status Start(const std::string& host, int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// True once Stop() has begun; long-lived handlers poll this.
  bool stopping() const { return stopping_.load(); }

  /// Caps request bodies; over-limit uploads are rejected with 413.
  /// Call before Start(). 0 restores the built-in default (64 MiB).
  void set_max_body_bytes(size_t max_body_bytes);

  /// Drain phase one: closes the listening socket and joins the acceptor
  /// so no new connections arrive, but leaves in-flight handlers (and
  /// their streams) running — stopping() stays false. Idempotent; Stop()
  /// still completes the shutdown afterwards.
  void StopAccepting();

  /// Stops accepting, waits for in-flight handlers, releases the socket.
  /// Idempotent; also run by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void HandleConnection(int fd, std::string peer);
  void CloseListener();

  HttpHandler handler_;
  int num_threads_;
  size_t max_body_bytes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;
  // Live accepted sockets; Stop() shuts them down so handlers blocked in
  // recv() return immediately instead of riding out SO_RCVTIMEO.
  std::mutex connections_mutex_;
  std::set<int> connections_;  // guarded by connections_mutex_
};

}  // namespace fastod

#endif  // FASTOD_SERVER_HTTPD_H_
