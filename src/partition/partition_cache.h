// A level-aware cache of stripped partitions keyed by AttributeSet.
//
// The level-wise algorithms (FASTOD, TANE) compute Π*_X for every lattice
// node X as the product of two parent partitions from the previous level
// (Section 4.6: "only partitions from the previous level are needed").
// FASTOD's order-compatibility checks additionally read contexts two levels
// up (X \ {A,B} has |X| - 2 attributes), so the cache retains a sliding
// window of levels and evicts older ones to bound memory.
#ifndef FASTOD_PARTITION_PARTITION_CACHE_H_
#define FASTOD_PARTITION_PARTITION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "od/attribute_set.h"
#include "partition/stripped_partition.h"

namespace fastod {

// Thread-safety: reads (Get/Contains/NumCached/TotalElements) take a
// shared lock, writes (Put/EvictBelow) an exclusive one, so the
// task-graph search can insert a node's partition while sibling tasks
// look parents up. References returned by Get stay valid under
// concurrent Put (std::unordered_map never invalidates references on
// insert) and under the engines' eviction discipline: EvictBelow(v-1)
// is only called once every task that could read a level < v-1
// partition has finished (see docs/CONCURRENCY.md). Overwriting an
// existing key while a reader holds its reference is NOT safe — the
// level-wise engines never do (each Π*_X is put exactly once).
class PartitionCache {
 public:
  PartitionCache() = default;
  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// Registers Π*_X at lattice level `level` (= |X|).
  void Put(int level, AttributeSet set, StrippedPartition partition);

  /// Π*_X, which must be present (guaranteed by level-wise construction:
  /// every subset of a live node is a live node of its level).
  const StrippedPartition& Get(AttributeSet set) const;

  /// True iff Π*_X is cached.
  bool Contains(AttributeSet set) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return partitions_.find(set) != partitions_.end();
  }

  /// Evicts every partition of level < `level`.
  void EvictBelow(int level);

  int64_t NumCached() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return static_cast<int64_t>(partitions_.size());
  }

  /// Total tuples held across cached partitions (memory telemetry).
  int64_t TotalElements() const;

  /// Lifetime lookup/insert traffic (search telemetry: a Get is a
  /// partition reuse, a Put is a partition the run had to build or copy).
  /// Counted with relaxed atomics so concurrent validation scans can
  /// read partitions without synchronizing on the counters.
  int64_t gets() const { return gets_.load(std::memory_order_relaxed); }
  int64_t puts() const { return puts_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    int level;
    StrippedPartition partition;
  };
  mutable std::shared_mutex mutex_;
  std::unordered_map<AttributeSet, Entry, AttributeSetHash> partitions_;
  mutable std::atomic<int64_t> gets_{0};
  std::atomic<int64_t> puts_{0};
};

}  // namespace fastod

#endif  // FASTOD_PARTITION_PARTITION_CACHE_H_
