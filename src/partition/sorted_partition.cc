#include "partition/sorted_partition.h"

#include <algorithm>
#include <numeric>

namespace fastod {

SortedPartitions::SortedPartitions(const EncodedRelation& relation) {
  const int64_t n = relation.NumRows();
  orders_.resize(relation.NumAttributes());
  for (int a = 0; a < relation.NumAttributes(); ++a) {
    const CodeColumn& codes = relation.codes(a);
    const int32_t num_distinct = relation.NumDistinct(a);
    const uint32_t* data = codes.data();
    // Counting sort: stable, so ties stay in ascending tuple order.
    std::vector<int32_t> counts(num_distinct + 1, 0);
    for (int64_t t = 0; t < n; ++t) ++counts[data[t] + 1];
    for (int32_t v = 0; v < num_distinct; ++v) counts[v + 1] += counts[v];
    orders_[a].resize(n);
    for (int64_t t = 0; t < n; ++t) {
      orders_[a][counts[data[t]]++] = static_cast<int32_t>(t);
    }
  }
}

SwapChecker::SwapChecker(const EncodedRelation* relation,
                         const SortedPartitions* sorted_partitions,
                         SwapCheckMethod method)
    : relation_(relation), sorted_(sorted_partitions), method_(method) {
  FASTOD_CHECK(relation_ != nullptr);
}

bool SwapChecker::IsOrderCompatible(const StrippedPartition& context, int a,
                                    int b) {
  return IsOrderCompatibleDirected(context, a, b, /*opposite=*/false);
}

bool SwapChecker::IsOrderCompatibleDirected(const StrippedPartition& context,
                                            int a, int b, bool opposite) {
  const int32_t flip_base =
      opposite ? relation_->NumDistinct(b) - 1 : int32_t{-1};
  SwapCheckMethod method = method_;
  if (method == SwapCheckMethod::kAuto) {
    // τ-based scans all n tuples once; sort-based pays Σ c·log c over
    // context classes. Prefer τ when the context still covers most of the
    // relation and τ orders are available.
    bool tau_viable = sorted_ != nullptr;
    method = (tau_viable &&
              context.NumElements() * 2 >= relation_->NumRows())
                 ? SwapCheckMethod::kTauBased
                 : SwapCheckMethod::kSortBased;
  }
  if (method == SwapCheckMethod::kTauBased && sorted_ != nullptr) {
    return CheckTauBased(context, a, b, flip_base);
  }
  return CheckSortBased(context, a, b, flip_base);
}

bool SwapChecker::CheckSortBased(const StrippedPartition& context, int a,
                                 int b, int32_t flip_base) {
  ++num_sort_checks_;
  const CodeColumn& ranks_a = relation_->codes(a);
  const CodeColumn& ranks_b = relation_->codes(b);
  for (int32_t c = 0; c < context.NumClasses(); ++c) {
    auto cls = context.Class(c);
    class_buffer_.assign(cls.begin(), cls.end());
    std::sort(class_buffer_.begin(), class_buffer_.end(),
              [&ranks_a](int32_t s, int32_t t) {
                return ranks_a[s] < ranks_a[t];
              });
    // Sweep A-groups in ascending order. Within a group (equal A) tuples do
    // not constrain each other; across groups every earlier B-rank must be
    // <= every later B-rank.
    auto rank_b = [&](int32_t t) {
      return flip_base < 0 ? ranks_b[t] : flip_base - ranks_b[t];
    };
    int32_t run_max_b = -1;
    size_t i = 0;
    while (i < class_buffer_.size()) {
      const int32_t group_a = ranks_a[class_buffer_[i]];
      int32_t group_min_b = rank_b(class_buffer_[i]);
      int32_t group_max_b = group_min_b;
      size_t j = i + 1;
      while (j < class_buffer_.size() &&
             ranks_a[class_buffer_[j]] == group_a) {
        group_min_b = std::min(group_min_b, rank_b(class_buffer_[j]));
        group_max_b = std::max(group_max_b, rank_b(class_buffer_[j]));
        ++j;
      }
      if (group_min_b < run_max_b) return false;  // swap
      run_max_b = std::max(run_max_b, group_max_b);
      i = j;
    }
  }
  return true;
}

bool SwapChecker::CheckTauBased(const StrippedPartition& context, int a,
                                int b, int32_t flip_base) {
  ++num_tau_checks_;
  const CodeColumn& ranks_a = relation_->codes(a);
  const CodeColumn& ranks_b = relation_->codes(b);
  context.FillClassIndex(&class_of_);
  tau_states_.assign(context.NumClasses(), TauState{});
  // One scan over τ_a: tuples arrive in global ascending A order, hence in
  // ascending A order within every context class as well ("hashing into
  // sorted buckets", Table 2 of the paper). The sweep state advances per
  // class.
  for (int32_t t : sorted_->TupleOrder(a)) {
    const int32_t cls = class_of_[t];
    if (cls < 0) continue;  // stripped singleton
    TauState& st = tau_states_[cls];
    const int32_t ra = ranks_a[t];
    const int32_t rb = flip_base < 0 ? ranks_b[t] : flip_base - ranks_b[t];
    if (st.cur_a != ra) {
      // Close the previous A-group for this class.
      st.run_max_b = std::max(st.run_max_b, st.group_max_b);
      st.cur_a = ra;
      st.group_max_b = rb;
    } else {
      st.group_max_b = std::max(st.group_max_b, rb);
    }
    if (rb < st.run_max_b) return false;  // swap
  }
  return true;
}

}  // namespace fastod
