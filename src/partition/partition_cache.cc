#include "partition/partition_cache.h"

#include <mutex>
#include <utility>

namespace fastod {

void PartitionCache::Put(int level, AttributeSet set,
                         StrippedPartition partition) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  partitions_[set] = Entry{level, std::move(partition)};
}

const StrippedPartition& PartitionCache::Get(AttributeSet set) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = partitions_.find(set);
  FASTOD_CHECK(it != partitions_.end());
  return it->second.partition;
}

void PartitionCache::EvictBelow(int level) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    if (it->second.level < level) {
      it = partitions_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t PartitionCache::TotalElements() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [set, entry] : partitions_) {
    total += entry.partition.NumElements();
  }
  return total;
}

}  // namespace fastod
