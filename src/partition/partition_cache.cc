#include "partition/partition_cache.h"

#include <utility>

namespace fastod {

void PartitionCache::Put(int level, AttributeSet set,
                         StrippedPartition partition) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  partitions_[set] = Entry{level, std::move(partition)};
}

const StrippedPartition& PartitionCache::Get(AttributeSet set) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto it = partitions_.find(set);
  FASTOD_CHECK(it != partitions_.end());
  return it->second.partition;
}

void PartitionCache::EvictBelow(int level) {
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    if (it->second.level < level) {
      it = partitions_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t PartitionCache::TotalElements() const {
  int64_t total = 0;
  for (const auto& [set, entry] : partitions_) {
    total += entry.partition.NumElements();
  }
  return total;
}

}  // namespace fastod
