// Sorted partitions τ_A and swap checking (Section 4.6).
//
// Verifying X: A ~ B means verifying, inside every equivalence class of
// Π_X, that no pair of tuples s,t has s ≺_A t but t ≺_B s (a *swap*,
// Definition 5). Two interchangeable strategies are provided:
//
//  * Sort-based: sort each class by the A-rank and sweep A-groups in
//    ascending order, tracking the running maximum B-rank of strictly
//    smaller A-groups; a swap exists iff some group contains a B-rank below
//    that running maximum. O(Σ |class| log |class|).
//
//  * τ-based (the paper's method): precompute the sorted partition τ_A —
//    all tuples ordered by A — once per attribute; then a single scan over
//    τ_A "hashes tuples into sorted buckets" per context class and applies
//    the same sweep. O(n) per check regardless of class structure.
//
// The sort-based variant wins when stripped contexts are small (deep lattice
// levels); the τ-based one when classes cover most of the relation (early
// levels). SwapChecker::kAuto switches on coverage. bench_ablation_validation
// quantifies the trade-off.
#ifndef FASTOD_PARTITION_SORTED_PARTITION_H_
#define FASTOD_PARTITION_SORTED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/encode.h"
#include "partition/stripped_partition.h"

namespace fastod {

/// τ_A for every attribute: tuple ids in ascending A-rank order (ties by
/// tuple id). Computed once and shared by all swap checks.
class SortedPartitions {
 public:
  explicit SortedPartitions(const EncodedRelation& relation);

  /// Tuples sorted ascending by attribute `attr`.
  const std::vector<int32_t>& TupleOrder(int attr) const {
    FASTOD_DCHECK(attr >= 0 && attr < static_cast<int>(orders_.size()));
    return orders_[attr];
  }

 private:
  std::vector<std::vector<int32_t>> orders_;
};

enum class SwapCheckMethod {
  kAuto,       // heuristic choice per call
  kSortBased,  // per-class sort + sweep
  kTauBased,   // single scan over τ_A
};

/// Stateless-per-call swap checker bound to an encoded relation. Thread-
/// compatible: distinct instances may be used concurrently; a single
/// instance reuses scratch buffers and must not be shared across threads.
class SwapChecker {
 public:
  SwapChecker(const EncodedRelation* relation,
              const SortedPartitions* sorted_partitions,
              SwapCheckMethod method = SwapCheckMethod::kAuto);

  /// True iff context : A ~ B holds, i.e. no equivalence class of
  /// `context_partition` contains a swap between attributes `a` and `b`.
  bool IsOrderCompatible(const StrippedPartition& context_partition, int a,
                         int b);

  /// Directional variant (bidirectional-OD extension): with
  /// opposite = true, checks that sorting each class by A *ascending*
  /// sorts it by B *descending* — i.e. ascending compatibility of A with
  /// the rank-reversed B. opposite = false is IsOrderCompatible.
  bool IsOrderCompatibleDirected(const StrippedPartition& context_partition,
                                 int a, int b, bool opposite);

  /// Counters for the ablation benchmarks.
  int64_t num_sort_checks() const { return num_sort_checks_; }
  int64_t num_tau_checks() const { return num_tau_checks_; }

 private:
  // flip_base < 0 means ascending B; otherwise B-ranks are reflected as
  // (flip_base - rank), turning descending compatibility into ascending.
  bool CheckSortBased(const StrippedPartition& context, int a, int b,
                      int32_t flip_base);
  bool CheckTauBased(const StrippedPartition& context, int a, int b,
                     int32_t flip_base);

  const EncodedRelation* relation_;
  const SortedPartitions* sorted_;
  SwapCheckMethod method_;

  // Scratch reused across calls.
  std::vector<int32_t> class_buffer_;
  std::vector<int32_t> class_of_;
  int64_t num_sort_checks_ = 0;
  int64_t num_tau_checks_ = 0;

  struct TauState {
    int32_t cur_a = -1;        // A-rank of the open group
    int32_t group_max_b = -1;  // max B-rank inside the open group
    int32_t run_max_b = -1;    // max B-rank over strictly smaller A-groups
  };
  std::vector<TauState> tau_states_;
};

}  // namespace fastod

#endif  // FASTOD_PARTITION_SORTED_PARTITION_H_
