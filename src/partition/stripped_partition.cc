#include "partition/stripped_partition.h"

#include "common/fault.h"

#include <algorithm>
#include <numeric>

namespace fastod {

StrippedPartition StrippedPartition::Universe(int64_t num_rows) {
  PartitionBuilder builder(num_rows);
  builder.BeginClass();
  for (int64_t t = 0; t < num_rows; ++t) {
    builder.AddTuple(static_cast<int32_t>(t));
  }
  builder.EndClass();
  return builder.Build();
}

StrippedPartition StrippedPartition::ForAttribute(const CodeColumn& codes) {
  // No coded-failure path out of a partition build: only "throw"
  // schedules apply (contained at the session worker boundary).
  (void)FASTOD_FAULT_POINT("partition.build");
  const int64_t n = codes.size();
  const int32_t num_distinct = codes.num_distinct();
  const uint32_t* data = codes.data();
  // Counting sort by code keeps classes in ascending value order.
  std::vector<int32_t> counts(num_distinct + 1, 0);
  for (int64_t t = 0; t < n; ++t) {
    FASTOD_DCHECK(data[t] < static_cast<uint32_t>(num_distinct));
    ++counts[data[t] + 1];
  }
  for (int32_t v = 0; v < num_distinct; ++v) counts[v + 1] += counts[v];
  std::vector<int32_t> by_code(n);
  std::vector<int32_t> cursor(counts.begin(), counts.end() - 1);
  for (int64_t t = 0; t < n; ++t) {
    by_code[cursor[data[t]]++] = static_cast<int32_t>(t);
  }
  PartitionBuilder builder(n);
  for (int32_t v = 0; v < num_distinct; ++v) {
    builder.BeginClass();
    for (int32_t i = counts[v]; i < counts[v + 1]; ++i) {
      builder.AddTuple(by_code[i]);
    }
    builder.EndClass();
  }
  return builder.Build();
}

StrippedPartition StrippedPartition::ForAttribute(
    const std::vector<int32_t>& ranks, int32_t num_distinct) {
  return ForAttribute(CodeColumn::FromRanks(ranks, num_distinct));
}

StrippedPartition StrippedPartition::FromCodeColumns(
    const std::vector<const CodeColumn*>& columns, int64_t num_rows) {
  if (columns.empty()) return Universe(num_rows);
  // LSD radix sort over *batches* of columns: consecutive columns fuse
  // into one composite key while the product of their distinct counts
  // stays within ~the row count, so low-cardinality column sets collapse
  // into a single counting pass (the common case). Each pass is a stable
  // counting sort, last batch first, starting from ascending row order,
  // so the final order is lexicographic by code vector with row-id
  // tiebreak — classes in ascending key order, members ascending.
  const int64_t budget = std::min<int64_t>(
      std::max<int64_t>(num_rows, int64_t{1} << 16), int64_t{1} << 30);
  std::vector<int32_t> order(num_rows);
  std::vector<int32_t> next(num_rows);
  std::vector<uint32_t> fused;
  std::vector<int32_t> counts;
  bool first_pass = true;
  size_t hi = columns.size();
  while (hi > 0) {
    // Greedily extend the batch [lo, hi) while the key space fits.
    size_t lo = hi;
    int64_t k = 1;
    while (lo > 0 &&
           k * std::max<int64_t>(columns[lo - 1]->num_distinct(), 1) <=
               budget) {
      k *= std::max<int64_t>(columns[--lo]->num_distinct(), 1);
    }
    if (lo == hi) k = columns[--lo]->num_distinct();  // oversized, alone
    const uint32_t* key;
    if (hi - lo == 1) {
      key = columns[lo]->data();
    } else {
      fused.resize(num_rows);
      for (int64_t t = 0; t < num_rows; ++t) {
        uint32_t v = 0;
        for (size_t ci = lo; ci < hi; ++ci) {
          v = v * static_cast<uint32_t>(columns[ci]->num_distinct()) +
              static_cast<uint32_t>(columns[ci]->data()[t]);
        }
        fused[t] = v;
      }
      key = fused.data();
    }
    counts.assign(static_cast<size_t>(k) + 1, 0);
    for (int64_t t = 0; t < num_rows; ++t) ++counts[key[t] + 1];
    for (int64_t v = 0; v < k; ++v) counts[v + 1] += counts[v];
    if (first_pass) {
      // Identity start: scatter row ids directly, no order[] indirection.
      for (int64_t t = 0; t < num_rows; ++t) {
        next[counts[key[t]]++] = static_cast<int32_t>(t);
      }
      first_pass = false;
    } else {
      for (int64_t i = 0; i < num_rows; ++i) {
        next[counts[key[order[i]]]++] = order[i];
      }
    }
    order.swap(next);
    hi = lo;
  }
  auto same_key = [&columns](int32_t a, int32_t b) {
    for (const CodeColumn* col : columns) {
      if ((*col)[a] != (*col)[b]) return false;
    }
    return true;
  };
  PartitionBuilder builder(num_rows);
  int64_t i = 0;
  while (i < num_rows) {
    builder.BeginClass();
    builder.AddTuple(order[i]);
    int64_t j = i + 1;
    while (j < num_rows && same_key(order[i], order[j])) {
      builder.AddTuple(order[j]);
      ++j;
    }
    builder.EndClass();
    i = j;
  }
  return builder.Build();
}

StrippedPartition StrippedPartition::Product(
    const StrippedPartition& other) const {
  FASTOD_DCHECK(num_rows_ == other.num_rows_);
  // TANE-style linear product. Mark membership of `*this` classes in a
  // probe array, then split each class of `other` by probe value — two
  // flat passes per class (count, then scatter into one buffer), no
  // per-class vectors.
  std::vector<int32_t> probe(num_rows_, -1);
  for (int32_t c = 0; c < NumClasses(); ++c) {
    for (int32_t t : Class(c)) probe[t] = c;
  }
  std::vector<int32_t> counts(NumClasses(), 0);
  std::vector<int32_t> starts(NumClasses(), 0);
  std::vector<int32_t> buffer;
  std::vector<int32_t> touched;
  PartitionBuilder builder(num_rows_);
  for (int32_t oc = 0; oc < other.NumClasses(); ++oc) {
    auto other_class = other.Class(oc);
    touched.clear();
    for (int32_t t : other_class) {
      int32_t pc = probe[t];
      if (pc < 0) continue;  // singleton in *this: cannot form a pair
      if (counts[pc]++ == 0) touched.push_back(pc);
    }
    // Emit classes in ascending first-class index for determinism.
    std::sort(touched.begin(), touched.end());
    int32_t total = 0;
    for (int32_t pc : touched) {
      starts[pc] = total;
      total += counts[pc];
    }
    buffer.resize(total);
    for (int32_t t : other_class) {
      int32_t pc = probe[t];
      if (pc < 0) continue;
      buffer[starts[pc]++] = t;  // members stay ascending (class order)
    }
    int32_t begin = 0;
    for (int32_t pc : touched) {
      builder.BeginClass();
      for (int32_t i = begin; i < begin + counts[pc]; ++i) {
        builder.AddTuple(buffer[i]);
      }
      builder.EndClass();
      begin += counts[pc];
      counts[pc] = 0;
    }
  }
  return builder.Build();
}

void StrippedPartition::FillClassIndex(std::vector<int32_t>* class_of) const {
  class_of->assign(num_rows_, -1);
  for (int32_t c = 0; c < NumClasses(); ++c) {
    for (int32_t t : Class(c)) (*class_of)[t] = c;
  }
}

bool StrippedPartition::operator==(const StrippedPartition& other) const {
  if (num_rows_ != other.num_rows_ || NumClasses() != other.NumClasses()) {
    return false;
  }
  // Classes are canonical up to ordering: compare as sorted sets of sorted
  // classes. Members are already ascending; order classes by first element.
  auto canonical = [](const StrippedPartition& p) {
    std::vector<std::vector<int32_t>> classes;
    classes.reserve(p.NumClasses());
    for (int32_t c = 0; c < p.NumClasses(); ++c) {
      auto cls = p.Class(c);
      classes.emplace_back(cls.begin(), cls.end());
    }
    std::sort(classes.begin(), classes.end());
    return classes;
  };
  return canonical(*this) == canonical(other);
}

std::string StrippedPartition::ToString() const {
  std::string out = "{";
  for (int32_t c = 0; c < NumClasses(); ++c) {
    if (c > 0) out += ",";
    out += "{";
    auto cls = Class(c);
    for (size_t i = 0; i < cls.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(cls[i]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace fastod
