#include "partition/stripped_partition.h"

#include "common/fault.h"

#include <algorithm>
#include <unordered_map>

namespace fastod {

StrippedPartition StrippedPartition::Universe(int64_t num_rows) {
  PartitionBuilder builder(num_rows);
  builder.BeginClass();
  for (int64_t t = 0; t < num_rows; ++t) {
    builder.AddTuple(static_cast<int32_t>(t));
  }
  builder.EndClass();
  return builder.Build();
}

StrippedPartition StrippedPartition::ForAttribute(
    const std::vector<int32_t>& ranks, int32_t num_distinct) {
  // No coded-failure path out of a partition build: only "throw"
  // schedules apply (contained at the session worker boundary).
  (void)FASTOD_FAULT_POINT("partition.build");
  const int64_t n = static_cast<int64_t>(ranks.size());
  // Counting sort by rank keeps classes in ascending value order.
  std::vector<int32_t> counts(num_distinct + 1, 0);
  for (int32_t r : ranks) {
    FASTOD_DCHECK(r >= 0 && r < num_distinct);
    ++counts[r + 1];
  }
  for (int32_t v = 0; v < num_distinct; ++v) counts[v + 1] += counts[v];
  std::vector<int32_t> by_rank(n);
  std::vector<int32_t> cursor(counts.begin(), counts.end() - 1);
  for (int64_t t = 0; t < n; ++t) {
    by_rank[cursor[ranks[t]]++] = static_cast<int32_t>(t);
  }
  PartitionBuilder builder(n);
  for (int32_t v = 0; v < num_distinct; ++v) {
    builder.BeginClass();
    for (int32_t i = counts[v]; i < counts[v + 1]; ++i) {
      builder.AddTuple(by_rank[i]);
    }
    builder.EndClass();
  }
  return builder.Build();
}

StrippedPartition StrippedPartition::FromRankColumns(
    const std::vector<const std::vector<int32_t>*>& columns,
    int64_t num_rows) {
  if (columns.empty()) return Universe(num_rows);
  // Group tuples by their full rank vector via a hash of composed keys.
  // Reference implementation only; quadratic-ish memory is fine at test
  // scales.
  struct VecHash {
    size_t operator()(const std::vector<int32_t>& v) const {
      size_t h = 1469598103934665603ULL;
      for (int32_t x : v) {
        h ^= static_cast<size_t>(x) + 0x9e3779b9 + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<int32_t>, std::vector<int32_t>, VecHash>
      groups;
  std::vector<int32_t> key(columns.size());
  for (int64_t t = 0; t < num_rows; ++t) {
    for (size_t c = 0; c < columns.size(); ++c) key[c] = (*columns[c])[t];
    groups[key].push_back(static_cast<int32_t>(t));
  }
  // Deterministic class order: sort group keys.
  std::vector<const std::vector<int32_t>*> keys;
  keys.reserve(groups.size());
  for (const auto& [k, v] : groups) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const std::vector<int32_t>* a, const std::vector<int32_t>* b) {
              return *a < *b;
            });
  PartitionBuilder builder(num_rows);
  for (const std::vector<int32_t>* k : keys) {
    builder.BeginClass();
    for (int32_t t : groups[*k]) builder.AddTuple(t);
    builder.EndClass();
  }
  return builder.Build();
}

StrippedPartition StrippedPartition::Product(
    const StrippedPartition& other) const {
  FASTOD_DCHECK(num_rows_ == other.num_rows_);
  // TANE-style linear product. Mark membership of `*this` classes in a
  // probe array, then split each class of `other` by probe value.
  std::vector<int32_t> probe(num_rows_, -1);
  for (int32_t c = 0; c < NumClasses(); ++c) {
    for (int32_t t : Class(c)) probe[t] = c;
  }
  // scratch[i] accumulates the intersection of the current `other` class
  // with this->Class(i).
  std::vector<std::vector<int32_t>> scratch(NumClasses());
  std::vector<int32_t> touched;
  PartitionBuilder builder(num_rows_);
  for (int32_t oc = 0; oc < other.NumClasses(); ++oc) {
    touched.clear();
    for (int32_t t : other.Class(oc)) {
      int32_t pc = probe[t];
      if (pc < 0) continue;  // singleton in *this: cannot form a pair
      if (scratch[pc].empty()) touched.push_back(pc);
      scratch[pc].push_back(t);
    }
    // Emit classes in ascending first-class index for determinism.
    std::sort(touched.begin(), touched.end());
    for (int32_t pc : touched) {
      builder.BeginClass();
      for (int32_t t : scratch[pc]) builder.AddTuple(t);
      builder.EndClass();
      scratch[pc].clear();
    }
  }
  return builder.Build();
}

void StrippedPartition::FillClassIndex(std::vector<int32_t>* class_of) const {
  class_of->assign(num_rows_, -1);
  for (int32_t c = 0; c < NumClasses(); ++c) {
    for (int32_t t : Class(c)) (*class_of)[t] = c;
  }
}

bool StrippedPartition::operator==(const StrippedPartition& other) const {
  if (num_rows_ != other.num_rows_ || NumClasses() != other.NumClasses()) {
    return false;
  }
  // Classes are canonical up to ordering: compare as sorted sets of sorted
  // classes. Members are already ascending; order classes by first element.
  auto canonical = [](const StrippedPartition& p) {
    std::vector<std::vector<int32_t>> classes;
    classes.reserve(p.NumClasses());
    for (int32_t c = 0; c < p.NumClasses(); ++c) {
      auto cls = p.Class(c);
      classes.emplace_back(cls.begin(), cls.end());
    }
    std::sort(classes.begin(), classes.end());
    return classes;
  };
  return canonical(*this) == canonical(other);
}

std::string StrippedPartition::ToString() const {
  std::string out = "{";
  for (int32_t c = 0; c < NumClasses(); ++c) {
    if (c > 0) out += ",";
    out += "{";
    auto cls = Class(c);
    for (size_t i = 0; i < cls.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(cls[i]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace fastod
