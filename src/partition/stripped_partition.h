// Stripped partitions Π*_X (Section 4.6).
//
// A partition Π_X groups tuples into equivalence classes by their values on
// the attribute set X. A *stripped* partition discards singleton classes:
// by Lemma 14 of the paper, singletons can falsify neither constancy ODs
// (X: [] -> A) nor order-compatibility ODs (X: A ~ B), so dropping them is
// lossless for validation and shrinks partitions rapidly as contexts grow.
//
// Classes are stored flattened (one elements array plus offsets) for cache
// locality; tuple ids within a class are in ascending order, and for
// single-attribute partitions the classes themselves appear in ascending
// value (rank) order.
#ifndef FASTOD_PARTITION_STRIPPED_PARTITION_H_
#define FASTOD_PARTITION_STRIPPED_PARTITION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "data/column.h"

namespace fastod {

class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Π*_{} — the universe partition: one class holding all `num_rows`
  /// tuples (empty if num_rows < 2, i.e. the empty set is already a key).
  static StrippedPartition Universe(int64_t num_rows);

  /// Π*_{A} from the dense order-preserving code column of attribute A —
  /// a counting sort over the contiguous codes. Classes are emitted in
  /// ascending code (= value) order.
  static StrippedPartition ForAttribute(const CodeColumn& codes);

  /// Convenience overload over a hand-assembled rank vector (tests).
  static StrippedPartition ForAttribute(const std::vector<int32_t>& ranks,
                                        int32_t num_distinct);

  /// Builds Π*_X directly from the code columns of the attributes of X:
  /// an LSD radix sort (one stable counting pass per column, last to
  /// first) followed by adjacent-run grouping, so classes appear in
  /// ascending lexicographic key order with ascending members. Used by
  /// validators and one-off constructions; the level-wise algorithms use
  /// Product() instead.
  static StrippedPartition FromCodeColumns(
      const std::vector<const CodeColumn*>& columns, int64_t num_rows);

  /// The partition product Π*_{X∪Y} = Π*_X · Π*_Y (linear time, the TANE
  /// product): intersects classes of `*this` with classes of `other`.
  StrippedPartition Product(const StrippedPartition& other) const;

  int64_t num_rows() const { return num_rows_; }
  int32_t NumClasses() const {
    return static_cast<int32_t>(offsets_.size()) - 1;
  }
  /// Total tuples across (non-singleton) classes.
  int64_t NumElements() const {
    return static_cast<int64_t>(elements_.size());
  }

  /// e(X) = ||Π*_X|| - |Π*_X|: the number of tuples that must be removed
  /// for X to become a key. Two contexts X ⊂ X' index the same partition
  /// iff their errors are equal — the O(1) FD check of Section 4.6.
  int64_t Error() const { return NumElements() - NumClasses(); }

  /// True iff every class is a singleton, i.e. the attribute set is a
  /// superkey (triggers the key-pruning rules, Lemmas 12-13).
  bool IsSuperkey() const { return NumClasses() == 0; }

  /// Tuple ids of class `c`, ascending.
  std::span<const int32_t> Class(int32_t c) const {
    FASTOD_DCHECK(c >= 0 && c < NumClasses());
    return std::span<const int32_t>(elements_.data() + offsets_[c],
                                    offsets_[c + 1] - offsets_[c]);
  }

  /// Writes the class index of every tuple into `class_of` (resized to
  /// num_rows): class id for members of non-singleton classes, -1 for
  /// stripped singletons. Used by the τ-based swap checker.
  void FillClassIndex(std::vector<int32_t>* class_of) const;

  bool operator==(const StrippedPartition& other) const;

  /// "{{0,3},{1,4,5}}" for debugging and tests.
  std::string ToString() const;

 private:
  int64_t num_rows_ = 0;
  std::vector<int32_t> elements_;
  std::vector<int32_t> offsets_{0};

  friend class PartitionBuilder;
};

/// Incremental construction: append classes one at a time. Classes with
/// fewer than two tuples are dropped automatically (stripping).
class PartitionBuilder {
 public:
  explicit PartitionBuilder(int64_t num_rows) { result_.num_rows_ = num_rows; }

  void BeginClass() { class_start_ = result_.elements_.size(); }
  void AddTuple(int32_t tuple) { result_.elements_.push_back(tuple); }
  void EndClass() {
    size_t size = result_.elements_.size() - class_start_;
    if (size < 2) {
      result_.elements_.resize(class_start_);  // strip singleton / empty
    } else {
      result_.offsets_.push_back(
          static_cast<int32_t>(result_.elements_.size()));
    }
  }

  StrippedPartition Build() { return std::move(result_); }

 private:
  StrippedPartition result_;
  size_t class_start_ = 0;
};

}  // namespace fastod

#endif  // FASTOD_PARTITION_STRIPPED_PARTITION_H_
