// The fastod command-line tool, as a testable library. tools/fastod_cli.cc
// is a thin main() around RunCli().
//
// Commands:
//   discover <csv>    run FASTOD / TANE / ORDER on a CSV file
//   validate <csv>    check one OD (--lhs/--rhs column lists, ':desc'
//                     suffixes allowed) against the data
//   violations <csv>  list tuple pairs violating an OD (data cleaning)
//   generate <name>   emit a synthetic benchmark dataset as CSV
// Run with no arguments (or `help`) for full usage.
#ifndef FASTOD_CLI_CLI_H_
#define FASTOD_CLI_CLI_H_

#include <string>
#include <vector>

namespace fastod {

struct CliResult {
  int exit_code = 0;
  std::string output;  // stdout payload
  std::string error;   // stderr payload
};

/// Executes one CLI invocation. `args` excludes the program name.
CliResult RunCli(const std::vector<std::string>& args);

}  // namespace fastod

#endif  // FASTOD_CLI_CLI_H_
