#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "api/algorithm.h"
#include "api/registry.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "data/dataset_store.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/report.h"
#include "server/discovery_server.h"
#include "service/discovery_service.h"
#include "validate/od_validator.h"
#include "validate/violation_scanner.h"

namespace fastod {

namespace {

// Top-level usage; the --algorithm list and per-algorithm options are
// generated from the registry's option metadata.
std::string Usage() {
  return "fastod — order dependency discovery (FASTOD, VLDB 2017)\n"
         "\n"
         "usage:\n"
         "  fastod discover <file.csv> [--algorithm=NAME] [--output=text|"
         "json]\n"
         "                             [--delimiter=,] [--no-header] "
         "[--max-rows=N] [--stats]\n"
         "                             [algorithm options — see `fastod "
         "discover --help`]\n"
         "      NAME: " +
         AlgorithmRegistry::Default().NamesList() +
         "\n"
         "  fastod batch <manifest.txt> [--threads=N] [--output=text|json]\n"
         "                             (job lines: <file.csv|@dataset> "
         "<algorithm> [--opt=val ...];\n"
         "                              `dataset <name> <file.csv>` loads "
         "once for many @name jobs;\n"
         "                              `append <name> <delta.csv>` grows "
         "it by a headerless delta)\n"
         "  fastod serve [--port=N] [--host=ADDR] [--threads=N]\n"
         "                             [--http-threads=N] [--no-csv-path]\n"
         "                             [--dataset-budget-mb=N]\n"
         "                             [--metrics|--no-metrics]\n"
         "  fastod algorithms [NAME...]\n"
         "  fastod validate <file.csv> --lhs=colA,colB --rhs=colC[:desc]\n"
         "  fastod violations <file.csv> --lhs=... --rhs=... [--limit=N]\n"
         "  fastod conditional <file.csv> [--min-support=F] [--limit=N]\n"
         "  fastod generate <flight|ncvoter|hepatitis|dbtesma|date_dim>\n"
         "                             [--rows=N] [--attrs=K] [--seed=S]\n"
         "  fastod help\n";
}

std::string DiscoverUsage() {
  return "usage: fastod discover <file.csv> [--algorithm=NAME] [options]\n"
         "\n"
         "common options:\n"
         "  --algorithm=<name>             discovery engine (default: "
         "fastod)\n"
         "  --output=<text|json>           result rendering (default: "
         "text)\n"
         "  --delimiter=<char>             CSV field delimiter (default: "
         ",)\n"
         "  --no-header                    first CSV record is data\n"
         "  --max-rows=<n>                 read at most N data rows\n"
         "  --stats                        append search telemetry (phase\n"
         "                                 timings, lattice counters); with\n"
         "                                 --output=json the report gains a\n"
         "                                 \"trace\" field\n"
         "\n"
         "algorithms and their options:\n" +
         AlgorithmRegistry::Default().DescribeAlgorithms();
}

struct CsvFlags {
  std::string delimiter = ",";
  bool no_header = false;
  int64_t max_rows = -1;

  void Register(FlagSet* flags) {
    flags->AddString("delimiter", &delimiter, "CSV field delimiter");
    flags->AddBool("no-header", &no_header,
                   "first CSV record is data, not attribute names");
    flags->AddInt("max-rows", &max_rows, "read at most N data rows (-1=all)");
  }

  Result<Table> Load(const std::string& path) const {
    CsvOptions options;
    if (delimiter.size() != 1) {
      return Status::InvalidArgument("--delimiter must be one character");
    }
    options.delimiter = delimiter[0];
    options.has_header = !no_header;
    options.max_rows = max_rows;
    return ReadCsvFile(path, options);
  }
};

// Parses "colA,colB:desc" into a directed spec; direction defaults asc.
Result<DirectedSpec> ParseDirectedSpec(const std::string& text,
                                       const Schema& schema) {
  DirectedSpec spec;
  for (const std::string& piece : Split(text, ',')) {
    std::string name(Trim(piece));
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute in list '" + text +
                                     "'");
    }
    SortDirection dir = SortDirection::kAsc;
    size_t colon = name.rfind(':');
    if (colon != std::string::npos) {
      std::string suffix = name.substr(colon + 1);
      name = name.substr(0, colon);
      if (suffix == "desc") {
        dir = SortDirection::kDesc;
      } else if (suffix != "asc") {
        return Status::InvalidArgument("unknown direction ':" + suffix +
                                       "' (use :asc or :desc)");
      }
    }
    Result<int> idx = schema.IndexOf(name);
    if (!idx.ok()) return idx.status();
    spec.push_back(DirectedAttribute{*idx, dir});
  }
  if (spec.empty()) {
    return Status::InvalidArgument("attribute list must be non-empty");
  }
  return spec;
}

bool AllAscending(const DirectedSpec& spec) {
  return std::all_of(spec.begin(), spec.end(),
                     [](const DirectedAttribute& d) {
                       return d.direction == SortDirection::kAsc;
                     });
}

OrderSpec StripDirections(const DirectedSpec& spec) {
  OrderSpec out;
  out.reserve(spec.size());
  for (const DirectedAttribute& d : spec) out.push_back(d.attr);
  return out;
}

CliResult Fail(const Status& status) {
  CliResult result;
  result.exit_code = 1;
  result.error = status.ToString() + "\n";
  return result;
}

// Human rendering of the engine's search counters for `discover --stats`
// text output (the JSON output embeds the trace instead).
std::string RenderStatsText(const obs::EngineStats& stats) {
  std::string out = "\nsearch stats:\n";
  out += "  levels processed: " + std::to_string(stats.levels_processed) +
         "\n";
  out += "  nodes visited:    " + std::to_string(stats.nodes_visited) +
         " (" + std::to_string(stats.nodes_pruned) + " pruned)\n";
  out += "  validations:      " + std::to_string(stats.constancy_checks) +
         " constancy, " + std::to_string(stats.swap_checks) + " swap, " +
         std::to_string(stats.key_prune_hits) + " skipped by key pruning\n";
  if (stats.candidates_checked > 0 || stats.candidates_pruned > 0) {
    out += "  candidates:       " +
           std::to_string(stats.candidates_checked) + " checked, " +
           std::to_string(stats.candidates_pruned) + " pruned\n";
  }
  out += "  partition cache:  " +
         std::to_string(stats.partition_cache_gets) + " gets, " +
         std::to_string(stats.partition_cache_puts) + " puts\n";
  out += "  ods emitted:      " + std::to_string(stats.ods_emitted) + "\n";
  for (const obs::LevelStats& level : stats.levels) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  level %d: nodes=%lld pruned=%lld checks=%lld/%lld "
                  "ods=%lld (%.4fs)\n",
                  level.level, static_cast<long long>(level.nodes),
                  static_cast<long long>(level.nodes_pruned),
                  static_cast<long long>(level.constancy_checks),
                  static_cast<long long>(level.swap_checks),
                  static_cast<long long>(level.ods_found), level.seconds);
    out += line;
  }
  return out;
}

// Dispatches through the algorithm registry: CLI-owned flags (CSV
// loading, output format, the algorithm name itself) are interpreted
// here; every other --name=value is forwarded to the created algorithm's
// typed option registry, so each engine's full option surface is reachable
// without this file knowing any engine's options struct.
CliResult Discover(const std::vector<std::string>& args) {
  std::string algorithm = "fastod";
  std::string output = "text";
  bool stats = false;
  CsvFlags csv;
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> engine_options;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "help") {
      CliResult result;
      result.output = DiscoverUsage();
      return result;
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    if (name == "algorithm") {
      algorithm = value;
    } else if (name == "output") {
      output = value;
    } else if (name == "stats") {
      if (value.empty() || value == "true" || value == "1") {
        stats = true;
      } else if (value == "false" || value == "0") {
        stats = false;
      } else {
        return Fail(Status::InvalidArgument(
            "--stats expects true or false, got '" + value + "'"));
      }
    } else if (name == "delimiter") {
      csv.delimiter = value;
    } else if (name == "no-header") {
      if (value.empty() || value == "true" || value == "1") {
        csv.no_header = true;
      } else if (value == "false" || value == "0") {
        csv.no_header = false;
      } else {
        return Fail(Status::InvalidArgument(
            "--no-header expects true or false, got '" + value + "'"));
      }
    } else if (name == "max-rows") {
      std::optional<int64_t> parsed = ParseInt(value);
      if (!parsed.has_value()) {
        return Fail(Status::InvalidArgument("--max-rows expects an integer"));
      }
      csv.max_rows = *parsed;
    } else {
      engine_options.emplace_back(std::move(name), std::move(value));
    }
  }
  if (output != "text" && output != "json") {
    return Fail(Status::InvalidArgument("--output must be text or json"));
  }
  // Reject unknown algorithms before touching the filesystem, with the
  // registered names in the error.
  Result<std::unique_ptr<Algorithm>> algo =
      AlgorithmRegistry::Default().Create(algorithm);
  if (!algo.ok()) return Fail(algo.status());
  for (const auto& [name, value] : engine_options) {
    if (Status s = (*algo)->SetOption(name, value); !s.ok()) return Fail(s);
  }
  if (positional.size() != 1) {
    return Fail(Status::InvalidArgument(
        "discover expects exactly one CSV path"));
  }
  // The same spans a DiscoverySession records, rebuilt locally because
  // `discover` drives the algorithm directly, without a session.
  obs::TraceRecorder trace;
  double start = trace.Now();
  Result<Table> table = csv.Load(positional[0]);
  if (!table.ok()) return Fail(table.status());
  if (stats) trace.RecordSpan("csv.parse", start, trace.Now() - start);
  start = trace.Now();
  if (Status s = (*algo)->LoadData(std::move(table).value()); !s.ok()) {
    return Fail(s);
  }
  if (stats) trace.RecordSpan("encode", start, trace.Now() - start);
  start = trace.Now();
  if (Status s = (*algo)->Execute(); !s.ok()) return Fail(s);
  CliResult result;
  result.output =
      output == "json" ? (*algo)->ResultJson() : (*algo)->ResultText();
  if (stats) {
    trace.RecordSpan("execute", start, trace.Now() - start);
    double cursor = start;
    for (const obs::LevelStats& level : (*algo)->stats().levels) {
      trace.RecordSpan("level[" + std::to_string(level.level) + "]",
                       cursor, level.seconds);
      cursor += level.seconds;
    }
    trace.SetEngineStats((*algo)->stats());
    if (output == "json") {
      size_t brace = result.output.rfind('}');
      if (brace != std::string::npos) {
        result.output.insert(brace, ",\"trace\":" + trace.ToJson());
      }
    } else {
      result.output += RenderStatsText((*algo)->stats());
    }
  }
  return result;
}

CliResult Validate(const std::vector<std::string>& args) {
  std::string lhs_text;
  std::string rhs_text;
  CsvFlags csv;
  FlagSet flags;
  flags.AddString("lhs", &lhs_text, "ordering attribute list (X of X ↦ Y)");
  flags.AddString("rhs", &rhs_text, "ordered attribute list (Y of X ↦ Y)");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "validate expects exactly one CSV path"));
  }
  Result<Table> table = csv.Load(flags.positional()[0]);
  if (!table.ok()) return Fail(table.status());
  Result<EncodedRelation> rel = EncodedRelation::FromTable(*table);
  if (!rel.ok()) return Fail(rel.status());
  Result<DirectedSpec> lhs = ParseDirectedSpec(lhs_text, rel->schema());
  if (!lhs.ok()) return Fail(lhs.status());
  Result<DirectedSpec> rhs = ParseDirectedSpec(rhs_text, rel->schema());
  if (!rhs.ok()) return Fail(rhs.status());

  OdValidator validator(&*rel);
  bool holds;
  std::string rendered;
  if (AllAscending(*lhs) && AllAscending(*rhs)) {
    ListOd od{StripDirections(*lhs), StripDirections(*rhs)};
    holds = validator.Holds(od);
    rendered = od.ToString(rel->schema());
  } else {
    BidirectionalListOd od{*lhs, *rhs};
    holds = validator.Holds(od);
    rendered = od.ToString(rel->schema());
  }
  CliResult result;
  result.output = rendered + ": " + (holds ? "holds" : "violated") + "\n";
  result.exit_code = holds ? 0 : 2;  // shell-scriptable
  return result;
}

CliResult Violations(const std::vector<std::string>& args) {
  std::string lhs_text;
  std::string rhs_text;
  int64_t limit = 20;
  CsvFlags csv;
  FlagSet flags;
  flags.AddString("lhs", &lhs_text, "ordering attribute list");
  flags.AddString("rhs", &rhs_text, "ordered attribute list");
  flags.AddInt("limit", &limit, "maximum violating pairs to report");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "violations expects exactly one CSV path"));
  }
  Result<Table> table = csv.Load(flags.positional()[0]);
  if (!table.ok()) return Fail(table.status());
  Result<EncodedRelation> rel = EncodedRelation::FromTable(*table);
  if (!rel.ok()) return Fail(rel.status());
  Result<DirectedSpec> lhs = ParseDirectedSpec(lhs_text, rel->schema());
  if (!lhs.ok()) return Fail(lhs.status());
  Result<DirectedSpec> rhs = ParseDirectedSpec(rhs_text, rel->schema());
  if (!rhs.ok()) return Fail(rhs.status());
  if (!AllAscending(*lhs) || !AllAscending(*rhs)) {
    return Fail(Status::InvalidArgument(
        "violations currently supports ascending specifications only"));
  }

  ListOd od{StripDirections(*lhs), StripDirections(*rhs)};
  ViolationScanner scanner(&*rel);
  ScanOptions options;
  options.max_violations = limit;
  std::vector<Violation> violations = scanner.Scan(od, options);
  CliResult result;
  result.output = od.ToString(rel->schema()) + ": " +
                  std::to_string(violations.size()) + " violating pair(s)";
  if (static_cast<int64_t>(violations.size()) == limit) {
    result.output += " (limit reached)";
  }
  result.output += "\n";
  for (const Violation& v : violations) {
    result.output += "  " + v.ToString() + "\n";
  }
  result.exit_code = violations.empty() ? 0 : 2;
  return result;
}

// Legacy sugar for `discover --algorithm=conditional`; the adapter owns
// the rendering (binding ranks shown as original cell values). The
// command's historical default limit of 20 is prepended so a
// user-supplied --limit still wins (options apply in argument order).
CliResult Conditional(const std::vector<std::string>& args) {
  std::vector<std::string> forwarded;
  forwarded.reserve(args.size() + 2);
  forwarded.push_back("--limit=20");
  forwarded.insert(forwarded.end(), args.begin(), args.end());
  forwarded.push_back("--algorithm=conditional");
  return Discover(forwarded);
}

// Lists every registered algorithm with its description and option help,
// all generated from the registry's metadata. With arguments, restricts
// the listing to the named algorithms (unknown names error, listing what
// is registered).
CliResult Algorithms(const std::vector<std::string>& args) {
  std::vector<std::string> names;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "help") {
      CliResult result;
      result.output = "usage: fastod algorithms [NAME...]\n\n"
                      "Lists registered discovery algorithms with their "
                      "options.\n";
      return result;
    }
    names.push_back(arg);
  }
  if (names.empty()) names = AlgorithmRegistry::Default().Names();
  CliResult result;
  for (const std::string& name : names) {
    Result<std::unique_ptr<Algorithm>> algo =
        AlgorithmRegistry::Default().Create(name);
    if (!algo.ok()) return Fail(algo.status());
    result.output += (*algo)->name() + " — " + (*algo)->description() + "\n" +
                     (*algo)->DescribeOptions();
  }
  return result;
}

// One parsed line of a batch manifest. `csv` is either a file path or an
// "@name" reference to a `dataset` directive.
struct BatchJob {
  std::string csv;
  std::string algorithm;
  std::vector<std::pair<std::string, std::string>> options;
};

struct BatchManifest {
  /// `dataset <name> <file.csv>` directives, in file order: each CSV is
  /// loaded once into a DatasetStore and shared by every @name job.
  std::vector<std::pair<std::string, std::string>> datasets;
  /// `append <name> <delta.csv>` directives, in file order: each grows
  /// the named dataset by one version before any job runs (deltas are
  /// headerless, data-only CSVs). Jobs bind the final version.
  std::vector<std::pair<std::string, std::string>> appends;
  std::vector<BatchJob> jobs;
};

Result<BatchManifest> ParseManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open manifest '" + path + "'");
  }
  BatchManifest manifest;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream tokens(trimmed);
    std::string token;
    tokens >> token;
    if (token == "dataset") {
      std::string name;
      std::string csv;
      std::string extra;
      tokens >> name >> csv;
      if (name.empty() || csv.empty() || (tokens >> extra)) {
        return Status::InvalidArgument(
            "manifest line " + std::to_string(line_number) +
            ": expected `dataset <name> <file.csv>`");
      }
      for (const auto& [existing, existing_csv] : manifest.datasets) {
        (void)existing_csv;
        if (existing == name) {
          return Status::InvalidArgument(
              "manifest line " + std::to_string(line_number) +
              ": dataset '" + name + "' defined twice");
        }
      }
      manifest.datasets.emplace_back(std::move(name), std::move(csv));
      continue;
    }
    if (token == "append") {
      std::string name;
      std::string csv;
      std::string extra;
      tokens >> name >> csv;
      if (name.empty() || csv.empty() || (tokens >> extra)) {
        return Status::InvalidArgument(
            "manifest line " + std::to_string(line_number) +
            ": expected `append <name> <delta.csv>`");
      }
      bool defined = false;
      for (const auto& [existing, existing_csv] : manifest.datasets) {
        (void)existing_csv;
        if (existing == name) {
          defined = true;
          break;
        }
      }
      if (!defined) {
        return Status::InvalidArgument(
            "manifest line " + std::to_string(line_number) + ": append to "
            "undefined dataset '" + name +
            "' (a `dataset` directive must come first)");
      }
      manifest.appends.emplace_back(std::move(name), std::move(csv));
      continue;
    }
    BatchJob job;
    do {
      if (token.rfind("--", 0) == 0) {
        std::string name = token.substr(2);
        std::string value;
        size_t eq = name.find('=');
        if (eq != std::string::npos) {
          value = name.substr(eq + 1);
          name = name.substr(0, eq);
        }
        job.options.emplace_back(std::move(name), std::move(value));
      } else if (job.csv.empty()) {
        job.csv = token;
      } else if (job.algorithm.empty()) {
        job.algorithm = token;
      } else {
        return Status::InvalidArgument(
            "manifest line " + std::to_string(line_number) +
            ": unexpected token '" + token +
            "' (expected: <file.csv|@dataset> <algorithm> "
            "[--opt=val ...])");
      }
    } while (tokens >> token);
    if (job.csv.empty() || job.algorithm.empty()) {
      return Status::InvalidArgument(
          "manifest line " + std::to_string(line_number) +
          ": expected <file.csv|@dataset> <algorithm> [--opt=val ...]");
    }
    manifest.jobs.push_back(std::move(job));
  }
  if (manifest.jobs.empty()) {
    return Status::InvalidArgument("manifest '" + path +
                                   "' contains no jobs");
  }
  return manifest;
}

// Runs a manifest of CSV×algorithm jobs concurrently through the
// DiscoveryService: every job gets its own session, CSV parsing and
// encoding happen on the workers (SubmitCsv), and at most --threads
// sessions execute at once. Per-job failures (missing file, engine
// error) are reported per line and don't abort the batch.
CliResult Batch(const std::vector<std::string>& args) {
  int64_t threads = 0;
  std::string output = "text";
  CsvFlags csv;
  FlagSet flags;
  flags.AddInt("threads", &threads,
               "concurrently executing jobs (0 = hardware)");
  flags.AddString("output", &output, "per-job result rendering");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "batch expects exactly one manifest path"));
  }
  if (output != "text" && output != "json") {
    return Fail(Status::InvalidArgument("--output must be text or json"));
  }
  if (threads < 0 || threads > 1024) {
    return Fail(Status::InvalidArgument("--threads must be in [0, 1024]"));
  }
  if (csv.delimiter.size() != 1) {
    return Fail(Status::InvalidArgument("--delimiter must be one character"));
  }
  Result<BatchManifest> manifest = ParseManifest(flags.positional()[0]);
  if (!manifest.ok()) return Fail(manifest.status());
  const std::vector<BatchJob>& jobs = manifest->jobs;

  CsvOptions csv_options;
  csv_options.delimiter = csv.delimiter[0];
  csv_options.has_header = !csv.no_header;
  csv_options.max_rows = csv.max_rows;

  // Named datasets load once into a batch-local store; every @name job
  // shares the parse, encoding, and level-1 partitions. A dataset that
  // fails to load fails the batch up front — its jobs could only fail
  // one by one later anyway.
  DatasetStore store;
  for (const auto& [name, dataset_csv] : manifest->datasets) {
    Result<std::shared_ptr<const LoadedDataset>> loaded =
        store.PutCsvFile(name, dataset_csv, csv_options);
    if (!loaded.ok()) {
      return Fail(Status(loaded.status().code(),
                         "dataset '" + name + "': " +
                             loaded.status().message()));
    }
  }
  // Appends run after the loads, in manifest order; jobs then bind the
  // fully grown version. Deltas carry no header line — the schema was
  // fixed by the `dataset` directive.
  for (const auto& [name, delta_csv] : manifest->appends) {
    CsvOptions delta_options = csv_options;
    delta_options.has_header = false;
    Result<std::shared_ptr<const LoadedDataset>> grown =
        store.AppendCsvFile(name, delta_csv, delta_options);
    if (!grown.ok()) {
      return Fail(Status(grown.status().code(),
                         "append to '" + name + "': " +
                             grown.status().message()));
    }
  }

  DiscoveryService service(static_cast<int>(threads), nullptr, &store);
  std::vector<SessionId> ids(jobs.size(), 0);
  std::vector<std::string> submit_errors(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const BatchJob& job = jobs[i];
    Result<SessionId> id = service.Create(job.algorithm);
    if (!id.ok()) {
      submit_errors[i] = id.status().ToString();
      continue;
    }
    ids[i] = *id;
    for (const auto& [name, value] : job.options) {
      if (Status s = service.SetOption(*id, name, value); !s.ok()) {
        submit_errors[i] = s.ToString();
        break;
      }
    }
    if (submit_errors[i].empty()) {
      Status submitted =
          job.csv[0] == '@'
              ? service.SubmitDataset(*id, job.csv.substr(1))
              : service.SubmitCsv(*id, job.csv, csv_options);
      if (!submitted.ok()) submit_errors[i] = submitted.ToString();
    }
  }
  service.WaitAll();

  CliResult result;
  bool any_failed = false;
  std::string json_rows;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const BatchJob& job = jobs[i];
    std::string state = "failed";
    std::string error = submit_errors[i];
    double seconds = 0.0;
    std::string rendered;
    if (error.empty()) {
      auto info = service.Poll(ids[i]);
      auto session = service.Find(ids[i]);
      state = SessionStateName(info->state);
      seconds = session->execute_seconds();
      if (info->state == SessionState::kDone) {
        rendered = output == "json" ? session->result_json()
                                    : session->result_text();
      } else {
        error = info->error;
      }
    }
    if (state != "done") any_failed = true;
    if (output == "json") {
      char seconds_buf[32];
      std::snprintf(seconds_buf, sizeof(seconds_buf), "%.6f", seconds);
      std::string row = "  {\"job\": " + std::to_string(i + 1) +
                        ", \"csv\": \"" + JsonEscape(job.csv) +
                        "\", \"algorithm\": \"" + JsonEscape(job.algorithm) +
                        "\", \"state\": \"" + state + "\", \"seconds\": " +
                        seconds_buf;
      if (!error.empty()) row += ", \"error\": \"" + JsonEscape(error) + "\"";
      if (!rendered.empty()) {
        // The per-job report is itself the stable JSON shape; inline it.
        std::string inlined(Trim(rendered));
        row += ", \"result\": " + inlined;
      }
      row += "}";
      json_rows += (json_rows.empty() ? "" : ",\n") + row;
    } else {
      char line[64];
      std::snprintf(line, sizeof(line), " (%.3fs)", seconds);
      result.output += "[" + std::to_string(i + 1) + "] " + job.algorithm +
                       " " + job.csv + ": " + state +
                       (state == "done" ? line : "") +
                       (error.empty() ? "" : " — " + error) + "\n";
      if (!rendered.empty()) {
        // First line of the engine's text report as the job summary.
        result.output += "    " + rendered.substr(0, rendered.find('\n')) +
                         "\n";
      }
    }
  }
  if (output == "json") {
    result.output = "{\"jobs\": [\n" + json_rows + "\n]}\n";
  }
  result.exit_code = any_failed ? 1 : 0;
  return result;
}

// `fastod serve` termination flag, flipped by SIGINT/SIGTERM. sig_atomic_t
// because signal handlers may only touch lock-free async-signal-safe
// state.
volatile std::sig_atomic_t g_serve_stop = 0;

extern "C" void ServeSignalHandler(int) { g_serve_stop = 1; }

// Runs the HTTP discovery server until SIGINT/SIGTERM. The startup line
// goes straight to stdout (not CliResult.output, which is only flushed
// on exit) so scripts can scrape the bound port immediately.
CliResult Serve(const std::vector<std::string>& args) {
  int64_t port = 8080;
  int64_t threads = 0;
  int64_t http_threads = 8;
  int64_t dataset_budget_mb = 256;
  int64_t max_sessions = 0;
  int64_t max_sessions_per_client = 0;
  int64_t max_body_mb = 0;
  int64_t drain_timeout_s = 30;
  std::string host = "127.0.0.1";
  bool no_csv_path = false;
  bool metrics = false;
  bool no_metrics = false;
  FlagSet flags;
  flags.AddInt("port", &port, "TCP port to listen on (0 = ephemeral)");
  flags.AddString("host", &host, "IPv4 address to bind");
  flags.AddInt("threads", &threads,
               "concurrently executing sessions (0 = hardware)");
  flags.AddInt("http-threads", &http_threads,
               "HTTP workers (each open /stream pins one)");
  flags.AddBool("no-csv-path", &no_csv_path,
                "reject server-side \"csv_path\" submissions");
  flags.AddInt("dataset-budget-mb", &dataset_budget_mb,
               "resident-dataset memory budget in MiB (0 = unlimited)");
  flags.AddInt("max-sessions", &max_sessions,
               "admission cap on queued+running sessions; past it "
               "POST /v1/sessions gets 429 (0 = unlimited)");
  flags.AddInt("max-sessions-per-client", &max_sessions_per_client,
               "live-session quota per client (X-Client-Id header, else "
               "peer IP); past it 429 (0 = unlimited)");
  flags.AddInt("max-body-mb", &max_body_mb,
               "request-body cap in MiB, rejected with 413 past it "
               "(0 = default 64)");
  flags.AddInt("drain-timeout-s", &drain_timeout_s,
               "on SIGTERM/SIGINT, seconds to wait for in-flight "
               "sessions before cancelling stragglers");
  flags.AddBool("metrics", &metrics,
                "force metrics and trace collection on, overriding the "
                "FASTOD_METRICS environment default");
  flags.AddBool("no-metrics", &no_metrics,
                "disable metrics and trace collection (GET /metrics "
                "stays routable but exposes nothing)");
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (metrics && no_metrics) {
    return Fail(Status::InvalidArgument(
        "--metrics and --no-metrics are mutually exclusive"));
  }
  if (metrics) obs::SetEnabled(true);
  if (no_metrics) obs::SetEnabled(false);
  if (!flags.positional().empty()) {
    return Fail(Status::InvalidArgument("serve takes no positional "
                                        "arguments"));
  }
  if (port < 0 || port > 65535) {
    return Fail(Status::InvalidArgument("--port must be in [0, 65535]"));
  }
  if (threads < 0 || threads > 1024) {
    return Fail(Status::InvalidArgument("--threads must be in [0, 1024]"));
  }
  if (http_threads < 1 || http_threads > 1024) {
    return Fail(Status::InvalidArgument(
        "--http-threads must be in [1, 1024]"));
  }
  // 1 TiB cap keeps the <<20 below well inside int64 range.
  if (dataset_budget_mb < 0 || dataset_budget_mb > (1LL << 20)) {
    return Fail(Status::InvalidArgument(
        "--dataset-budget-mb must be in [0, 1048576]"));
  }
  if (max_sessions < 0 || max_sessions_per_client < 0) {
    return Fail(Status::InvalidArgument(
        "--max-sessions and --max-sessions-per-client must be >= 0"));
  }
  if (max_body_mb < 0 || max_body_mb > (1LL << 20)) {
    return Fail(Status::InvalidArgument(
        "--max-body-mb must be in [0, 1048576]"));
  }
  if (drain_timeout_s < 0 || drain_timeout_s > 86400) {
    return Fail(Status::InvalidArgument(
        "--drain-timeout-s must be in [0, 86400]"));
  }

  DiscoveryServerOptions options;
  options.host = host;
  options.port = static_cast<int>(port);
  options.worker_threads = static_cast<int>(threads);
  options.http_threads = static_cast<int>(http_threads);
  options.allow_csv_path = !no_csv_path;
  options.dataset_budget_bytes = dataset_budget_mb << 20;
  options.max_sessions = max_sessions;
  options.max_sessions_per_client = max_sessions_per_client;
  options.max_body_bytes = static_cast<size_t>(max_body_mb) << 20;
  DiscoveryServer server(options);
  if (Status s = server.Start(); !s.ok()) return Fail(s);

  std::printf("fastod serve: listening on http://%s:%d (Ctrl-C to stop)\n",
              host.c_str(), server.port());
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  // Graceful drain: refuse new sessions (503 + Retry-After), let
  // in-flight runs and streams finish, cancel whatever outlives the
  // drain budget, then tear the server down. Always exits 0 — a signal
  // is the normal way to stop a server, not an error.
  server.BeginDrain();
  bool clean = server.Drain(static_cast<double>(drain_timeout_s));
  server.Stop();
  CliResult result;
  result.output = clean ? "fastod serve: stopped\n"
                        : "fastod serve: stopped (drain timeout; "
                          "stragglers cancelled)\n";
  return result;
}

CliResult Generate(const std::vector<std::string>& args) {
  int64_t rows = 1000;
  int64_t attrs = 10;
  int64_t seed = 42;
  FlagSet flags;
  flags.AddInt("rows", &rows, "number of rows");
  flags.AddInt("attrs", &attrs, "number of attributes (ignored by "
               "date_dim)");
  flags.AddInt("seed", &seed, "generator seed");
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "generate expects one dataset name "
        "(flight|ncvoter|hepatitis|dbtesma|date_dim)"));
  }
  const std::string& name = flags.positional()[0];
  if (attrs < 1 || attrs > 64) {
    return Fail(Status::InvalidArgument("--attrs must be in [1, 64]"));
  }
  Table table;
  if (name == "flight") {
    table = GenFlightLike(rows, static_cast<int>(attrs),
                          static_cast<uint64_t>(seed));
  } else if (name == "ncvoter") {
    table = GenNcvoterLike(rows, static_cast<int>(attrs),
                           static_cast<uint64_t>(seed));
  } else if (name == "hepatitis") {
    table = GenHepatitisLike(rows, static_cast<int>(attrs),
                             static_cast<uint64_t>(seed));
  } else if (name == "dbtesma") {
    table = GenDbtesmaLike(rows, static_cast<int>(attrs),
                           static_cast<uint64_t>(seed));
  } else if (name == "date_dim") {
    table = GenDateDim(rows);
  } else {
    return Fail(Status::InvalidArgument("unknown dataset '" + name + "'"));
  }
  CliResult result;
  result.output = WriteCsvString(table);
  return result;
}

}  // namespace

CliResult RunCli(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    CliResult result;
    result.output = Usage();
    return result;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "discover") return Discover(rest);
  if (command == "algorithms") return Algorithms(rest);
  if (command == "batch") return Batch(rest);
  if (command == "serve") return Serve(rest);
  if (command == "validate") return Validate(rest);
  if (command == "violations") return Violations(rest);
  if (command == "conditional") return Conditional(rest);
  if (command == "generate") return Generate(rest);
  CliResult result;
  result.exit_code = 1;
  result.error = "unknown command '" + command + "'\n\n" + Usage();
  return result;
}

}  // namespace fastod
