#include "cli/cli.h"

#include <algorithm>

#include "algo/approximate.h"
#include "algo/conditional.h"
#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "data/encode.h"
#include "gen/date_dim.h"
#include "gen/generators.h"
#include "report/report.h"
#include "validate/od_validator.h"
#include "validate/violation_scanner.h"

namespace fastod {

namespace {

const char kUsage[] =
    "fastod — order dependency discovery (FASTOD, VLDB 2017)\n"
    "\n"
    "usage:\n"
    "  fastod discover <file.csv> [--algorithm=fastod|tane|order]\n"
    "                             [--max-error=E] [--bidirectional]\n"
    "                             [--threads=T] [--timeout=SECONDS]\n"
    "                             [--max-level=L] [--output=text|json]\n"
    "                             [--delimiter=,] [--no-header]\n"
    "                             [--max-rows=N]\n"
    "  fastod validate <file.csv> --lhs=colA,colB --rhs=colC[:desc]\n"
    "  fastod violations <file.csv> --lhs=... --rhs=... [--limit=N]\n"
    "  fastod conditional <file.csv> [--min-support=F] [--limit=N]\n"
    "  fastod generate <flight|ncvoter|hepatitis|dbtesma|date_dim>\n"
    "                             [--rows=N] [--attrs=K] [--seed=S]\n"
    "  fastod help\n";

struct CsvFlags {
  std::string delimiter = ",";
  bool no_header = false;
  int64_t max_rows = -1;

  void Register(FlagSet* flags) {
    flags->AddString("delimiter", &delimiter, "CSV field delimiter");
    flags->AddBool("no-header", &no_header,
                   "first CSV record is data, not attribute names");
    flags->AddInt("max-rows", &max_rows, "read at most N data rows (-1=all)");
  }

  Result<Table> Load(const std::string& path) const {
    CsvOptions options;
    if (delimiter.size() != 1) {
      return Status::InvalidArgument("--delimiter must be one character");
    }
    options.delimiter = delimiter[0];
    options.has_header = !no_header;
    options.max_rows = max_rows;
    return ReadCsvFile(path, options);
  }
};

// Parses "colA,colB:desc" into a directed spec; direction defaults asc.
Result<DirectedSpec> ParseDirectedSpec(const std::string& text,
                                       const Schema& schema) {
  DirectedSpec spec;
  for (const std::string& piece : Split(text, ',')) {
    std::string name(Trim(piece));
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute in list '" + text +
                                     "'");
    }
    SortDirection dir = SortDirection::kAsc;
    size_t colon = name.rfind(':');
    if (colon != std::string::npos) {
      std::string suffix = name.substr(colon + 1);
      name = name.substr(0, colon);
      if (suffix == "desc") {
        dir = SortDirection::kDesc;
      } else if (suffix != "asc") {
        return Status::InvalidArgument("unknown direction ':" + suffix +
                                       "' (use :asc or :desc)");
      }
    }
    Result<int> idx = schema.IndexOf(name);
    if (!idx.ok()) return idx.status();
    spec.push_back(DirectedAttribute{*idx, dir});
  }
  if (spec.empty()) {
    return Status::InvalidArgument("attribute list must be non-empty");
  }
  return spec;
}

bool AllAscending(const DirectedSpec& spec) {
  return std::all_of(spec.begin(), spec.end(),
                     [](const DirectedAttribute& d) {
                       return d.direction == SortDirection::kAsc;
                     });
}

OrderSpec StripDirections(const DirectedSpec& spec) {
  OrderSpec out;
  out.reserve(spec.size());
  for (const DirectedAttribute& d : spec) out.push_back(d.attr);
  return out;
}

CliResult Fail(const Status& status) {
  CliResult result;
  result.exit_code = 1;
  result.error = status.ToString() + "\n";
  return result;
}

CliResult Discover(const std::vector<std::string>& args) {
  std::string algorithm = "fastod";
  std::string output = "text";
  double max_error = 0.0;
  double timeout = 0.0;
  int64_t max_level = 0;
  int64_t threads = 1;
  bool bidirectional = false;
  CsvFlags csv;
  FlagSet flags;
  flags.AddString("algorithm", &algorithm, "fastod, tane, or order");
  flags.AddString("output", &output, "text or json");
  flags.AddDouble("max-error", &max_error,
                  "approximate discovery threshold (0 = exact)");
  flags.AddDouble("timeout", &timeout, "abort after SECONDS (0 = none)");
  flags.AddInt("max-level", &max_level, "stop after lattice level L (0 = "
               "none)");
  flags.AddInt("threads", &threads, "worker threads (fastod only)");
  flags.AddBool("bidirectional", &bidirectional,
                "also discover opposite-polarity compatibilities");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "discover expects exactly one CSV path"));
  }
  if (output != "text" && output != "json") {
    return Fail(Status::InvalidArgument("--output must be text or json"));
  }
  Result<Table> table = csv.Load(flags.positional()[0]);
  if (!table.ok()) return Fail(table.status());
  Result<EncodedRelation> rel = EncodedRelation::FromTable(*table);
  if (!rel.ok()) return Fail(rel.status());

  RelationInfo info{rel->NumRows(), &rel->schema()};
  CliResult result;
  if (algorithm == "fastod") {
    FastodOptions options;
    options.max_error = max_error;
    options.timeout_seconds = timeout;
    options.max_level = static_cast<int>(max_level);
    options.num_threads = static_cast<int>(threads);
    options.discover_bidirectional = bidirectional;
    FastodResult r = Fastod(options).Discover(*rel);
    result.output = output == "json" ? FastodResultToJson(r, info)
                                     : FastodResultToText(r, info);
  } else if (algorithm == "tane") {
    TaneOptions options;
    options.timeout_seconds = timeout;
    options.max_level = static_cast<int>(max_level);
    TaneResult r = Tane(options).Discover(*rel);
    result.output = output == "json" ? TaneResultToJson(r, info)
                                     : TaneResultToText(r, info);
  } else if (algorithm == "order") {
    OrderOptions options;
    options.timeout_seconds = timeout;
    options.max_level = static_cast<int>(max_level);
    OrderResult r = OrderBaseline(options).Discover(*rel);
    result.output = output == "json" ? OrderResultToJson(r, info)
                                     : OrderResultToText(r, info);
  } else {
    return Fail(Status::InvalidArgument("unknown --algorithm '" + algorithm +
                                        "'"));
  }
  return result;
}

CliResult Validate(const std::vector<std::string>& args) {
  std::string lhs_text;
  std::string rhs_text;
  CsvFlags csv;
  FlagSet flags;
  flags.AddString("lhs", &lhs_text, "ordering attribute list (X of X ↦ Y)");
  flags.AddString("rhs", &rhs_text, "ordered attribute list (Y of X ↦ Y)");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "validate expects exactly one CSV path"));
  }
  Result<Table> table = csv.Load(flags.positional()[0]);
  if (!table.ok()) return Fail(table.status());
  Result<EncodedRelation> rel = EncodedRelation::FromTable(*table);
  if (!rel.ok()) return Fail(rel.status());
  Result<DirectedSpec> lhs = ParseDirectedSpec(lhs_text, rel->schema());
  if (!lhs.ok()) return Fail(lhs.status());
  Result<DirectedSpec> rhs = ParseDirectedSpec(rhs_text, rel->schema());
  if (!rhs.ok()) return Fail(rhs.status());

  OdValidator validator(&*rel);
  bool holds;
  std::string rendered;
  if (AllAscending(*lhs) && AllAscending(*rhs)) {
    ListOd od{StripDirections(*lhs), StripDirections(*rhs)};
    holds = validator.Holds(od);
    rendered = od.ToString(rel->schema());
  } else {
    BidirectionalListOd od{*lhs, *rhs};
    holds = validator.Holds(od);
    rendered = od.ToString(rel->schema());
  }
  CliResult result;
  result.output = rendered + ": " + (holds ? "holds" : "violated") + "\n";
  result.exit_code = holds ? 0 : 2;  // shell-scriptable
  return result;
}

CliResult Violations(const std::vector<std::string>& args) {
  std::string lhs_text;
  std::string rhs_text;
  int64_t limit = 20;
  CsvFlags csv;
  FlagSet flags;
  flags.AddString("lhs", &lhs_text, "ordering attribute list");
  flags.AddString("rhs", &rhs_text, "ordered attribute list");
  flags.AddInt("limit", &limit, "maximum violating pairs to report");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "violations expects exactly one CSV path"));
  }
  Result<Table> table = csv.Load(flags.positional()[0]);
  if (!table.ok()) return Fail(table.status());
  Result<EncodedRelation> rel = EncodedRelation::FromTable(*table);
  if (!rel.ok()) return Fail(rel.status());
  Result<DirectedSpec> lhs = ParseDirectedSpec(lhs_text, rel->schema());
  if (!lhs.ok()) return Fail(lhs.status());
  Result<DirectedSpec> rhs = ParseDirectedSpec(rhs_text, rel->schema());
  if (!rhs.ok()) return Fail(rhs.status());
  if (!AllAscending(*lhs) || !AllAscending(*rhs)) {
    return Fail(Status::InvalidArgument(
        "violations currently supports ascending specifications only"));
  }

  ListOd od{StripDirections(*lhs), StripDirections(*rhs)};
  ViolationScanner scanner(&*rel);
  ScanOptions options;
  options.max_violations = limit;
  std::vector<Violation> violations = scanner.Scan(od, options);
  CliResult result;
  result.output = od.ToString(rel->schema()) + ": " +
                  std::to_string(violations.size()) + " violating pair(s)";
  if (static_cast<int64_t>(violations.size()) == limit) {
    result.output += " (limit reached)";
  }
  result.output += "\n";
  for (const Violation& v : violations) {
    result.output += "  " + v.ToString() + "\n";
  }
  result.exit_code = violations.empty() ? 0 : 2;
  return result;
}

CliResult Conditional(const std::vector<std::string>& args) {
  double min_support = 0.25;
  int64_t limit = 20;
  CsvFlags csv;
  FlagSet flags;
  flags.AddDouble("min-support", &min_support,
                  "minimum covered-tuple fraction for a conditional OD");
  flags.AddInt("limit", &limit, "maximum conditional ODs to report");
  csv.Register(&flags);
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "conditional expects exactly one CSV path"));
  }
  Result<Table> table = csv.Load(flags.positional()[0]);
  if (!table.ok()) return Fail(table.status());
  Result<EncodedRelation> rel = EncodedRelation::FromTable(*table);
  if (!rel.ok()) return Fail(rel.status());

  ConditionalOdFinder finder(&*rel);
  ConditionalOdOptions options;
  options.min_support = min_support;
  options.max_results = limit;
  std::vector<ConditionalOd> found = finder.DiscoverConditional(options);

  // Render bindings as actual cell values rather than dense ranks: find a
  // witness row per rank.
  auto binding_value = [&](int attr, int32_t rank) -> std::string {
    for (int64_t r = 0; r < table->NumRows(); ++r) {
      if (rel->rank(r, attr) == rank) return table->at(r, attr).ToString();
    }
    std::string fallback = "#";
    fallback += std::to_string(rank);
    return fallback;
  };
  CliResult result;
  result.output = std::to_string(found.size()) +
                  " conditional OD(s) at support >= " +
                  std::to_string(min_support) + "\n";
  for (const ConditionalOd& c : found) {
    std::string line = "  (";
    line += table->schema().name(c.condition_attribute);
    line += " in {";
    for (size_t i = 0; i < c.binding_ranks.size(); ++i) {
      if (i > 0) line += ",";
      line += binding_value(c.condition_attribute, c.binding_ranks[i]);
    }
    char support_buf[32];
    std::snprintf(support_buf, sizeof(support_buf), "%.0f%%",
                  c.support * 100.0);
    line += "}) => ";
    line += CanonicalOdToString(c.od, table->schema());
    line += "  [support ";
    line += support_buf;
    line += "]\n";
    result.output += line;
  }
  return result;
}

CliResult Generate(const std::vector<std::string>& args) {
  int64_t rows = 1000;
  int64_t attrs = 10;
  int64_t seed = 42;
  FlagSet flags;
  flags.AddInt("rows", &rows, "number of rows");
  flags.AddInt("attrs", &attrs, "number of attributes (ignored by "
               "date_dim)");
  flags.AddInt("seed", &seed, "generator seed");
  if (Status s = flags.Parse(args); !s.ok()) return Fail(s);
  if (flags.positional().size() != 1) {
    return Fail(Status::InvalidArgument(
        "generate expects one dataset name "
        "(flight|ncvoter|hepatitis|dbtesma|date_dim)"));
  }
  const std::string& name = flags.positional()[0];
  if (attrs < 1 || attrs > 64) {
    return Fail(Status::InvalidArgument("--attrs must be in [1, 64]"));
  }
  Table table;
  if (name == "flight") {
    table = GenFlightLike(rows, static_cast<int>(attrs),
                          static_cast<uint64_t>(seed));
  } else if (name == "ncvoter") {
    table = GenNcvoterLike(rows, static_cast<int>(attrs),
                           static_cast<uint64_t>(seed));
  } else if (name == "hepatitis") {
    table = GenHepatitisLike(rows, static_cast<int>(attrs),
                             static_cast<uint64_t>(seed));
  } else if (name == "dbtesma") {
    table = GenDbtesmaLike(rows, static_cast<int>(attrs),
                           static_cast<uint64_t>(seed));
  } else if (name == "date_dim") {
    table = GenDateDim(rows);
  } else {
    return Fail(Status::InvalidArgument("unknown dataset '" + name + "'"));
  }
  CliResult result;
  result.output = WriteCsvString(table);
  return result;
}

}  // namespace

CliResult RunCli(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    CliResult result;
    result.output = kUsage;
    return result;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "discover") return Discover(rest);
  if (command == "validate") return Validate(rest);
  if (command == "violations") return Violations(rest);
  if (command == "conditional") return Conditional(rest);
  if (command == "generate") return Generate(rest);
  CliResult result;
  result.exit_code = 1;
  result.error = "unknown command '" + command + "'\n\n" + kUsage;
  return result;
}

}  // namespace fastod
