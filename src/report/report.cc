#include "report/report.h"

#include <cstdio>

#include "common/macros.h"

namespace fastod {

namespace {

std::string AttrName(const RelationInfo& info, int attr) {
  FASTOD_CHECK(info.schema != nullptr);
  return info.schema->name(attr);
}

std::string ContextJson(const RelationInfo& info, AttributeSet context) {
  std::string out = "[";
  bool first = true;
  for (int a = context.First(); a >= 0; a = context.Next(a)) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(AttrName(info, a));
    out += '"';
  }
  out += "]";
  return out;
}

std::string HeaderJson(const char* algorithm, const RelationInfo& info,
                       double seconds, bool timed_out) {
  std::string out = "{\n  \"algorithm\": \"";
  out += algorithm;
  out += "\",\n  \"relation\": {\"rows\": " + std::to_string(info.rows) +
         ", \"attributes\": [";
  for (int i = 0; i < info.schema->NumAttributes(); ++i) {
    if (i > 0) out += ",";
    out += '"';
    out += JsonEscape(info.schema->name(i));
    out += '"';
  }
  char seconds_buf[32];
  std::snprintf(seconds_buf, sizeof(seconds_buf), "%.6f", seconds);
  out += "]},\n  \"stats\": {\"seconds\": ";
  out += seconds_buf;
  out += ", \"timed_out\": ";
  out += timed_out ? "true" : "false";
  out += "},\n";
  return out;
}

}  // namespace

std::string ReportHeaderJson(const std::string& algorithm,
                             const RelationInfo& info, double seconds,
                             bool timed_out) {
  return HeaderJson(algorithm.c_str(), info, seconds, timed_out);
}

std::string FastodResultToJson(const FastodResult& result,
                               const RelationInfo& info,
                               const std::string& algorithm) {
  std::string out =
      HeaderJson(algorithm.c_str(), info, result.seconds, result.timed_out);
  out += "  \"constancy_ods\": [\n";
  for (size_t i = 0; i < result.constancy_ods.size(); ++i) {
    const ConstancyOd& od = result.constancy_ods[i];
    out += "    {\"context\": " + ContextJson(info, od.context) +
           ", \"attribute\": \"" + JsonEscape(AttrName(info, od.attribute)) +
           "\"}";
    if (i + 1 < result.constancy_ods.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"compatibility_ods\": [\n";
  for (size_t i = 0; i < result.compatibility_ods.size(); ++i) {
    const CompatibilityOd& od = result.compatibility_ods[i];
    out += "    {\"context\": " + ContextJson(info, od.context) +
           ", \"a\": \"" + JsonEscape(AttrName(info, od.a)) + "\", \"b\": \"" +
           JsonEscape(AttrName(info, od.b)) + "\"}";
    if (i + 1 < result.compatibility_ods.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"bidirectional_ods\": [\n";
  for (size_t i = 0; i < result.bidirectional_ods.size(); ++i) {
    const BidiCompatibilityOd& od = result.bidirectional_ods[i];
    out += "    {\"context\": " + ContextJson(info, od.context) +
           ", \"a\": \"" + JsonEscape(AttrName(info, od.a)) + "\", \"b\": \"" +
           JsonEscape(AttrName(info, od.b)) +
           "\", \"polarity\": \"opposite\"}";
    if (i + 1 < result.bidirectional_ods.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string FastodResultToText(const FastodResult& result,
                               const RelationInfo& info,
                               const std::string& label) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: %lld ODs (%lld constancy + %lld compatibility + "
                "%lld bidirectional) in %.3fs%s\n", label.c_str(),
                static_cast<long long>(result.NumOds()),
                static_cast<long long>(result.num_constancy),
                static_cast<long long>(result.num_compatibility),
                static_cast<long long>(result.num_bidirectional),
                result.seconds, result.timed_out ? " [TIMED OUT]" : "");
  std::string out = buf;
  for (const ConstancyOd& od : result.constancy_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  for (const CompatibilityOd& od : result.compatibility_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  for (const BidiCompatibilityOd& od : result.bidirectional_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  return out;
}

std::string TaneResultToJson(const TaneResult& result,
                             const RelationInfo& info) {
  std::string out = HeaderJson("tane", info, result.seconds,
                               result.timed_out);
  out += "  \"fds\": [\n";
  for (size_t i = 0; i < result.fds.size(); ++i) {
    const ConstancyOd& od = result.fds[i];
    out += "    {\"lhs\": " + ContextJson(info, od.context) +
           ", \"rhs\": \"" + JsonEscape(AttrName(info, od.attribute)) +
           "\"}";
    if (i + 1 < result.fds.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string TaneResultToText(const TaneResult& result,
                             const RelationInfo& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "TANE: %lld minimal FDs in %.3fs%s\n",
                static_cast<long long>(result.num_fds), result.seconds,
                result.timed_out ? " [TIMED OUT]" : "");
  std::string out = buf;
  for (const ConstancyOd& od : result.fds) {
    out += "  " + od.context.ToString(*info.schema) + " -> " +
           AttrName(info, od.attribute) + "\n";
  }
  return out;
}

std::string OrderResultToJson(const OrderResult& result,
                              const RelationInfo& info) {
  std::string out = HeaderJson("order", info, result.seconds,
                               result.timed_out);
  out += "  \"ods\": [\n";
  for (size_t i = 0; i < result.ods.size(); ++i) {
    const ListOd& od = result.ods[i];
    auto spec_json = [&](const OrderSpec& spec) {
      std::string s = "[";
      for (size_t j = 0; j < spec.size(); ++j) {
        if (j > 0) s += ",";
        s += '"';
        s += JsonEscape(AttrName(info, spec[j]));
        s += '"';
      }
      s += "]";
      return s;
    };
    out += "    {\"lhs\": " + spec_json(od.lhs) +
           ", \"rhs\": " + spec_json(od.rhs) + "}";
    if (i + 1 < result.ods.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string OrderResultToText(const OrderResult& result,
                              const RelationInfo& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ORDER: %lld list ODs in %.3fs%s\n",
                static_cast<long long>(result.ods.size()), result.seconds,
                result.timed_out ? " [TIMED OUT]" : "");
  std::string out = buf;
  for (const ListOd& od : result.ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  return out;
}

}  // namespace fastod
