#include "report/report.h"

#include <cstdio>

#include "common/macros.h"

namespace fastod {

namespace {

std::string AttrName(const RelationInfo& info, int attr) {
  FASTOD_CHECK(info.schema != nullptr);
  return info.schema->name(attr);
}

std::string ContextJson(const RelationInfo& info, AttributeSet context) {
  std::string out = "[";
  bool first = true;
  for (int a = context.First(); a >= 0; a = context.Next(a)) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(AttrName(info, a));
    out += '"';
  }
  out += "]";
  return out;
}

std::string HeaderJson(const char* algorithm, const RelationInfo& info,
                       double seconds, bool timed_out) {
  std::string out = "{\n  \"algorithm\": \"";
  out += algorithm;
  out += "\",\n  \"relation\": {\"rows\": " + std::to_string(info.rows) +
         ", \"attributes\": [";
  for (int i = 0; i < info.schema->NumAttributes(); ++i) {
    if (i > 0) out += ",";
    out += '"';
    out += JsonEscape(info.schema->name(i));
    out += '"';
  }
  char seconds_buf[32];
  std::snprintf(seconds_buf, sizeof(seconds_buf), "%.6f", seconds);
  out += "]},\n  \"stats\": {\"seconds\": ";
  out += seconds_buf;
  out += ", \"timed_out\": ";
  out += timed_out ? "true" : "false";
  out += "},\n";
  return out;
}

}  // namespace

std::string ReportHeaderJson(const std::string& algorithm,
                             const RelationInfo& info, double seconds,
                             bool timed_out) {
  return HeaderJson(algorithm.c_str(), info, seconds, timed_out);
}

std::string FastodResultToJson(const FastodResult& result,
                               const RelationInfo& info,
                               const std::string& algorithm) {
  std::string out =
      HeaderJson(algorithm.c_str(), info, result.seconds, result.timed_out);
  out += "  \"constancy_ods\": [\n";
  for (size_t i = 0; i < result.constancy_ods.size(); ++i) {
    const ConstancyOd& od = result.constancy_ods[i];
    out += "    {\"context\": " + ContextJson(info, od.context) +
           ", \"attribute\": \"" + JsonEscape(AttrName(info, od.attribute)) +
           "\"}";
    if (i + 1 < result.constancy_ods.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"compatibility_ods\": [\n";
  for (size_t i = 0; i < result.compatibility_ods.size(); ++i) {
    const CompatibilityOd& od = result.compatibility_ods[i];
    out += "    {\"context\": " + ContextJson(info, od.context) +
           ", \"a\": \"" + JsonEscape(AttrName(info, od.a)) + "\", \"b\": \"" +
           JsonEscape(AttrName(info, od.b)) + "\"}";
    if (i + 1 < result.compatibility_ods.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"bidirectional_ods\": [\n";
  for (size_t i = 0; i < result.bidirectional_ods.size(); ++i) {
    const BidiCompatibilityOd& od = result.bidirectional_ods[i];
    out += "    {\"context\": " + ContextJson(info, od.context) +
           ", \"a\": \"" + JsonEscape(AttrName(info, od.a)) + "\", \"b\": \"" +
           JsonEscape(AttrName(info, od.b)) +
           "\", \"polarity\": \"opposite\"}";
    if (i + 1 < result.bidirectional_ods.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string FastodResultToText(const FastodResult& result,
                               const RelationInfo& info,
                               const std::string& label) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: %lld ODs (%lld constancy + %lld compatibility + "
                "%lld bidirectional) in %.3fs%s\n", label.c_str(),
                static_cast<long long>(result.NumOds()),
                static_cast<long long>(result.num_constancy),
                static_cast<long long>(result.num_compatibility),
                static_cast<long long>(result.num_bidirectional),
                result.seconds, result.timed_out ? " [TIMED OUT]" : "");
  std::string out = buf;
  for (const ConstancyOd& od : result.constancy_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  for (const CompatibilityOd& od : result.compatibility_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  for (const BidiCompatibilityOd& od : result.bidirectional_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  return out;
}

std::string TaneResultToJson(const TaneResult& result,
                             const RelationInfo& info) {
  std::string out = HeaderJson("tane", info, result.seconds,
                               result.timed_out);
  out += "  \"fds\": [\n";
  for (size_t i = 0; i < result.fds.size(); ++i) {
    const ConstancyOd& od = result.fds[i];
    out += "    {\"lhs\": " + ContextJson(info, od.context) +
           ", \"rhs\": \"" + JsonEscape(AttrName(info, od.attribute)) +
           "\"}";
    if (i + 1 < result.fds.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string TaneResultToText(const TaneResult& result,
                             const RelationInfo& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "TANE: %lld minimal FDs in %.3fs%s\n",
                static_cast<long long>(result.num_fds), result.seconds,
                result.timed_out ? " [TIMED OUT]" : "");
  std::string out = buf;
  for (const ConstancyOd& od : result.fds) {
    out += "  " + od.context.ToString(*info.schema) + " -> " +
           AttrName(info, od.attribute) + "\n";
  }
  return out;
}

std::string OrderResultToJson(const OrderResult& result,
                              const RelationInfo& info) {
  std::string out = HeaderJson("order", info, result.seconds,
                               result.timed_out);
  out += "  \"ods\": [\n";
  for (size_t i = 0; i < result.ods.size(); ++i) {
    const ListOd& od = result.ods[i];
    auto spec_json = [&](const OrderSpec& spec) {
      std::string s = "[";
      for (size_t j = 0; j < spec.size(); ++j) {
        if (j > 0) s += ",";
        s += '"';
        s += JsonEscape(AttrName(info, spec[j]));
        s += '"';
      }
      s += "]";
      return s;
    };
    out += "    {\"lhs\": " + spec_json(od.lhs) +
           ", \"rhs\": " + spec_json(od.rhs) + "}";
    if (i + 1 < result.ods.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string OrderResultToText(const OrderResult& result,
                              const RelationInfo& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ORDER: %lld list ODs in %.3fs%s\n",
                static_cast<long long>(result.ods.size()), result.seconds,
                result.timed_out ? " [TIMED OUT]" : "");
  std::string out = buf;
  for (const ListOd& od : result.ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  return out;
}

namespace {

std::string ConstancyArrayJson(const RelationInfo& info,
                               const std::vector<ConstancyOd>& ods) {
  std::string out = "[\n";
  for (size_t i = 0; i < ods.size(); ++i) {
    out += "    {\"context\": " + ContextJson(info, ods[i].context) +
           ", \"attribute\": \"" +
           JsonEscape(AttrName(info, ods[i].attribute)) + "\"}";
    if (i + 1 < ods.size()) out += ",";
    out += "\n";
  }
  out += "  ]";
  return out;
}

std::string CompatibilityArrayJson(const RelationInfo& info,
                                   const std::vector<CompatibilityOd>& ods) {
  std::string out = "[\n";
  for (size_t i = 0; i < ods.size(); ++i) {
    out += "    {\"context\": " + ContextJson(info, ods[i].context) +
           ", \"a\": \"" + JsonEscape(AttrName(info, ods[i].a)) +
           "\", \"b\": \"" + JsonEscape(AttrName(info, ods[i].b)) + "\"}";
    if (i + 1 < ods.size()) out += ",";
    out += "\n";
  }
  out += "  ]";
  return out;
}

}  // namespace

std::string IncrementalResultToJson(const IncrementalResult& result,
                                    const RelationInfo& info, double seconds,
                                    int64_t base_rows) {
  std::string out = HeaderJson("incremental", info, seconds, false);
  out += "  \"constancy_ods\": " +
         ConstancyArrayJson(info, result.constancy_ods);
  out += ",\n  \"compatibility_ods\": " +
         CompatibilityArrayJson(info, result.compatibility_ods);
  out += ",\n  \"bidirectional_ods\": [\n  ]";
  out += ",\n  \"revoked_constancy_ods\": " +
         ConstancyArrayJson(info, result.revoked_constancy);
  out += ",\n  \"revoked_compatibility_ods\": " +
         CompatibilityArrayJson(info, result.revoked_compatibility);
  out += ",\n  \"incremental\": {\"base_rows\": " +
         std::to_string(base_rows) +
         ", \"delta_rows\": " + std::to_string(info.rows - base_rows) +
         ", \"revalidated\": " + std::to_string(result.revalidated) +
         ", \"revoked\": " +
         std::to_string(result.revoked_constancy.size() +
                        result.revoked_compatibility.size()) +
         ", \"new_ods\": " +
         std::to_string(result.new_constancy + result.new_compatibility) +
         ", \"escalations\": " + std::to_string(result.escalations) +
         ", \"nodes_searched\": " + std::to_string(result.nodes_searched) +
         ", \"cancelled\": " + (result.cancelled ? "true" : "false") + "}";
  out += "\n}\n";
  return out;
}

std::string IncrementalResultToText(const IncrementalResult& result,
                                    const RelationInfo& info,
                                    double seconds) {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "INCREMENTAL: %lld ODs (%lld surviving + %lld new), %lld revoked, "
      "%lld lattice nodes re-searched in %.3fs%s\n",
      static_cast<long long>(result.constancy_ods.size() +
                             result.compatibility_ods.size()),
      static_cast<long long>(result.constancy_ods.size() +
                             result.compatibility_ods.size() -
                             result.new_constancy -
                             result.new_compatibility),
      static_cast<long long>(result.new_constancy +
                             result.new_compatibility),
      static_cast<long long>(result.revoked_constancy.size() +
                             result.revoked_compatibility.size()),
      static_cast<long long>(result.nodes_searched), seconds,
      result.cancelled ? " [CANCELLED]" : "");
  std::string out = buf;
  for (const ConstancyOd& od : result.revoked_constancy) {
    out += "  revoked " + od.ToString(*info.schema) + "\n";
  }
  for (const CompatibilityOd& od : result.revoked_compatibility) {
    out += "  revoked " + od.ToString(*info.schema) + "\n";
  }
  for (const ConstancyOd& od : result.constancy_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  for (const CompatibilityOd& od : result.compatibility_ods) {
    out += "  " + od.ToString(*info.schema) + "\n";
  }
  return out;
}

}  // namespace fastod
