// Rendering of discovery results for humans (text) and machines (JSON).
//
// The JSON shape is stable and documented here so downstream tooling can
// rely on it:
// {
//   "algorithm": "fastod",
//   "relation": {"rows": N, "attributes": [names...]},
//   "stats": {"seconds": ..., "levels": ..., "nodes": ..., "timed_out": b},
//   "constancy_ods":     [{"context": ["a","b"], "attribute": "c"}, ...],
//   "compatibility_ods": [{"context": [...], "a": ..., "b": ...}, ...],
//   "bidirectional_ods": [{"context": [...], "a": ..., "b": ...,
//                          "polarity": "opposite"}, ...]
// }
#ifndef FASTOD_REPORT_REPORT_H_
#define FASTOD_REPORT_REPORT_H_

#include <string>

#include "algo/fastod.h"
#include "algo/order.h"
#include "algo/tane.h"
#include "common/json.h"  // JsonEscape, used by every renderer below
#include "data/schema.h"
#include "incremental/incremental.h"

namespace fastod {

struct RelationInfo;

/// The shared "algorithm"/"relation"/"stats" JSON prefix (everything up to
/// and including the stats line), for renderers outside this file that
/// emit the same stable shape.
std::string ReportHeaderJson(const std::string& algorithm,
                             const RelationInfo& info, double seconds,
                             bool timed_out);

struct RelationInfo {
  int64_t rows = 0;
  const Schema* schema = nullptr;  // must outlive the call
};

/// `algorithm` / `label` let adapters that reuse the FASTOD result shape
/// (brute-force oracle, approximate discovery) render under their own
/// name.
std::string FastodResultToJson(const FastodResult& result,
                               const RelationInfo& info,
                               const std::string& algorithm = "fastod");
std::string FastodResultToText(const FastodResult& result,
                               const RelationInfo& info,
                               const std::string& label = "FASTOD");

std::string TaneResultToJson(const TaneResult& result,
                             const RelationInfo& info);
std::string TaneResultToText(const TaneResult& result,
                             const RelationInfo& info);

std::string OrderResultToJson(const OrderResult& result,
                              const RelationInfo& info);
std::string OrderResultToText(const OrderResult& result,
                              const RelationInfo& info);

/// The incremental engine's report: the grown relation's full minimal OD
/// set in the standard constancy/compatibility arrays (so any consumer of
/// the fastod shape parses it unchanged), plus "revoked_*_ods" arrays and
/// an "incremental" stats object (base_rows, delta_rows, revalidated,
/// revoked, new_ods, escalations, nodes_searched, cancelled).
std::string IncrementalResultToJson(const IncrementalResult& result,
                                    const RelationInfo& info, double seconds,
                                    int64_t base_rows);
std::string IncrementalResultToText(const IncrementalResult& result,
                                    const RelationInfo& info,
                                    double seconds);

}  // namespace fastod

#endif  // FASTOD_REPORT_REPORT_H_
